//! Micro-benchmark of the `Machine::access` hot path.
//!
//! Measures end-to-end simulator throughput (references per wall-clock
//! second) for each protocol on a synthetic mixed stream, plus the
//! translation-table microbenchmark: the open-addressed FxHash map that
//! now sits on the reference walk against the `std::collections`
//! `HashMap` it replaced, probed with the same key stream. Results are
//! recorded in `results/BENCH_hotpath.json` so subsequent PRs have a
//! throughput trajectory to beat.
//!
//! Run with: `cargo bench -p rnuma-bench --bench hotpath`

use rnuma_bench::hotpath;

fn main() {
    // ~200k references keeps a full run under a minute in bench builds
    // while exercising faults, refetches, and relocations.
    let report = hotpath::measure(200_000);

    println!(
        "Machine::access throughput (synthetic mixed stream, {} refs):",
        report.stream_refs
    );
    for p in &report.protocols {
        println!("  {:10} {:>12.0} refs/sec", p.label, p.refs_per_sec);
    }
    println!(
        "translation tables: HashMap {:.2} ns/lookup, FxMap {:.2} ns/lookup ({:.2}x speedup)",
        report.hashmap_ns_per_lookup,
        report.fxmap_ns_per_lookup,
        report.lookup_speedup()
    );
    println!(
        "MRU fast path: {:.1}% of L1-miss translations served without a table walk",
        report.mru_hit_rate * 100.0
    );
    let target = 2.0;
    if report.lookup_speedup() >= target {
        println!("hot-path acceptance: PASS (>= {target}x over the HashMap baseline)");
    } else {
        println!("hot-path acceptance: BELOW TARGET ({target}x) — check host load");
    }

    if let Some(lane) = &report.sharded {
        println!(
            "sharded lane ({} shards, {} refs, bit-identical to serial):",
            lane.shards, lane.trace_refs
        );
        println!("  serial     {:>12.0} refs/sec", lane.serial_refs_per_sec);
        println!("  sharded    {:>12.0} refs/sec", lane.sharded_refs_per_sec);
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        let sharded_target = 1.5;
        if lane.speedup() >= sharded_target {
            println!(
                "sharded acceptance: PASS ({:.2}x >= {sharded_target}x serial)",
                lane.speedup()
            );
        } else if cores < 4 {
            println!(
                "sharded acceptance: SKIPPED ({cores} cores < 4; inline fallback measured {:.2}x)",
                lane.speedup()
            );
        } else {
            println!(
                "sharded acceptance: BELOW TARGET ({:.2}x < {sharded_target}x) — check host load",
                lane.speedup()
            );
        }
    }

    report.emit();
}
