//! Bench lane for the trace-once/replay-many sweep driver.
//!
//! Measures a real multi-application, multi-configuration sweep three
//! ways — through the shared `TraceStore` driver, with per-cell
//! capture, and as plain execution-driven runs — and records the
//! amortization in `results/BENCH_sweep.json`.
//!
//! Run with: `cargo bench -p rnuma-bench --bench sweep`

use rnuma::config::{MachineConfig, Protocol};
use rnuma_bench::sweep;
use rnuma_workloads::Scale;

fn main() {
    // The Figure-6 protocol axis (capture on the ideal baseline,
    // amortized across four configurations) on two contrasting apps:
    // em3d (refetch-heavy) and moldyn (compute-heavy).
    let apps = ["em3d", "moldyn"];
    let configs = [
        MachineConfig::paper_base(Protocol::ideal()),
        MachineConfig::paper_base(Protocol::paper_ccnuma()),
        MachineConfig::paper_base(Protocol::paper_scoma()),
        MachineConfig::paper_base(Protocol::paper_rnuma()),
    ];
    let lane = sweep::measure(&apps, &configs, Scale::Tiny);

    println!(
        "sweep lane: {} apps x {} configs ({} cells), capture on the ideal baseline",
        lane.apps.len(),
        lane.configs,
        lane.apps.len() * lane.configs
    );
    println!(
        "  trace store: {} ops captured, {} stored ({:.2}x interning)",
        lane.captured_ops,
        lane.stored_ops,
        lane.interning_ratio()
    );
    println!(
        "  trace-once sweep   {:>8.1} ms/pass",
        lane.sweep_secs * 1e3
    );
    println!(
        "  per-cell capture   {:>8.1} ms/pass ({:.2}x slower)",
        lane.percell_secs * 1e3,
        lane.speedup_vs_percell_capture()
    );
    println!(
        "  direct runs        {:>8.1} ms/pass ({:.2}x slower)",
        lane.direct_secs * 1e3,
        lane.speedup_vs_direct()
    );

    let target = 1.3;
    if lane.speedup_vs_percell_capture() >= target {
        println!(
            "sweep acceptance: PASS ({:.2}x >= {target}x over per-cell capture)",
            lane.speedup_vs_percell_capture()
        );
    } else {
        println!(
            "sweep acceptance: BELOW TARGET ({:.2}x < {target}x) — check host load",
            lane.speedup_vs_percell_capture()
        );
    }

    lane.emit();
}
