//! Bench lane for the trace-once/replay-many sweep driver.
//!
//! Measures a real multi-application, multi-configuration sweep three
//! ways — through the shared `TraceStore` driver, with per-cell
//! capture, and as plain execution-driven runs — plus the batched
//! replay engine in isolation (batched vs. per-op live dispatch of the
//! same cells, and the pooled-batched sharded executor under both the
//! pipelined and the shared-log engine), and records everything in
//! `results/BENCH_sweep.json`.
//!
//! With `RNUMA_SWEEP_GATE` set (CI does), the run **fails** when the
//! batched-vs-per-op replay speedup falls more than 10% below the
//! committed baseline (`crates/bench/baselines/BENCH_sweep.json`), or
//! when either pooled lane — pipelined or `RNUMA_EXEC=log` — falls
//! below 1.0x of the serial batched engine on a host with ≥ 4 cores
//! (smaller hosts skip that gate loudly — SKIPPED in the log, never
//! silently green).
//!
//! Run with: `cargo bench -p rnuma-bench --bench sweep`

use rnuma::config::{MachineConfig, Protocol};
use rnuma_bench::sweep;
use rnuma_workloads::Scale;

fn main() {
    // The Figure-6 protocol axis (capture on the ideal baseline,
    // amortized across four configurations) on two contrasting apps:
    // em3d (refetch-heavy) and moldyn (compute-heavy).
    let apps = ["em3d", "moldyn"];
    let configs = [
        MachineConfig::paper_base(Protocol::ideal()),
        MachineConfig::paper_base(Protocol::paper_ccnuma()),
        MachineConfig::paper_base(Protocol::paper_scoma()),
        MachineConfig::paper_base(Protocol::paper_rnuma()),
    ];
    let lane = sweep::measure(&apps, &configs, Scale::Tiny);

    println!(
        "sweep lane: {} apps x {} configs ({} cells), capture on the ideal baseline",
        lane.apps.len(),
        lane.configs,
        lane.apps.len() * lane.configs
    );
    println!(
        "  trace store: {} ops captured, {} flat bytes -> {} encoded \
         ({:.2}x smaller, interning ratio {:.3})",
        lane.captured_ops,
        lane.trace_flat_bytes,
        lane.trace_encoded_bytes,
        lane.trace_footprint_ratio(),
        lane.trace_interning_ratio
    );
    println!(
        "  trace-once sweep   {:>8.1} ms/pass",
        lane.sweep_secs * 1e3
    );
    println!(
        "  per-cell capture   {:>8.1} ms/pass ({:.2}x slower)",
        lane.percell_secs * 1e3,
        lane.speedup_vs_percell_capture()
    );
    println!(
        "  direct runs        {:>8.1} ms/pass ({:.2}x slower)",
        lane.direct_secs * 1e3,
        lane.speedup_vs_direct()
    );

    println!(
        "  batched replay     {:>8.1} ms/pass ({:.1}M ops/s over {} replayed ops)",
        lane.replay_secs * 1e3,
        lane.replay_ops_per_sec() / 1e6,
        lane.replay_ops
    );
    println!(
        "  per-op replay      {:>8.1} ms/pass (batched is {:.2}x faster)",
        lane.perop_replay_secs * 1e3,
        lane.batched_speedup_vs_perop()
    );
    println!(
        "  pooled-batched     {:>8.1} ms/pass ({} shards, {:.2}x vs serial batched)",
        lane.pooled_replay_secs * 1e3,
        lane.pooled_shards,
        lane.pooled_speedup_vs_batched()
    );
    println!(
        "  log-batched        {:>8.1} ms/pass ({} shards, {:.2}x vs serial batched)",
        lane.log_replay_secs * 1e3,
        lane.pooled_shards,
        lane.log_speedup_vs_batched()
    );

    let target = 1.3;
    if lane.speedup_vs_percell_capture() >= target {
        println!(
            "sweep acceptance: PASS ({:.2}x >= {target}x over per-cell capture)",
            lane.speedup_vs_percell_capture()
        );
    } else {
        println!(
            "sweep acceptance: BELOW TARGET ({:.2}x < {target}x) — check host load",
            lane.speedup_vs_percell_capture()
        );
    }

    // The replay regression gate: always reported, fatal under
    // RNUMA_SWEEP_GATE (the CI sweep step sets it). A missing or
    // field-less baseline is a *disarmed* gate and fails the same way —
    // otherwise losing the committed file would turn the lane into a
    // permanent green no-op.
    let gated = rnuma::experiment::env_raw("RNUMA_SWEEP_GATE").is_some();
    let verdict = match sweep::committed_baseline() {
        Some(baseline) => sweep::gate_against(&lane, &baseline),
        None => Err("replay gate: committed baseline \
                     crates/bench/baselines/BENCH_sweep.json is missing — the gate cannot arm"
            .into()),
    };
    let mut failed = false;
    match verdict {
        Ok(line) => println!("{line}"),
        Err(line) => {
            eprintln!("{line}");
            failed = true;
        }
    }

    // The pooled-executor gate: neither pooled lane (pipelined or
    // shared-log) may be slower than the serial batched engine where
    // the hardware can actually run the pool (≥ 4 cores).
    // Under-provisioned hosts get a loud SKIPPED line instead of a
    // vacuous PASS.
    match sweep::pooled_gate(&lane) {
        Ok(line) => println!("{line}"),
        Err(line) => {
            eprintln!("{line}");
            failed = true;
        }
    }

    lane.emit();
    if failed {
        if gated {
            std::process::exit(1);
        }
        println!("(non-fatal: RNUMA_SWEEP_GATE is unset)");
    }
}
