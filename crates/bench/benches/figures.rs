//! Criterion end-to-end benches: one whole-application simulation per
//! (application, protocol) pair at `Scale::Tiny`.
//!
//! These are throughput benches for the *simulator*; the paper's actual
//! numbers come from the `fig*`/`table*` binaries at `--scale paper`.

use criterion::{criterion_group, criterion_main, Criterion};
use rnuma::config::{MachineConfig, Protocol};
use rnuma::experiment::run;
use rnuma_workloads::{by_name, Scale};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("apps_tiny");
    group.sample_size(10);
    for app in ["em3d", "lu", "moldyn", "barnes"] {
        for (label, protocol) in [
            ("ccnuma", Protocol::paper_ccnuma()),
            ("scoma", Protocol::paper_scoma()),
            ("rnuma", Protocol::paper_rnuma()),
        ] {
            group.bench_function(format!("{app}_{label}"), |b| {
                b.iter(|| {
                    let mut w = by_name(app, Scale::Tiny).expect("known app");
                    run(MachineConfig::paper_base(protocol), &mut w)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(figures, bench_figures);
criterion_main!(figures);
