//! Criterion micro-benchmarks for the simulator's hot paths.
//!
//! These measure the *simulator's* own performance (host-side), which
//! bounds how fast the paper's experiments run: cache probes, directory
//! transactions, page-cache allocation, network sends, and end-to-end
//! reference throughput on the assembled machine.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rnuma::config::{MachineConfig, Protocol};
use rnuma::machine::Machine;
use rnuma_mem::addr::{CpuId, NodeId, VBlock, VPage, Va};
use rnuma_mem::block_cache::{BlockCache, BlockState};
use rnuma_mem::l1::L1Cache;
use rnuma_mem::moesi::Moesi;
use rnuma_mem::page_cache::PageCache;
use rnuma_net::{MsgKind, NetConfig, Network};
use rnuma_proto::directory::Directory;
use rnuma_proto::reactive::RefetchCounters;
use rnuma_sim::Cycles;

fn bench_l1(c: &mut Criterion) {
    let mut group = c.benchmark_group("l1");
    group.bench_function("hit_probe", |b| {
        let mut l1 = L1Cache::new(8 * 1024);
        l1.fill(VBlock(7), Moesi::Exclusive);
        b.iter(|| black_box(l1.probe_read(black_box(VBlock(7)))));
    });
    group.bench_function("fill_evict_cycle", |b| {
        let mut l1 = L1Cache::new(8 * 1024);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(l1.fill(VBlock(i), Moesi::Shared))
        });
    });
    group.finish();
}

fn bench_block_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_cache");
    group.bench_function("probe_32k", |b| {
        let mut bc = BlockCache::direct_mapped(32 * 1024);
        bc.fill(VBlock(3), BlockState::read_only());
        b.iter(|| black_box(bc.probe(black_box(VBlock(3)))));
    });
    group.bench_function("fill_conflict", |b| {
        let mut bc = BlockCache::direct_mapped(128);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(bc.fill(VBlock(i), BlockState::read_only()))
        });
    });
    group.finish();
}

fn bench_page_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_cache");
    group.bench_function("allocate_lrm_320k", |b| {
        let mut pc = PageCache::new(320 * 1024);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(pc.allocate(VPage(i)))
        });
    });
    group.bench_function("tag_probe", |b| {
        let mut pc = PageCache::new(320 * 1024);
        pc.allocate(VPage(1));
        b.iter(|| black_box(pc.tag(black_box(VPage(1)), black_box(5))));
    });
    group.finish();
}

fn bench_directory(c: &mut Criterion) {
    let mut group = c.benchmark_group("directory");
    group.bench_function("read_request", |b| {
        let mut dir = Directory::new(NodeId(0));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(dir.read(VBlock(i % 100_000), NodeId((i % 7 + 1) as u8)))
        });
    });
    group.bench_function("write_with_invalidations", |b| {
        let mut dir = Directory::new(NodeId(0));
        for n in 1..8 {
            dir.read(VBlock(1), NodeId(n));
        }
        b.iter(|| black_box(dir.write(black_box(VBlock(1)), NodeId(1), false)));
    });
    group.finish();
}

fn bench_reactive(c: &mut Criterion) {
    c.bench_function("reactive/record_refetch", |b| {
        let mut counters = RefetchCounters::new(64);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(counters.record(VPage(i % 1000)))
        });
    });
}

fn bench_network(c: &mut Criterion) {
    c.bench_function("network/send", |b| {
        let mut net = Network::new(8, NetConfig::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 500;
            black_box(net.send(Cycles(t), NodeId(0), NodeId(1), MsgKind::GetShared))
        });
    });
}

fn bench_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine");
    group.sample_size(20);
    for (label, protocol) in [
        ("ccnuma", Protocol::paper_ccnuma()),
        ("scoma", Protocol::paper_scoma()),
        ("rnuma", Protocol::paper_rnuma()),
    ] {
        group.bench_function(format!("ref_throughput_{label}"), |b| {
            let mut machine = Machine::new(MachineConfig::paper_base(protocol)).expect("valid");
            // Pre-home the pages.
            for p in 0..64u64 {
                machine.access(CpuId(0), Va(0x10000 + p * 4096), true);
            }
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let cpu = CpuId((i % 32) as u16);
                let va = Va(0x10000 + (i * 32) % (64 * 4096));
                black_box(machine.access(cpu, va, i.is_multiple_of(4)))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_l1,
    bench_block_cache,
    bench_page_cache,
    bench_directory,
    bench_reactive,
    bench_network,
    bench_machine
);
criterion_main!(benches);
