//! Experiment harness for the R-NUMA reproduction.
//!
//! One binary per table/figure of the paper (see DESIGN.md §5):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1_model` | §3.2 analytical model (EQ 1–3, Table 1 parameters) |
//! | `table2_costs` | Table 2 (base system latencies) |
//! | `table3_apps` | Table 3 (application inventory) |
//! | `fig5_pages` | Figure 5 (refetch CDF over remote pages) |
//! | `table4_traffic` | Table 4 (RW-page refetches; R-NUMA traffic ratios) |
//! | `fig6_base` | Figure 6 (base-system execution times) |
//! | `fig7_cache` | Figure 7 (cache-size sensitivity) |
//! | `fig8_threshold` | Figure 8 (relocation-threshold sensitivity) |
//! | `fig9_overhead` | Figure 9 (page-fault/TLB overhead sensitivity) |
//! | `all_experiments` | everything above, in order |
//!
//! Every binary accepts `--scale paper|small|tiny` (default `paper`) and
//! writes both a text report to stdout and machine-readable CSV under
//! `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rnuma::config::{MachineConfig, Protocol};
use rnuma::experiment::{
    parallel_map, run, run_parallel, run_replayed, run_traced_env_checked, RunReport, SweepAbort,
    TraceStore,
};
use rnuma::journal::{cell_key, Journal};
use rnuma_workloads::{by_name, Scale, APP_NAMES};
use std::fmt::Write as _;
use std::path::PathBuf;

pub mod hotpath;
pub mod sweep;

/// Parses `--scale` from argv; defaults to the paper's inputs.
///
/// # Panics
///
/// Panics with a usage message on an unknown scale name.
#[must_use]
pub fn parse_scale(args: &[String]) -> Scale {
    match args.iter().position(|a| a == "--scale") {
        None => Scale::Paper,
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("paper") => Scale::Paper,
            Some("small") => Scale::Small,
            Some("tiny") => Scale::Tiny,
            other => panic!("usage: --scale paper|small|tiny (got {other:?})"),
        },
    }
}

/// Returns the canonical results directory — `results/` at the
/// *workspace root* — creating it if needed. `RNUMA_RESULTS_DIR`
/// overrides it (resolved relative to the process working directory
/// when not absolute).
///
/// Anchoring to the workspace root rather than the working directory
/// matters: bench lanes and figure binaries are launched from both the
/// root and the crate directory, and a CWD-relative `results/` used to
/// scatter drifting copies of `BENCH_hotpath.json`/`BENCH_sweep.json`
/// under `crates/bench/results/`. Every emitter goes through here, so
/// there is exactly one output directory now.
///
/// Exits with status 1 after one line of diagnostic on stderr — how
/// the figure binaries report emitter I/O failures (a full panic
/// backtrace buries the actionable line: which path failed and why).
fn die(context: &str, err: &std::io::Error) -> ! {
    eprintln!("rnuma-bench: {context}: {err}");
    std::process::exit(1);
}

/// # Exits
///
/// Exits the process with status 1 (one-line diagnostic on stderr) if
/// the directory cannot be created.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = rnuma::experiment::env_raw("RNUMA_RESULTS_DIR").map_or_else(
        || {
            // crates/bench -> crates -> workspace root.
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
                .expect("bench crate lives two levels below the workspace root")
                .join("results")
        },
        PathBuf::from,
    );
    if let Err(err) = std::fs::create_dir_all(&dir) {
        die(
            &format!("cannot create results directory {}", dir.display()),
            &err,
        );
    }
    dir
}

/// Writes `content` to `results/<name>` and echoes the path.
///
/// # Exits
///
/// Exits the process with status 1 (one-line diagnostic on stderr) on
/// I/O errors.
pub fn save(name: &str, content: &str) {
    let path = results_dir().join(name);
    if let Err(err) = std::fs::write(&path, content) {
        die(&format!("cannot write {}", path.display()), &err);
    }
    println!("[saved {}]", path.display());
}

/// Resolves `RNUMA_JOURNAL` the bench way: the literal value `1` means
/// "the canonical sweep journal", `results/sweep_journal.jsonl` under
/// [`results_dir`]; any other non-empty value is used as a path
/// directly (the core semantics, [`Journal::from_env`]). Unset or
/// empty means no journal. An unopenable journal warns once on stderr
/// and disables checkpointing — a sweep must never fail because its
/// crash-recovery aid did.
#[must_use]
pub fn sweep_journal_from_env() -> Option<Journal> {
    let val = rnuma::experiment::env_raw("RNUMA_JOURNAL")?;
    if val.is_empty() {
        return None;
    }
    let path = if val == "1" {
        results_dir().join("sweep_journal.jsonl")
    } else {
        PathBuf::from(val)
    };
    match Journal::open(&path) {
        Ok(journal) => Some(journal),
        Err(err) => {
            static WARN: std::sync::Once = std::sync::Once::new();
            WARN.call_once(|| {
                eprintln!(
                    "RNUMA_JOURNAL: cannot open {} ({err}); checkpointing disabled",
                    path.display()
                );
            });
            None
        }
    }
}

/// Runs one `(application, protocol)` pair at `scale`.
///
/// # Panics
///
/// Panics if `app` is not a Table-3 application.
#[must_use]
pub fn run_app(app: &str, protocol: Protocol, scale: Scale) -> RunReport {
    let mut workload = by_name(app, scale).unwrap_or_else(|| panic!("unknown app {app}"));
    run(MachineConfig::paper_base(protocol), &mut workload)
}

/// Runs one app on a custom machine configuration.
///
/// # Panics
///
/// Panics if `app` is not a Table-3 application.
#[must_use]
pub fn run_app_config(app: &str, config: MachineConfig, scale: Scale) -> RunReport {
    let mut workload = by_name(app, scale).unwrap_or_else(|| panic!("unknown app {app}"));
    run(config, &mut workload)
}

/// All Table-3 application names.
#[must_use]
pub fn apps() -> &'static [&'static str] {
    &APP_NAMES
}

/// Runs every `(application, configuration)` pair of the grid in
/// parallel across the host's cores, one simulation per pair.
///
/// Returns one row per application (in `apps` order); row `i` holds one
/// [`RunReport`] per configuration (in `configs` order). Each report is
/// bit-identical to a serial `run_app_config` of the same pair — every
/// simulation owns its machine, so the figure binaries built on this
/// produce exactly the numbers the serial loops did, just
/// `available_parallelism()` times faster.
///
/// Setting `RNUMA_SHARDS` to more than 1 routes every grid cell through
/// the self-checking intra-machine sharded executor
/// ([`rnuma::experiment::run_sharded_checked`]): each simulation runs
/// serially, is replayed across that many node shards, and panics if
/// the two executions are not bit-identical — turning any figure
/// regeneration into a determinism proof over the whole grid.
///
/// # Example
///
/// ```
/// use rnuma::config::{MachineConfig, Protocol};
/// use rnuma_bench::run_grid;
/// use rnuma_workloads::Scale;
///
/// let configs = [
///     MachineConfig::paper_base(Protocol::ideal()),
///     MachineConfig::paper_base(Protocol::paper_rnuma()),
/// ];
/// let rows = run_grid(&["em3d"], &configs, Scale::Tiny);
/// assert_eq!(rows.len(), 1);
/// assert_eq!(rows[0].len(), 2);
/// // The ideal machine bounds the finite one from below.
/// assert!(rows[0][1].cycles() >= rows[0][0].cycles());
/// ```
///
/// # Panics
///
/// Panics if any `app` is not a Table-3 application.
#[must_use]
pub fn run_grid(
    apps: &[&'static str],
    configs: &[MachineConfig],
    scale: Scale,
) -> Vec<Vec<RunReport>> {
    let jobs: Vec<(&'static str, MachineConfig)> = apps
        .iter()
        .flat_map(|&app| configs.iter().map(move |&c| (app, c)))
        .collect();
    let reports = run_parallel(&jobs, |&(app, config)| {
        (
            config,
            by_name(app, scale).unwrap_or_else(|| panic!("unknown app {app}")),
        )
    });
    let mut rows = Vec::with_capacity(apps.len());
    let mut it = reports.into_iter();
    for _ in apps {
        rows.push(it.by_ref().take(configs.len()).collect());
    }
    rows
}

/// [`run_grid`], the trace-once/replay-many way: each application's
/// operation stream is captured **once**, on `configs[0]` (the
/// baseline — conventionally the ideal machine), interned into a
/// shared [`TraceStore`], and replayed against every other
/// configuration. Captures fan out over the host's cores first, then
/// all replay cells do; `RNUMA_JOBS` overrides the worker count and
/// `RNUMA_SHARDS` adds the per-cell pool-backed sharded self-check.
///
/// Returns the same row shape as [`run_grid`]. The difference in
/// *meaning*: every cell of a row simulates the **same** reference
/// stream (the fixed-trace methodology), and each cell is bit-identical
/// to a serial `Machine::replay` of that stream on its configuration —
/// enforced across the whole figure grid by
/// `tests/replay_determinism.rs`. See `docs/SWEEP.md`.
///
/// # Example
///
/// ```
/// use rnuma::config::{MachineConfig, Protocol};
/// use rnuma_bench::sweep_grid;
/// use rnuma_workloads::Scale;
///
/// let configs = [
///     MachineConfig::paper_base(Protocol::ideal()),
///     MachineConfig::paper_base(Protocol::paper_rnuma()),
/// ];
/// let rows = sweep_grid(&["em3d"], &configs, Scale::Tiny);
/// assert_eq!(rows.len(), 1);
/// assert_eq!(rows[0].len(), 2);
/// // Both cells replay the same captured stream.
/// assert_eq!(
///     rows[0][0].metrics.references(),
///     rows[0][1].metrics.references(),
/// );
/// ```
///
/// # Panics
///
/// Panics if `configs` is empty, any `app` is not a Table-3
/// application, or a self-checking sharded replay diverges.
#[must_use]
pub fn sweep_grid(
    apps: &[&'static str],
    configs: &[MachineConfig],
    scale: Scale,
) -> Vec<Vec<RunReport>> {
    assert!(
        !configs.is_empty(),
        "need at least a baseline configuration"
    );
    // Phase 1+2: capture every application's stream on the baseline
    // and intern it into one shared store. Captures run in worker-sized
    // batches so at most one batch of raw (uncompressed) traces is ever
    // resident — the arena they are interned into exists precisely to
    // avoid holding every stream verbatim.
    let mut store = TraceStore::new();
    let mut ids = Vec::with_capacity(apps.len());
    let mut rows: Vec<Vec<RunReport>> = Vec::with_capacity(apps.len());
    let batch = rnuma::experiment::parallel_workers(apps.len());
    for chunk in apps.chunks(batch) {
        let captures = parallel_map(chunk, |&app| {
            let mut w = by_name(app, scale).unwrap_or_else(|| panic!("unknown app {app}"));
            run_traced_env_checked(configs[0], &mut w)
        });
        for (report, trace) in captures {
            ids.push(store.insert(report.workload, configs[0], &trace));
            let mut row = Vec::with_capacity(configs.len());
            row.push(report);
            rows.push(row);
        }
    }
    // Phase 3: replay every remaining (application, configuration) cell.
    // With `RNUMA_JOURNAL` set, completed cells checkpoint into the
    // sweep journal keyed by (workload, stream content hash, config):
    // cells already journaled restore without re-simulation, so a
    // sweep killed mid-run resumes where it died and finishes
    // bit-identical to a clean one (see docs/ROBUSTNESS.md).
    let journal = sweep_journal_from_env();
    let abort = SweepAbort::from_env();
    let hashes: Vec<u64> = ids.iter().map(|&id| store.content_hash(id)).collect();
    let cells: Vec<(usize, usize)> = (0..apps.len())
        .flat_map(|a| (1..configs.len()).map(move |c| (a, c)))
        .collect();
    let replays = parallel_map(&cells, |&(a, c)| {
        let key = cell_key(store.workload(ids[a]), hashes[a], &configs[c]);
        if let Some(metrics) = journal.as_ref().and_then(|j| j.lookup(key)) {
            return RunReport {
                workload: store.workload(ids[a]),
                protocol: configs[c].protocol.label(),
                config: configs[c],
                metrics: metrics.clone(),
            };
        }
        let report = run_replayed(&store, ids[a], configs[c]);
        if let Some(journal) = journal.as_ref() {
            journal.record(key, report.workload, report.protocol, &report.metrics);
        }
        abort.after_cell();
        report
    });
    for (&(a, _), report) in cells.iter().zip(replays) {
        rows[a].push(report);
    }
    rows
}

/// [`sweep_grid`] over protocols on the paper's base machine — what the
/// figure binaries call.
///
/// # Panics
///
/// As [`sweep_grid`].
#[must_use]
pub fn sweep_protocol_grid(
    apps: &[&'static str],
    protocols: &[Protocol],
    scale: Scale,
) -> Vec<Vec<RunReport>> {
    let configs: Vec<MachineConfig> = protocols
        .iter()
        .map(|&p| MachineConfig::paper_base(p))
        .collect();
    sweep_grid(apps, &configs, scale)
}

/// [`run_grid`] over protocols on the paper's base machine.
///
/// # Panics
///
/// Panics if any `app` is not a Table-3 application.
#[must_use]
pub fn run_protocol_grid(
    apps: &[&'static str],
    protocols: &[Protocol],
    scale: Scale,
) -> Vec<Vec<RunReport>> {
    let configs: Vec<MachineConfig> = protocols
        .iter()
        .map(|&p| MachineConfig::paper_base(p))
        .collect();
    run_grid(apps, &configs, scale)
}

/// Renders a unit-scaled horizontal ASCII bar.
#[must_use]
pub fn bar(value: f64, per_unit: f64, max_width: usize) -> String {
    let width = ((value * per_unit).round() as usize).min(max_width);
    "#".repeat(width)
}

/// A tiny fixed-width table builder for the text reports.
#[derive(Debug, Default)]
pub struct TextTable {
    header: String,
    rows: Vec<String>,
}

impl TextTable {
    /// Starts a table with a preformatted header line.
    #[must_use]
    pub fn new(header: &str) -> TextTable {
        TextTable {
            header: header.to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends a preformatted row.
    pub fn row(&mut self, row: String) {
        self.rows.push(row);
    }

    /// Renders header, separator, and rows.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header);
        let _ = writeln!(out, "{}", "-".repeat(self.header.len().min(100)));
        for r in &self.rows {
            let _ = writeln!(out, "{r}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        let args = |s: &str| vec!["prog".to_string(), "--scale".to_string(), s.to_string()];
        assert_eq!(parse_scale(&args("tiny")), Scale::Tiny);
        assert_eq!(parse_scale(&args("small")), Scale::Small);
        assert_eq!(parse_scale(&args("paper")), Scale::Paper);
        assert_eq!(parse_scale(&["prog".to_string()]), Scale::Paper);
    }

    #[test]
    fn bar_widths() {
        assert_eq!(bar(1.0, 10.0, 40), "##########");
        assert_eq!(bar(10.0, 10.0, 40), "#".repeat(40));
        assert_eq!(bar(0.0, 10.0, 40), "");
    }

    #[test]
    fn table_renders_all_rows() {
        let mut t = TextTable::new("a  b");
        t.row("1  2".into());
        t.row("3  4".into());
        let s = t.render();
        assert!(s.contains("a  b"));
        assert!(s.contains("1  2") && s.contains("3  4"));
    }

    #[test]
    fn results_dir_is_anchored_at_the_workspace_root() {
        // With no override, the directory is absolute, named
        // `results`, and sits next to the workspace manifest — never
        // relative to the process CWD.
        if rnuma::experiment::env_raw("RNUMA_RESULTS_DIR").is_none() {
            let dir = results_dir();
            assert!(dir.is_absolute());
            assert!(dir.ends_with("results"));
            assert!(dir.parent().unwrap().join("Cargo.toml").exists());
        }
    }

    #[test]
    fn run_app_smoke() {
        let r = run_app("moldyn", Protocol::ideal(), Scale::Tiny);
        assert!(r.cycles() > 0);
        assert_eq!(r.workload, "moldyn");
    }
}
