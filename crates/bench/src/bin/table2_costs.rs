//! E2 — the base system assumptions (Table 2), verified against the
//! simulator's calibration (uncontended end-to-end latencies).

use rnuma::config::{MachineConfig, Protocol};
use rnuma::machine::Machine;
use rnuma_bench::{save, TextTable};
use rnuma_mem::addr::{CpuId, Va};
use rnuma_os::CostModel;

fn main() {
    let costs = CostModel::base();
    let mut t = TextTable::new("operation                          cost (processor cycles)");
    t.row(format!(
        "SRAM access                        {}",
        costs.sram_access.0
    ));
    t.row(format!(
        "DRAM access                        {}",
        costs.dram_access.0
    ));
    t.row(format!(
        "local cache fill                   {}",
        costs.local_cache_fill.0
    ));
    t.row(format!(
        "remote fetch                       {}",
        costs.remote_fetch.0
    ));
    t.row(format!(
        "soft trap                          {}",
        costs.soft_trap.0
    ));
    t.row(format!(
        "TLB shootdown                      {}",
        costs.tlb_shootdown.0
    ));
    t.row(format!(
        "page allocation/replacement        {}~{}",
        costs.page_allocation(0).0,
        costs.page_allocation(128).0
    ));
    let mut out = t.render();

    // Calibration: measure the same quantities end-to-end on the
    // simulated machine.
    let mut m = Machine::new(MachineConfig::paper_base(Protocol::paper_ccnuma()))
        .expect("paper config is valid");
    m.access(CpuId(0), Va(0x4000), false); // home page at node 0
    m.access(CpuId(4), Va(0x4000), false); // map on node 1
    m.barrier_all();
    let local = m.access(CpuId(0), Va(0x4020), false);
    m.barrier_all();
    let remote = m.access(CpuId(4), Va(0x4040), false);
    out.push_str(&format!(
        "\nmeasured on the simulator (uncontended):\n\
         local cache fill = {local}\nremote fetch     = {remote}\n"
    ));
    print!("{out}");
    save("table2_costs.txt", &out);
}
