//! E3 — the application inventory (Table 3), with measured reference
//! counts at the selected scale.

use rnuma::config::Protocol;
use rnuma_bench::{apps, parse_scale, run_protocol_grid, save, TextTable};
use rnuma_workloads::input_description;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    let mut t = TextTable::new(
        "application  input (Table 3)                                               references   shared pages",
    );
    let mut csv = String::from("app,references,shared_pages\n");
    let grid = run_protocol_grid(apps(), &[Protocol::ideal()], scale);
    for (app, row) in apps().iter().zip(&grid) {
        let report = &row[0];
        let refs = report.metrics.references();
        let pages = report.metrics.shared_pages();
        t.row(format!(
            "{app:12} {desc:60} {refs:12} {pages:8}",
            desc = input_description(app).expect("documented"),
        ));
        csv.push_str(&format!("{app},{refs},{pages}\n"));
    }
    let out = t.render();
    print!("{out}");
    save("table3_apps.txt", &out);
    save("table3_apps.csv", &csv);
}
