//! E8 — Figure 8: R-NUMA's sensitivity to the relocation threshold.
//!
//! R-NUMA (128-B block cache, 320-KB page cache) at T ∈ {16, 64, 256,
//! 1024}, normalized to T = 64 per application.
//!
//! Runs through the trace-once/replay-many sweep driver: each
//! application's reference stream is captured once on the first
//! configuration of the grid and replayed against the rest
//! (`docs/SWEEP.md`).

use rnuma::config::Protocol;
use rnuma_bench::{apps, parse_scale, save, sweep_protocol_grid, TextTable};

const THRESHOLDS: [u32; 4] = [16, 64, 256, 1024];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);

    let protocols: Vec<Protocol> = THRESHOLDS
        .iter()
        .map(|&threshold| Protocol::RNuma {
            block_cache_bytes: 128,
            page_cache_bytes: 320 * 1024,
            threshold,
        })
        .collect();
    let grid = sweep_protocol_grid(apps(), &protocols, scale);

    let mut t =
        TextTable::new("application     T=16     T=64    T=256   T=1024   (normalized to T=64)");
    let mut csv = String::from("app,t16,t64,t256,t1024\n");
    for (app, row) in apps().iter().zip(&grid) {
        let cycles: Vec<f64> = row.iter().map(|r| r.cycles() as f64).collect();
        let base = cycles[1];
        let norm: Vec<f64> = cycles.iter().map(|c| c / base).collect();
        t.row(format!(
            "{app:12} {:8.2} {:8.2} {:8.2} {:8.2}",
            norm[0], norm[1], norm[2], norm[3]
        ));
        csv.push_str(&format!(
            "{app},{:.4},{:.4},{:.4},{:.4}\n",
            norm[0], norm[1], norm[2], norm[3]
        ));
    }
    let mut out = t.render();
    out.push_str(
        "\nPaper's reading: performance varies by at most ~27% for most\n\
         applications; cholesky, fmm, lu and ocean (large reuse-page\n\
         fractions) gain up to 25% from T=16.\n",
    );
    print!("{out}");
    save("fig8_threshold.txt", &out);
    save("fig8_threshold.csv", &csv);
}
