//! E6 — Figure 6: base-system execution times.
//!
//! CC-NUMA (32-KB block cache) vs S-COMA (320-KB page cache) vs R-NUMA
//! (128-B block cache, 320-KB page cache, threshold 64), normalized to
//! the ideal CC-NUMA with an infinite block cache. All 40
//! `(application, protocol)` simulations run in parallel across the
//! host's cores.
//!
//! Runs through the trace-once/replay-many sweep driver: each
//! application's reference stream is captured once on the ideal
//! baseline and replayed against the three finite protocols
//! (`docs/SWEEP.md`).

use rnuma::config::Protocol;
use rnuma_bench::{apps, bar, parse_scale, save, sweep_protocol_grid, TextTable};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);

    let protocols = [
        Protocol::ideal(),
        Protocol::paper_ccnuma(),
        Protocol::paper_scoma(),
        Protocol::paper_rnuma(),
    ];
    let grid = sweep_protocol_grid(apps(), &protocols, scale);

    let mut t = TextTable::new("application   CC-NUMA   S-COMA   R-NUMA   (normalized to ideal)");
    let mut csv = String::from("app,ccnuma,scoma,rnuma\n");
    let mut chart = String::new();
    let mut worst_rnuma_gap: (f64, &str) = (0.0, "-");
    for (app, row) in apps().iter().zip(&grid) {
        let ideal = row[0].cycles() as f64;
        let cc = row[1].cycles() as f64 / ideal;
        let sc = row[2].cycles() as f64 / ideal;
        let rn = row[3].cycles() as f64 / ideal;
        t.row(format!("{app:12} {cc:8.2} {sc:8.2} {rn:8.2}"));
        csv.push_str(&format!("{app},{cc:.4},{sc:.4},{rn:.4}\n"));
        chart.push_str(&format!(
            "{app:>10} CC |{}\n{:>10} SC |{}\n{:>10} RN |{}\n",
            bar(cc, 10.0, 70),
            "",
            bar(sc, 10.0, 70),
            "",
            bar(rn, 10.0, 70),
        ));
        let gap = rn / cc.min(sc);
        if gap > worst_rnuma_gap.0 {
            worst_rnuma_gap = (gap, app);
        }
    }
    let mut out = t.render();
    out.push('\n');
    out.push_str(&chart);
    out.push_str(&format!(
        "\nR-NUMA's worst showing vs the better base protocol: +{:.0}% ({}).\n\
         Paper: R-NUMA is best or near-best for seven of ten applications\n\
         and never more than 57% worse than the better protocol; CC-NUMA\n\
         was up to 179% worse than S-COMA, S-COMA up to 315% worse than\n\
         CC-NUMA.\n",
        (worst_rnuma_gap.0 - 1.0) * 100.0,
        worst_rnuma_gap.1
    ));
    print!("{out}");
    save("fig6_base.txt", &out);
    save("fig6_base.csv", &csv);
}
