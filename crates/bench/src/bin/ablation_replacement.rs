//! Ablation — page-cache replacement policy.
//!
//! The paper uses Least Recently Missed and explicitly defers the
//! policy question ("page replacement policies are beyond the scope of
//! this paper", Section 4). This experiment fills that gap: S-COMA and
//! R-NUMA execution times under LRM, FIFO, and Random victim
//! selection, normalized per application to LRM.
//!
//! Runs through the trace-once/replay-many sweep driver: each
//! application's reference stream is captured once on the first
//! configuration of the grid and replayed against the rest
//! (`docs/SWEEP.md`).

use rnuma::config::{MachineConfig, Protocol};
use rnuma_bench::{apps, parse_scale, save, sweep_grid, TextTable};
use rnuma_mem::page_cache::ReplacementPolicy;

const POLICIES: [(&str, ReplacementPolicy); 3] = [
    ("LRM", ReplacementPolicy::LeastRecentlyMissed),
    ("FIFO", ReplacementPolicy::Fifo),
    ("Random", ReplacementPolicy::Random),
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);

    let protocols = [
        ("S-COMA", Protocol::paper_scoma()),
        ("R-NUMA", Protocol::paper_rnuma()),
    ];
    // One batch for all (protocol, policy) columns: the parallel
    // driver's end-of-batch straggler wait is paid once, not per
    // protocol. Row layout: protocol-major, policy-minor.
    let configs: Vec<MachineConfig> = protocols
        .iter()
        .flat_map(|&(_, protocol)| {
            POLICIES.iter().map(move |&(_, policy)| {
                let mut config = MachineConfig::paper_base(protocol);
                config.page_policy = policy;
                config
            })
        })
        .collect();
    let grid = sweep_grid(apps(), &configs, scale);

    let mut out = String::new();
    let mut csv = String::from("app,protocol,policy,cycles\n");
    for (p_idx, (label, _)) in protocols.iter().enumerate() {
        let mut t = TextTable::new(&format!(
            "{label}: application      LRM     FIFO   Random   (normalized to LRM)"
        ));
        for (app, row) in apps().iter().zip(&grid) {
            let cycles: Vec<u64> = POLICIES
                .iter()
                .zip(&row[p_idx * POLICIES.len()..])
                .map(|(&(_, policy), report)| {
                    csv.push_str(&format!("{app},{label},{:?},{}\n", policy, report.cycles()));
                    report.cycles()
                })
                .collect();
            let base = cycles[0] as f64;
            t.row(format!(
                "{app:21} {:8.2} {:8.2} {:8.2}",
                1.0,
                cycles[1] as f64 / base,
                cycles[2] as f64 / base
            ));
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str(
        "Reading: LRM's advantage comes from keeping recently-missed\n\
         (actively faulting) pages resident; FIFO/Random evict them\n\
         mid-stream. Differences are largest for the applications whose\n\
         remote page set marginally exceeds the 80-frame cache.\n",
    );
    print!("{out}");
    save("ablation_replacement.txt", &out);
    save("ablation_replacement.csv", &csv);
}
