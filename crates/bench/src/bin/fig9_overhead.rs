//! E9 — Figure 9: sensitivity of S-COMA and R-NUMA to page-fault and
//! TLB-invalidation overheads.
//!
//! Base systems assume 5-µs page faults and 0.5-µs hardware TLB
//! invalidation; the SOFT systems assume 10 µs and 5 µs (software
//! shootdowns via inter-processor interrupts), roughly tripling the
//! per-page overhead. All normalized to the ideal CC-NUMA.
//!
//! Runs through the trace-once/replay-many sweep driver: each
//! application's reference stream is captured once on the first
//! configuration of the grid and replayed against the rest
//! (`docs/SWEEP.md`).

use rnuma::config::{MachineConfig, Protocol};
use rnuma_bench::{apps, parse_scale, save, sweep_grid, TextTable};
use rnuma_os::CostModel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);

    let soft = |protocol: Protocol| {
        let mut config = MachineConfig::paper_base(protocol);
        config.costs = CostModel::soft();
        config
    };

    let configs = [
        MachineConfig::paper_base(Protocol::ideal()),
        MachineConfig::paper_base(Protocol::paper_scoma()),
        soft(Protocol::paper_scoma()),
        MachineConfig::paper_base(Protocol::paper_rnuma()),
        soft(Protocol::paper_rnuma()),
    ];
    let grid = sweep_grid(apps(), &configs, scale);

    let mut t = TextTable::new(
        "application   S-COMA   S-COMA-SOFT   R-NUMA   R-NUMA-SOFT   (normalized to ideal)",
    );
    let mut csv = String::from("app,scoma,scoma_soft,rnuma,rnuma_soft\n");
    for (app, row) in apps().iter().zip(&grid) {
        let ideal = row[0].cycles() as f64;
        let sc = row[1].cycles() as f64 / ideal;
        let sc_soft = row[2].cycles() as f64 / ideal;
        let rn = row[3].cycles() as f64 / ideal;
        let rn_soft = row[4].cycles() as f64 / ideal;
        t.row(format!(
            "{app:12} {sc:8.2} {sc_soft:13.2} {rn:8.2} {rn_soft:13.2}"
        ));
        csv.push_str(&format!(
            "{app},{sc:.4},{sc_soft:.4},{rn:.4},{rn_soft:.4}\n"
        ));
    }
    let mut out = t.render();
    out.push_str(
        "\nPaper's reading: S-COMA's execution time grows by up to 3x under\n\
         the slower OS primitives (page-replacement-bound applications),\n\
         while R-NUMA-SOFT grows by at most ~25% (40% for lu, whose\n\
         replacements sit on the critical path).\n",
    );
    print!("{out}");
    save("fig9_overhead.txt", &out);
    save("fig9_overhead.csv", &csv);
}
