//! E5 — Table 4: block refetches and page replacements.
//!
//! Left column: the fraction of CC-NUMA block refetches due to pages
//! with both read and write sharing traffic. Right columns: R-NUMA's
//! block refetches as a percentage of CC-NUMA's and R-NUMA's page
//! replacements as a percentage of S-COMA's (base configurations,
//! threshold 64).
//!
//! Runs through the trace-once/replay-many sweep driver: each
//! application's reference stream is captured once on the first
//! configuration of the grid and replayed against the rest
//! (`docs/SWEEP.md`).

use rnuma::config::Protocol;
use rnuma_bench::{apps, parse_scale, save, sweep_protocol_grid, TextTable};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    let mut t = TextTable::new(
        "application   CC-NUMA RW pages   R-NUMA refetches (% of CC)   R-NUMA replacements (% of S-COMA)",
    );
    let mut csv = String::from("app,rw_page_fraction,rnuma_refetch_pct,rnuma_replacement_pct\n");
    let grid = sweep_protocol_grid(
        apps(),
        &[
            Protocol::paper_ccnuma(),
            Protocol::paper_scoma(),
            Protocol::paper_rnuma(),
        ],
        scale,
    );
    for (app, row) in apps().iter().zip(&grid) {
        let (cc, sc, rn) = (&row[0], &row[1], &row[2]);

        let rw = cc.metrics.rw_page_refetch_fraction() * 100.0;
        let refetch_pct = if cc.metrics.refetches == 0 {
            f64::NAN
        } else {
            rn.metrics.refetches as f64 / cc.metrics.refetches as f64 * 100.0
        };
        let repl_pct = if sc.metrics.os.page_replacements == 0 {
            f64::NAN
        } else {
            rn.metrics.os.page_replacements as f64 / sc.metrics.os.page_replacements as f64 * 100.0
        };
        t.row(format!(
            "{app:12} {rw:14.0}% {refetch_pct:24.0}% {repl_pct:30.0}%"
        ));
        csv.push_str(&format!("{app},{rw:.4},{refetch_pct:.4},{repl_pct:.4}\n"));
    }
    let mut out = t.render();
    out.push_str(
        "\nPaper's Table 4 for comparison (RW / refetch% / replacement%):\n\
         barnes 97/21/2  cholesky 28/30/15  em3d 100/0/0  fmm 99/142/2\n\
         lu 82/21/70  moldyn 98/0/0  ocean 96/36/4  radix 15/125/1\n\
         raytrace 5/41/5  (fft omitted)\n",
    );
    print!("{out}");
    save("table4_traffic.txt", &out);
    save("table4_traffic.csv", &csv);
}
