//! Runs every experiment (E1–E9) in order, forwarding `--scale`.
//!
//! Equivalent to invoking each per-figure binary; results land in
//! `results/`.

use std::process::Command;

const EXPERIMENTS: [&str; 10] = [
    "table1_model",
    "table2_costs",
    "table3_apps",
    "fig5_pages",
    "table4_traffic",
    "fig6_base",
    "fig7_cache",
    "fig8_threshold",
    "fig9_overhead",
    "ablation_replacement",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let me = std::env::current_exe().expect("current exe path");
    let bindir = me.parent().expect("exe has a parent dir");
    for exp in EXPERIMENTS {
        println!("\n================ {exp} ================");
        let status = Command::new(bindir.join(exp))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        assert!(status.success(), "{exp} failed");
    }
    println!("\nAll experiments complete; see results/ for reports.");
}
