//! Runs every experiment (E1–E9) in order, forwarding `--scale`.
//!
//! Equivalent to invoking each per-figure binary; results land in
//! `results/`. Launch and experiment failures exit with status 1 after
//! a one-line diagnostic — no backtrace to dig the failing binary out
//! of.

use std::process::Command;

const EXPERIMENTS: [&str; 10] = [
    "table1_model",
    "table2_costs",
    "table3_apps",
    "fig5_pages",
    "table4_traffic",
    "fig6_base",
    "fig7_cache",
    "fig8_threshold",
    "fig9_overhead",
    "ablation_replacement",
];

fn die(msg: &str) -> ! {
    eprintln!("all_experiments: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let me = match std::env::current_exe() {
        Ok(me) => me,
        Err(err) => die(&format!("cannot resolve own executable path: {err}")),
    };
    let Some(bindir) = me.parent() else {
        die("own executable path has no parent directory");
    };
    for exp in EXPERIMENTS {
        println!("\n================ {exp} ================");
        match Command::new(bindir.join(exp)).args(&args).status() {
            Ok(status) if status.success() => {}
            Ok(status) => die(&format!("{exp} failed with {status}")),
            Err(err) => die(&format!("failed to launch {exp}: {err}")),
        }
    }
    println!("\nAll experiments complete; see results/ for reports.");
}
