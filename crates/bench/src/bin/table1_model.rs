//! E1 — the analytical worst-case model (Section 3.2, EQ 1–3; Table 1).
//!
//! Prints the model parameters derived from the Table-2 cost model, the
//! competitive-ratio curves EQ 1 and EQ 2 over a threshold sweep, their
//! intersection `T* = C_allocate / C_refetch`, and the worst-case bound
//! `2 + C_relocate / C_allocate`.

use rnuma::model::ModelParams;
use rnuma_bench::{save, TextTable};
use rnuma_os::CostModel;

fn main() {
    let mut out = String::new();
    for (label, costs) in [("base", CostModel::base()), ("SOFT", CostModel::soft())] {
        let p = ModelParams::from_costs(&costs);
        out.push_str(&format!(
            "=== {label} system: Cref={:.0} Call={:.0} Crel={:.0} ===\n",
            p.c_refetch, p.c_allocate, p.c_relocate
        ));
        out.push_str(&format!(
            "optimal threshold T* = Call/Cref = {:.1}\n",
            p.optimal_threshold()
        ));
        out.push_str(&format!(
            "worst-case bound at T* = 2 + Crel/Call = {:.3}\n\n",
            p.worst_case_bound()
        ));

        let mut t = TextTable::new("      T   EQ1 (vs CC-NUMA)   EQ2 (vs S-COMA)   worst case");
        for &threshold in &[1.0, 4.0, 8.0, 16.0, 19.2, 32.0, 64.0, 128.0, 256.0, 1024.0] {
            t.row(format!(
                "{threshold:7.1} {:17.3} {:17.3} {:12.3}",
                p.rnuma_vs_ccnuma(threshold),
                p.rnuma_vs_scoma(threshold),
                p.worst_case_at(threshold)
            ));
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str(
        "Paper check: the bound is ~2 for aggressive implementations\n\
         (Crel << Call) and ~3 for conservative ones (Crel ~= Call); the\n\
         threshold minimizing the worst case is independent of Crel.\n",
    );
    print!("{out}");
    save("table1_model.txt", &out);

    // CSV series for the curves.
    let p = ModelParams::from_costs(&CostModel::base());
    let mut csv = String::from("threshold,eq1_vs_ccnuma,eq2_vs_scoma,worst_case\n");
    let mut threshold = 1.0;
    while threshold <= 1024.0 {
        csv.push_str(&format!(
            "{threshold},{},{},{}\n",
            p.rnuma_vs_ccnuma(threshold),
            p.rnuma_vs_scoma(threshold),
            p.worst_case_at(threshold)
        ));
        threshold *= 2.0;
    }
    save("table1_model.csv", &csv);
}
