//! E4 — Figure 5: the cumulative distribution of CC-NUMA block
//! refetches over remote pages (32-KB block cache).
//!
//! The paper's reading: "in four of the applications, less than 10% of
//! the remote pages account for over 80% of the capacity and conflict
//! misses"; radix is the flat outlier. fft is omitted (it incurs no
//! capacity/conflict misses).
//!
//! Runs through the trace-once/replay-many sweep driver: each
//! application's reference stream is captured once on the first
//! configuration of the grid and replayed against the rest
//! (`docs/SWEEP.md`).

use rnuma::config::Protocol;
use rnuma_bench::{apps, parse_scale, save, sweep_protocol_grid, TextTable};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    let fractions = [0.05, 0.10, 0.20, 0.30, 0.50, 0.70, 1.00];

    let mut t = TextTable::new(
        "application   refetches | cumulative % of refetches at top {5,10,20,30,50,70,100}% of remote pages",
    );
    let mut csv = String::from("app,page_fraction,refetch_fraction\n");
    let grid = sweep_protocol_grid(apps(), &[Protocol::paper_ccnuma()], scale);
    for (app, row) in apps().iter().zip(&grid) {
        let report = &row[0];
        let cdf = report.metrics.refetch_cdf();
        if *app == "fft" || cdf.total() == 0 {
            t.row(format!(
                "{app:12} {:10} | (omitted: no capacity/conflict misses)",
                cdf.total()
            ));
            continue;
        }
        let cells: Vec<String> = fractions
            .iter()
            .map(|&f| format!("{:5.1}", cdf.weight_of_top(f) * 100.0))
            .collect();
        t.row(format!("{app:12} {:10} | {}", cdf.total(), cells.join(" ")));
        for &(x, y) in cdf.points() {
            csv.push_str(&format!("{app},{x:.6},{y:.6}\n"));
        }
    }
    let out = t.render();
    print!("{out}");
    save("fig5_pages.txt", &out);
    save("fig5_pages.csv", &csv);
}
