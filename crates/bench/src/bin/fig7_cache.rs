//! E7 — Figure 7: sensitivity of CC-NUMA and R-NUMA to cache sizes.
//!
//! CC-NUMA with 1-KB and 32-KB block caches; R-NUMA with (128 B,
//! 320 KB), (32 KB, 320 KB), and (128 B, 40 MB) block/page caches;
//! all normalized to the ideal infinite-block-cache machine.
//!
//! Runs through the trace-once/replay-many sweep driver: each
//! application's reference stream is captured once on the first
//! configuration of the grid and replayed against the rest
//! (`docs/SWEEP.md`).

use rnuma::config::Protocol;
use rnuma_bench::{apps, parse_scale, save, sweep_protocol_grid, TextTable};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);

    let configs: [(&str, Protocol); 5] = [
        (
            "CC b=1K",
            Protocol::CcNuma {
                block_cache_bytes: Some(1024),
            },
        ),
        ("CC b=32K", Protocol::paper_ccnuma()),
        ("RN b=128,p=320K", Protocol::paper_rnuma()),
        (
            "RN b=32K,p=320K",
            Protocol::RNuma {
                block_cache_bytes: 32 * 1024,
                page_cache_bytes: 320 * 1024,
                threshold: 64,
            },
        ),
        (
            "RN b=128,p=40M",
            Protocol::RNuma {
                block_cache_bytes: 128,
                page_cache_bytes: 40 * 1024 * 1024,
                threshold: 64,
            },
        ),
    ];

    // One parallel batch: ideal baseline first, then the five variants.
    let mut protocols = vec![Protocol::ideal()];
    protocols.extend(configs.iter().map(|&(_, p)| p));
    let grid = sweep_protocol_grid(apps(), &protocols, scale);

    let mut t =
        TextTable::new("application   CC b=1K   CC b=32K   RN 128/320K   RN 32K/320K   RN 128/40M");
    let mut csv = String::from("app,cc_1k,cc_32k,rn_128_320k,rn_32k_320k,rn_128_40m\n");
    for (app, row) in apps().iter().zip(&grid) {
        let ideal = row[0].cycles() as f64;
        let values: Vec<f64> = row[1..].iter().map(|r| r.cycles() as f64 / ideal).collect();
        t.row(format!(
            "{app:12} {:9.2} {:10.2} {:13.2} {:13.2} {:12.2}",
            values[0], values[1], values[2], values[3], values[4]
        ));
        csv.push_str(&format!(
            "{app},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            values[0], values[1], values[2], values[3], values[4]
        ));
    }
    let mut out = t.render();
    out.push_str(
        "\nPaper's reading: em3d/fft run well even at b=1K; barnes, moldyn,\n\
         raytrace need only a tiny block cache once the page cache holds\n\
         their reuse set; cholesky/fmm/radix want the 32-KB block cache;\n\
         lu/ocean overflow even that (CC-NUMA up to ~7x at b=1K), and\n\
         fmm/ocean/radix only settle with the 40-MB page cache.\n",
    );
    print!("{out}");
    save("fig7_cache.txt", &out);
    save("fig7_cache.csv", &csv);
}
