//! Sweep-throughput measurement and the `BENCH_sweep.json` emitter.
//!
//! The trace-once/replay-many driver exists to amortize trace capture
//! across a configuration sweep (see `docs/SWEEP.md`). This lane
//! measures exactly that amortization on real application kernels:
//!
//! * **sweep** — the driver itself: capture each application's stream
//!   once on the baseline configuration, intern it, replay it on every
//!   other configuration;
//! * **per-cell capture** — the same replay infrastructure *without*
//!   the shared store: every cell captures its own trace and replays
//!   it (what `RNUMA_SHARDS`-style self-checking cells cost, and what
//!   a sweep without the store would pay);
//! * **direct** — plain execution-driven `run` per cell, for reference
//!   (it pays workload generation per cell but never materializes a
//!   trace).
//!
//! * **replay throughput** — the batched replay engine in isolation:
//!   the non-capture cells replayed from the interned store (batched,
//!   pre-split run tables) against the same cells driven through the
//!   live API one op at a time (`live_dispatch` — the thin wrapper
//!   standing in for the retired per-op replay path). The
//!   batched-vs-per-op speedup is the host-independent gate CI
//!   enforces (`RNUMA_SWEEP_GATE`).
//! * **pooled-batched replay** — the same cells through the sharded
//!   executor's pooled window buckets (`ShardedMachine::run_segments`
//!   on a worker-backed pool), pinned to the pipelined engine so the
//!   recorded trajectory stays comparable across commits;
//! * **log replay** — the same pooled cells under the shared-log
//!   engine (`RNUMA_EXEC=log`: up-front span scan, per-shard
//!   consumption cursors, no global epoch barrier), riding the same
//!   pooled ≥ 1.0× gate.
//!
//! Results land in `results/BENCH_sweep.json` (the canonical
//! workspace-root directory) so subsequent PRs have a
//! sweep-throughput trajectory; the acceptance gates are the
//! sweep-vs-per-cell-capture speedup and the batched-vs-per-op replay
//! speedup against the committed baseline
//! (`crates/bench/baselines/BENCH_sweep.json`).

use rnuma::config::MachineConfig;
use rnuma::experiment::{run, run_replayed, run_traced, TraceStore};
use rnuma::shard::{ExecEngine, ShardPool, ShardedMachine, TraceOp};
use rnuma::Machine;
use rnuma_workloads::{by_name, Scale};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Drives `ops` through the live per-op API (`Machine::access` and
/// friends), one op at a time. The per-op replay entry points are
/// retired from the public API; this thin wrapper is their stand-in as
/// the reference leg of the batched-vs-per-op lanes — and of the
/// differential test suites, which share this one definition — paying
/// exactly the per-op dispatch and per-op engine setup the batched
/// loop eliminates.
pub fn live_dispatch(machine: &mut Machine, ops: &[TraceOp]) {
    for op in ops {
        match *op {
            TraceOp::Access { cpu, va, write } => {
                machine.access(cpu, va, write);
            }
            TraceOp::Think { cpu, dur } => machine.advance(cpu, dur),
            TraceOp::Barrier => machine.barrier_all(),
            TraceOp::ArmFirstTouch => machine.arm_first_touch(),
        }
    }
}

/// Everything `BENCH_sweep.json` records.
#[derive(Clone, Debug)]
pub struct SweepLane {
    /// Applications measured.
    pub apps: Vec<&'static str>,
    /// Configurations per application (capture amortized across these).
    pub configs: usize,
    /// Total operations captured per sweep pass.
    pub captured_ops: u64,
    /// Bytes the captured streams would occupy as flat `TraceOp`
    /// arrays (the storage format the encoded store replaces).
    pub trace_flat_bytes: u64,
    /// Bytes the columnar, delta-encoded store actually occupies.
    pub trace_encoded_bytes: u64,
    /// Stored over referenced profile bytes (≤ 1.0; below 1.0 when
    /// profile interning dedups shared reference patterns).
    pub trace_interning_ratio: f64,
    /// Seconds per full sweep through the trace-once driver.
    pub sweep_secs: f64,
    /// Seconds per full sweep with per-cell capture + replay.
    pub percell_secs: f64,
    /// Seconds per full sweep of plain execution-driven runs.
    pub direct_secs: f64,
    /// Ops replayed per replay-only pass (all non-capture cells).
    pub replay_ops: u64,
    /// Seconds per replay-only pass through the batched loop.
    pub replay_secs: f64,
    /// Seconds per replay-only pass through per-op live dispatch (the
    /// reference leg standing in for the retired per-op replay path).
    pub perop_replay_secs: f64,
    /// Shard count of the pooled-batched lane.
    pub pooled_shards: usize,
    /// Seconds per replay-only pass through the sharded executor's
    /// pooled window buckets (batched bucket kernel, worker-backed
    /// pool, pipelined engine).
    pub pooled_replay_secs: f64,
    /// Seconds per replay-only pass through the sharded executor under
    /// the shared-log engine (same pool, same shards; spans consumed
    /// through per-shard cursors instead of lockstep windows).
    pub log_replay_secs: f64,
    /// Hardware threads available to the measuring process — recorded
    /// so the pooled lane's numbers can be read in context, and what
    /// the pooled gate keys its arm/skip decision on.
    pub host_cores: usize,
}

impl SweepLane {
    /// End-to-end sweep speedup over per-cell capture — the gate.
    #[must_use]
    pub fn speedup_vs_percell_capture(&self) -> f64 {
        self.percell_secs / self.sweep_secs
    }

    /// Sweep speedup over plain per-cell execution-driven runs.
    #[must_use]
    pub fn speedup_vs_direct(&self) -> f64 {
        self.direct_secs / self.sweep_secs
    }

    /// Batched replay throughput, in trace ops per second.
    #[must_use]
    pub fn replay_ops_per_sec(&self) -> f64 {
        self.replay_ops as f64 / self.replay_secs
    }

    /// Batched-vs-per-op replay speedup — host-independent (both sides
    /// run on the same machine in the same process), so it is the
    /// number the CI regression gate compares across commits. "Per-op"
    /// is live dispatch through the public API (`live_dispatch`),
    /// the stand-in for the retired per-op replay path.
    #[must_use]
    pub fn batched_speedup_vs_perop(&self) -> f64 {
        self.perop_replay_secs / self.replay_secs
    }

    /// Pooled-batched-vs-serial-batched replay speedup. Below 1.0 on
    /// hosts where window scan + chunk handoff cost more than the
    /// fan-out wins back (any single-core container); recorded so
    /// multi-core hosts have a trajectory.
    #[must_use]
    pub fn pooled_speedup_vs_batched(&self) -> f64 {
        self.replay_secs / self.pooled_replay_secs
    }

    /// Shared-log-vs-serial-batched replay speedup (same caveats as
    /// [`pooled_speedup_vs_batched`](Self::pooled_speedup_vs_batched)).
    #[must_use]
    pub fn log_speedup_vs_batched(&self) -> f64 {
        self.replay_secs / self.log_replay_secs
    }

    /// Trace memory compression: flat `TraceOp`-array bytes over
    /// encoded-store bytes (the ≥ 4× acceptance metric).
    #[must_use]
    pub fn trace_footprint_ratio(&self) -> f64 {
        if self.trace_encoded_bytes == 0 {
            1.0
        } else {
            self.trace_flat_bytes as f64 / self.trace_encoded_bytes as f64
        }
    }

    /// Renders the report as JSON (hand-rolled: the workspace carries no
    /// serialization dependency).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let apps: Vec<String> = self.apps.iter().map(|a| format!("\"{a}\"")).collect();
        let _ = writeln!(s, "  \"apps\": [{}],", apps.join(", "));
        let _ = writeln!(s, "  \"configs\": {},", self.configs);
        let _ = writeln!(s, "  \"cells\": {},", self.apps.len() * self.configs);
        let _ = writeln!(s, "  \"captured_ops\": {},", self.captured_ops);
        let _ = writeln!(s, "  \"trace_flat_bytes\": {},", self.trace_flat_bytes);
        let _ = writeln!(
            s,
            "  \"trace_encoded_bytes\": {},",
            self.trace_encoded_bytes
        );
        let _ = writeln!(
            s,
            "  \"trace_footprint_ratio\": {:.2},",
            self.trace_footprint_ratio()
        );
        let _ = writeln!(
            s,
            "  \"interning_ratio\": {:.3},",
            self.trace_interning_ratio
        );
        let _ = writeln!(s, "  \"sweep_secs\": {:.4},", self.sweep_secs);
        let _ = writeln!(s, "  \"percell_capture_secs\": {:.4},", self.percell_secs);
        let _ = writeln!(s, "  \"direct_run_secs\": {:.4},", self.direct_secs);
        let _ = writeln!(
            s,
            "  \"speedup_vs_percell_capture\": {:.2},",
            self.speedup_vs_percell_capture()
        );
        let _ = writeln!(
            s,
            "  \"speedup_vs_direct_run\": {:.2},",
            self.speedup_vs_direct()
        );
        let _ = writeln!(s, "  \"replay_ops\": {},", self.replay_ops);
        let _ = writeln!(s, "  \"replay_secs\": {:.4},", self.replay_secs);
        let _ = writeln!(s, "  \"perop_replay_secs\": {:.4},", self.perop_replay_secs);
        let _ = writeln!(
            s,
            "  \"replay_ops_per_sec\": {:.0},",
            self.replay_ops_per_sec()
        );
        let _ = writeln!(
            s,
            "  \"batched_speedup_vs_perop\": {:.3},",
            self.batched_speedup_vs_perop()
        );
        let _ = writeln!(s, "  \"pooled_shards\": {},", self.pooled_shards);
        let _ = writeln!(
            s,
            "  \"pooled_replay_secs\": {:.4},",
            self.pooled_replay_secs
        );
        let _ = writeln!(
            s,
            "  \"pooled_speedup_vs_batched\": {:.3},",
            self.pooled_speedup_vs_batched()
        );
        let _ = writeln!(s, "  \"log_replay_secs\": {:.4},", self.log_replay_secs);
        let _ = writeln!(
            s,
            "  \"log_speedup_vs_batched\": {:.3},",
            self.log_speedup_vs_batched()
        );
        let _ = writeln!(s, "  \"host_cores\": {}", self.host_cores);
        s.push('}');
        s
    }

    /// Writes `results/BENCH_sweep.json` (creating the directory) and
    /// echoes the path.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors.
    pub fn emit(&self) {
        crate::save("BENCH_sweep.json", &self.to_json());
    }
}

/// Times `pass` (a full sweep in one of the measured modes) until at
/// least `budget` seconds of work have accumulated, returning seconds
/// per pass.
fn time_passes_for(budget: f64, mut pass: impl FnMut()) -> f64 {
    let mut passes = 0u32;
    let mut total = 0.0f64;
    while total < budget {
        let t0 = Instant::now();
        pass();
        total += t0.elapsed().as_secs_f64();
        passes += 1;
    }
    total / f64::from(passes)
}

/// [`time_passes_for`] with the default ~0.2 s budget.
fn time_passes(pass: impl FnMut()) -> f64 {
    time_passes_for(0.2, pass)
}

/// The encoded store's footprint statistics from one sweep pass.
#[derive(Clone, Copy, Debug)]
struct TraceStats {
    captured_ops: u64,
    flat_bytes: u64,
    encoded_bytes: u64,
    interning_ratio: f64,
}

/// One sweep pass through the trace-once/replay-many driver. Returns
/// the store's footprint statistics.
fn sweep_pass(apps: &[&'static str], configs: &[MachineConfig], scale: Scale) -> TraceStats {
    let mut store = TraceStore::new();
    let mut sink = 0u64;
    for &app in apps {
        let mut w = by_name(app, scale).unwrap_or_else(|| panic!("unknown app {app}"));
        let (id, report) = store.capture(configs[0], &mut w);
        sink ^= report.cycles();
        for &config in &configs[1..] {
            sink ^= run_replayed(&store, id, config).cycles();
        }
    }
    std::hint::black_box(sink);
    TraceStats {
        captured_ops: store.captured_ops(),
        flat_bytes: store.flat_bytes(),
        encoded_bytes: store.encoded_bytes(),
        interning_ratio: store.interning_ratio(),
    }
}

/// One sweep pass with per-cell capture: every cell records its own
/// trace and replays it on a fresh machine.
fn percell_pass(apps: &[&'static str], configs: &[MachineConfig], scale: Scale) {
    let mut sink = 0u64;
    for &app in apps {
        for &config in configs {
            let mut w = by_name(app, scale).unwrap_or_else(|| panic!("unknown app {app}"));
            let (report, trace) = run_traced(config, &mut w);
            let mut machine = Machine::new(config).expect("valid config");
            machine.apply_batch(&trace);
            assert!(report.metrics.replay_eq(&machine.metrics()));
            sink ^= report.cycles();
        }
    }
    std::hint::black_box(sink);
}

/// One sweep pass of plain execution-driven runs.
fn direct_pass(apps: &[&'static str], configs: &[MachineConfig], scale: Scale) {
    let mut sink = 0u64;
    for &app in apps {
        for &config in configs {
            let mut w = by_name(app, scale).unwrap_or_else(|| panic!("unknown app {app}"));
            sink ^= run(config, &mut w).cycles();
        }
    }
    std::hint::black_box(sink);
}

/// Measures the sweep modes and the replay engine on `apps` × `configs`
/// at `scale`.
///
/// # Panics
///
/// Panics if an app is unknown or a configuration is invalid.
#[must_use]
pub fn measure(apps: &[&'static str], configs: &[MachineConfig], scale: Scale) -> SweepLane {
    // One warm-up-and-stats pass outside the timers.
    let stats = sweep_pass(apps, configs, scale);
    let sweep_secs = time_passes(|| {
        let _ = sweep_pass(apps, configs, scale);
    });
    let percell_secs = time_passes(|| percell_pass(apps, configs, scale));
    let direct_secs = time_passes(|| direct_pass(apps, configs, scale));

    // Replay-engine isolation: capture once outside the timers, then
    // time only the non-capture cells — batched (the production path,
    // consuming the store's pre-split run tables) against per-op live
    // dispatch (the stand-in for the retired per-op replay path), on
    // the same streams in the same process, so their ratio is
    // host-independent.
    let mut store = TraceStore::new();
    let ids: Vec<_> = apps
        .iter()
        .map(|&app| {
            let mut w = by_name(app, scale).unwrap_or_else(|| panic!("unknown app {app}"));
            store.capture(configs[0], &mut w).0
        })
        .collect();
    // The two replay lanes feed the CI regression gate, so they get a
    // longer budget than the reporting-only lanes: their *ratio* must
    // be stable against scheduler noise, not just indicative.
    // `replay_serial`, not `run_replayed`: the latter adds a whole
    // sharded self-check replay per cell when `RNUMA_SHARDS>1` is in
    // the environment, which would distort the gated ratio and make
    // the lane asymmetric with the per-op one below.
    let replay_ops = store.captured_ops() * (configs.len() as u64 - 1);
    let replay_secs = time_passes_for(0.6, || {
        let mut sink = 0u64;
        for &id in &ids {
            for &config in &configs[1..] {
                sink ^= store.replay_serial(id, config).cycles();
            }
        }
        std::hint::black_box(sink);
    });
    let perop_replay_secs = time_passes_for(0.6, || {
        let mut sink = 0u64;
        for &id in &ids {
            for &config in &configs[1..] {
                let mut machine = Machine::new(config).expect("valid config");
                store.for_each_batch(id, |ops, _| live_dispatch(&mut machine, ops));
                sink ^= machine.metrics().exec_cycles.0;
            }
        }
        std::hint::black_box(sink);
    });

    // Pooled-batched lane: the same cells through the sharded
    // executor's window buckets and their batched bucket kernel, on a
    // pool that always has workers (`ShardPool::checking`) so the
    // pooled path is actually exercised — which makes this an honest
    // measurement of scan + handoff + kernel even on single-core CI
    // (where it costs more than serial batched replay).
    let pool = ShardPool::checking();
    let pooled_shards = 4usize;
    // Both sharded lanes pin their engine explicitly — the pooled lane
    // to the pipelined engine its committed trajectory was recorded
    // under, the log lane to the shared-log engine — so neither number
    // silently changes meaning with the environment or the default.
    let sharded_pass = |engine: ExecEngine| {
        time_passes_for(0.4, || {
            let mut sink = 0u64;
            for &id in &ids {
                for &config in &configs[1..] {
                    let mut sm =
                        ShardedMachine::with_pool(config, pooled_shards, Arc::clone(&pool))
                            .expect("valid config");
                    sm.set_engine(engine);
                    store.replay_sharded(id, &mut sm);
                    sink ^= sm.metrics().exec_cycles.0;
                }
            }
            std::hint::black_box(sink);
        })
    };
    let pooled_replay_secs = sharded_pass(ExecEngine::Pipeline);
    let log_replay_secs = sharded_pass(ExecEngine::Log);

    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    SweepLane {
        apps: apps.to_vec(),
        configs: configs.len(),
        captured_ops: stats.captured_ops,
        trace_flat_bytes: stats.flat_bytes,
        trace_encoded_bytes: stats.encoded_bytes,
        trace_interning_ratio: stats.interning_ratio,
        sweep_secs,
        percell_secs,
        direct_secs,
        replay_ops,
        replay_secs,
        perop_replay_secs,
        pooled_shards,
        pooled_replay_secs,
        log_replay_secs,
        host_cores,
    }
}

/// Extracts a numeric field from a `BENCH_sweep.json`-style document
/// (flat `"key": number` pairs; no nesting of the queried key). Only
/// matches a key that begins its line (after whitespace or the opening
/// brace), so the same text quoted inside an earlier string value —
/// the baseline file carries a prose `note` — can never be parsed as
/// the field.
#[must_use]
pub fn json_number(doc: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let mut search = 0usize;
    while let Some(rel) = doc[search..].find(&pat) {
        let at = search + rel;
        let line_start = doc[..at].rfind('\n').map_or(0, |p| p + 1);
        if doc[line_start..at]
            .chars()
            .all(|c| c.is_whitespace() || c == '{')
        {
            let rest = doc[at + pat.len()..].trim_start();
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
                .unwrap_or(rest.len());
            return rest[..end].parse().ok();
        }
        search = at + pat.len();
    }
    None
}

/// The committed replay-gate baseline
/// (`crates/bench/baselines/BENCH_sweep.json`), if present.
#[must_use]
pub fn committed_baseline() -> Option<String> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("baselines")
        .join("BENCH_sweep.json");
    std::fs::read_to_string(path).ok()
}

/// The CI regression gate: compares the lane's batched-vs-per-op replay
/// speedup against the committed baseline's. Returns `Err` with a
/// human-readable message when the current run regresses by more than
/// 10% (the host-independent ratio makes this meaningful across
/// machines); `Ok` carries the comparison line to print.
///
/// # Errors
///
/// Returns `Err` when the measured speedup falls more than 10% below
/// the committed baseline, or when the baseline document does not
/// record one (a disarmed gate must fail loudly, not skip silently).
pub fn gate_against(lane: &SweepLane, baseline_doc: &str) -> Result<String, String> {
    let Some(baseline) = json_number(baseline_doc, "batched_speedup_vs_perop") else {
        return Err(
            "replay gate: baseline records no batched_speedup_vs_perop — the gate cannot arm"
                .into(),
        );
    };
    let current = lane.batched_speedup_vs_perop();
    let floor = baseline * 0.9;
    if current < floor {
        Err(format!(
            "replay gate: FAIL — batched-vs-per-op speedup {current:.3}x fell more than 10% \
             below the recorded baseline {baseline:.3}x (floor {floor:.3}x)"
        ))
    } else {
        Ok(format!(
            "replay gate: PASS ({current:.3}x vs recorded baseline {baseline:.3}x, floor {floor:.3}x)"
        ))
    }
}

/// How many hardware threads the pooled gate needs before its ≥ 1.0×
/// requirement arms: with 4 shard lanes (coordinator + 3 workers), a
/// host with fewer cores time-slices the pool and the pooled lane
/// measures scheduler contention, not the executor.
pub const POOLED_GATE_MIN_CORES: usize = 4;

/// The pooled-executor gate: on a host with at least
/// [`POOLED_GATE_MIN_CORES`] hardware threads, **both** pooled replay
/// lanes — the pipelined engine and the shared-log engine
/// (`RNUMA_EXEC=log`) — must be at least as fast as the serial batched
/// engine (speedup ≥ 1.0×). On smaller hosts the requirement cannot
/// meaningfully arm, so the gate *skips loudly* — the returned `Ok`
/// line says SKIPPED and why, and callers print it, so an
/// under-provisioned CI runner is visible in the log rather than
/// silently green.
///
/// # Errors
///
/// Returns `Err` when the host has enough cores and either sharded
/// lane fell below 1.0× of the serial batched engine.
pub fn pooled_gate(lane: &SweepLane) -> Result<String, String> {
    let cores = lane.host_cores;
    let (pooled, log) = (
        lane.pooled_speedup_vs_batched(),
        lane.log_speedup_vs_batched(),
    );
    if cores < POOLED_GATE_MIN_CORES {
        return Ok(format!(
            "pooled gate: SKIPPED — {cores} core(s) < {POOLED_GATE_MIN_CORES}; the ≥1.0x \
             requirement arms only on multi-core hosts (measured {pooled:.3}x pipelined, \
             {log:.3}x log for the record)"
        ));
    }
    let mut failures = Vec::new();
    if pooled < 1.0 {
        failures.push(format!("pipelined pooled replay {pooled:.3}x"));
    }
    if log < 1.0 {
        failures.push(format!("log-engine pooled replay {log:.3}x"));
    }
    if failures.is_empty() {
        Ok(format!(
            "pooled gate: PASS — pipelined {pooled:.3}x and log {log:.3}x vs serial batched \
             on {cores} cores ({} shards)",
            lane.pooled_shards
        ))
    } else {
        Err(format!(
            "pooled gate: FAIL — {} fell below 1.0x of the serial batched engine on a \
             {cores}-core host ({} shards)",
            failures.join(" and "),
            lane.pooled_shards
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnuma::config::Protocol;

    fn lane() -> SweepLane {
        SweepLane {
            apps: vec!["em3d", "moldyn"],
            configs: 4,
            captured_ops: 1000,
            trace_flat_bytes: 24_000,
            trace_encoded_bytes: 3_000,
            trace_interning_ratio: 0.5,
            sweep_secs: 1.0,
            percell_secs: 2.0,
            direct_secs: 1.5,
            replay_ops: 3000,
            replay_secs: 0.5,
            perop_replay_secs: 0.75,
            pooled_shards: 4,
            pooled_replay_secs: 0.625,
            log_replay_secs: 0.625,
            host_cores: 8,
        }
    }

    #[test]
    fn json_shape_is_sane() {
        let lane = lane();
        let json = lane.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"cells\": 8"));
        assert!(json.contains("\"speedup_vs_percell_capture\": 2.00"));
        assert!(json.contains("\"speedup_vs_direct_run\": 1.50"));
        assert!(json.contains("\"replay_ops_per_sec\": 6000"));
        assert!(json.contains("\"batched_speedup_vs_perop\": 1.500"));
        assert!(json.contains("\"pooled_shards\": 4"));
        assert!(json.contains("\"pooled_speedup_vs_batched\": 0.800"));
        assert!(json.contains("\"log_replay_secs\": 0.6250"));
        assert!(json.contains("\"log_speedup_vs_batched\": 0.800"));
        assert!(json.contains("\"host_cores\": 8"));
        assert!(json.contains("\"trace_flat_bytes\": 24000"));
        assert!(json.contains("\"trace_footprint_ratio\": 8.00"));
        assert!(json.contains("\"interning_ratio\": 0.500"));
        assert!((lane.trace_footprint_ratio() - 8.0).abs() < 1e-12);
        // The emitted document round-trips through the gate parser.
        assert_eq!(json_number(&json, "batched_speedup_vs_perop"), Some(1.5));
    }

    #[test]
    fn json_number_parses_flat_fields() {
        let doc = "{\n  \"a\": 12,\n  \"b\": 0.125,\n  \"c\": -3.5\n}";
        assert_eq!(json_number(doc, "a"), Some(12.0));
        assert_eq!(json_number(doc, "b"), Some(0.125));
        assert_eq!(json_number(doc, "c"), Some(-3.5));
        assert_eq!(json_number(doc, "missing"), None);
        // Single-line documents still parse (the key follows `{`).
        assert_eq!(json_number("{\"a\": 7}", "a"), Some(7.0));
    }

    #[test]
    fn json_number_ignores_keys_quoted_inside_string_values() {
        // A prose note that quotes the field in JSON form must not be
        // parsed as the field — only the real line-leading key counts.
        let doc = "{\n  \"note\": \"set \\\"gate\\\": 9.9 to tune\",\n  \"gate\": 1.25\n}";
        assert_eq!(json_number(doc, "gate"), Some(1.25));
        let noteonly = "{\n  \"note\": \"mentions \\\"gate\\\": 9.9 only\"\n}";
        assert_eq!(json_number(noteonly, "gate"), None);
    }

    #[test]
    fn gate_passes_within_ten_percent_and_fails_below() {
        let lane = lane(); // 1.5x batched-vs-per-op
        assert!(gate_against(&lane, "{\"batched_speedup_vs_perop\": 1.55}").is_ok());
        assert!(gate_against(&lane, "{\"batched_speedup_vs_perop\": 1.666}").is_ok());
        assert!(gate_against(&lane, "{\"batched_speedup_vs_perop\": 1.7}").is_err());
        // A baseline without the field is a disarmed gate: an error,
        // never a silent skip.
        assert!(gate_against(&lane, "{}").is_err());
    }

    #[test]
    fn pooled_gate_arms_on_multicore_and_skips_loudly_below() {
        // Armed and passing: both sharded lanes ≥ 1.0x on a 4-core host.
        let mut fast = lane();
        fast.pooled_replay_secs = 0.4; // 1.25x vs replay_secs = 0.5
        fast.log_replay_secs = 0.25; // 2.0x
        fast.host_cores = 4;
        let verdict = pooled_gate(&fast).expect("1.25x on 4 cores must pass");
        assert!(verdict.contains("PASS"), "{verdict}");
        assert!(verdict.contains("1.250x"), "{verdict}");
        assert!(verdict.contains("2.000x"), "{verdict}");

        // Armed and failing: the fixture's 0.8x (both lanes) on a
        // multi-core host — the message names both offenders.
        let mut slow = lane();
        slow.host_cores = 8;
        let err = pooled_gate(&slow).expect_err("0.8x on 8 cores must fail");
        assert!(err.contains("FAIL"), "{err}");
        assert!(err.contains("pipelined pooled replay 0.800x"), "{err}");
        assert!(err.contains("log-engine pooled replay 0.800x"), "{err}");

        // A regression in the log lane alone still fails the gate.
        let mut log_only = lane();
        log_only.pooled_replay_secs = 0.4;
        log_only.host_cores = 8;
        let err = pooled_gate(&log_only).expect_err("slow log lane must fail");
        assert!(err.contains("log-engine pooled replay 0.800x"), "{err}");
        assert!(!err.contains("pipelined pooled replay"), "{err}");

        // Under-provisioned host: skipped, but loudly — the verdict
        // names the skip, the core count, and records both ratios.
        let mut tiny = lane();
        tiny.host_cores = 1;
        let verdict = pooled_gate(&tiny).expect("1 core must skip, not fail");
        assert!(verdict.contains("SKIPPED"), "{verdict}");
        assert!(verdict.contains("1 core(s)"), "{verdict}");
        assert!(verdict.contains("0.800x pipelined"), "{verdict}");
        assert!(verdict.contains("0.800x log"), "{verdict}");

        // Exactly at the boundary the requirement is armed.
        let mut edge = lane();
        edge.host_cores = POOLED_GATE_MIN_CORES;
        assert!(
            pooled_gate(&edge).is_err(),
            "0.8x at the core floor must arm and fail"
        );
    }

    #[test]
    fn sweep_pass_produces_trace_stats() {
        let configs = [
            MachineConfig::paper_base(Protocol::ideal()),
            MachineConfig::paper_base(Protocol::paper_rnuma()),
        ];
        let stats = sweep_pass(&["em3d"], &configs, Scale::Tiny);
        assert!(stats.captured_ops > 0);
        assert!(
            stats.encoded_bytes * 4 <= stats.flat_bytes,
            "encoding must compress ≥ 4× even at tiny scale \
             ({} flat vs {} encoded bytes)",
            stats.flat_bytes,
            stats.encoded_bytes
        );
        assert!(stats.interning_ratio <= 1.0);
    }
}
