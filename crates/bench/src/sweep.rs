//! Sweep-throughput measurement and the `BENCH_sweep.json` emitter.
//!
//! The trace-once/replay-many driver exists to amortize trace capture
//! across a configuration sweep (see `docs/SWEEP.md`). This lane
//! measures exactly that amortization on real application kernels:
//!
//! * **sweep** — the driver itself: capture each application's stream
//!   once on the baseline configuration, intern it, replay it on every
//!   other configuration;
//! * **per-cell capture** — the same replay infrastructure *without*
//!   the shared store: every cell captures its own trace and replays
//!   it (what `RNUMA_SHARDS`-style self-checking cells cost, and what
//!   a sweep without the store would pay);
//! * **direct** — plain execution-driven `run` per cell, for reference
//!   (it pays workload generation per cell but never materializes a
//!   trace).
//!
//! Results land in `results/BENCH_sweep.json` so subsequent PRs have a
//! sweep-throughput trajectory; the acceptance gate is the
//! sweep-vs-per-cell-capture speedup.

use rnuma::config::MachineConfig;
use rnuma::experiment::{run, run_replayed, run_traced, TraceStore};
use rnuma::Machine;
use rnuma_workloads::{by_name, Scale};
use std::fmt::Write as _;
use std::time::Instant;

/// Everything `BENCH_sweep.json` records.
#[derive(Clone, Debug)]
pub struct SweepLane {
    /// Applications measured.
    pub apps: Vec<&'static str>,
    /// Configurations per application (capture amortized across these).
    pub configs: usize,
    /// Total operations captured per sweep pass (before interning).
    pub captured_ops: u64,
    /// Operations resident in the interned arena per sweep pass.
    pub stored_ops: u64,
    /// Seconds per full sweep through the trace-once driver.
    pub sweep_secs: f64,
    /// Seconds per full sweep with per-cell capture + replay.
    pub percell_secs: f64,
    /// Seconds per full sweep of plain execution-driven runs.
    pub direct_secs: f64,
}

impl SweepLane {
    /// End-to-end sweep speedup over per-cell capture — the gate.
    #[must_use]
    pub fn speedup_vs_percell_capture(&self) -> f64 {
        self.percell_secs / self.sweep_secs
    }

    /// Sweep speedup over plain per-cell execution-driven runs.
    #[must_use]
    pub fn speedup_vs_direct(&self) -> f64 {
        self.direct_secs / self.sweep_secs
    }

    /// Capture-stream compression from segment interning (1.0 = none).
    #[must_use]
    pub fn interning_ratio(&self) -> f64 {
        if self.stored_ops == 0 {
            1.0
        } else {
            self.captured_ops as f64 / self.stored_ops as f64
        }
    }

    /// Renders the report as JSON (hand-rolled: the workspace carries no
    /// serialization dependency).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let apps: Vec<String> = self.apps.iter().map(|a| format!("\"{a}\"")).collect();
        let _ = writeln!(s, "  \"apps\": [{}],", apps.join(", "));
        let _ = writeln!(s, "  \"configs\": {},", self.configs);
        let _ = writeln!(s, "  \"cells\": {},", self.apps.len() * self.configs);
        let _ = writeln!(s, "  \"captured_ops\": {},", self.captured_ops);
        let _ = writeln!(s, "  \"stored_ops\": {},", self.stored_ops);
        let _ = writeln!(s, "  \"interning_ratio\": {:.3},", self.interning_ratio());
        let _ = writeln!(s, "  \"sweep_secs\": {:.4},", self.sweep_secs);
        let _ = writeln!(s, "  \"percell_capture_secs\": {:.4},", self.percell_secs);
        let _ = writeln!(s, "  \"direct_run_secs\": {:.4},", self.direct_secs);
        let _ = writeln!(
            s,
            "  \"speedup_vs_percell_capture\": {:.2},",
            self.speedup_vs_percell_capture()
        );
        let _ = writeln!(
            s,
            "  \"speedup_vs_direct_run\": {:.2}",
            self.speedup_vs_direct()
        );
        s.push('}');
        s
    }

    /// Writes `results/BENCH_sweep.json` (creating the directory) and
    /// echoes the path.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors.
    pub fn emit(&self) {
        crate::save("BENCH_sweep.json", &self.to_json());
    }
}

/// Times `pass` (a full sweep in one of the three modes) until at least
/// ~0.2 s of work has accumulated, returning seconds per pass.
fn time_passes(mut pass: impl FnMut()) -> f64 {
    let mut passes = 0u32;
    let mut total = 0.0f64;
    while total < 0.2 {
        let t0 = Instant::now();
        pass();
        total += t0.elapsed().as_secs_f64();
        passes += 1;
    }
    total / f64::from(passes)
}

/// One sweep pass through the trace-once/replay-many driver. Returns
/// the store's interning statistics.
fn sweep_pass(apps: &[&'static str], configs: &[MachineConfig], scale: Scale) -> (u64, u64) {
    let mut store = TraceStore::new();
    let mut sink = 0u64;
    for &app in apps {
        let mut w = by_name(app, scale).unwrap_or_else(|| panic!("unknown app {app}"));
        let (id, report) = store.capture(configs[0], &mut w);
        sink ^= report.cycles();
        for &config in &configs[1..] {
            sink ^= run_replayed(&store, id, config).cycles();
        }
    }
    std::hint::black_box(sink);
    (store.captured_ops(), store.stored_ops())
}

/// One sweep pass with per-cell capture: every cell records its own
/// trace and replays it on a fresh machine.
fn percell_pass(apps: &[&'static str], configs: &[MachineConfig], scale: Scale) {
    let mut sink = 0u64;
    for &app in apps {
        for &config in configs {
            let mut w = by_name(app, scale).unwrap_or_else(|| panic!("unknown app {app}"));
            let (report, trace) = run_traced(config, &mut w);
            let mut machine = Machine::new(config).expect("valid config");
            machine.replay(&trace);
            assert!(report.metrics.replay_eq(&machine.metrics()));
            sink ^= report.cycles();
        }
    }
    std::hint::black_box(sink);
}

/// One sweep pass of plain execution-driven runs.
fn direct_pass(apps: &[&'static str], configs: &[MachineConfig], scale: Scale) {
    let mut sink = 0u64;
    for &app in apps {
        for &config in configs {
            let mut w = by_name(app, scale).unwrap_or_else(|| panic!("unknown app {app}"));
            sink ^= run(config, &mut w).cycles();
        }
    }
    std::hint::black_box(sink);
}

/// Measures the three sweep modes on `apps` × `configs` at `scale`.
///
/// # Panics
///
/// Panics if an app is unknown or a configuration is invalid.
#[must_use]
pub fn measure(apps: &[&'static str], configs: &[MachineConfig], scale: Scale) -> SweepLane {
    // One warm-up-and-stats pass outside the timers.
    let (captured_ops, stored_ops) = sweep_pass(apps, configs, scale);
    let sweep_secs = time_passes(|| {
        let _ = sweep_pass(apps, configs, scale);
    });
    let percell_secs = time_passes(|| percell_pass(apps, configs, scale));
    let direct_secs = time_passes(|| direct_pass(apps, configs, scale));
    SweepLane {
        apps: apps.to_vec(),
        configs: configs.len(),
        captured_ops,
        stored_ops,
        sweep_secs,
        percell_secs,
        direct_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnuma::config::Protocol;

    #[test]
    fn json_shape_is_sane() {
        let lane = SweepLane {
            apps: vec!["em3d", "moldyn"],
            configs: 4,
            captured_ops: 1000,
            stored_ops: 800,
            sweep_secs: 1.0,
            percell_secs: 2.0,
            direct_secs: 1.5,
        };
        let json = lane.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"cells\": 8"));
        assert!(json.contains("\"speedup_vs_percell_capture\": 2.00"));
        assert!(json.contains("\"speedup_vs_direct_run\": 1.50"));
        assert!((lane.interning_ratio() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn sweep_pass_produces_trace_stats() {
        let configs = [
            MachineConfig::paper_base(Protocol::ideal()),
            MachineConfig::paper_base(Protocol::paper_rnuma()),
        ];
        let (captured, stored) = sweep_pass(&["em3d"], &configs, Scale::Tiny);
        assert!(captured > 0);
        assert!(stored > 0 && stored <= captured);
    }
}
