//! Hot-path throughput measurement and the `BENCH_hotpath.json` emitter.
//!
//! Simulator throughput — references retired per wall-clock second
//! through [`rnuma::machine::Machine::access`] — bounds every experiment
//! in this workspace, so each optimization PR needs a number to beat.
//! This module provides:
//!
//! * a deterministic synthetic reference stream that exercises the full
//!   walk (L1 hits, local fills, block/page-cache hits, remote
//!   fetches);
//! * per-protocol `refs/sec` measurement of the assembled machine;
//! * a microbenchmark of the translation structures themselves — the
//!   open-addressed [`rnuma_mem::fxmap::FxMap64`] against the
//!   `std::collections::HashMap` it replaced, on the same key stream —
//!   which isolates the table swap's speedup;
//! * [`HotpathReport::emit`], which records everything in
//!   `results/BENCH_hotpath.json` so subsequent PRs have a perf
//!   trajectory.

use rnuma::config::{MachineConfig, Protocol};
use rnuma::machine::Machine;
use rnuma::shard::{ShardedMachine, TraceOp};
use rnuma_mem::addr::{CpuId, Va};
use rnuma_mem::fxmap::FxMap64;
use rnuma_sim::DetRng;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

/// One synthetic memory reference.
pub type Ref = (CpuId, Va, bool);

/// Generates a deterministic reference stream with the locality mix of
/// the paper's applications: mostly streaming within a working set of
/// shared pages, ~10% writes, CPU switched every few references so
/// cross-node sharing and refetches occur.
#[must_use]
pub fn synth_stream(refs: usize, pages: u64, cpus: u16) -> Vec<Ref> {
    let mut rng = DetRng::seeded(0x5EED_CAFE);
    let mut out = Vec::with_capacity(refs);
    let mut cpu = CpuId(0);
    let mut page = 0u64;
    let mut offset = 0u64;
    for i in 0..refs {
        // Re-home the stream periodically: new CPU, new page.
        if i % 24 == 0 {
            cpu = CpuId(rng.range_u64(0, u64::from(cpus)) as u16);
            page = rng.range_u64(0, pages);
            offset = rng.range_u64(0, 128) * 32;
        } else {
            // Stride within the page; wraps keep the VA on-page.
            offset = (offset + 32) % 4096;
        }
        let write = rng.chance(0.1);
        out.push((cpu, Va(page * 4096 + offset), write));
    }
    out
}

/// Replays `stream` on a fresh machine and reports references per
/// wall-clock second. The replay repeats until at least ~0.2 s of work
/// has been timed, so short streams still measure stably.
///
/// # Panics
///
/// Panics if the stream is empty or the configuration is invalid.
#[must_use]
pub fn machine_refs_per_sec(protocol: Protocol, stream: &[Ref]) -> f64 {
    assert!(!stream.is_empty(), "empty reference stream");
    let mut total_refs = 0u64;
    let mut total_secs = 0.0f64;
    while total_secs < 0.2 {
        let mut machine =
            Machine::new(MachineConfig::paper_base(protocol)).expect("valid paper config");
        let t0 = Instant::now();
        for &(cpu, va, write) in stream {
            machine.access(cpu, va, write);
        }
        total_secs += t0.elapsed().as_secs_f64();
        total_refs += stream.len() as u64;
        // Keep the machine's final state observable.
        std::hint::black_box(machine.metrics().l1_hits);
    }
    total_refs as f64 / total_secs
}

/// MRU fast-path hit rate of one replay of `stream` (hits per L1 miss).
///
/// # Panics
///
/// Panics if the configuration is invalid.
#[must_use]
pub fn mru_hit_rate(protocol: Protocol, stream: &[Ref]) -> f64 {
    let mut machine =
        Machine::new(MachineConfig::paper_base(protocol)).expect("valid paper config");
    for &(cpu, va, write) in stream {
        machine.access(cpu, va, write);
    }
    let m = machine.metrics();
    if m.l1_misses == 0 {
        0.0
    } else {
        m.mru_translation_hits as f64 / m.l1_misses as f64
    }
}

/// ns-per-lookup comparison of `std::collections::HashMap` (the old hot
/// path) against [`FxMap64`] (the new one) on `keys`: each map is
/// pre-populated with the key set, then probed in stream order.
///
/// Returns `(hashmap_ns, fxmap_ns)`.
///
/// # Panics
///
/// Panics if `keys` is empty.
#[must_use]
pub fn lookup_ns_comparison(keys: &[u64]) -> (f64, f64) {
    assert!(!keys.is_empty(), "empty key stream");
    let mut std_map: HashMap<u64, u64> = HashMap::new();
    let mut fx_map: FxMap64<u64> = FxMap64::new();
    for &k in keys {
        std_map.insert(k, k ^ 1);
        fx_map.insert(k, k ^ 1);
    }
    let time_probes = |probe: &mut dyn FnMut(u64) -> u64| -> f64 {
        // Warm up, then time enough rounds for a stable figure.
        let mut acc = 0u64;
        for &k in keys {
            acc = acc.wrapping_add(probe(k));
        }
        let rounds = (2_000_000 / keys.len()).max(1);
        let t0 = Instant::now();
        for _ in 0..rounds {
            for &k in keys {
                acc = acc.wrapping_add(probe(k));
            }
        }
        let elapsed = t0.elapsed().as_nanos() as f64;
        std::hint::black_box(acc);
        elapsed / (rounds * keys.len()) as f64
    };
    let std_ns = time_probes(&mut |k| std_map.get(&k).copied().unwrap_or(0));
    let fx_ns = time_probes(&mut |k| fx_map.get(k).copied().unwrap_or(0));
    (std_ns, fx_ns)
}

/// Shard count of the `sharded` lane: four shards of two nodes each on
/// the paper's eight-node machine, so each CPU's partner node (for
/// in-shard remote traffic) shares its shard.
pub const SHARDED_LANE_SHARDS: usize = 4;

/// Generates a node-partitioned trace with the locality first-touch
/// placement creates: each CPU streams over pages in its own node's
/// region, with one reference in eight going to the *partner* node of
/// its two-node shard (in-shard remote traffic through the full
/// protocol walk), and a barrier every few thousand references.
///
/// Every access is provably shard-contained under the
/// [`SHARDED_LANE_SHARDS`]-way partition, so this measures the sharded
/// executor's fan-out rather than its serial fallback.
#[must_use]
pub fn synth_partitioned_trace(refs: usize, pages_per_node: u64) -> Vec<TraceOp> {
    let mut rng = DetRng::seeded(0x5EED_D00D);
    let mut ops = Vec::with_capacity(refs + refs / 4096 + 1);
    ops.push(TraceOp::ArmFirstTouch);
    let region = |node: u64| (1 + node) << 30;
    // Home each node's region by a first touch from its own CPU 0.
    for node in 0..8u64 {
        for p in 0..pages_per_node {
            ops.push(TraceOp::Access {
                cpu: CpuId((node * 4) as u16),
                va: Va(region(node) + p * 4096),
                write: true,
            });
        }
    }
    let mut offsets = [0u64; 32];
    for i in 0..refs {
        let cpu = (i % 32) as u64;
        let node = cpu / 4;
        // 1 in 8 references goes to the shard partner's region.
        let target = if i % 8 == 5 { node ^ 1 } else { node };
        let off = &mut offsets[cpu as usize];
        *off = (*off + 32) % (pages_per_node * 4096);
        let write = target == node && rng.chance(0.1);
        ops.push(TraceOp::Access {
            cpu: CpuId(cpu as u16),
            va: Va(region(target) + *off),
            write,
        });
        if i % 16384 == 16383 {
            ops.push(TraceOp::Barrier);
        }
    }
    ops
}

/// The `sharded` lane: serial batched replay (`Machine::apply_batch`)
/// vs. pooled-batched sharded replay (`ShardedMachine`, whose parallel
/// windows execute their buckets through the batched run-table kernel)
/// of the same partitioned trace.
#[derive(Clone, Debug)]
pub struct ShardedLane {
    /// Shards used ([`SHARDED_LANE_SHARDS`]).
    pub shards: usize,
    /// References in the trace (excluding barriers/arm ops).
    pub trace_refs: usize,
    /// Serial batched `Machine::apply_batch` replay throughput.
    pub serial_refs_per_sec: f64,
    /// Pooled-batched `ShardedMachine` replay throughput.
    pub sharded_refs_per_sec: f64,
}

impl ShardedLane {
    /// Sharded-over-serial speedup.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.sharded_refs_per_sec / self.serial_refs_per_sec
    }
}

fn count_refs(ops: &[TraceOp]) -> usize {
    ops.iter()
        .filter(|op| matches!(op, TraceOp::Access { .. }))
        .count()
}

fn time_replays(refs: usize, mut replay: impl FnMut()) -> f64 {
    let mut total_refs = 0u64;
    let mut total_secs = 0.0f64;
    while total_secs < 0.2 {
        let t0 = Instant::now();
        replay();
        total_secs += t0.elapsed().as_secs_f64();
        total_refs += refs as u64;
    }
    total_refs as f64 / total_secs
}

/// Measures the sharded lane on `protocol`: replays the same
/// partitioned trace through the serial batched engine and through a
/// [`ShardedMachine`] on the shared worker pool (pooled windows
/// executing their buckets through the batched run-table kernel),
/// verifying bit-identical metrics while timing both. On a single-core
/// host the shared pool has no workers, so the lane measures the
/// executor's inline fallback (~1.0x serial) rather than
/// thread-handoff cost.
///
/// # Panics
///
/// Panics if the configuration is invalid — or if the sharded replay
/// diverges from the serial one, which would be an executor bug.
#[must_use]
pub fn sharded_lane(protocol: Protocol, trace_refs: usize) -> ShardedLane {
    let config = MachineConfig::paper_base(protocol);
    let ops = synth_partitioned_trace(trace_refs, 32);
    let refs = count_refs(&ops);

    // Self-check once before timing: the lane must be exact.
    let mut serial = Machine::new(config).expect("valid paper config");
    serial.apply_batch(&ops);
    let mut sharded = ShardedMachine::new(config, SHARDED_LANE_SHARDS).expect("valid paper config");
    sharded.run_trace(&ops);
    assert!(
        serial.metrics().replay_eq(&sharded.metrics()),
        "sharded bench lane diverged from serial"
    );

    let serial_rps = time_replays(refs, || {
        let mut m = Machine::new(config).expect("valid paper config");
        m.apply_batch(&ops);
        std::hint::black_box(m.metrics().l1_hits);
    });
    let sharded_rps = time_replays(refs, || {
        let mut m = ShardedMachine::new(config, SHARDED_LANE_SHARDS).expect("valid paper config");
        m.run_trace(&ops);
        std::hint::black_box(m.metrics().l1_hits);
    });
    ShardedLane {
        shards: SHARDED_LANE_SHARDS,
        trace_refs: refs,
        serial_refs_per_sec: serial_rps,
        sharded_refs_per_sec: sharded_rps,
    }
}

/// One protocol's measured simulator throughput.
#[derive(Clone, Debug)]
pub struct ProtocolThroughput {
    /// Protocol label ("ideal", "CC-NUMA", ...).
    pub label: &'static str,
    /// References retired per wall-clock second.
    pub refs_per_sec: f64,
}

/// Everything `BENCH_hotpath.json` records.
#[derive(Clone, Debug)]
pub struct HotpathReport {
    /// References in the synthetic stream.
    pub stream_refs: usize,
    /// Per-protocol machine throughput.
    pub protocols: Vec<ProtocolThroughput>,
    /// ns/lookup through `std::collections::HashMap` (old hot path).
    pub hashmap_ns_per_lookup: f64,
    /// ns/lookup through the open-addressed `FxMap` (new hot path).
    pub fxmap_ns_per_lookup: f64,
    /// MRU translation fast-path hit rate per L1 miss (R-NUMA run).
    pub mru_hit_rate: f64,
    /// The sharded execution lane (R-NUMA partitioned trace), when
    /// measured.
    pub sharded: Option<ShardedLane>,
}

impl HotpathReport {
    /// Table-lookup speedup of the new hot path over the HashMap
    /// baseline.
    #[must_use]
    pub fn lookup_speedup(&self) -> f64 {
        self.hashmap_ns_per_lookup / self.fxmap_ns_per_lookup
    }

    /// Renders the report as JSON (hand-rolled: the workspace carries no
    /// serialization dependency).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"stream_refs\": {},", self.stream_refs);
        let _ = writeln!(s, "  \"refs_per_sec\": {{");
        for (i, p) in self.protocols.iter().enumerate() {
            let comma = if i + 1 < self.protocols.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(s, "    \"{}\": {:.0}{comma}", p.label, p.refs_per_sec);
        }
        let _ = writeln!(s, "  }},");
        let _ = writeln!(
            s,
            "  \"hashmap_ns_per_lookup\": {:.2},",
            self.hashmap_ns_per_lookup
        );
        let _ = writeln!(
            s,
            "  \"fxmap_ns_per_lookup\": {:.2},",
            self.fxmap_ns_per_lookup
        );
        let _ = writeln!(s, "  \"lookup_speedup\": {:.2},", self.lookup_speedup());
        match &self.sharded {
            None => {
                let _ = writeln!(s, "  \"mru_hit_rate\": {:.4}", self.mru_hit_rate);
            }
            Some(lane) => {
                let _ = writeln!(s, "  \"mru_hit_rate\": {:.4},", self.mru_hit_rate);
                let _ = writeln!(s, "  \"sharded\": {{");
                let _ = writeln!(s, "    \"shards\": {},", lane.shards);
                let _ = writeln!(s, "    \"trace_refs\": {},", lane.trace_refs);
                let _ = writeln!(
                    s,
                    "    \"serial_refs_per_sec\": {:.0},",
                    lane.serial_refs_per_sec
                );
                let _ = writeln!(
                    s,
                    "    \"sharded_refs_per_sec\": {:.0},",
                    lane.sharded_refs_per_sec
                );
                let _ = writeln!(s, "    \"speedup\": {:.2}", lane.speedup());
                let _ = writeln!(s, "  }}");
            }
        }
        s.push('}');
        s
    }

    /// Writes `results/BENCH_hotpath.json` (creating the directory) and
    /// echoes the path.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors.
    pub fn emit(&self) {
        crate::save("BENCH_hotpath.json", &self.to_json());
    }
}

/// Runs the full hot-path measurement suite.
///
/// # Panics
///
/// Panics if any configuration fails validation.
#[must_use]
pub fn measure(stream_refs: usize) -> HotpathReport {
    // 64 pages × 8 nodes: working set overflows the 128-B R-NUMA block
    // cache (forcing refetches and relocations) but fits the page cache.
    let stream = synth_stream(stream_refs, 64, 32);
    let protocols: [(&'static str, Protocol); 4] = [
        ("ideal", Protocol::ideal()),
        ("CC-NUMA", Protocol::paper_ccnuma()),
        ("S-COMA", Protocol::paper_scoma()),
        ("R-NUMA", Protocol::paper_rnuma()),
    ];
    let throughput = protocols
        .iter()
        .map(|&(label, p)| ProtocolThroughput {
            label,
            refs_per_sec: machine_refs_per_sec(p, &stream),
        })
        .collect();
    // The translation keys the machine actually resolves: page numbers
    // in stream order.
    let keys: Vec<u64> = stream.iter().map(|&(_, va, _)| va.vpage().0).collect();
    let (hashmap_ns, fxmap_ns) = lookup_ns_comparison(&keys);
    HotpathReport {
        stream_refs,
        protocols: throughput,
        hashmap_ns_per_lookup: hashmap_ns,
        fxmap_ns_per_lookup: fxmap_ns,
        mru_hit_rate: mru_hit_rate(Protocol::paper_rnuma(), &stream),
        sharded: Some(sharded_lane(Protocol::paper_rnuma(), 4 * stream_refs)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_in_range() {
        let a = synth_stream(1000, 16, 32);
        let b = synth_stream(1000, 16, 32);
        assert_eq!(a, b);
        assert!(a.iter().all(|&(cpu, va, _)| cpu.0 < 32 && va.0 < 16 * 4096));
    }

    #[test]
    fn machine_replay_produces_throughput() {
        let stream = synth_stream(2000, 8, 32);
        let rps = machine_refs_per_sec(Protocol::paper_ccnuma(), &stream);
        assert!(rps > 0.0 && rps.is_finite());
    }

    #[test]
    fn json_shape_is_sane() {
        let report = HotpathReport {
            stream_refs: 10,
            protocols: vec![ProtocolThroughput {
                label: "ideal",
                refs_per_sec: 1e6,
            }],
            hashmap_ns_per_lookup: 20.0,
            fxmap_ns_per_lookup: 5.0,
            mru_hit_rate: 0.9,
            sharded: None,
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ideal\": 1000000"));
        assert!(json.contains("\"lookup_speedup\": 4.00"));
        assert!((report.lookup_speedup() - 4.0).abs() < 1e-12);
        // With a sharded lane, the JSON gains the nested object.
        let mut with_lane = report.clone();
        with_lane.sharded = Some(ShardedLane {
            shards: 4,
            trace_refs: 1000,
            serial_refs_per_sec: 1e6,
            sharded_refs_per_sec: 2.5e6,
        });
        let json = with_lane.to_json();
        assert!(json.ends_with('}'));
        assert!(json.contains("\"shards\": 4"));
        assert!(json.contains("\"speedup\": 2.50"));
    }

    #[test]
    fn partitioned_trace_is_deterministic_and_partitioned() {
        let a = synth_partitioned_trace(2000, 8);
        let b = synth_partitioned_trace(2000, 8);
        assert_eq!(a, b);
        assert!(matches!(a[0], TraceOp::ArmFirstTouch));
        assert!(count_refs(&a) >= 2000);
    }

    #[test]
    fn sharded_lane_measures_and_self_checks() {
        // Small trace: correctness of the lane plumbing, not the speedup.
        let lane = sharded_lane(Protocol::paper_rnuma(), 4000);
        assert_eq!(lane.shards, SHARDED_LANE_SHARDS);
        assert!(lane.serial_refs_per_sec > 0.0);
        assert!(lane.sharded_refs_per_sec > 0.0);
    }

    #[test]
    fn mru_rate_is_a_fraction() {
        let stream = synth_stream(2000, 8, 32);
        let rate = mru_hit_rate(Protocol::paper_rnuma(), &stream);
        assert!((0.0..=1.0).contains(&rate));
    }
}
