//! Hot-path throughput measurement and the `BENCH_hotpath.json` emitter.
//!
//! Simulator throughput — references retired per wall-clock second
//! through [`rnuma::machine::Machine::access`] — bounds every experiment
//! in this workspace, so each optimization PR needs a number to beat.
//! This module provides:
//!
//! * a deterministic synthetic reference stream that exercises the full
//!   walk (L1 hits, local fills, block/page-cache hits, remote
//!   fetches);
//! * per-protocol `refs/sec` measurement of the assembled machine;
//! * a microbenchmark of the translation structures themselves — the
//!   open-addressed [`rnuma_mem::fxmap::FxMap64`] against the
//!   `std::collections::HashMap` it replaced, on the same key stream —
//!   which isolates the table swap's speedup;
//! * [`HotpathReport::emit`], which records everything in
//!   `results/BENCH_hotpath.json` so subsequent PRs have a perf
//!   trajectory.

use rnuma::config::{MachineConfig, Protocol};
use rnuma::machine::Machine;
use rnuma_mem::addr::{CpuId, Va};
use rnuma_mem::fxmap::FxMap64;
use rnuma_sim::DetRng;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

/// One synthetic memory reference.
pub type Ref = (CpuId, Va, bool);

/// Generates a deterministic reference stream with the locality mix of
/// the paper's applications: mostly streaming within a working set of
/// shared pages, ~10% writes, CPU switched every few references so
/// cross-node sharing and refetches occur.
#[must_use]
pub fn synth_stream(refs: usize, pages: u64, cpus: u16) -> Vec<Ref> {
    let mut rng = DetRng::seeded(0x5EED_CAFE);
    let mut out = Vec::with_capacity(refs);
    let mut cpu = CpuId(0);
    let mut page = 0u64;
    let mut offset = 0u64;
    for i in 0..refs {
        // Re-home the stream periodically: new CPU, new page.
        if i % 24 == 0 {
            cpu = CpuId(rng.range_u64(0, u64::from(cpus)) as u16);
            page = rng.range_u64(0, pages);
            offset = rng.range_u64(0, 128) * 32;
        } else {
            // Stride within the page; wraps keep the VA on-page.
            offset = (offset + 32) % 4096;
        }
        let write = rng.chance(0.1);
        out.push((cpu, Va(page * 4096 + offset), write));
    }
    out
}

/// Replays `stream` on a fresh machine and reports references per
/// wall-clock second. The replay repeats until at least ~0.2 s of work
/// has been timed, so short streams still measure stably.
///
/// # Panics
///
/// Panics if the stream is empty or the configuration is invalid.
#[must_use]
pub fn machine_refs_per_sec(protocol: Protocol, stream: &[Ref]) -> f64 {
    assert!(!stream.is_empty(), "empty reference stream");
    let mut total_refs = 0u64;
    let mut total_secs = 0.0f64;
    while total_secs < 0.2 {
        let mut machine =
            Machine::new(MachineConfig::paper_base(protocol)).expect("valid paper config");
        let t0 = Instant::now();
        for &(cpu, va, write) in stream {
            machine.access(cpu, va, write);
        }
        total_secs += t0.elapsed().as_secs_f64();
        total_refs += stream.len() as u64;
        // Keep the machine's final state observable.
        std::hint::black_box(machine.metrics().l1_hits);
    }
    total_refs as f64 / total_secs
}

/// MRU fast-path hit rate of one replay of `stream` (hits per L1 miss).
///
/// # Panics
///
/// Panics if the configuration is invalid.
#[must_use]
pub fn mru_hit_rate(protocol: Protocol, stream: &[Ref]) -> f64 {
    let mut machine =
        Machine::new(MachineConfig::paper_base(protocol)).expect("valid paper config");
    for &(cpu, va, write) in stream {
        machine.access(cpu, va, write);
    }
    let m = machine.metrics();
    if m.l1_misses == 0 {
        0.0
    } else {
        m.mru_translation_hits as f64 / m.l1_misses as f64
    }
}

/// ns-per-lookup comparison of `std::collections::HashMap` (the old hot
/// path) against [`FxMap64`] (the new one) on `keys`: each map is
/// pre-populated with the key set, then probed in stream order.
///
/// Returns `(hashmap_ns, fxmap_ns)`.
///
/// # Panics
///
/// Panics if `keys` is empty.
#[must_use]
pub fn lookup_ns_comparison(keys: &[u64]) -> (f64, f64) {
    assert!(!keys.is_empty(), "empty key stream");
    let mut std_map: HashMap<u64, u64> = HashMap::new();
    let mut fx_map: FxMap64<u64> = FxMap64::new();
    for &k in keys {
        std_map.insert(k, k ^ 1);
        fx_map.insert(k, k ^ 1);
    }
    let time_probes = |probe: &mut dyn FnMut(u64) -> u64| -> f64 {
        // Warm up, then time enough rounds for a stable figure.
        let mut acc = 0u64;
        for &k in keys {
            acc = acc.wrapping_add(probe(k));
        }
        let rounds = (2_000_000 / keys.len()).max(1);
        let t0 = Instant::now();
        for _ in 0..rounds {
            for &k in keys {
                acc = acc.wrapping_add(probe(k));
            }
        }
        let elapsed = t0.elapsed().as_nanos() as f64;
        std::hint::black_box(acc);
        elapsed / (rounds * keys.len()) as f64
    };
    let std_ns = time_probes(&mut |k| std_map.get(&k).copied().unwrap_or(0));
    let fx_ns = time_probes(&mut |k| fx_map.get(k).copied().unwrap_or(0));
    (std_ns, fx_ns)
}

/// One protocol's measured simulator throughput.
#[derive(Clone, Debug)]
pub struct ProtocolThroughput {
    /// Protocol label ("ideal", "CC-NUMA", ...).
    pub label: &'static str,
    /// References retired per wall-clock second.
    pub refs_per_sec: f64,
}

/// Everything `BENCH_hotpath.json` records.
#[derive(Clone, Debug)]
pub struct HotpathReport {
    /// References in the synthetic stream.
    pub stream_refs: usize,
    /// Per-protocol machine throughput.
    pub protocols: Vec<ProtocolThroughput>,
    /// ns/lookup through `std::collections::HashMap` (old hot path).
    pub hashmap_ns_per_lookup: f64,
    /// ns/lookup through the open-addressed `FxMap` (new hot path).
    pub fxmap_ns_per_lookup: f64,
    /// MRU translation fast-path hit rate per L1 miss (R-NUMA run).
    pub mru_hit_rate: f64,
}

impl HotpathReport {
    /// Table-lookup speedup of the new hot path over the HashMap
    /// baseline.
    #[must_use]
    pub fn lookup_speedup(&self) -> f64 {
        self.hashmap_ns_per_lookup / self.fxmap_ns_per_lookup
    }

    /// Renders the report as JSON (hand-rolled: the workspace carries no
    /// serialization dependency).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"stream_refs\": {},", self.stream_refs);
        let _ = writeln!(s, "  \"refs_per_sec\": {{");
        for (i, p) in self.protocols.iter().enumerate() {
            let comma = if i + 1 < self.protocols.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(s, "    \"{}\": {:.0}{comma}", p.label, p.refs_per_sec);
        }
        let _ = writeln!(s, "  }},");
        let _ = writeln!(
            s,
            "  \"hashmap_ns_per_lookup\": {:.2},",
            self.hashmap_ns_per_lookup
        );
        let _ = writeln!(
            s,
            "  \"fxmap_ns_per_lookup\": {:.2},",
            self.fxmap_ns_per_lookup
        );
        let _ = writeln!(s, "  \"lookup_speedup\": {:.2},", self.lookup_speedup());
        let _ = writeln!(s, "  \"mru_hit_rate\": {:.4}", self.mru_hit_rate);
        s.push('}');
        s
    }

    /// Writes `results/BENCH_hotpath.json` (creating the directory) and
    /// echoes the path.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors.
    pub fn emit(&self) {
        crate::save("BENCH_hotpath.json", &self.to_json());
    }
}

/// Runs the full hot-path measurement suite.
///
/// # Panics
///
/// Panics if any configuration fails validation.
#[must_use]
pub fn measure(stream_refs: usize) -> HotpathReport {
    // 64 pages × 8 nodes: working set overflows the 128-B R-NUMA block
    // cache (forcing refetches and relocations) but fits the page cache.
    let stream = synth_stream(stream_refs, 64, 32);
    let protocols: [(&'static str, Protocol); 4] = [
        ("ideal", Protocol::ideal()),
        ("CC-NUMA", Protocol::paper_ccnuma()),
        ("S-COMA", Protocol::paper_scoma()),
        ("R-NUMA", Protocol::paper_rnuma()),
    ];
    let throughput = protocols
        .iter()
        .map(|&(label, p)| ProtocolThroughput {
            label,
            refs_per_sec: machine_refs_per_sec(p, &stream),
        })
        .collect();
    // The translation keys the machine actually resolves: page numbers
    // in stream order.
    let keys: Vec<u64> = stream.iter().map(|&(_, va, _)| va.vpage().0).collect();
    let (hashmap_ns, fxmap_ns) = lookup_ns_comparison(&keys);
    HotpathReport {
        stream_refs,
        protocols: throughput,
        hashmap_ns_per_lookup: hashmap_ns,
        fxmap_ns_per_lookup: fxmap_ns,
        mru_hit_rate: mru_hit_rate(Protocol::paper_rnuma(), &stream),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_in_range() {
        let a = synth_stream(1000, 16, 32);
        let b = synth_stream(1000, 16, 32);
        assert_eq!(a, b);
        assert!(a.iter().all(|&(cpu, va, _)| cpu.0 < 32 && va.0 < 16 * 4096));
    }

    #[test]
    fn machine_replay_produces_throughput() {
        let stream = synth_stream(2000, 8, 32);
        let rps = machine_refs_per_sec(Protocol::paper_ccnuma(), &stream);
        assert!(rps > 0.0 && rps.is_finite());
    }

    #[test]
    fn json_shape_is_sane() {
        let report = HotpathReport {
            stream_refs: 10,
            protocols: vec![ProtocolThroughput {
                label: "ideal",
                refs_per_sec: 1e6,
            }],
            hashmap_ns_per_lookup: 20.0,
            fxmap_ns_per_lookup: 5.0,
            mru_hit_rate: 0.9,
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ideal\": 1000000"));
        assert!(json.contains("\"lookup_speedup\": 4.00"));
        assert!((report.lookup_speedup() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mru_rate_is_a_fraction() {
        let stream = synth_stream(2000, 8, 32);
        let rate = mru_hit_rate(Protocol::paper_rnuma(), &stream);
        assert!((0.0..=1.0).contains(&rate));
    }
}
