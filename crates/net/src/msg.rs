//! Coherence message vocabulary.
//!
//! The directory protocol exchanges a small set of message types between
//! requesting nodes and homes. The network model only needs each
//! message's *size class* (header-only control message vs. a message
//! carrying a 32-byte data block) to charge network-interface occupancy;
//! the kinds are also tallied for traffic reports.

use std::fmt;

/// Every message the directory protocol sends between nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// Request a readable copy of a block.
    GetShared,
    /// Request an exclusive (writable) copy of a block.
    GetExclusive,
    /// Request write permission for a block already held read-only.
    Upgrade,
    /// Home grants a readable copy (carries data).
    DataShared,
    /// Home grants an exclusive copy (carries data).
    DataExclusive,
    /// Home grants write permission without data.
    AckUpgrade,
    /// Home tells a sharer to invalidate its copy.
    Invalidate,
    /// Sharer acknowledges an invalidation.
    InvalAck,
    /// Home asks the owner to send the dirty block home and downgrade.
    FetchDowngrade,
    /// Home asks the owner to send the dirty block home and invalidate.
    FetchInvalidate,
    /// Owner returns a dirty block (voluntary or forced; carries data).
    WriteBack,
    /// Home acknowledges a write-back.
    WriteBackAck,
    /// OS-level page migration payload (first-touch migration).
    PageMigrate,
}

/// Whether a message carries a data block or only a header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SizeClass {
    /// Header-only control message.
    Control,
    /// Header plus one 32-byte block.
    Data,
    /// Header plus one 4-KB page (migration only).
    Page,
}

impl MsgKind {
    /// Number of message kinds (the length of [`MsgKind::all`]), for
    /// sizing array-backed statistics.
    pub const COUNT: usize = 13;

    /// The size class of this message kind.
    #[must_use]
    pub fn size_class(self) -> SizeClass {
        match self {
            MsgKind::GetShared
            | MsgKind::GetExclusive
            | MsgKind::Upgrade
            | MsgKind::AckUpgrade
            | MsgKind::Invalidate
            | MsgKind::InvalAck
            | MsgKind::FetchDowngrade
            | MsgKind::FetchInvalidate
            | MsgKind::WriteBackAck => SizeClass::Control,
            MsgKind::DataShared | MsgKind::DataExclusive | MsgKind::WriteBack => SizeClass::Data,
            MsgKind::PageMigrate => SizeClass::Page,
        }
    }

    /// All message kinds, for exhaustive statistics tables.
    #[must_use]
    pub fn all() -> &'static [MsgKind] {
        &[
            MsgKind::GetShared,
            MsgKind::GetExclusive,
            MsgKind::Upgrade,
            MsgKind::DataShared,
            MsgKind::DataExclusive,
            MsgKind::AckUpgrade,
            MsgKind::Invalidate,
            MsgKind::InvalAck,
            MsgKind::FetchDowngrade,
            MsgKind::FetchInvalidate,
            MsgKind::WriteBack,
            MsgKind::WriteBackAck,
            MsgKind::PageMigrate,
        ]
    }

    /// A dense index for array-backed statistics (declaration order,
    /// matching [`MsgKind::all`]).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MsgKind::GetShared => "GETS",
            MsgKind::GetExclusive => "GETX",
            MsgKind::Upgrade => "UPGR",
            MsgKind::DataShared => "DATA_S",
            MsgKind::DataExclusive => "DATA_X",
            MsgKind::AckUpgrade => "ACK_UP",
            MsgKind::Invalidate => "INV",
            MsgKind::InvalAck => "INV_ACK",
            MsgKind::FetchDowngrade => "FETCH_DG",
            MsgKind::FetchInvalidate => "FETCH_INV",
            MsgKind::WriteBack => "WB",
            MsgKind::WriteBackAck => "WB_ACK",
            MsgKind::PageMigrate => "PG_MIG",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes() {
        assert_eq!(MsgKind::GetShared.size_class(), SizeClass::Control);
        assert_eq!(MsgKind::DataShared.size_class(), SizeClass::Data);
        assert_eq!(MsgKind::WriteBack.size_class(), SizeClass::Data);
        assert_eq!(MsgKind::InvalAck.size_class(), SizeClass::Control);
        assert_eq!(MsgKind::PageMigrate.size_class(), SizeClass::Page);
    }

    #[test]
    fn all_is_exhaustive_and_indexable() {
        let all = MsgKind::all();
        assert_eq!(all.len(), MsgKind::COUNT);
        for (i, &k) in all.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn displays_are_unique_and_nonempty() {
        let mut seen = std::collections::HashSet::new();
        for &k in MsgKind::all() {
            let s = k.to_string();
            assert!(!s.is_empty());
            assert!(seen.insert(s), "duplicate display for {k:?}");
        }
    }
}
