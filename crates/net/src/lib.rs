//! Interconnect model for the Reactive NUMA reproduction.
//!
//! The paper's machine connects eight SMP nodes with a point-to-point
//! network of constant 100-cycle latency, modeling contention only at
//! the network interfaces (Section 4). This crate provides:
//!
//! * [`msg`] — the directory protocol's message vocabulary and size
//!   classes;
//! * [`net`] — the [`Network`]: constant-latency fabric plus per-node
//!   FCFS NI ports in both directions, splittable into per-shard
//!   [`NetWindow`]s for the deterministic sharded executor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod msg;
pub mod net;

pub use msg::{MsgKind, SizeClass};
pub use net::{NetConfig, NetWindow, Network};
