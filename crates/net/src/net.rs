//! The point-to-point interconnect.
//!
//! Section 4 of the paper: "we assume a point-to-point network with a
//! constant latency of 100 cycles but model contention at the network
//! interfaces." [`Network`] reproduces exactly that: the fabric itself is
//! contention-free and adds [`NetConfig::latency`] to every message, while
//! each node has one outbound and one inbound FCFS network-interface
//! port whose occupancy depends on the message's size class.

use crate::msg::{MsgKind, SizeClass};
use rnuma_mem::addr::NodeId;
use rnuma_sim::{Cycles, Resource};

/// Interconnect timing parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetConfig {
    /// One-way fabric latency (paper: 100 cycles).
    pub latency: Cycles,
    /// NI occupancy for a control message.
    pub control_occupancy: Cycles,
    /// NI occupancy for a message carrying one 32-byte block.
    pub data_occupancy: Cycles,
    /// NI occupancy for a page-sized migration message.
    pub page_occupancy: Cycles,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            latency: Cycles(100),
            control_occupancy: Cycles(4),
            data_occupancy: Cycles(8),
            page_occupancy: Cycles(512),
        }
    }
}

impl NetConfig {
    fn occupancy(&self, class: SizeClass) -> Cycles {
        match class {
            SizeClass::Control => self.control_occupancy,
            SizeClass::Data => self.data_occupancy,
            SizeClass::Page => self.page_occupancy,
        }
    }
}

/// The constant-latency fabric plus per-node NI ports.
///
/// # Example
///
/// ```
/// use rnuma_mem::addr::NodeId;
/// use rnuma_net::msg::MsgKind;
/// use rnuma_net::net::{NetConfig, Network};
/// use rnuma_sim::Cycles;
///
/// let mut net = Network::new(8, NetConfig::default());
/// let arrival = net.send(Cycles(0), NodeId(0), NodeId(1), MsgKind::GetShared);
/// // 4 cycles out-NI + 100 fabric + 4 cycles in-NI.
/// assert_eq!(arrival, Cycles(108));
/// ```
#[derive(Debug)]
pub struct Network {
    config: NetConfig,
    ni_out: Vec<Resource>,
    ni_in: Vec<Resource>,
    sends_by_kind: [u64; 13],
    total_sends: u64,
}

impl Network {
    /// Creates a network connecting `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    #[must_use]
    pub fn new(nodes: usize, config: NetConfig) -> Network {
        assert!(nodes > 0, "network needs at least one node");
        Network {
            config,
            ni_out: (0..nodes).map(|_| Resource::new("ni-out")).collect(),
            ni_in: (0..nodes).map(|_| Resource::new("ni-in")).collect(),
            sends_by_kind: [0; 13],
            total_sends: 0,
        }
    }

    /// Number of nodes attached.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.ni_out.len()
    }

    /// The configured timing parameters.
    #[must_use]
    pub fn config(&self) -> NetConfig {
        self.config
    }

    /// Sends one message, returning its delivery time at `to`.
    ///
    /// The sender's outbound NI is occupied first (queueing behind other
    /// departures), the fabric adds its constant latency, and the
    /// receiver's inbound NI is occupied on arrival (queueing behind
    /// other arrivals). The returned time is when the payload is
    /// available to the destination's protocol controller.
    ///
    /// # Panics
    ///
    /// Panics if `from == to` (nodes never message themselves) or either
    /// id is out of range.
    pub fn send(&mut self, now: Cycles, from: NodeId, to: NodeId, kind: MsgKind) -> Cycles {
        assert_ne!(from, to, "loopback messages are a protocol bug");
        let occ = self.config.occupancy(kind.size_class());
        let departed = self.ni_out[from.0 as usize].acquire(now, occ) + occ;
        let at_dest = departed + self.config.latency;
        let delivered = self.ni_in[to.0 as usize].acquire(at_dest, occ) + occ;
        self.sends_by_kind[kind.index()] += 1;
        self.total_sends += 1;
        delivered
    }

    /// The uncontended one-way cost of a message of `kind`, for latency
    /// budgeting (2 NI occupancies + fabric latency).
    #[must_use]
    pub fn uncontended(&self, kind: MsgKind) -> Cycles {
        let occ = self.config.occupancy(kind.size_class());
        occ + self.config.latency + occ
    }

    /// Messages sent so far, by kind.
    #[must_use]
    pub fn sends_of(&self, kind: MsgKind) -> u64 {
        self.sends_by_kind[kind.index()]
    }

    /// Total messages sent.
    #[must_use]
    pub fn total_sends(&self) -> u64 {
        self.total_sends
    }

    /// Total queueing delay imposed by all NIs (a contention measure).
    #[must_use]
    pub fn total_ni_wait(&self) -> Cycles {
        self.ni_out
            .iter()
            .chain(self.ni_in.iter())
            .map(Resource::total_wait)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(8, NetConfig::default())
    }

    #[test]
    fn uncontended_control_message_timing() {
        let mut n = net();
        let t = n.send(Cycles(0), NodeId(0), NodeId(7), MsgKind::GetShared);
        assert_eq!(t, Cycles(108));
        assert_eq!(n.uncontended(MsgKind::GetShared), Cycles(108));
    }

    #[test]
    fn data_messages_occupy_longer() {
        let mut n = net();
        let t = n.send(Cycles(0), NodeId(0), NodeId(1), MsgKind::DataShared);
        assert_eq!(t, Cycles(116));
    }

    #[test]
    fn outbound_contention_serializes_departures() {
        let mut n = net();
        let t1 = n.send(Cycles(0), NodeId(0), NodeId(1), MsgKind::GetShared);
        let t2 = n.send(Cycles(0), NodeId(0), NodeId(2), MsgKind::GetShared);
        assert_eq!(t1, Cycles(108));
        assert_eq!(t2, Cycles(112), "second departure waits 4 cycles");
    }

    #[test]
    fn inbound_contention_serializes_arrivals() {
        let mut n = net();
        let t1 = n.send(Cycles(0), NodeId(0), NodeId(3), MsgKind::GetShared);
        let t2 = n.send(Cycles(0), NodeId(1), NodeId(3), MsgKind::GetShared);
        assert_eq!(t1, Cycles(108));
        assert_eq!(t2, Cycles(112), "second arrival queues at the in-NI");
    }

    #[test]
    fn distinct_pairs_do_not_interfere() {
        let mut n = net();
        let t1 = n.send(Cycles(0), NodeId(0), NodeId(1), MsgKind::GetShared);
        let t2 = n.send(Cycles(0), NodeId(2), NodeId(3), MsgKind::GetShared);
        assert_eq!(t1, t2);
    }

    #[test]
    fn statistics_accumulate() {
        let mut n = net();
        n.send(Cycles(0), NodeId(0), NodeId(1), MsgKind::GetShared);
        n.send(Cycles(0), NodeId(1), NodeId(0), MsgKind::DataShared);
        n.send(Cycles(0), NodeId(2), NodeId(0), MsgKind::GetShared);
        assert_eq!(n.sends_of(MsgKind::GetShared), 2);
        assert_eq!(n.sends_of(MsgKind::DataShared), 1);
        assert_eq!(n.sends_of(MsgKind::WriteBack), 0);
        assert_eq!(n.total_sends(), 3);
    }

    #[test]
    fn quiet_network_has_no_wait() {
        let mut n = net();
        n.send(Cycles(0), NodeId(0), NodeId(1), MsgKind::GetShared);
        n.send(Cycles(1000), NodeId(0), NodeId(1), MsgKind::GetShared);
        assert_eq!(n.total_ni_wait(), Cycles::ZERO);
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_panics() {
        net().send(Cycles(0), NodeId(0), NodeId(0), MsgKind::GetShared);
    }
}
