//! The point-to-point interconnect.
//!
//! Section 4 of the paper: "we assume a point-to-point network with a
//! constant latency of 100 cycles but model contention at the network
//! interfaces." [`Network`] reproduces exactly that: the fabric itself is
//! contention-free and adds [`NetConfig::latency`] to every message, while
//! each node has one outbound and one inbound FCFS network-interface
//! port whose occupancy depends on the message's size class.
//!
//! # Sharded execution
//!
//! All per-message state (both NI ports and the send counters, which are
//! attributed to the *sender*) lives in one [`NodeNi`] per node, so a
//! machine partitioned into node shards can split the network into
//! disjoint [`NetWindow`]s with [`Network::windows`] and let each shard
//! drive its own nodes' traffic concurrently. Two message operations
//! exist:
//!
//! * [`NetWindow::send`] — a synchronous transaction hop: occupies the
//!   sender's out-NI *and* the receiver's in-NI, so both endpoints must
//!   belong to the window.
//! * [`NetWindow::post`] — a posted (fire-and-forget) message, used for
//!   eviction write-backs: it occupies only the sender's out-NI and
//!   sinks at the destination's memory controller without occupying the
//!   in-NI port, so only the *sender* must belong to the window. This is
//!   what lets a shard evict a page homed in another shard without
//!   touching that shard's timing state.

use crate::msg::{MsgKind, SizeClass};
use rnuma_mem::addr::NodeId;
use rnuma_sim::{Cycles, Resource};
use std::ops::Range;

/// Interconnect timing parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetConfig {
    /// One-way fabric latency (paper: 100 cycles).
    pub latency: Cycles,
    /// NI occupancy for a control message.
    pub control_occupancy: Cycles,
    /// NI occupancy for a message carrying one 32-byte block.
    pub data_occupancy: Cycles,
    /// NI occupancy for a page-sized migration message.
    pub page_occupancy: Cycles,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            latency: Cycles(100),
            control_occupancy: Cycles(4),
            data_occupancy: Cycles(8),
            page_occupancy: Cycles(512),
        }
    }
}

impl NetConfig {
    #[inline]
    fn occupancy(&self, class: SizeClass) -> Cycles {
        match class {
            SizeClass::Control => self.control_occupancy,
            SizeClass::Data => self.data_occupancy,
            SizeClass::Page => self.page_occupancy,
        }
    }
}

/// Out-of-window NI access: an executor containment bug, kept out of
/// line so the bounds check on the send/post fast path stays a single
/// compare-and-branch to a cold block.
#[cold]
#[inline(never)]
fn window_violation(node: NodeId, base: usize, len: usize) -> ! {
    panic!("node {node} outside NI window {base}..{}", base + len);
}

/// One node's complete network-interface state: both FCFS ports plus the
/// node's (sender-attributed) message counters.
#[derive(Clone, Debug)]
pub struct NodeNi {
    out: Resource,
    inbound: Resource,
    sent_by_kind: [u64; MsgKind::COUNT],
}

impl NodeNi {
    fn new() -> NodeNi {
        NodeNi {
            out: Resource::new("ni-out"),
            inbound: Resource::new("ni-in"),
            sent_by_kind: [0; MsgKind::COUNT],
        }
    }

    /// Messages this node has sent, of any kind.
    #[must_use]
    pub fn total_sent(&self) -> u64 {
        self.sent_by_kind.iter().sum()
    }

    /// Queueing delay imposed by this node's two NI ports.
    #[must_use]
    pub fn wait(&self) -> Cycles {
        self.out.total_wait() + self.inbound.total_wait()
    }
}

/// The constant-latency fabric plus per-node NI ports.
///
/// # Example
///
/// ```
/// use rnuma_mem::addr::NodeId;
/// use rnuma_net::msg::MsgKind;
/// use rnuma_net::net::{NetConfig, Network};
/// use rnuma_sim::Cycles;
///
/// let mut net = Network::new(8, NetConfig::default());
/// let arrival = net.send(Cycles(0), NodeId(0), NodeId(1), MsgKind::GetShared);
/// // 4 cycles out-NI + 100 fabric + 4 cycles in-NI.
/// assert_eq!(arrival, Cycles(108));
/// ```
#[derive(Debug)]
pub struct Network {
    config: NetConfig,
    nis: Vec<NodeNi>,
}

impl Network {
    /// Creates a network connecting `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    #[must_use]
    pub fn new(nodes: usize, config: NetConfig) -> Network {
        assert!(nodes > 0, "network needs at least one node");
        Network {
            config,
            nis: (0..nodes).map(|_| NodeNi::new()).collect(),
        }
    }

    /// Number of nodes attached.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nis.len()
    }

    /// The configured timing parameters.
    #[must_use]
    pub fn config(&self) -> NetConfig {
        self.config
    }

    /// A window spanning the whole network (the serial execution view).
    #[must_use]
    pub fn full_window(&mut self) -> NetWindow<'_> {
        NetWindow {
            config: self.config,
            base: 0,
            nis: &mut self.nis,
        }
    }

    /// Detaches every node's NI state, leaving the network empty until
    /// [`Network::put_nis`] restores it. This is the ownership-handoff
    /// primitive behind the persistent shard worker pool: the executor
    /// moves each shard's `NodeNi`s into an owned chunk, ships the chunk
    /// to a parked worker, and moves the state back at the epoch
    /// barrier — no borrows cross threads.
    ///
    /// While detached, every message operation panics (there are no
    /// nodes); callers must restore the state before using the network.
    #[must_use]
    pub fn take_nis(&mut self) -> Vec<NodeNi> {
        std::mem::take(&mut self.nis)
    }

    /// Restores NI state previously removed with [`Network::take_nis`]
    /// (in the same node order).
    ///
    /// # Panics
    ///
    /// Panics if the network is not currently empty.
    pub fn put_nis(&mut self, nis: Vec<NodeNi>) {
        assert!(
            self.nis.is_empty(),
            "put_nis on a network that still owns NI state"
        );
        self.nis = nis;
    }

    /// Splits the network into disjoint windows, one per node range.
    ///
    /// # Panics
    ///
    /// Panics unless `ranges` are contiguous, ascending, and cover all
    /// nodes exactly once.
    #[must_use]
    pub fn windows(&mut self, ranges: &[Range<usize>]) -> Vec<NetWindow<'_>> {
        let config = self.config;
        let mut out = Vec::with_capacity(ranges.len());
        let mut rest: &mut [NodeNi] = &mut self.nis;
        let mut at = 0usize;
        for r in ranges {
            assert_eq!(r.start, at, "ranges must tile the node space");
            let (head, tail) = rest.split_at_mut(r.end - r.start);
            out.push(NetWindow {
                config,
                base: r.start,
                nis: head,
            });
            rest = tail;
            at = r.end;
        }
        assert!(rest.is_empty(), "ranges must cover every node");
        out
    }

    /// Sends one synchronous message, returning its delivery time at
    /// `to`. See [`NetWindow::send`].
    ///
    /// # Panics
    ///
    /// Panics if `from == to` or either id is out of range.
    pub fn send(&mut self, now: Cycles, from: NodeId, to: NodeId, kind: MsgKind) -> Cycles {
        self.full_window().send(now, from, to, kind)
    }

    /// Posts one fire-and-forget message, returning its arrival time at
    /// `to`'s memory controller. See [`NetWindow::post`].
    ///
    /// # Panics
    ///
    /// Panics if `from == to` or `from` is out of range.
    pub fn post(&mut self, now: Cycles, from: NodeId, to: NodeId, kind: MsgKind) -> Cycles {
        self.full_window().post(now, from, to, kind)
    }

    /// The uncontended one-way cost of a synchronous message of `kind`,
    /// for latency budgeting (2 NI occupancies + fabric latency).
    #[must_use]
    pub fn uncontended(&self, kind: MsgKind) -> Cycles {
        let occ = self.config.occupancy(kind.size_class());
        occ + self.config.latency + occ
    }

    /// Messages sent so far, by kind (summed over all senders).
    #[must_use]
    pub fn sends_of(&self, kind: MsgKind) -> u64 {
        self.nis
            .iter()
            .map(|ni| ni.sent_by_kind[kind.index()])
            .sum()
    }

    /// Total messages sent.
    #[must_use]
    pub fn total_sends(&self) -> u64 {
        self.nis.iter().map(NodeNi::total_sent).sum()
    }

    /// Total queueing delay imposed by all NIs (a contention measure).
    #[must_use]
    pub fn total_ni_wait(&self) -> Cycles {
        self.nis.iter().map(NodeNi::wait).sum()
    }
}

/// A mutable view of a contiguous node range's NI state.
///
/// Obtained from [`Network::full_window`] or [`Network::windows`]; all
/// node ids are *absolute* machine node ids, and indexing a node outside
/// the window panics — which is precisely the containment guarantee the
/// sharded executor relies on.
#[derive(Debug)]
pub struct NetWindow<'a> {
    config: NetConfig,
    base: usize,
    nis: &'a mut [NodeNi],
}

impl<'a> NetWindow<'a> {
    /// A window over externally owned NI state (e.g. a shard chunk that
    /// was detached with [`Network::take_nis`]), covering absolute node
    /// ids `base..base + nis.len()`.
    #[must_use]
    pub fn over(config: NetConfig, base: usize, nis: &'a mut [NodeNi]) -> NetWindow<'a> {
        NetWindow { config, base, nis }
    }

    /// Wrapping index arithmetic turns "below base" into a huge index,
    /// so one length compare covers both out-of-window directions; the
    /// panic itself lives in a cold out-of-line block.
    #[inline]
    fn ni_mut(&mut self, node: NodeId) -> &mut NodeNi {
        let idx = (node.0 as usize).wrapping_sub(self.base);
        let len = self.nis.len();
        match self.nis.get_mut(idx) {
            Some(ni) => ni,
            None => window_violation(node, self.base, len),
        }
    }

    /// Sends one synchronous message, returning its delivery time at
    /// `to`.
    ///
    /// The sender's outbound NI is occupied first (queueing behind other
    /// departures), the fabric adds its constant latency, and the
    /// receiver's inbound NI is occupied on arrival (queueing behind
    /// other arrivals). The returned time is when the payload is
    /// available to the destination's protocol controller.
    ///
    /// # Panics
    ///
    /// Panics if `from == to` (nodes never message themselves) or either
    /// id is outside the window.
    #[inline]
    pub fn send(&mut self, now: Cycles, from: NodeId, to: NodeId, kind: MsgKind) -> Cycles {
        assert_ne!(from, to, "loopback messages are a protocol bug");
        let occ = self.config.occupancy(kind.size_class());
        let departed = {
            let src = self.ni_mut(from);
            let t = src.out.acquire(now, occ) + occ;
            src.sent_by_kind[kind.index()] += 1;
            t
        };
        let at_dest = departed + self.config.latency;
        self.ni_mut(to).inbound.acquire(at_dest, occ) + occ
    }

    /// Posts one fire-and-forget message (an eviction write-back),
    /// returning its arrival time at `to`.
    ///
    /// Posted messages occupy the sender's outbound NI and traverse the
    /// fabric, but sink directly at the destination's memory controller
    /// without occupying its inbound NI port and without any reply —
    /// only sender-side state is touched, so `to` may lie outside the
    /// window.
    ///
    /// # Panics
    ///
    /// Panics if `from == to` or `from` is outside the window.
    #[inline]
    pub fn post(&mut self, now: Cycles, from: NodeId, to: NodeId, kind: MsgKind) -> Cycles {
        assert_ne!(from, to, "loopback messages are a protocol bug");
        let occ = self.config.occupancy(kind.size_class());
        let src = self.ni_mut(from);
        let departed = src.out.acquire(now, occ) + occ;
        src.sent_by_kind[kind.index()] += 1;
        departed + self.config.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(8, NetConfig::default())
    }

    #[test]
    fn uncontended_control_message_timing() {
        let mut n = net();
        let t = n.send(Cycles(0), NodeId(0), NodeId(7), MsgKind::GetShared);
        assert_eq!(t, Cycles(108));
        assert_eq!(n.uncontended(MsgKind::GetShared), Cycles(108));
    }

    #[test]
    fn data_messages_occupy_longer() {
        let mut n = net();
        let t = n.send(Cycles(0), NodeId(0), NodeId(1), MsgKind::DataShared);
        assert_eq!(t, Cycles(116));
    }

    #[test]
    fn outbound_contention_serializes_departures() {
        let mut n = net();
        let t1 = n.send(Cycles(0), NodeId(0), NodeId(1), MsgKind::GetShared);
        let t2 = n.send(Cycles(0), NodeId(0), NodeId(2), MsgKind::GetShared);
        assert_eq!(t1, Cycles(108));
        assert_eq!(t2, Cycles(112), "second departure waits 4 cycles");
    }

    #[test]
    fn inbound_contention_serializes_arrivals() {
        let mut n = net();
        let t1 = n.send(Cycles(0), NodeId(0), NodeId(3), MsgKind::GetShared);
        let t2 = n.send(Cycles(0), NodeId(1), NodeId(3), MsgKind::GetShared);
        assert_eq!(t1, Cycles(108));
        assert_eq!(t2, Cycles(112), "second arrival queues at the in-NI");
    }

    #[test]
    fn distinct_pairs_do_not_interfere() {
        let mut n = net();
        let t1 = n.send(Cycles(0), NodeId(0), NodeId(1), MsgKind::GetShared);
        let t2 = n.send(Cycles(0), NodeId(2), NodeId(3), MsgKind::GetShared);
        assert_eq!(t1, t2);
    }

    #[test]
    fn statistics_accumulate() {
        let mut n = net();
        n.send(Cycles(0), NodeId(0), NodeId(1), MsgKind::GetShared);
        n.send(Cycles(0), NodeId(1), NodeId(0), MsgKind::DataShared);
        n.send(Cycles(0), NodeId(2), NodeId(0), MsgKind::GetShared);
        assert_eq!(n.sends_of(MsgKind::GetShared), 2);
        assert_eq!(n.sends_of(MsgKind::DataShared), 1);
        assert_eq!(n.sends_of(MsgKind::WriteBack), 0);
        assert_eq!(n.total_sends(), 3);
    }

    #[test]
    fn quiet_network_has_no_wait() {
        let mut n = net();
        n.send(Cycles(0), NodeId(0), NodeId(1), MsgKind::GetShared);
        n.send(Cycles(1000), NodeId(0), NodeId(1), MsgKind::GetShared);
        assert_eq!(n.total_ni_wait(), Cycles::ZERO);
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_panics() {
        net().send(Cycles(0), NodeId(0), NodeId(0), MsgKind::GetShared);
    }

    #[test]
    fn posted_message_skips_the_inbound_port() {
        let mut n = net();
        // A posted write-back arrives after out-NI + fabric only.
        let t = n.post(Cycles(0), NodeId(0), NodeId(1), MsgKind::WriteBack);
        assert_eq!(t, Cycles(8 + 100));
        // It is still counted as a send...
        assert_eq!(n.sends_of(MsgKind::WriteBack), 1);
        // ...but leaves the receiver's in-NI untouched: a synchronous
        // arrival right behind it sees an idle port.
        let t2 = n.send(Cycles(0), NodeId(2), NodeId(1), MsgKind::GetShared);
        assert_eq!(t2, Cycles(108));
    }

    #[test]
    fn windows_split_state_and_keep_absolute_ids() {
        let mut n = net();
        n.send(Cycles(0), NodeId(6), NodeId(7), MsgKind::GetShared);
        {
            let mut ws = n.windows(&[0..4, 4..8]);
            let t = ws[1].send(Cycles(0), NodeId(6), NodeId(7), MsgKind::GetShared);
            assert_eq!(t, Cycles(112), "window shares the full network's NI state");
            // A posted message may target a node outside the window.
            let p = ws[1].post(Cycles(0), NodeId(4), NodeId(0), MsgKind::WriteBack);
            assert_eq!(p, Cycles(108));
        }
        assert_eq!(n.total_sends(), 3);
    }

    #[test]
    fn detached_nis_drive_windows_and_reattach() {
        let mut n = net();
        n.send(Cycles(0), NodeId(4), NodeId(5), MsgKind::GetShared);
        let mut nis = n.take_nis();
        {
            let (head, tail) = nis.split_at_mut(4);
            let mut w0 = NetWindow::over(NetConfig::default(), 0, head);
            let mut w1 = NetWindow::over(NetConfig::default(), 4, tail);
            // The detached state carries the earlier send's occupancy.
            let t = w1.send(Cycles(0), NodeId(4), NodeId(5), MsgKind::GetShared);
            assert_eq!(t, Cycles(112));
            // Posted messages may leave the window, as in shard lanes.
            let p = w0.post(Cycles(0), NodeId(0), NodeId(7), MsgKind::WriteBack);
            assert_eq!(p, Cycles(108));
        }
        n.put_nis(nis);
        assert_eq!(n.total_sends(), 3);
    }

    #[test]
    #[should_panic(expected = "still owns NI state")]
    fn double_attach_panics() {
        let mut n = net();
        n.put_nis(vec![]);
    }

    #[test]
    #[should_panic(expected = "outside NI window")]
    fn window_rejects_out_of_range_sender() {
        let mut n = net();
        let mut ws = n.windows(&[0..4, 4..8]);
        let _ = ws[1].send(Cycles(0), NodeId(1), NodeId(5), MsgKind::GetShared);
    }

    #[test]
    #[should_panic(expected = "ranges must cover")]
    fn windows_must_tile_the_node_space() {
        let mut n = net();
        let half = 0..4;
        let _ = n.windows(std::slice::from_ref(&half));
    }
}
