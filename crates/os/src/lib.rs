//! Operating-system model for the Reactive NUMA reproduction.
//!
//! The paper's OS involvement is central to the trade-off it studies:
//! S-COMA buys a huge fully-associative page cache at the price of OS
//! intervention (page faults, allocation, replacement, TLB shootdowns),
//! while CC-NUMA needs the OS only for the initial mapping. This crate
//! models that involvement:
//!
//! * [`cost`] — the Table-2 cost model, including the 3000–11,500-cycle
//!   page allocation/replacement/relocation range and the Section-5.5
//!   "SOFT" (slow commodity) variant;
//! * [`paging`] — global page homes with the first-touch placement
//!   policy of Marchetti et al. that the paper adopts;
//! * [`stats`] — per-node paging event counters feeding Table 4.
//!
//! The flows that *use* these pieces (S-COMA allocation, LRM
//! replacement, R-NUMA relocation) are orchestrated per-protocol in the
//! `rnuma` crate's machine model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod paging;
pub mod stats;

pub use cost::CostModel;
pub use paging::PageManager;
pub use stats::OsStats;
