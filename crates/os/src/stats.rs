//! Per-node operating-system event statistics.
//!
//! These counters feed Table 4 (refetches and page replacements) and the
//! per-application discussion in Section 5 of the paper.

use std::fmt;

/// Counts of OS-level paging events on one node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OsStats {
    /// Soft page faults taken (first reference to an unmapped page).
    pub page_faults: u64,
    /// CC-NUMA page mappings installed.
    pub ccnuma_maps: u64,
    /// S-COMA page-cache allocations (initial maps and post-replacement
    /// re-maps).
    pub scoma_allocations: u64,
    /// S-COMA page-cache replacements (a resident page was evicted).
    pub page_replacements: u64,
    /// R-NUMA relocations (CC-NUMA page moved into the page cache).
    pub relocations: u64,
    /// TLB shootdowns performed.
    pub tlb_shootdowns: u64,
    /// Blocks flushed home by page replacement or relocation.
    pub blocks_flushed: u64,
}

impl OsStats {
    /// A zeroed record.
    #[must_use]
    pub fn new() -> OsStats {
        OsStats::default()
    }

    /// Element-wise sum with another record (machine-wide totals).
    #[must_use]
    pub fn merged(self, other: OsStats) -> OsStats {
        OsStats {
            page_faults: self.page_faults + other.page_faults,
            ccnuma_maps: self.ccnuma_maps + other.ccnuma_maps,
            scoma_allocations: self.scoma_allocations + other.scoma_allocations,
            page_replacements: self.page_replacements + other.page_replacements,
            relocations: self.relocations + other.relocations,
            tlb_shootdowns: self.tlb_shootdowns + other.tlb_shootdowns,
            blocks_flushed: self.blocks_flushed + other.blocks_flushed,
        }
    }
}

impl fmt::Display for OsStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "faults={} ccnuma_maps={} scoma_allocs={} replacements={} \
             relocations={} shootdowns={} flushed={}",
            self.page_faults,
            self.ccnuma_maps,
            self.scoma_allocations,
            self.page_replacements,
            self.relocations,
            self.tlb_shootdowns,
            self.blocks_flushed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_by_default() {
        let s = OsStats::new();
        assert_eq!(s.page_faults, 0);
        assert_eq!(s, OsStats::default());
    }

    #[test]
    fn merged_sums_fields() {
        let a = OsStats {
            page_faults: 1,
            ccnuma_maps: 2,
            scoma_allocations: 3,
            page_replacements: 4,
            relocations: 5,
            tlb_shootdowns: 6,
            blocks_flushed: 7,
        };
        let b = OsStats {
            page_faults: 10,
            ..OsStats::default()
        };
        let m = a.merged(b);
        assert_eq!(m.page_faults, 11);
        assert_eq!(m.blocks_flushed, 7);
    }

    #[test]
    fn display_is_nonempty() {
        let s = OsStats::new().to_string();
        assert!(s.contains("faults=0"));
        assert!(s.contains("relocations=0"));
    }
}
