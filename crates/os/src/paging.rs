//! Global page-home management and first-touch placement.
//!
//! The paper's systems allocate pages "on the same node as the processor
//! that uses them" via a first-touch migration policy (Section 2.1): a
//! user directive arms migration at the start of the parallel phase, and
//! the first request for each page fixes its home at the requester. The
//! reproduction applies the policy's steady-state effect directly — the
//! first *timed* toucher of a page becomes its home — because the
//! (untimed) initialization phase would otherwise home every page at the
//! master CPU's node. Pages touched by nobody keep their allocation-time
//! home.

use rnuma_mem::addr::{NodeId, VPage};
use rnuma_mem::fxmap::FxMap;

/// Where each shared virtual page lives, and how it got there.
#[derive(Clone, Debug)]
pub struct PageManager {
    nodes: u8,
    /// Armed by the workload at the start of its parallel phase.
    first_touch_armed: bool,
    homes: FxMap<VPage, NodeId>,
    /// Pages whose home was fixed by first touch (vs. static allocation).
    first_touched: u64,
    next_rr: u8,
}

impl PageManager {
    /// Creates a manager for a machine of `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    #[must_use]
    pub fn new(nodes: u8) -> PageManager {
        assert!(nodes > 0, "machine needs at least one node");
        PageManager {
            nodes,
            first_touch_armed: false,
            homes: FxMap::new(),
            first_touched: 0,
            next_rr: 0,
        }
    }

    /// Arms first-touch placement (the paper's user-invoked directive at
    /// the start of the parallel phase).
    pub fn arm_first_touch(&mut self) {
        self.first_touch_armed = true;
    }

    /// `true` once first-touch placement is armed.
    #[must_use]
    pub fn first_touch_armed(&self) -> bool {
        self.first_touch_armed
    }

    /// Statically assigns `page` to `home` at allocation time (used for
    /// explicitly distributed or master-initialized data).
    pub fn assign(&mut self, page: VPage, home: NodeId) {
        assert!(home.0 < self.nodes, "home {home} out of range");
        self.homes.insert(page, home);
    }

    /// Statically assigns `page` round-robin across nodes, returning the
    /// chosen home (the default placement for untouched allocations).
    pub fn assign_round_robin(&mut self, page: VPage) -> NodeId {
        let home = NodeId(self.next_rr);
        self.next_rr = (self.next_rr + 1) % self.nodes;
        self.homes.insert(page, home);
        home
    }

    /// The home of `page` as seen by `toucher`'s reference, fixing it by
    /// first touch when armed and not yet fixed.
    pub fn home_on_touch(&mut self, page: VPage, toucher: NodeId) -> NodeId {
        if let Some(&h) = self.homes.get(page) {
            return h;
        }
        self.homes.insert(page, toucher);
        if self.first_touch_armed {
            self.first_touched += 1;
        }
        toucher
    }

    /// The home of `page`, if fixed.
    #[must_use]
    pub fn home_of(&self, page: VPage) -> Option<NodeId> {
        self.homes.get(page).copied()
    }

    /// Number of pages homed by first touch.
    #[must_use]
    pub fn first_touched(&self) -> u64 {
        self.first_touched
    }

    /// Number of pages with a fixed home.
    #[must_use]
    pub fn pages(&self) -> usize {
        self.homes.len()
    }

    /// Per-node page counts (placement balance diagnostics).
    #[must_use]
    pub fn census(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes as usize];
        for home in self.homes.values() {
            counts[home.0 as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_fixes_home_at_first_requester() {
        let mut pm = PageManager::new(8);
        pm.arm_first_touch();
        let h = pm.home_on_touch(VPage(1), NodeId(3));
        assert_eq!(h, NodeId(3));
        // Later touchers see the same home.
        assert_eq!(pm.home_on_touch(VPage(1), NodeId(5)), NodeId(3));
        assert_eq!(pm.first_touched(), 1);
    }

    #[test]
    fn static_assignment_wins_over_first_touch() {
        let mut pm = PageManager::new(8);
        pm.assign(VPage(2), NodeId(7));
        pm.arm_first_touch();
        assert_eq!(pm.home_on_touch(VPage(2), NodeId(0)), NodeId(7));
        assert_eq!(pm.first_touched(), 0);
    }

    #[test]
    fn round_robin_covers_all_nodes() {
        let mut pm = PageManager::new(4);
        let homes: Vec<NodeId> = (0..8).map(|p| pm.assign_round_robin(VPage(p))).collect();
        assert_eq!(
            homes.iter().map(|n| n.0).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 0, 1, 2, 3]
        );
        assert_eq!(pm.census(), vec![2, 2, 2, 2]);
    }

    #[test]
    fn unarmed_touch_still_fixes_home() {
        let mut pm = PageManager::new(2);
        assert_eq!(pm.home_on_touch(VPage(9), NodeId(1)), NodeId(1));
        assert_eq!(pm.home_of(VPage(9)), Some(NodeId(1)));
        assert_eq!(pm.first_touched(), 0, "not counted as first-touch");
    }

    #[test]
    fn home_of_unknown_page_is_none() {
        let pm = PageManager::new(2);
        assert_eq!(pm.home_of(VPage(0)), None);
        assert_eq!(pm.pages(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_home_panics() {
        PageManager::new(2).assign(VPage(0), NodeId(5));
    }
}
