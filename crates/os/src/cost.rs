//! The OS/page-operation cost model (Table 2 of the paper).
//!
//! | operation | cost (400-MHz cycles) |
//! |---|---|
//! | SRAM access | 8 |
//! | DRAM access | 56 |
//! | local cache fill | 69 |
//! | remote fetch | 376 |
//! | soft trap | 2000 |
//! | TLB shootdown | 200 |
//! | page allocation/replacement or relocation | 3000–11500 |
//!
//! The 3000–11500 range "varies depending on the number of blocks
//! flushed": the fixed floor covers the soft trap, the TLB shootdown and
//! map bookkeeping; each valid block flushed (invalidated locally,
//! written home when dirty) adds [`CostModel::block_flush`]. With the
//! defaults: 2000 + 200 + 800 = 3000 at zero blocks, and
//! 3000 + 128·66 ≈ 11,450 for a fully populated page — the paper's
//! stated ceiling.
//!
//! Section 5.5's "SOFT" systems model slower commodity hardware: 10-µs
//! page faults (4000 cycles) and 5-µs software TLB shootdowns via
//! inter-processor interrupts (2000 cycles), roughly tripling the
//! per-page overhead — reproduced by [`CostModel::soft`].

use rnuma_sim::Cycles;

/// All fixed latencies of the simulated machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// One SRAM device access (block cache, fine-grain tags,
    /// translation table, reactive counters).
    pub sram_access: Cycles,
    /// One DRAM access (main memory and the S-COMA page cache).
    pub dram_access: Cycles,
    /// A processor cache fill from node-local memory, end to end.
    pub local_cache_fill: Cycles,
    /// An uncontended remote block fetch, end to end.
    pub remote_fetch: Cycles,
    /// A soft trap (page fault or R-NUMA relocation interrupt).
    pub soft_trap: Cycles,
    /// Invalidating the TLBs on one node.
    pub tlb_shootdown: Cycles,
    /// Fixed page-map bookkeeping beyond the trap and shootdown.
    pub page_op_base: Cycles,
    /// Per-valid-block cost of flushing a page (invalidate locally;
    /// write home when dirty).
    pub block_flush: Cycles,
}

impl CostModel {
    /// The paper's base system (5-µs traps, hardware TLB invalidation).
    #[must_use]
    pub fn base() -> CostModel {
        CostModel {
            sram_access: Cycles(8),
            dram_access: Cycles(56),
            local_cache_fill: Cycles(69),
            remote_fetch: Cycles(376),
            soft_trap: Cycles(2000),
            tlb_shootdown: Cycles(200),
            page_op_base: Cycles(800),
            block_flush: Cycles(66),
        }
    }

    /// The paper's "SOFT" system (10-µs traps, 5-µs software shootdowns
    /// via inter-processor interrupts) — Section 5.5.
    #[must_use]
    pub fn soft() -> CostModel {
        CostModel {
            soft_trap: Cycles(4000),
            tlb_shootdown: Cycles(2000),
            ..CostModel::base()
        }
    }

    /// Cost of allocating a page frame and (when `victim_valid_blocks >
    /// 0`) replacing its previous occupant: trap + shootdown + map
    /// bookkeeping + per-block flush work.
    #[must_use]
    pub fn page_allocation(&self, victim_valid_blocks: u32) -> Cycles {
        self.soft_trap
            + self.tlb_shootdown
            + self.page_op_base
            + self.block_flush * u64::from(victim_valid_blocks)
    }

    /// Cost of relocating a CC-NUMA page into the page cache: the paper
    /// states relocation "uses similar mechanisms as page
    /// allocation/replacement and incurs the same overheads"; the blocks
    /// flushed are the page's blocks resident in the node's caches.
    #[must_use]
    pub fn page_relocation(&self, flushed_blocks: u32) -> Cycles {
        self.page_allocation(flushed_blocks)
    }

    /// Cost of the initial soft page fault that maps an unmapped page
    /// (no frame replacement, no flush).
    #[must_use]
    pub fn page_fault(&self) -> Cycles {
        self.soft_trap
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_matches_table_2() {
        let c = CostModel::base();
        assert_eq!(c.sram_access, Cycles(8));
        assert_eq!(c.dram_access, Cycles(56));
        assert_eq!(c.local_cache_fill, Cycles(69));
        assert_eq!(c.remote_fetch, Cycles(376));
        assert_eq!(c.soft_trap, Cycles(2000));
        assert_eq!(c.tlb_shootdown, Cycles(200));
    }

    #[test]
    fn allocation_range_is_3000_to_11500() {
        let c = CostModel::base();
        assert_eq!(c.page_allocation(0), Cycles(3000));
        let max = c.page_allocation(128);
        assert!(
            (Cycles(11_000)..=Cycles(11_500)).contains(&max),
            "full-page replacement should approach the paper's 11,500 \
             ceiling, got {max}"
        );
    }

    #[test]
    fn allocation_is_monotone_in_flush_work() {
        let c = CostModel::base();
        let mut prev = Cycles::ZERO;
        for blocks in 0..=128 {
            let cost = c.page_allocation(blocks);
            assert!(cost > prev);
            prev = cost;
        }
    }

    #[test]
    fn soft_system_triples_page_overhead() {
        let base = CostModel::base().page_allocation(0);
        let soft = CostModel::soft().page_allocation(0);
        // 6800 / 3000 ≈ 2.3; with typical flush work the ratio the paper
        // quotes is "approximately 3 times higher".
        let ratio = soft.0 as f64 / base.0 as f64;
        assert!((2.0..=3.2).contains(&ratio), "ratio {ratio}");
        // Table 2 conversions: 10 µs trap, 5 µs shootdown.
        assert_eq!(CostModel::soft().soft_trap, Cycles(4000));
        assert_eq!(CostModel::soft().tlb_shootdown, Cycles(2000));
    }

    #[test]
    fn relocation_equals_allocation_mechanism() {
        let c = CostModel::base();
        for blocks in [0u32, 4, 64, 128] {
            assert_eq!(c.page_relocation(blocks), c.page_allocation(blocks));
        }
    }

    #[test]
    fn page_fault_is_one_soft_trap() {
        assert_eq!(CostModel::base().page_fault(), Cycles(2000));
        assert_eq!(CostModel::soft().page_fault(), Cycles(4000));
    }

    #[test]
    fn default_is_base() {
        assert_eq!(CostModel::default(), CostModel::base());
    }
}
