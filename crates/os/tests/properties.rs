//! Property-based tests for the OS model.

use proptest::prelude::*;
use rnuma_mem::addr::{NodeId, VPage};
use rnuma_os::{CostModel, PageManager};

proptest! {
    /// Page homes are stable: once fixed, every subsequent toucher sees
    /// the same home.
    #[test]
    fn first_touch_home_is_stable(touches in prop::collection::vec((0u64..100, 0u8..8), 1..300)) {
        let mut pm = PageManager::new(8);
        pm.arm_first_touch();
        let mut fixed: std::collections::HashMap<u64, NodeId> = Default::default();
        for (page, node) in touches {
            let home = pm.home_on_touch(VPage(page), NodeId(node));
            let expect = *fixed.entry(page).or_insert(home);
            prop_assert_eq!(home, expect, "page {} moved", page);
            prop_assert_eq!(pm.home_of(VPage(page)), Some(expect));
        }
    }

    /// The census always sums to the number of homed pages.
    #[test]
    fn census_sums_to_pages(touches in prop::collection::vec((0u64..64, 0u8..4), 0..200)) {
        let mut pm = PageManager::new(4);
        pm.arm_first_touch();
        for (page, node) in touches {
            pm.home_on_touch(VPage(page), NodeId(node));
        }
        prop_assert_eq!(pm.census().iter().sum::<usize>(), pm.pages());
    }

    /// Allocation cost is affine in the flush work and bounded by the
    /// paper's 3000–11500 range for up to a full page of blocks.
    #[test]
    fn allocation_cost_affine_and_in_range(blocks in 0u32..=128) {
        let c = CostModel::base();
        let cost = c.page_allocation(blocks);
        let base = c.page_allocation(0);
        prop_assert_eq!(cost, base + c.block_flush * u64::from(blocks));
        prop_assert!(cost.0 >= 3000);
        prop_assert!(cost.0 <= 11_500);
    }

    /// SOFT always dominates base for the same flush work.
    #[test]
    fn soft_dominates_base(blocks in 0u32..=128) {
        prop_assert!(
            CostModel::soft().page_allocation(blocks)
                > CostModel::base().page_allocation(blocks)
        );
    }
}
