//! Property-based tests for the directory protocol's invariants.

use proptest::prelude::*;
use rnuma_mem::addr::{NodeId, VBlock};
use rnuma_mem::l1::L1Cache;
use rnuma_mem::moesi::Moesi;
use rnuma_proto::bus::{snoop, snoop_all, BusRequest};
use rnuma_proto::directory::Directory;
use rnuma_proto::reactive::RefetchCounters;

/// A random protocol operation against one block.
#[derive(Clone, Copy, Debug)]
enum Op {
    Read(u8),
    Write(u8, bool),
    WriteBack(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8).prop_map(Op::Read),
        ((0u8..8), any::<bool>()).prop_map(|(n, h)| Op::Write(n, h)),
        (0u8..8).prop_map(Op::WriteBack),
    ]
}

proptest! {
    /// Directory safety invariant: at any time a block has either one
    /// owner and no sharers, or no owner — never both.
    #[test]
    fn owner_and_sharers_are_mutually_exclusive(ops in prop::collection::vec(arb_op(), 1..200)) {
        let mut dir = Directory::new(NodeId(0));
        let block = VBlock(42);
        for op in ops {
            match op {
                Op::Read(n) => { dir.read(block, NodeId(n)); }
                Op::Write(n, h) => { dir.write(block, NodeId(n), h); }
                Op::WriteBack(n) => { dir.writeback(block, NodeId(n)); }
            }
            let e = dir.entry(block);
            if e.owner.is_some() {
                prop_assert!(e.sharers.is_empty(),
                    "owner {:?} coexists with sharers {}", e.owner, e.sharers);
                prop_assert!(e.was_owner.is_empty());
            }
        }
    }

    /// A node that was just granted a copy is never flagged as a
    /// refetcher on that same grant, and IS flagged if it silently
    /// re-requests.
    #[test]
    fn refetch_flags_only_rerequests(nodes in prop::collection::vec(1u8..8, 1..40)) {
        let mut dir = Directory::new(NodeId(0));
        let block = VBlock(7);
        let mut granted: std::collections::HashSet<u8> = Default::default();
        for n in nodes {
            let out = dir.read(block, NodeId(n));
            prop_assert_eq!(out.refetch, granted.contains(&n),
                "node {} grant state mismatch", n);
            granted.insert(n);
        }
    }

    /// A write wipes every other node's standing: subsequent reads by
    /// previously granted nodes are cold (coherence), not refetches.
    #[test]
    fn write_resets_refetch_state(readers in prop::collection::vec(1u8..8, 1..20), writer in 1u8..8) {
        let mut dir = Directory::new(NodeId(0));
        let block = VBlock(9);
        for &n in &readers {
            dir.read(block, NodeId(n));
        }
        dir.write(block, NodeId(writer), false);
        for &n in &readers {
            if n != writer {
                let out = dir.read(block, NodeId(n));
                prop_assert!(!out.refetch, "node {n} flagged after invalidation");
                break; // only the first re-reader is guaranteed cold
            }
        }
    }

    /// Counters: interrupts fire exactly every `threshold` records for
    /// a single page.
    #[test]
    fn counter_period_is_threshold(threshold in 1u32..200, records in 1u32..1000) {
        let mut c = RefetchCounters::new(threshold);
        let page = rnuma_mem::addr::VPage(3);
        let mut fired = 0u32;
        for _ in 0..records {
            if c.record(page) {
                fired += 1;
            }
        }
        prop_assert_eq!(fired, records / threshold);
        prop_assert_eq!(c.count(page), records % threshold);
    }

    /// Bus snoops preserve the single-writer invariant within a node:
    /// after any sequence, at most one L1 holds a writable copy.
    #[test]
    fn at_most_one_writable_copy(ops in prop::collection::vec((0usize..4, any::<bool>()), 1..100)) {
        let mut l1s: Vec<L1Cache> = (0..4).map(|_| L1Cache::new(1024)).collect();
        let block = VBlock(5);
        for (cpu, is_write) in ops {
            if is_write {
                snoop(&mut l1s, cpu, block, BusRequest::ReadExclusive);
                l1s[cpu].grant_write(block);
            } else if l1s[cpu].state(block) == Moesi::Invalid {
                let result = snoop(&mut l1s, cpu, block, BusRequest::Read);
                let state = if result.peer_had_copy { Moesi::Shared } else { Moesi::Exclusive };
                l1s[cpu].fill(block, state);
            }
            let writable = l1s.iter().filter(|c| c.state(block).can_write()).count();
            prop_assert!(writable <= 1, "{writable} writable copies");
            let owners = l1s.iter().filter(|c| c.state(block).is_owner()).count();
            prop_assert!(owners <= 1, "{owners} owners");
        }
    }

    /// snoop_all behaves like snoop with a phantom issuer: it never
    /// leaves a valid copy after a write request.
    #[test]
    fn snoop_all_write_clears_node(filled in prop::collection::vec(any::<bool>(), 4)) {
        let mut l1s: Vec<L1Cache> = (0..4).map(|_| L1Cache::new(1024)).collect();
        let block = VBlock(6);
        for (l1, &f) in l1s.iter_mut().zip(&filled) {
            if f {
                l1.fill(block, Moesi::Shared);
            }
        }
        snoop_all(&mut l1s, block, BusRequest::ReadExclusive);
        for l1 in &l1s {
            prop_assert_eq!(l1.state(block), Moesi::Invalid);
        }
    }
}
