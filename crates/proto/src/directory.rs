//! The full-map directory at each block's home node.
//!
//! All three machines (CC-NUMA, S-COMA, R-NUMA) run the *same* directory
//! protocol; they differ only in where remote data is cached (Section 2).
//! The directory tracks, per 32-byte block:
//!
//! * the current exclusive **owner**, if any;
//! * the **sharers** mask. The protocol is *non-notifying*: a node that
//!   silently drops a read-only copy stays in the mask, which is exactly
//!   what lets the home detect a read-only *refetch* "by simply keeping
//!   track of when a node requests a block that the directory state
//!   indicates it already has" (Section 3.1);
//! * the **was-owner** mask — the paper's "additional state to indicate
//!   that a processor previously held an exclusive block, but voluntarily
//!   wrote it back", which extends refetch detection to read-write
//!   blocks.
//!
//! Because the simulator resolves each transaction synchronously there
//! are no transient (busy) directory states; the returned
//! [`ReadOutcome`]/[`WriteOutcome`] tells the caller which remote actions
//! (owner fetch, invalidations) to charge and perform.

use rnuma_mem::addr::{NodeId, NodeMask, VBlock, VPage};
use rnuma_mem::paged::PagedMap;

/// Directory record for one block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Entry {
    /// Node holding the block exclusively (possibly dirty).
    pub owner: Option<NodeId>,
    /// Nodes that have been granted read-only copies (non-notifying, so
    /// possibly stale).
    pub sharers: NodeMask,
    /// Nodes that held the block exclusively and voluntarily wrote it
    /// back — the refetch-detection state for read-write data.
    pub was_owner: NodeMask,
}

/// What the home must do to satisfy a read request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadOutcome {
    /// The previous owner, which must be downgraded (its dirty data is
    /// forwarded/flushed home) before data is supplied. `None` when home
    /// memory is current.
    pub fetch_from: Option<NodeId>,
    /// `true` when the directory already shows the requester holding the
    /// block — a capacity/conflict *refetch*, the R-NUMA trigger event.
    pub refetch: bool,
}

/// What the home must do to satisfy a write (read-exclusive or upgrade)
/// request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteOutcome {
    /// The previous owner, which must be invalidated and its dirty data
    /// absorbed. `None` when no foreign owner exists.
    pub fetch_from: Option<NodeId>,
    /// Read-only copies to invalidate (requester excluded).
    pub invalidate: NodeMask,
    /// `true` when the directory already shows the requester holding the
    /// block.
    pub refetch: bool,
}

/// The directory for every block homed at one node.
///
/// # Example
///
/// ```
/// use rnuma_mem::addr::{NodeId, VBlock};
/// use rnuma_proto::directory::Directory;
///
/// let mut dir = Directory::new(NodeId(0));
/// let first = dir.read(VBlock(7), NodeId(1));
/// assert!(!first.refetch);
/// // Node 1 silently loses the copy to a conflict, then asks again:
/// let again = dir.read(VBlock(7), NodeId(1));
/// assert!(again.refetch);
/// ```
#[derive(Clone, Debug)]
pub struct Directory {
    home: NodeId,
    /// Per-block records in a paged dense array: directory traffic
    /// clusters within pages (fetch/flush/relocation walk a page's
    /// blocks back to back), so one page-level hash probe plus a dense
    /// index beats a per-block hash probe.
    entries: PagedMap<Entry>,
    reads: u64,
    writes: u64,
    refetches: u64,
}

impl Directory {
    /// Creates an empty directory for blocks homed at `home`.
    #[must_use]
    pub fn new(home: NodeId) -> Directory {
        Directory {
            home,
            entries: PagedMap::new(),
            reads: 0,
            writes: 0,
            refetches: 0,
        }
    }

    /// The node this directory belongs to.
    #[must_use]
    pub fn home(&self) -> NodeId {
        self.home
    }

    /// Current state of `block` (all-empty when never referenced).
    #[must_use]
    pub fn entry(&self, block: VBlock) -> Entry {
        self.entries.get(block).copied().unwrap_or_default()
    }

    /// Handles a read (`GetShared`) from `requester` (which may be the
    /// home node itself — local reads at the home consult the same
    /// directory).
    pub fn read(&mut self, block: VBlock, requester: NodeId) -> ReadOutcome {
        self.reads += 1;
        let e = self.entries.entry_or_default(block);
        let refetch = e.sharers.contains(requester)
            || e.was_owner.contains(requester)
            || e.owner == Some(requester);
        let fetch_from = match e.owner {
            Some(o) if o != requester => Some(o),
            _ => None,
        };
        // Previous owner (if foreign) is downgraded to a sharer; home
        // memory becomes current.
        if let Some(o) = fetch_from {
            e.sharers.insert(o);
        }
        e.owner = None;
        e.sharers.insert(requester);
        // A node that re-acquires the block sheds its was-owner mark:
        // the refetch has been observed and counted once.
        e.was_owner.remove(requester);
        if refetch {
            self.refetches += 1;
        }
        ReadOutcome {
            fetch_from,
            refetch,
        }
    }

    /// Handles a write (`GetExclusive` or `Upgrade`) from `requester`.
    ///
    /// `holds_copy` distinguishes an *upgrade* — the node still holds a
    /// read-only copy and asks only for permission — from a re-fetch of a
    /// block it lost. Only the latter is a capacity/conflict refetch: an
    /// upgrading node never evicted anything, so finding it in the
    /// sharers mask is expected, not a refetch signal.
    pub fn write(&mut self, block: VBlock, requester: NodeId, holds_copy: bool) -> WriteOutcome {
        self.writes += 1;
        let e = self.entries.entry_or_default(block);
        let refetch = !holds_copy
            && (e.sharers.contains(requester)
                || e.was_owner.contains(requester)
                || e.owner == Some(requester));
        let fetch_from = match e.owner {
            Some(o) if o != requester => Some(o),
            _ => None,
        };
        let invalidate = e.sharers.without(requester);
        // After a write, every other copy is gone. Clearing the sharers
        // and was-owner masks matters for correctness of refetch
        // detection: a node re-reading after being invalidated suffers a
        // *coherence* miss, not a capacity/conflict refetch, and must not
        // trip the R-NUMA counter (Section 3).
        e.owner = Some(requester);
        e.sharers.clear();
        e.was_owner.clear();
        if refetch {
            self.refetches += 1;
        }
        WriteOutcome {
            fetch_from,
            invalidate,
            refetch,
        }
    }

    /// Handles a voluntary write-back (or notification of a clean
    /// exclusive eviction) from the current owner: the node keeps no
    /// copy but is remembered in `was_owner` so its next fetch counts as
    /// a refetch.
    ///
    /// Write-backs racing with a concurrent ownership change are ignored
    /// (the directory no longer shows the node as owner) — matching the
    /// late write-back acknowledgement of real protocols.
    pub fn writeback(&mut self, block: VBlock, from: NodeId) {
        if let Some(e) = self.entries.get_mut(block) {
            if e.owner == Some(from) {
                e.owner = None;
                e.was_owner.insert(from);
            }
        }
    }

    /// Forgets that `node` holds any block of `page` read-only *without*
    /// marking refetch state. Used when invalidations are performed for
    /// reasons the refetch counter must not see.
    pub fn drop_sharer(&mut self, block: VBlock, node: NodeId) {
        if let Some(e) = self.entries.get_mut(block) {
            e.sharers.remove(node);
            e.was_owner.remove(node);
        }
    }

    /// Total reads served.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total writes served.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total refetches detected.
    #[must_use]
    pub fn refetches(&self) -> u64 {
        self.refetches
    }

    /// Number of blocks with directory state.
    #[must_use]
    pub fn tracked_blocks(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over the entries of one page (diagnostics), in ascending
    /// block order.
    pub fn page_entries(&self, page: VPage) -> impl Iterator<Item = (VBlock, Entry)> + '_ {
        self.entries.page_entries(page).map(|(b, &e)| (b, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOME: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);
    const N2: NodeId = NodeId(2);
    const B: VBlock = VBlock(100);

    fn dir() -> Directory {
        Directory::new(HOME)
    }

    #[test]
    fn first_read_is_not_a_refetch() {
        let mut d = dir();
        let out = d.read(B, N1);
        assert!(!out.refetch);
        assert_eq!(out.fetch_from, None);
        assert!(d.entry(B).sharers.contains(N1));
    }

    #[test]
    fn reread_after_silent_drop_is_a_refetch() {
        let mut d = dir();
        d.read(B, N1);
        // Non-notifying protocol: N1 conflicts the block out silently.
        let out = d.read(B, N1);
        assert!(out.refetch, "read-only refetch detection is trivial");
        assert_eq!(d.refetches(), 1);
    }

    #[test]
    fn voluntary_writeback_enables_rw_refetch_detection() {
        let mut d = dir();
        d.write(B, N1, false);
        d.writeback(B, N1);
        let e = d.entry(B);
        assert_eq!(e.owner, None);
        assert!(e.was_owner.contains(N1));
        let out = d.write(B, N1, false);
        assert!(out.refetch, "the paper's extra state at work");
    }

    #[test]
    fn reread_by_same_owner_counts_as_refetch() {
        let mut d = dir();
        d.write(B, N1, false);
        // N1 silently dropped a clean-exclusive copy, then reads again.
        let out = d.read(B, N1);
        assert!(out.refetch);
        assert_eq!(out.fetch_from, None, "no foreign owner to fetch from");
    }

    #[test]
    fn coherence_misses_are_not_refetches() {
        let mut d = dir();
        d.read(B, N1); // N1 shares
        let w = d.write(B, N2, false); // N2 invalidates N1
        assert!(w.invalidate.contains(N1));
        assert!(!w.refetch);
        // N1 rereads after invalidation: a coherence miss, NOT a refetch.
        let out = d.read(B, N1);
        assert!(!out.refetch, "invalidation cleared N1 from the masks");
        // But the *next* silent-drop reread is one again.
        let out = d.read(B, N1);
        assert!(out.refetch);
    }

    #[test]
    fn read_from_foreign_owner_is_three_hop() {
        let mut d = dir();
        d.write(B, N2, false);
        let out = d.read(B, N1);
        assert_eq!(out.fetch_from, Some(N2));
        let e = d.entry(B);
        assert_eq!(e.owner, None);
        assert!(e.sharers.contains(N1) && e.sharers.contains(N2));
    }

    #[test]
    fn write_collects_all_invalidations() {
        let mut d = dir();
        d.read(B, N1);
        d.read(B, N2);
        let out = d.write(B, HOME, false);
        assert!(out.invalidate.contains(N1) && out.invalidate.contains(N2));
        assert_eq!(out.invalidate.count(), 2);
        assert_eq!(d.entry(B).owner, Some(HOME));
        assert!(d.entry(B).sharers.is_empty());
    }

    #[test]
    fn getx_after_losing_copy_is_a_refetch_but_upgrade_is_not() {
        let mut d = dir();
        d.read(B, N1);
        // N1 lost its copy to a conflict, then writes: a refetch.
        let out = d.write(B, N1, false);
        assert!(out.refetch);
        assert_eq!(out.invalidate.count(), 0);

        // Reset: N1 reads again, then *upgrades* while still holding the
        // copy — not a refetch (nothing was evicted).
        let mut d = dir();
        d.read(B, N1);
        let out = d.write(B, N1, true);
        assert!(!out.refetch);
        assert_eq!(d.entry(B).owner, Some(N1));
    }

    #[test]
    fn stale_writeback_is_ignored() {
        let mut d = dir();
        d.write(B, N1, false);
        d.write(B, N2, false); // ownership moved
        d.writeback(B, N1); // late arrival
        assert_eq!(d.entry(B).owner, Some(N2));
        assert!(!d.entry(B).was_owner.contains(N1));
    }

    #[test]
    fn drop_sharer_suppresses_refetch_tracking() {
        let mut d = dir();
        d.read(B, N1);
        d.drop_sharer(B, N1);
        let out = d.read(B, N1);
        assert!(!out.refetch);
    }

    #[test]
    fn counters_accumulate() {
        let mut d = dir();
        d.read(B, N1);
        d.read(B, N1);
        d.write(B, N2, false);
        assert_eq!(d.reads(), 2);
        assert_eq!(d.writes(), 1);
        assert_eq!(d.refetches(), 1);
        assert_eq!(d.tracked_blocks(), 1);
    }

    #[test]
    fn page_entries_iterates_tracked_blocks() {
        let mut d = dir();
        let page = VPage(3);
        d.read(page.block(0), N1);
        d.read(page.block(5), N1);
        d.read(VPage(4).block(0), N1);
        assert_eq!(d.page_entries(page).count(), 2);
    }
}
