//! Directory-based cache-coherence protocol for the Reactive NUMA
//! reproduction.
//!
//! All three machines the paper compares — CC-NUMA, S-COMA, and R-NUMA —
//! run the *same* directory protocol over the same interconnect; they
//! differ only in where each node caches remote data. This crate holds
//! the protocol machinery shared by all of them:
//!
//! * [`directory`] — the full-map, non-notifying directory with the
//!   paper's voluntary-write-back ("was-owner") state, which makes
//!   capacity/conflict *refetches* detectable at the home for both
//!   read-only and read-write blocks (Section 3.1);
//! * [`bus`] — the intra-node snoopy MOESI bus, including the MBus
//!   no-cache-to-cache-for-unowned-blocks quirk the paper models;
//! * [`reactive`] — the per-node, per-page refetch counters that trigger
//!   R-NUMA's relocation interrupt;
//! * [`effect`] — directory transitions expressed as replayable,
//!   canonically ordered messages, so the sharded executor can buffer a
//!   cross-shard eviction write-back and apply it deterministically at
//!   an epoch barrier.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bus;
pub mod directory;
pub mod effect;
pub mod reactive;

pub use bus::{snoop, BusRequest, SnoopResult};
pub use directory::{Directory, Entry, ReadOutcome, WriteOutcome};
pub use effect::{DirEffect, EffectKey, EffectMsg};
pub use reactive::RefetchCounters;
