//! Replayable cross-shard protocol effects.
//!
//! The sharded machine executor (`rnuma::shard`) lets each shard drive
//! its own nodes' references concurrently within an *epoch* (one
//! contained execution window). The one protocol action a shard can take
//! against a node it does not own is the posted write-back that
//! accompanies an eviction: the victim's dirty blocks go home, and the
//! home's directory must record the voluntary write-back (that record is
//! what makes the victim's next fetch a detectable *refetch*).
//!
//! Instead of mutating the foreign directory in place — which would race
//! with the owning shard and make results depend on thread scheduling —
//! the shard buffers the directory transition as an [`EffectMsg`]. At
//! the epoch barrier the coordinator sorts all shards' buffers by the
//! canonical [`EffectKey`] order `(epoch, home node, sequence number)`
//! and applies them with [`Directory::apply`]. Because a page whose
//! footprint spans shards — or has ever been written, under the
//! executor's read-shared relaxation — is never executed inside a
//! contained window, nothing reads the deferred state before the
//! barrier, so the replay reproduces the serial execution's directory
//! bit-for-bit (see `docs/DETERMINISM.md`).
//!
//! **Keys stay exact under the pipelined executor.** Overlapping the
//! next window's *scan* with the current window's execution produces
//! no effects: only execution emits them, effect buffers still drain
//! at their own window's barrier (every batch holds exactly one
//! epoch), and `seq` is assigned at bucketing time from the op's
//! global trace position — which the prefetched scan reads from the
//! trace, not from any clock that could drift under overlap. A
//! prefetched scan that is invalidated by fault recovery is discarded
//! before it ever reaches bucketing, so no key from a speculative scan
//! can be emitted at all.
//!
//! **Keys stay exact under the shared-log executor too.** The log
//! engine retires the *global* epoch barrier: spans are scanned
//! up-front into an append-only log and each shard advances its own
//! consumption cursor, pausing only at per-page *ownership-epoch*
//! fences (a page's footprint entry stamps the epoch of its last
//! writer-set transition; an access that would cross an ownership
//! boundary is by construction a blocking op, so it sits at a fence
//! *after* the span that owns the transition). Exactness then rests on
//! the same two legs as before: `epoch` is the span's position in the
//! log — fixed at scan time, identical to what the lockstep engines
//! count one barrier at a time — and `seq` is still the global trace
//! position, so a span's effects sort identically no matter how far
//! individual shards had run ahead when they were emitted. Epochs stay
//! the key's major component precisely so that per-shard consumption
//! order (which is *not* canonical) can never leak into application
//! order (which is).

use crate::directory::Directory;
use rnuma_mem::addr::{NodeId, VBlock};

/// Canonical ordering key for cross-shard effect application.
///
/// Sorting by `(epoch, home, seq)` groups each barrier's effects by the
/// directory they target and replays same-home effects in issue order —
/// `seq` is the reference's global position in the trace, so two effects
/// against the same home apply exactly as a serial execution would have
/// applied them. Effects against *different* homes touch disjoint
/// directories and commute, which is why grouping by home first is
/// harmless and keeps the application loop cache-friendly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EffectKey {
    /// The execution window the effect was buffered in.
    pub epoch: u64,
    /// The node whose directory the effect targets.
    pub home: NodeId,
    /// Global trace sequence number of the reference that produced it.
    pub seq: u64,
}

/// A directory transition a shard must replay at a remote home.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirEffect {
    /// A voluntary (eviction) write-back of `block` from `from`: the
    /// home clears `from`'s ownership and remembers it in the
    /// `was_owner` refetch-detection mask.
    WriteBack {
        /// The block written back.
        block: VBlock,
        /// The evicting node.
        from: NodeId,
    },
}

/// One buffered cross-shard effect: the canonical key plus the
/// transition to replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EffectMsg {
    /// Where this effect sorts in the canonical application order.
    pub key: EffectKey,
    /// The directory transition to apply at `key.home`.
    pub effect: DirEffect,
}

impl Directory {
    /// Replays a buffered cross-shard effect against this directory.
    ///
    /// Must be called in canonical [`EffectKey`] order; the caller is
    /// responsible for routing the message to the directory of
    /// `key.home`.
    pub fn apply(&mut self, effect: DirEffect) {
        match effect {
            DirEffect::WriteBack { block, from } => self.writeback(block, from),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_is_epoch_home_seq() {
        let k = |epoch, home, seq| EffectKey {
            epoch,
            home: NodeId(home),
            seq,
        };
        let mut keys = vec![k(1, 0, 9), k(0, 3, 5), k(0, 1, 7), k(0, 1, 2), k(0, 3, 1)];
        keys.sort_unstable();
        assert_eq!(
            keys,
            vec![k(0, 1, 2), k(0, 1, 7), k(0, 3, 1), k(0, 3, 5), k(1, 0, 9)]
        );
    }

    /// Epoch is the key's major component: effects of consecutive
    /// windows never interleave, no matter how `home`/`seq` compare —
    /// the invariant that makes per-window barrier draining and the
    /// pipelined executor's overlapped scans composable (a window's
    /// batch sorts identically whether or not the next window's scan
    /// already ran).
    #[test]
    fn epochs_never_interleave_in_canonical_order() {
        let k = |epoch, home, seq| EffectKey {
            epoch,
            home: NodeId(home),
            seq,
        };
        // Later epoch, but smaller home and seq everywhere.
        let mut keys = vec![k(7, 0, 0), k(6, 31, u64::MAX), k(6, 0, 3)];
        keys.sort_unstable();
        assert_eq!(keys, vec![k(6, 0, 3), k(6, 31, u64::MAX), k(7, 0, 0)]);
        assert!(keys.windows(2).all(|w| w[0].epoch <= w[1].epoch));
    }

    /// Shards consuming the shared log at different paces emit their
    /// spans' effects in arbitrary *arrival* order; one sort by the
    /// canonical key must reassemble the exact serial application
    /// order across multiple spans — span (epoch) major, then home,
    /// then global trace position — regardless of which shard ran
    /// ahead.
    #[test]
    fn multi_span_log_consumption_reassembles_canonical_order() {
        let k = |epoch, home, seq| EffectKey {
            epoch,
            home: NodeId(home),
            seq,
        };
        // Shard A ran two spans ahead (epochs 5..=7 at home 0); shard B
        // lagged in epoch 5 (home 1). Arrival order interleaves them
        // worst-case: late-epoch effects first, seqs shuffled.
        let mut arrived = vec![
            k(7, 0, 900),
            k(5, 1, 12),
            k(6, 0, 400),
            k(5, 0, 30),
            k(5, 1, 4),
            k(5, 0, 7),
            k(6, 0, 350),
        ];
        arrived.sort_unstable();
        assert_eq!(
            arrived,
            vec![
                k(5, 0, 7),
                k(5, 0, 30),
                k(5, 1, 4),
                k(5, 1, 12),
                k(6, 0, 350),
                k(6, 0, 400),
                k(7, 0, 900),
            ]
        );
    }

    #[test]
    fn applied_writeback_matches_direct_writeback() {
        let block = VBlock(42);
        let owner = NodeId(3);
        // Direct path.
        let mut direct = Directory::new(NodeId(0));
        direct.write(block, owner, false);
        direct.writeback(block, owner);
        // Replayed path.
        let mut replayed = Directory::new(NodeId(0));
        replayed.write(block, owner, false);
        replayed.apply(DirEffect::WriteBack { block, from: owner });
        assert_eq!(direct.entry(block), replayed.entry(block));
        // Both detect the next fetch as a refetch.
        assert!(replayed.read(block, owner).refetch);
    }
}
