//! The R-NUMA reactive refetch counters.
//!
//! "We assume that each R-NUMA RAD maintains a set of per-page counters
//! for its node and generates an interrupt when the count exceeds a
//! preset threshold" (Section 3.1). [`RefetchCounters`] is that hardware:
//! one saturating counter per remote page, compared against the
//! relocation threshold `T` on every capacity/conflict refetch.

use rnuma_mem::addr::VPage;
use rnuma_mem::fxmap::FxMap;

/// Per-node, per-page refetch counters with a relocation threshold.
///
/// # Example
///
/// ```
/// use rnuma_mem::addr::VPage;
/// use rnuma_proto::reactive::RefetchCounters;
///
/// let mut counters = RefetchCounters::new(3);
/// assert!(!counters.record(VPage(1)));
/// assert!(!counters.record(VPage(1)));
/// assert!(counters.record(VPage(1)), "third refetch crosses T=3");
/// ```
#[derive(Clone, Debug)]
pub struct RefetchCounters {
    threshold: u32,
    counts: FxMap<VPage, u32>,
    interrupts: u64,
    total_refetches: u64,
}

impl RefetchCounters {
    /// Creates counters with relocation threshold `threshold`
    /// (the paper's default is 64).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero — a zero threshold would relocate
    /// every page on its first refetch *before* any count existed, which
    /// the paper's model (`T >= 1`) excludes.
    #[must_use]
    pub fn new(threshold: u32) -> RefetchCounters {
        assert!(threshold > 0, "relocation threshold must be at least 1");
        RefetchCounters {
            threshold,
            counts: FxMap::new(),
            interrupts: 0,
            total_refetches: 0,
        }
    }

    /// The relocation threshold `T`.
    #[must_use]
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Records one refetch for `page`. Returns `true` when the count
    /// reaches the threshold — the RAD raises the relocation interrupt
    /// and the counter resets (the page is about to leave CC-NUMA mode).
    pub fn record(&mut self, page: VPage) -> bool {
        self.total_refetches += 1;
        let count = self.counts.entry_or_default(page);
        *count = count.saturating_add(1);
        if *count >= self.threshold {
            self.counts.remove(page);
            self.interrupts += 1;
            true
        } else {
            false
        }
    }

    /// Current count for `page` (0 when never refetched).
    #[must_use]
    pub fn count(&self, page: VPage) -> u32 {
        self.counts.get(page).copied().unwrap_or(0)
    }

    /// Clears the counter for `page` (page replaced or relocated by
    /// other means; its history no longer applies).
    pub fn reset(&mut self, page: VPage) {
        self.counts.remove(page);
    }

    /// Number of relocation interrupts raised.
    #[must_use]
    pub fn interrupts(&self) -> u64 {
        self.interrupts
    }

    /// Total refetches recorded (including those below threshold).
    #[must_use]
    pub fn total_refetches(&self) -> u64 {
        self.total_refetches
    }

    /// Number of pages with a live (nonzero) counter.
    #[must_use]
    pub fn live_pages(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_per_page() {
        let mut c = RefetchCounters::new(64);
        for _ in 0..10 {
            assert!(!c.record(VPage(1)));
        }
        c.record(VPage(2));
        assert_eq!(c.count(VPage(1)), 10);
        assert_eq!(c.count(VPage(2)), 1);
        assert_eq!(c.count(VPage(3)), 0);
        assert_eq!(c.total_refetches(), 11);
        assert_eq!(c.live_pages(), 2);
    }

    #[test]
    fn threshold_crossing_raises_interrupt_and_resets() {
        let mut c = RefetchCounters::new(64);
        for i in 1..64 {
            assert!(!c.record(VPage(5)), "refetch {i} below threshold");
        }
        assert!(c.record(VPage(5)), "64th refetch crosses T=64");
        assert_eq!(c.interrupts(), 1);
        assert_eq!(c.count(VPage(5)), 0, "counter cleared after interrupt");
        // The page can accumulate again from scratch (it may have been
        // evicted from the page cache and returned to CC-NUMA mode).
        assert!(!c.record(VPage(5)));
    }

    #[test]
    fn threshold_one_relocates_on_first_refetch() {
        let mut c = RefetchCounters::new(1);
        assert!(c.record(VPage(9)));
        assert_eq!(c.interrupts(), 1);
    }

    #[test]
    fn reset_forgets_history() {
        let mut c = RefetchCounters::new(4);
        c.record(VPage(1));
        c.record(VPage(1));
        c.reset(VPage(1));
        assert_eq!(c.count(VPage(1)), 0);
        assert!(!c.record(VPage(1)));
        assert_eq!(c.interrupts(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threshold_panics() {
        let _ = RefetchCounters::new(0);
    }
}
