//! Intra-node snoopy MOESI bus transactions.
//!
//! Within each SMP node, a 100-MHz split-transaction bus keeps the four
//! processor caches consistent with a snoopy MOESI protocol modeled
//! after the SPARC MBus (Section 4). This module implements the snoop
//! side: given the node's L1 array, apply one bus transaction issued by
//! one CPU and report who supplied the data.
//!
//! The MBus limitation the paper calls out is preserved: only an *owner*
//! (`M`/`O`) supplies data cache-to-cache. A block cached read-only by a
//! peer is **not** supplied by that peer; the request falls through to
//! local memory — or, for a remote page, to the RAD and possibly all the
//! way to the home node "even if there are copies of the block in other
//! processor caches on the node".

use rnuma_mem::addr::VBlock;
use rnuma_mem::l1::L1Cache;

/// A bus transaction kind, as issued by a CPU miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BusRequest {
    /// Read miss: wants a readable copy.
    Read,
    /// Write miss: wants an exclusive copy (read-exclusive).
    ReadExclusive,
    /// Store to a resident read-only copy: wants permission only.
    Upgrade,
}

/// The outcome of snooping one transaction across the node's caches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnoopResult {
    /// A peer cache owned the block and supplied it cache-to-cache.
    pub supplied_by_cache: bool,
    /// Some peer held a copy in any valid state before the transaction.
    pub peer_had_copy: bool,
    /// A peer's dirty copy was absorbed (read: by downgrade to `O`;
    /// write: by invalidation transferring the dirty data).
    pub dirty_absorbed: bool,
}

/// Applies `request` for `block`, issued by the CPU at `issuer` (an index
/// into `l1s`), to every *other* cache on the node's bus.
///
/// The issuer's own cache is untouched; the caller installs the fill or
/// upgrade there after deciding where the data comes from.
///
/// # Panics
///
/// Panics if `issuer` is out of range.
pub fn snoop(
    l1s: &mut [L1Cache],
    issuer: usize,
    block: VBlock,
    request: BusRequest,
) -> SnoopResult {
    assert!(issuer < l1s.len(), "issuer {issuer} out of range");
    let mut result = SnoopResult::default();
    for (i, l1) in l1s.iter_mut().enumerate() {
        if i == issuer {
            continue;
        }
        if l1.state(block).is_valid() {
            result.peer_had_copy = true;
        }
        match request {
            BusRequest::Read => {
                if l1.snoop_read(block) {
                    result.supplied_by_cache = true;
                    result.dirty_absorbed = true;
                }
            }
            BusRequest::ReadExclusive | BusRequest::Upgrade => {
                if l1.snoop_write(block) {
                    result.dirty_absorbed = true;
                }
            }
        }
    }
    result
}

/// Applies `request` for `block` issued by a non-CPU bus agent (the RAD
/// servicing a request from another node): every cache on the bus is
/// snooped.
pub fn snoop_all(l1s: &mut [L1Cache], block: VBlock, request: BusRequest) -> SnoopResult {
    let mut result = SnoopResult::default();
    for l1 in l1s.iter_mut() {
        if l1.state(block).is_valid() {
            result.peer_had_copy = true;
        }
        match request {
            BusRequest::Read => {
                if l1.snoop_read(block) {
                    result.supplied_by_cache = true;
                    result.dirty_absorbed = true;
                }
            }
            BusRequest::ReadExclusive | BusRequest::Upgrade => {
                if l1.snoop_write(block) {
                    result.dirty_absorbed = true;
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnuma_mem::moesi::Moesi;

    fn node() -> Vec<L1Cache> {
        (0..4).map(|_| L1Cache::new(8 * 1024)).collect()
    }

    const B: VBlock = VBlock(42);

    #[test]
    fn owner_supplies_on_read() {
        let mut l1s = node();
        l1s[2].fill(B, Moesi::Modified);
        let r = snoop(&mut l1s, 0, B, BusRequest::Read);
        assert!(r.supplied_by_cache);
        assert!(r.dirty_absorbed);
        assert_eq!(l1s[2].state(B), Moesi::Owned, "owner keeps dirty copy as O");
    }

    #[test]
    fn mbus_quirk_shared_copy_does_not_supply() {
        let mut l1s = node();
        l1s[1].fill(B, Moesi::Shared);
        let r = snoop(&mut l1s, 0, B, BusRequest::Read);
        assert!(!r.supplied_by_cache, "S copies never supply on MBus");
        assert!(r.peer_had_copy);
        assert_eq!(l1s[1].state(B), Moesi::Shared);
    }

    #[test]
    fn exclusive_peer_downgrades_to_shared_without_supplying() {
        let mut l1s = node();
        l1s[3].fill(B, Moesi::Exclusive);
        let r = snoop(&mut l1s, 0, B, BusRequest::Read);
        assert!(!r.supplied_by_cache);
        assert_eq!(l1s[3].state(B), Moesi::Shared);
        assert!(!r.dirty_absorbed);
    }

    #[test]
    fn write_invalidates_all_peers() {
        let mut l1s = node();
        l1s[1].fill(B, Moesi::Shared);
        l1s[2].fill(B, Moesi::Owned);
        l1s[3].fill(B, Moesi::Shared);
        let r = snoop(&mut l1s, 0, B, BusRequest::ReadExclusive);
        assert!(r.dirty_absorbed, "O copy transferred to writer");
        for (i, l1) in l1s.iter().enumerate().skip(1) {
            assert_eq!(l1.state(B), Moesi::Invalid, "cache {i}");
        }
    }

    #[test]
    fn upgrade_only_invalidates_others() {
        let mut l1s = node();
        l1s[0].fill(B, Moesi::Shared);
        l1s[1].fill(B, Moesi::Shared);
        let r = snoop(&mut l1s, 0, B, BusRequest::Upgrade);
        assert!(r.peer_had_copy);
        assert!(!r.dirty_absorbed);
        assert_eq!(l1s[0].state(B), Moesi::Shared, "issuer untouched");
        assert_eq!(l1s[1].state(B), Moesi::Invalid);
    }

    #[test]
    fn empty_bus_reports_nothing() {
        let mut l1s = node();
        let r = snoop(&mut l1s, 0, B, BusRequest::Read);
        assert_eq!(r, SnoopResult::default());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_issuer_panics() {
        let mut l1s = node();
        snoop(&mut l1s, 9, B, BusRequest::Read);
    }
}
