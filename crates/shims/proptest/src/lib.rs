//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace ships
//! a minimal, dependency-free implementation of the `proptest` API
//! subset its tests use: the [`proptest!`] macro, integer-range / tuple
//! / `Just` / `prop_oneof!` / `prop::collection::vec` strategies,
//! `any::<T>()`, `.prop_map`, and the `prop_assert*` family.
//!
//! Sampling is driven by a deterministic splitmix64 stream seeded per
//! test, so failures reproduce exactly across runs and machines. This
//! trades proptest's shrinking and persistence for hermetic builds; the
//! assertion semantics are unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Deterministic sampling stream handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a seed.
    #[must_use]
    pub fn seeded(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x5EED_1234_ABCD_9876,
        }
    }

    /// Next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling range");
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % bound
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<T, S: Strategy<Value = T> + ?Sized> Strategy for Box<S> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<T, S: Strategy<Value = T> + ?Sized> Strategy for &S {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Wrapping arithmetic keeps signed ranges correct: the
                // two's-complement span and offset round-trip through u64.
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                let span = hi.wrapping_sub(lo).wrapping_add(1);
                // span == 0 means the range covers the whole domain.
                let offset = if span == 0 { rng.next_u64() } else { rng.below(span) };
                lo.wrapping_add(offset) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T` (`any::<bool>()` etc.).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Uniform choice among boxed alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<T> Union<T> {
    /// Builds a union from its alternatives.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive-start, exclusive-end length specification for [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange {
                start: exact,
                end: exact + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// Strategy for vectors with lengths drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// A vector of `element` values with a length in `len` (a range or
    /// an exact count).
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Mirrors proptest's `prop` facade module.
pub mod prop {
    pub use crate::collection;
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 128 }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Seed per test name so different properties explore
                // different streams but each is reproducible.
                let seed = stringify!($name)
                    .bytes()
                    .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
                    });
                let mut rng = $crate::TestRng::seeded(seed);
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($arm) as Box<dyn $crate::Strategy<Value = _>>),+])
    };
}

/// Asserts a property-level condition.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts property-level equality.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts property-level inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Expands to `continue`, so it is only valid inside [`proptest!`]
/// bodies (which run inside the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        prop_oneof, proptest, Arbitrary, Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seeded(1);
        for _ in 0..1000 {
            let v = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let u = (0usize..1).sample(&mut rng);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn signed_ranges_stay_in_bounds() {
        let mut rng = TestRng::seeded(7);
        let mut seen_negative = false;
        for _ in 0..1000 {
            let v = (-5i64..5).sample(&mut rng);
            assert!((-5..5).contains(&v));
            seen_negative |= v < 0;
            let w = (-3i32..=3).sample(&mut rng);
            assert!((-3..=3).contains(&w));
        }
        assert!(seen_negative, "negative half of the range never sampled");
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::seeded(2);
        for _ in 0..200 {
            let v = collection::vec(0u8..10, 2..5).sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::seeded(3);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn map_and_tuples_compose() {
        let s = ((0u8..4), any::<bool>()).prop_map(|(n, b)| u32::from(n) * 2 + u32::from(b));
        let mut rng = TestRng::seeded(4);
        for _ in 0..100 {
            assert!(s.sample(&mut rng) < 8);
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0u64..100, flips in collection::vec(any::<bool>(), 0..8)) {
            prop_assume!(x != 99);
            prop_assert!(x < 99);
            prop_assert_eq!(flips.len() < 8, true);
        }
    }
}
