//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace ships
//! a dependency-free benchmark runner implementing the criterion API
//! subset its benches use: `Criterion::benchmark_group`,
//! `bench_function`, `sample_size`, `finish`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — per sample, the closure runs in
//! a calibrated batch and the *minimum* per-iteration time across
//! samples is reported (the minimum is the standard low-noise estimator
//! for micro-benchmarks). No statistics, plots, or baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use std::hint::black_box;
use std::time::Instant;

/// Number of measurement samples taken per benchmark by default.
const DEFAULT_SAMPLES: usize = 20;

/// Target wall-clock time per sample batch, in nanoseconds.
const TARGET_SAMPLE_NS: u128 = 2_000_000;

/// Per-iteration timing harness passed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Best (minimum) observed nanoseconds per iteration.
    pub best_ns_per_iter: f64,
    samples: usize,
}

impl Bencher {
    /// Times `f`, storing the minimum per-iteration cost over all
    /// samples.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Calibrate a batch size that runs ~TARGET_SAMPLE_NS.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t0.elapsed().as_nanos().max(1);
            if elapsed >= TARGET_SAMPLE_NS / 4 || batch >= 1 << 24 {
                break;
            }
            batch *= 8;
        }
        let mut best = f64::INFINITY;
        for _ in 0..self.samples.max(1) {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let per_iter = t0.elapsed().as_nanos() as f64 / batch as f64;
            if per_iter < best {
                best = per_iter;
            }
        }
        self.best_ns_per_iter = best;
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Overrides the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark and prints its result.
    pub fn bench_function<N: std::fmt::Display, F>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut BenchmarkGroup
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            best_ns_per_iter: 0.0,
            samples: self.samples,
        };
        f(&mut b);
        println!(
            "bench {:40} {:>14.1} ns/iter ({:>12.0} iters/s)",
            format!("{}/{}", self.name, id),
            b.best_ns_per_iter,
            if b.best_ns_per_iter > 0.0 {
                1e9 / b.best_ns_per_iter
            } else {
                f64::INFINITY
            }
        );
        self
    }

    /// Ends the group (matching the criterion API; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The benchmark context handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            samples: DEFAULT_SAMPLES,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<N: std::fmt::Display, F>(&mut self, id: N, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut observed = 0.0;
        g.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            observed = b.best_ns_per_iter;
        });
        g.finish();
        assert!(observed > 0.0 && observed.is_finite());
    }
}
