//! Deterministic epoch-sharded machine execution.
//!
//! PR 1 parallelized experiments *across* machines; this module
//! parallelizes the reference walk *within* one machine, with results
//! that are **bit-identical** to the serial walk. The design follows the
//! structure of the problem rather than fighting it:
//!
//! 1. **Traces.** A run is replayed from a [`TraceOp`] stream (recorded
//!    with [`Machine::start_tracing`] or synthesized directly). The
//!    trace fixes the global reference order; `seq` — an op's position
//!    in the trace — is the canonical serialization every execution mode
//!    must reproduce.
//! 2. **Shards.** The machine's nodes are block-partitioned into
//!    contiguous shards; a CPU belongs to its node's shard. R-NUMA is
//!    per-node-reactive, so all per-node protocol state (L1s, bus, RAD,
//!    page table, caches, directory, refetch counters) splits cleanly
//!    along node boundaries.
//! 3. **Epochs (contained windows).** The executor scans the trace
//!    forward, classifying each op against the monotone per-page *shard
//!    footprint* (which shards have ever referenced the page) and the
//!    page's home. An access is **contained** when its page's home lies
//!    in the issuer's shard and its footprint is exactly the issuer's
//!    shard: the entire walk — coherence actions included — then
//!    provably touches only shard-local state, so ops of different
//!    shards commute and each shard may execute its subsequence, in
//!    order, on its own thread. The maximal contained prefix forms one
//!    epoch; the first non-contained op ends it and executes serially
//!    between epochs.
//! 4. **Ordered cross-shard effects.** The one way a contained walk can
//!    reach another shard is the posted write-back of an eviction victim
//!    homed elsewhere. Its network cost is sender-side by construction
//!    ([`NetWindow::post`](rnuma_net::net::NetWindow::post)); the
//!    remote directory transition is buffered as an [`EffectMsg`]
//!    and applied at the
//!    epoch barrier in canonical `(epoch, home, seq)` order. No
//!    contained op can observe that directory state before the barrier
//!    (any op that could is, by the footprint rule, not contained), so
//!    deferral is exact.
//!
//! The full argument for why this reproduces the serial execution
//! bit-for-bit is spelled out in `docs/DETERMINISM.md`; the workspace
//! determinism tests enforce it across the paper's whole figure grid.

use crate::config::{ConfigError, MachineConfig};
use crate::machine::Machine;
use crate::metrics::Metrics;
use rnuma_mem::addr::{CpuId, NodeId, VPage, Va};
use rnuma_mem::block_cache::BlockEviction;
use rnuma_mem::fxmap::FxMap;
use rnuma_proto::effect::EffectMsg;
use rnuma_sim::{Cycles, EpochClock};
use std::ops::Range;

/// One replayable machine-level operation.
///
/// A trace of these is a complete record of a run: replaying it on a
/// fresh machine of the same configuration reproduces the run exactly,
/// serially or sharded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// One memory reference.
    Access {
        /// The issuing CPU.
        cpu: CpuId,
        /// The virtual address referenced.
        va: Va,
        /// `true` for a store.
        write: bool,
    },
    /// Compute time on one CPU.
    Think {
        /// The computing CPU.
        cpu: CpuId,
        /// The duration charged.
        dur: Cycles,
    },
    /// A global barrier across all CPUs.
    Barrier,
    /// Arms first-touch page placement.
    ArmFirstTouch,
}

/// Execution statistics of a sharded run (scheduling diagnostics; these
/// are about the *executor*, not the simulated machine).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Contained windows executed (serial-inline or parallel).
    pub windows: u64,
    /// Windows large enough to fan out across worker threads.
    pub parallel_windows: u64,
    /// Ops executed inside contained windows.
    pub contained_ops: u64,
    /// Ops executed serially between windows (cross-shard accesses,
    /// barriers, first-touch arming).
    pub serialized_ops: u64,
    /// Cross-shard directory effects replayed at epoch barriers.
    pub effects_applied: u64,
}

/// Footprint record of one page: which shards ever referenced it, and
/// its (immutable once fixed) home.
#[derive(Clone, Copy, Debug)]
struct PageInfo {
    shard_mask: u32,
    home: NodeId,
}

/// Upper bound on shards (the footprint mask is a `u32`).
pub const MAX_SHARDS: usize = 32;

/// Contained windows shorter than this run inline on the coordinator —
/// thread fan-out only pays off once a window amortizes the spawn cost.
const DEFAULT_PARALLEL_THRESHOLD: usize = 256;

/// How the scanner classified one op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Class {
    /// Provably shard-contained: may run inside the current window.
    Contained,
    /// Needs the whole machine (cross-shard access or global op): ends
    /// the window and runs serially.
    Blocking,
}

/// A [`Machine`] executed in deterministic node shards.
///
/// # Example
///
/// ```
/// use rnuma::config::{MachineConfig, Protocol};
/// use rnuma::machine::Machine;
/// use rnuma::shard::ShardedMachine;
/// use rnuma_mem::addr::{CpuId, Va};
///
/// let config = MachineConfig::paper_base(Protocol::paper_rnuma());
/// // Record a run...
/// let mut serial = Machine::new(config).unwrap();
/// serial.start_tracing();
/// serial.access(CpuId(0), Va(0x1000), true);
/// serial.access(CpuId(17), Va(0x9000), false);
/// let trace = serial.take_trace();
/// // ...and replay it across 4 shards: the metrics are bit-identical.
/// let mut sharded = ShardedMachine::new(config, 4).unwrap();
/// sharded.run_trace(&trace);
/// assert!(serial.metrics().replay_eq(&sharded.metrics()));
/// ```
#[derive(Debug)]
pub struct ShardedMachine {
    machine: Machine,
    /// Contiguous node range of each shard.
    ranges: Vec<Range<usize>>,
    /// Node index → owning shard.
    shard_of_node: Vec<u8>,
    /// Monotone per-page footprint + resolved home, maintained by the
    /// window scan.
    pages_seen: FxMap<VPage, PageInfo>,
    epochs: EpochClock,
    parallel_threshold: usize,
    // Per-shard scratch, reused across windows.
    shard_metrics: Vec<Metrics>,
    shard_scratch: Vec<Vec<BlockEviction>>,
    shard_effects: Vec<Vec<EffectMsg>>,
    op_buckets: Vec<Vec<(u64, TraceOp)>>,
    stats: ShardStats,
}

impl ShardedMachine {
    /// Builds a fresh machine from `config`, partitioned into `shards`
    /// contiguous node shards (clamped to `1..=min(nodes, MAX_SHARDS)`).
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error, if any.
    pub fn new(config: MachineConfig, shards: usize) -> Result<ShardedMachine, ConfigError> {
        let machine = Machine::new(config)?;
        let nodes = config.nodes as usize;
        let shards = shards.clamp(1, nodes.min(MAX_SHARDS));
        // Block-partition the nodes (same scheme as Runner::block_partition).
        let ranges: Vec<Range<usize>> = (0..shards)
            .map(|s| (nodes * s / shards)..(nodes * (s + 1) / shards))
            .collect();
        let mut shard_of_node = vec![0u8; nodes];
        for (s, r) in ranges.iter().enumerate() {
            for n in r.clone() {
                shard_of_node[n] = s as u8;
            }
        }
        Ok(ShardedMachine {
            machine,
            shard_of_node,
            pages_seen: FxMap::new(),
            epochs: EpochClock::new(),
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            shard_metrics: (0..shards).map(|_| Metrics::default()).collect(),
            shard_scratch: (0..shards).map(|_| Vec::new()).collect(),
            shard_effects: (0..shards).map(|_| Vec::new()).collect(),
            op_buckets: (0..shards).map(|_| Vec::new()).collect(),
            stats: ShardStats::default(),
            ranges,
        })
    }

    /// Number of shards the node space is partitioned into.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.ranges.len()
    }

    /// Executor scheduling statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> ShardStats {
        self.stats
    }

    /// Overrides the minimum window size for thread fan-out (benchmarks
    /// and tests; the default suits production runs).
    pub fn set_parallel_threshold(&mut self, ops: usize) {
        self.parallel_threshold = ops.max(1);
    }

    /// The underlying machine (read-only; diagnostics).
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// A snapshot of the run metrics so far.
    ///
    /// Valid between [`ShardedMachine::run_trace`] calls (shard-local
    /// metrics are folded in at the end of each call).
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        self.machine.metrics()
    }

    /// Replays `ops` deterministically across the shards.
    ///
    /// The resulting machine state and metrics are bit-identical to a
    /// serial [`Machine`] executing the same trace, for any shard count.
    ///
    /// # Panics
    ///
    /// Panics if an op references a CPU outside the machine, or
    /// (indicating an executor bug) if a contained window touches
    /// out-of-shard state.
    pub fn run_trace(&mut self, ops: &[TraceOp]) {
        let mut cursor = 0usize;
        while cursor < ops.len() {
            // Scan the maximal contained window.
            let mut end = cursor;
            while end < ops.len() && self.classify(&ops[end]) == Class::Contained {
                end += 1;
            }
            self.exec_window(ops, cursor, end);
            // Execute the blocking op (if any) serially on the whole
            // machine, then start the next epoch.
            if end < ops.len() {
                self.exec_blocking(&ops[end]);
                end += 1;
            }
            cursor = end;
            self.epochs.advance();
        }
        self.fold_shard_metrics();
    }

    /// Shard of the node `cpu` lives on.
    fn shard_of_cpu(&self, cpu: CpuId) -> usize {
        let node = (cpu.0 / self.machine.config().cpus_per_node) as usize;
        self.shard_of_node[node] as usize
    }

    /// Classifies one op, updating the page footprint and pre-resolving
    /// the page's home exactly as the serial fault would.
    ///
    /// The home resolution is sound to run at scan time: a page's first
    /// trace reference is necessarily its first machine-wide fault (an
    /// unhomed page cannot be mapped — or cached — anywhere), the scan
    /// visits references in trace order, and the scan never runs past a
    /// blocking op, so it cannot observe a not-yet-executed
    /// `ArmFirstTouch`.
    fn classify(&mut self, op: &TraceOp) -> Class {
        match *op {
            TraceOp::Think { .. } => Class::Contained,
            TraceOp::Barrier | TraceOp::ArmFirstTouch => Class::Blocking,
            TraceOp::Access { cpu, va, .. } => {
                let shard = self.shard_of_cpu(cpu);
                let bit = 1u32 << shard;
                let page = va.vpage();
                let info = if let Some(info) = self.pages_seen.get_mut(page) {
                    info.shard_mask |= bit;
                    *info
                } else {
                    let node = NodeId((cpu.0 / self.machine.config().cpus_per_node) as u8);
                    let home = self.machine.pages_mut().home_on_touch(page, node);
                    let info = PageInfo {
                        shard_mask: bit,
                        home,
                    };
                    self.pages_seen.insert(page, info);
                    info
                };
                let home_shard = self.shard_of_node[info.home.0 as usize] as usize;
                if info.shard_mask == bit && home_shard == shard {
                    Class::Contained
                } else {
                    Class::Blocking
                }
            }
        }
    }

    /// Executes a contained window: inline when small or single-sharded,
    /// fanned out one thread per shard otherwise, with cross-shard
    /// effects replayed in canonical order at the closing barrier.
    fn exec_window(&mut self, ops: &[TraceOp], start: usize, end: usize) {
        if start == end {
            return;
        }
        self.stats.windows += 1;
        self.stats.contained_ops += (end - start) as u64;
        if self.ranges.len() == 1 || end - start < self.parallel_threshold {
            self.machine.replay(&ops[start..end]);
            return;
        }
        self.stats.parallel_windows += 1;

        // Bucket the window per shard, tagging each op with its global
        // sequence number (the canonical serialization order).
        for bucket in &mut self.op_buckets {
            bucket.clear();
        }
        for (i, op) in ops[start..end].iter().enumerate() {
            let shard = match *op {
                TraceOp::Access { cpu, .. } | TraceOp::Think { cpu, .. } => self.shard_of_cpu(cpu),
                TraceOp::Barrier | TraceOp::ArmFirstTouch => {
                    unreachable!("global ops never enter a contained window")
                }
            };
            self.op_buckets[shard].push(((start + i) as u64, *op));
        }

        // One lane per shard; scoped threads drive the non-empty ones.
        let epoch = self.epochs.current().0;
        let lanes = self.machine.shard_lanes(
            &self.ranges,
            epoch,
            &mut self.shard_metrics,
            &mut self.shard_scratch,
            &mut self.shard_effects,
        );
        let buckets = &self.op_buckets;
        std::thread::scope(|scope| {
            let mut inline: Option<(crate::machine::Lanes<'_>, _)> = None;
            for pair @ (_, bucket) in lanes.into_iter().zip(buckets) {
                if bucket.is_empty() {
                    continue;
                }
                // The first non-empty shard runs on the coordinator
                // thread; the rest fan out.
                if inline.is_none() {
                    inline = Some(pair);
                    continue;
                }
                let (mut lane, bucket) = pair;
                scope.spawn(move || run_bucket(&mut lane, bucket));
            }
            if let Some((mut lane, bucket)) = inline {
                run_bucket(&mut lane, bucket);
            }
        });

        // Epoch barrier: replay buffered cross-shard directory effects
        // in canonical (epoch, home, seq) order.
        let mut effects: Vec<EffectMsg> = self
            .shard_effects
            .iter_mut()
            .flat_map(|buf| buf.drain(..))
            .collect();
        // Buffers drain at their own window's barrier, so a batch holds
        // exactly one epoch; the key's epoch component documents the
        // model rather than discriminating here.
        debug_assert!(effects.iter().all(|msg| msg.key.epoch == epoch));
        effects.sort_unstable_by_key(|msg| msg.key);
        self.stats.effects_applied += effects.len() as u64;
        for msg in effects {
            self.machine.dir_mut(msg.key.home).apply(msg.effect);
        }
    }

    fn exec_blocking(&mut self, op: &TraceOp) {
        self.stats.serialized_ops += 1;
        self.machine.apply_op(op);
    }

    /// Folds the shards' metric deltas into the machine's metrics, in
    /// canonical shard order.
    fn fold_shard_metrics(&mut self) {
        for sm in &mut self.shard_metrics {
            self.machine.metrics_mut().absorb(sm);
        }
    }
}

/// Replays one shard's window subsequence, in canonical order.
fn run_bucket(lane: &mut crate::machine::Lanes<'_>, bucket: &[(u64, TraceOp)]) {
    for &(seq, op) in bucket {
        match op {
            TraceOp::Access { cpu, va, write } => {
                lane.set_seq(seq);
                lane.access(cpu, va, write);
            }
            TraceOp::Think { cpu, dur } => lane.advance(cpu, dur),
            TraceOp::Barrier | TraceOp::ArmFirstTouch => {
                unreachable!("global ops never enter a contained window")
            }
        }
    }
}

/// The shard count requested via `RNUMA_SHARDS`, if any.
///
/// `RNUMA_SHARDS=1` explicitly requests the single-threaded path;
/// unset/unparsable means "no intra-machine sharding requested".
#[must_use]
pub fn shards_from_env() -> Option<usize> {
    std::env::var("RNUMA_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.clamp(1, MAX_SHARDS))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Protocol;

    fn config() -> MachineConfig {
        MachineConfig::paper_base(Protocol::paper_rnuma())
    }

    /// A partitioned stream: each CPU walks pages in its own node's
    /// region (fully contained), with a few shared-page accesses mixed
    /// in (blocking).
    fn mixed_trace(refs_per_cpu: u64, shared_every: u64) -> Vec<TraceOp> {
        let mut ops = Vec::new();
        ops.push(TraceOp::ArmFirstTouch);
        for i in 0..refs_per_cpu {
            for cpu in 0..32u16 {
                let node = u64::from(cpu / 4);
                let va = Va(((1 + node) << 20) + (i / 128) * 65536 + (i * 32) % 4096);
                ops.push(TraceOp::Access {
                    cpu: CpuId(cpu),
                    va,
                    write: i % 7 == 0,
                });
                if shared_every != 0 && i % shared_every == 3 && cpu % 9 == 0 {
                    // A page everyone touches: permanently cross-shard.
                    ops.push(TraceOp::Access {
                        cpu: CpuId(cpu),
                        va: Va(0xF00_0000 + (i % 8) * 32),
                        write: false,
                    });
                }
            }
            if i % 64 == 63 {
                ops.push(TraceOp::Barrier);
            }
        }
        ops
    }

    fn serial_replay_on(config: MachineConfig, ops: &[TraceOp]) -> Metrics {
        let mut m = Machine::new(config).unwrap();
        m.replay(ops);
        m.metrics()
    }

    #[test]
    fn sharded_replay_is_bit_identical_to_serial() {
        let ops = mixed_trace(192, 16);
        let serial = serial_replay_on(config(), &ops);
        for shards in [1usize, 2, 4, 8] {
            let mut sm = ShardedMachine::new(config(), shards).unwrap();
            sm.set_parallel_threshold(32); // exercise the threaded path
            sm.run_trace(&ops);
            assert!(
                serial.replay_eq(&sm.metrics()),
                "{shards} shards diverged from serial:\nserial: {serial}\nsharded: {}",
                sm.metrics()
            );
        }
    }

    #[test]
    fn single_shard_never_fans_out() {
        let ops = mixed_trace(64, 0);
        let mut sm = ShardedMachine::new(config(), 1).unwrap();
        sm.set_parallel_threshold(1);
        sm.run_trace(&ops);
        assert_eq!(sm.shards(), 1);
        assert_eq!(
            sm.stats().parallel_windows,
            0,
            "one shard must stay on the coordinator thread"
        );
        assert!(sm.stats().contained_ops > 0);
    }

    #[test]
    fn partitioned_trace_forms_large_windows() {
        let ops = mixed_trace(128, 0);
        let mut sm = ShardedMachine::new(config(), 4).unwrap();
        sm.set_parallel_threshold(64);
        sm.run_trace(&ops);
        let stats = sm.stats();
        assert!(stats.parallel_windows > 0, "expected fan-out: {stats:?}");
        // Fully partitioned references are all contained; only barriers
        // and the arm op serialize.
        assert!(
            stats.contained_ops > 30 * stats.serialized_ops,
            "partitioned trace should be almost entirely contained: {stats:?}"
        );
    }

    #[test]
    fn cross_shard_eviction_writebacks_are_deferred_and_exact() {
        // A 4-line block cache guarantees conflict evictions; a huge
        // threshold keeps relocation out of the picture.
        let config = MachineConfig::paper_base(Protocol::RNuma {
            block_cache_bytes: 128,
            page_cache_bytes: 320 * 1024,
            threshold: 1_000_000,
        });
        let mut ops = vec![TraceOp::ArmFirstTouch];
        let p = 0x80_0000u64; // page homed at node 5 (shard 2 of 4)
        ops.push(TraceOp::Access {
            cpu: CpuId(20),
            va: Va(p),
            write: true,
        });
        // Node 0 dirties blocks of the shard-2-homed page: cross-shard
        // accesses, leaving dirty lines in node 0's block cache.
        for b in 0..4u64 {
            ops.push(TraceOp::Access {
                cpu: CpuId(0),
                va: Va(p + b * 32),
                write: true,
            });
        }
        // Node 1 homes pages Q; node 0 then streams over them: a fully
        // contained window (home and footprint in shard 0) whose
        // block-cache fills evict the dirty shard-2 blocks — the posted
        // write-backs must cross the shard boundary as ordered effects.
        for q in 0..4u64 {
            ops.push(TraceOp::Access {
                cpu: CpuId(4),
                va: Va(0x10_0000 + q * 4096),
                write: true,
            });
        }
        for i in 0..64u64 {
            ops.push(TraceOp::Access {
                cpu: CpuId(0),
                va: Va(0x10_0000 + (i % 4) * 4096 + (i / 4) * 32),
                write: false,
            });
        }
        // Node 5 reads its page back: the deferred write-backs must have
        // landed (owner cleared, was-owner set) exactly as in serial.
        for b in 0..4u64 {
            ops.push(TraceOp::Access {
                cpu: CpuId(21),
                va: Va(p + b * 32),
                write: false,
            });
        }
        let serial = serial_replay_on(config, &ops);
        let mut sm = ShardedMachine::new(config, 4).unwrap();
        sm.set_parallel_threshold(8);
        sm.run_trace(&ops);
        assert!(
            sm.stats().effects_applied > 0,
            "expected deferred cross-shard write-backs: {:?}",
            sm.stats()
        );
        assert!(
            serial.replay_eq(&sm.metrics()),
            "deferred effects diverged:\nserial: {serial}\nsharded: {}",
            sm.metrics()
        );
    }

    #[test]
    fn shard_count_is_clamped_to_nodes() {
        let sm = ShardedMachine::new(config(), 64).unwrap();
        assert_eq!(sm.shards(), 8);
        let sm = ShardedMachine::new(config(), 0).unwrap();
        assert_eq!(sm.shards(), 1);
    }

    #[test]
    fn traced_machine_records_every_op_kind() {
        let mut m = Machine::new(config()).unwrap();
        m.start_tracing();
        m.arm_first_touch();
        m.access(CpuId(0), Va(0x1000), true);
        m.advance(CpuId(0), Cycles(10));
        m.barrier_all();
        let trace = m.take_trace();
        assert_eq!(
            trace,
            vec![
                TraceOp::ArmFirstTouch,
                TraceOp::Access {
                    cpu: CpuId(0),
                    va: Va(0x1000),
                    write: true
                },
                TraceOp::Think {
                    cpu: CpuId(0),
                    dur: Cycles(10)
                },
                TraceOp::Barrier,
            ]
        );
        // Tracing is off after take_trace.
        m.access(CpuId(0), Va(0x1000), false);
        assert!(m.take_trace().is_empty());
    }
}
