//! Deterministic epoch-sharded machine execution on a persistent
//! worker pool.
//!
//! PR 1 parallelized experiments *across* machines; this module
//! parallelizes the reference walk *within* one machine, with results
//! that are **bit-identical** to the serial walk. The design follows the
//! structure of the problem rather than fighting it:
//!
//! 1. **Traces.** A run is replayed from a [`TraceOp`] stream (recorded
//!    with [`Machine::start_tracing`] or synthesized directly). The
//!    trace fixes the global reference order; `seq` — an op's position
//!    in the trace — is the canonical serialization every execution mode
//!    must reproduce.
//! 2. **Shards.** The machine's nodes are block-partitioned into
//!    contiguous shards; a CPU belongs to its node's shard. R-NUMA is
//!    per-node-reactive, so all per-node protocol state (L1s, bus, RAD,
//!    page table, caches, directory, refetch counters) splits cleanly
//!    along node boundaries.
//! 3. **Epochs (contained windows).** The executor scans the trace
//!    forward, classifying each op against the monotone per-page *shard
//!    footprint* (which shards have ever referenced the page, which
//!    shards have ever stored to it, and the epoch of its last
//!    ownership transition) and the page's home. An access is
//!    **contained** when its page's home lies in the issuer's shard
//!    and either its footprint is exactly the issuer's shard, or it is
//!    a load of a page every writer of which is the issuer's own shard
//!    (the ownership relaxation — such a page has no dirty copy, and
//!    no owner, outside the issuing shard, and loads never touch
//!    foreign sharers): the entire walk — coherence actions included —
//!    then provably touches only shard-local state, so ops of
//!    different shards commute and each shard may execute its
//!    subsequence, in order, on its own thread. The maximal contained
//!    prefix forms one epoch; the first non-contained op ends it and
//!    executes serially between epochs. The footprint/home directory
//!    itself is banked finer than per-node (`RNUMA_DIR_SHARDS`,
//!    [`dir_shard_of`]) — pure layout, never visible in results.
//! 4. **Ordered cross-shard effects.** The one way a contained walk can
//!    reach another shard is the posted write-back of an eviction victim
//!    homed elsewhere. Its network cost is sender-side by construction
//!    ([`NetWindow::post`](rnuma_net::net::NetWindow::post)); the
//!    remote directory transition is buffered as an [`EffectMsg`]
//!    and applied at the
//!    epoch barrier in canonical `(epoch, home, seq)` order. No
//!    contained op can observe that directory state before the barrier
//!    (any op that could is, by the footprint rule, not contained), so
//!    deferral is exact.
//! 5. **Engines.** Three schedulers share that window model, selected
//!    by `RNUMA_EXEC` ([`ExecEngine`]):
//!    * **`log`** (the default) — the *shared-log* engine: one pass
//!      per segment classifies every op up front, folds `ArmFirstTouch`
//!      into the scan (arming is applied in trace order as the scan
//!      walks, so an arm *merges* the windows on either side of it
//!      instead of fencing them — the retired global barriers), and
//!      appends one fence-delimited window descriptor (`SpanDesc`) per
//!      span to an append-only log. Shards then consume the log at
//!      their own pace behind per-shard cursors; a true fence (a
//!      cross-shard access or a barrier) is the only point where the
//!      whole machine reassembles, and a lost worker rolls back only
//!      its own cursor ([`ShardedMachine::cursor_rollbacks`]) — never
//!      the other shards' completed spans.
//!    * **`pipeline`** — while pool workers execute window N, the
//!      coordinator scans window N+1 into a private overlay of the
//!      footprint directory (the base is frozen under the workers'
//!      `Arc` views), merging it bank-by-bank at the barrier. A fault
//!      recovery at the barrier discards the in-flight overlay
//!      ([`ShardStats::scans_invalidated`]) and re-scans exactly.
//!    * **`barrier`** — scan, execute, barrier, strictly in sequence.
//!
//!    All three are bit-identical by contract — the pipelined and
//!    barrier engines remain as differential references
//!    (`tests/pipelined_determinism.rs` pins log ≡ pipelined ≡
//!    barrier ≡ serial); `RNUMA_PIPELINE` is the legacy two-way
//!    selector and keeps working.
//!
//! # The worker pool
//!
//! Parallel windows execute on a [`ShardPool`]: a set of long-lived,
//! parked worker threads shared by every [`ShardedMachine`] in the
//! process (or owned explicitly, for tests and embedding). Instead of
//! spawning scoped threads per window — the previous design, whose
//! spawn cost dominated short windows — the coordinator *moves* each
//! shard's state out of the machine as an owned chunk
//! (`Machine::detach_shards`), ships chunk + op bucket through a
//! channel to a parked worker, and moves everything back at the epoch
//! barrier. Ownership handoff means no borrowed state ever crosses a
//! thread boundary (the pool is safe Rust all the way down), and a
//! chunk move is a few hundred bytes of `memcpy` — noise next to the
//! window's simulation work. When the pool has no workers (explicitly,
//! or because the host has a single core), windows run inline on the
//! coordinator, which measures within noise of the plain serial walk.
//!
//! The full argument for why this reproduces the serial execution
//! bit-for-bit is spelled out in `docs/DETERMINISM.md`; the workspace
//! determinism tests enforce it across the paper's whole figure grid.
//! How trace capture and sharded replay combine into parameter sweeps
//! is described in `docs/SWEEP.md`.

use crate::config::{ConfigError, MachineConfig};
use crate::machine::{Machine, ShardChunk};
use crate::metrics::Metrics;
use rnuma_mem::addr::{CpuId, NodeId, VPage, Va};
use rnuma_mem::fxmap::FxMap;
use rnuma_mem::paged::{dir_shard_of, EpochTags};
use rnuma_proto::effect::EffectMsg;
use rnuma_sim::fault::{FaultKind, FaultLog, FaultPlan};
use rnuma_sim::{Cycles, EpochClock};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::Duration;

/// One replayable machine-level operation.
///
/// A trace of these is a complete record of a run: replaying it on a
/// fresh machine of the same configuration reproduces the run exactly,
/// serially or sharded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// One memory reference.
    Access {
        /// The issuing CPU.
        cpu: CpuId,
        /// The virtual address referenced.
        va: Va,
        /// `true` for a store.
        write: bool,
    },
    /// Compute time on one CPU.
    Think {
        /// The computing CPU.
        cpu: CpuId,
        /// The duration charged.
        dur: Cycles,
    },
    /// A global barrier across all CPUs.
    Barrier,
    /// Arms first-touch page placement.
    ArmFirstTouch,
}

impl TraceOp {
    /// The issuing CPU of a per-CPU op (`Access`/`Think`), or `None`
    /// for a global op (`Barrier`/`ArmFirstTouch`). This is the key the
    /// batched replay loop groups contiguous runs by.
    #[must_use]
    pub fn issuer(&self) -> Option<CpuId> {
        match *self {
            TraceOp::Access { cpu, .. } | TraceOp::Think { cpu, .. } => Some(cpu),
            TraceOp::Barrier | TraceOp::ArmFirstTouch => None,
        }
    }
}

/// One entry of a segment's *run table*: the batched replay loop's unit
/// of work. A run table tiles its segment exactly, in order; each entry
/// is either a maximal run of consecutive per-CPU ops all issued by the
/// same CPU, or a single global op.
///
/// `TraceStore` computes run tables once per interned segment at
/// capture time ([`split_cpu_runs`]), so every replay of the segment —
/// on any configuration — consumes the pre-split form directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpuRun {
    /// `len` consecutive `Access`/`Think` ops, all issued by `cpu`.
    Cpu {
        /// The run's issuing CPU.
        cpu: CpuId,
        /// Number of consecutive ops in the run (always at least 1).
        /// A maximal same-CPU run longer than [`MAX_RUN_LEN`] ops is
        /// emitted as several consecutive entries, so gigabyte-class
        /// traces never overflow the field.
        len: u32,
    },
    /// One global op (`Barrier` or `ArmFirstTouch`).
    Global,
}

/// Largest op count one [`CpuRun::Cpu`] (or window-bucket `BucketRun`)
/// entry can carry. Longer runs split into several consecutive entries — the
/// batched kernels execute each entry separately, and the metric
/// page-touch coalescing is idempotent, so the split is invisible to
/// results.
pub const MAX_RUN_LEN: usize = u32::MAX as usize;

/// Appends one same-CPU run of `len` ops to `runs`, splitting it into
/// [`MAX_RUN_LEN`]-sized entries instead of overflowing (the
/// `--scale paper` regime holds multi-gigabyte traces; a panic here
/// would cap trace length by accident).
fn push_cpu_run(runs: &mut Vec<CpuRun>, cpu: CpuId, mut len: usize) {
    while len > 0 {
        let chunk = len.min(MAX_RUN_LEN);
        runs.push(CpuRun::Cpu {
            cpu,
            len: chunk as u32,
        });
        len -= chunk;
    }
}

/// Walks `ops` as its maximal runs, calling `f` once per run with the
/// run's issuer (`None` for a single global op) and its index range.
/// The one place the grouping rule lives: [`split_cpu_runs`] records
/// the runs as a table, the batched replay loop
/// (`Machine::apply_batch`) streams them directly.
pub(crate) fn scan_runs(ops: &[TraceOp], mut f: impl FnMut(Option<CpuId>, Range<usize>)) {
    let mut i = 0usize;
    while i < ops.len() {
        match ops[i].issuer() {
            None => {
                f(None, i..i + 1);
                i += 1;
            }
            Some(cpu) => {
                let start = i;
                i += 1;
                while i < ops.len() && ops[i].issuer() == Some(cpu) {
                    i += 1;
                }
                f(Some(cpu), start..i);
            }
        }
    }
}

/// Splits `ops` into its run table: maximal contiguous same-CPU runs,
/// with each global op as its own entry. The returned entries tile
/// `ops` exactly, in order (an empty slice yields an empty table).
#[must_use]
pub fn split_cpu_runs(ops: &[TraceOp]) -> Vec<CpuRun> {
    let mut runs = Vec::new();
    scan_runs(ops, |issuer, range| match issuer {
        Some(cpu) => push_cpu_run(&mut runs, cpu, range.len()),
        None => runs.push(CpuRun::Global),
    });
    runs
}

/// One entry of a pooled window bucket's run table: `len` consecutive
/// bucket ops, all issued by `cpu`, occupying the contiguous global
/// trace positions `seq_base .. seq_base + len`.
///
/// Built incrementally while `exec_window` buckets a window per shard.
/// A run breaks on a CPU change *or* a `seq` discontinuity (ops of
/// other shards interleaved in the global order), so the batched
/// window kernel (`Lanes::run_batch`) can advance `seq` per op from
/// `seq_base` — reproducing exactly the per-op `seq` dispatch the
/// retired `run_bucket` loop paid for every op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct BucketRun {
    /// Global trace position of the run's first op (cross-shard effect
    /// ordering).
    pub(crate) seq_base: u64,
    /// The run's issuing CPU.
    pub(crate) cpu: CpuId,
    /// Number of consecutive ops in the run (at least 1, at most
    /// [`MAX_RUN_LEN`]).
    pub(crate) len: u32,
}

/// Extends a bucket's run table with the op at global trace position
/// `seq`, growing the last run when contiguous in both CPU and `seq`.
fn extend_bucket_runs(runs: &mut Vec<BucketRun>, seq: u64, cpu: CpuId) {
    if let Some(last) = runs.last_mut() {
        if last.cpu == cpu
            && last.seq_base + u64::from(last.len) == seq
            && (last.len as usize) < MAX_RUN_LEN
        {
            last.len += 1;
            return;
        }
    }
    runs.push(BucketRun {
        seq_base: seq,
        cpu,
        len: 1,
    });
}

/// One shard's slice of a parallel window: its ops in canonical order
/// plus the run table the batched window kernel executes them through.
/// Buckets persist across windows (cleared, not reallocated) and
/// travel to pool workers inside [`Job`]s as plain owned values.
/// `Clone` exists for the pre-dispatch recovery snapshots taken under
/// an armed fault plan or watchdog deadline.
#[derive(Clone, Debug, Default)]
struct Bucket {
    ops: Vec<TraceOp>,
    runs: Vec<BucketRun>,
}

impl Bucket {
    fn clear(&mut self) {
        self.ops.clear();
        self.runs.clear();
    }

    fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends the per-CPU op at global trace position `seq`.
    fn push(&mut self, seq: u64, cpu: CpuId, op: TraceOp) {
        extend_bucket_runs(&mut self.runs, seq, cpu);
        self.ops.push(op);
    }
}

/// Execution statistics of a sharded run (scheduling diagnostics; these
/// are about the *executor*, not the simulated machine).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Contained windows executed (serial-inline or parallel).
    pub windows: u64,
    /// Windows large enough to fan out across pool workers.
    pub parallel_windows: u64,
    /// Shard buckets shipped to pool workers (the coordinator always
    /// keeps one bucket per parallel window for itself).
    pub pool_jobs: u64,
    /// Run-table entries executed by the batched window kernel across
    /// all parallel-window buckets. `bucket_runs == contained_ops`
    /// means every run degenerated to length 1 (heavily interleaved
    /// CPUs); small values mean long hoisted runs.
    pub bucket_runs: u64,
    /// Ops executed inside contained windows.
    pub contained_ops: u64,
    /// Ops executed serially on the whole machine: between windows
    /// (cross-shard accesses, barriers, first-touch arming) — or the
    /// entire trace when the single-shard/worker-less bypass skips
    /// window formation altogether.
    pub serialized_ops: u64,
    /// Cross-shard directory effects replayed at epoch barriers.
    pub effects_applied: u64,
    /// Window jobs recovered after a worker panic or watchdog timeout:
    /// re-executed inline from the pre-dispatch snapshot, bit-identical
    /// to an undisturbed execution.
    pub recovered_jobs: u64,
    /// Buckets executed inline on the coordinator because submission
    /// failed (closed or poisoned job queue).
    pub inline_fallbacks: u64,
    /// Late replies from already-recovered (timed-out) jobs, discarded
    /// by job id at a later barrier.
    pub stale_replies: u64,
    /// Scans of window N+1 overlapped with the pool's execution of
    /// window N (the pipelined executor's whole point): the next
    /// window's footprint/home classification was already done — into
    /// the coordinator's overlay — when the barrier closed.
    pub scans_prefetched: u64,
    /// Prefetched scans discarded because a fault forced inline
    /// re-execution at the same barrier: recovery deliberately
    /// re-establishes the no-speculative-state invariant, so the
    /// overlay is dropped wholesale and the window is re-scanned (the
    /// re-scan is deterministic, so results are unaffected — this
    /// counter is the only trace the discard leaves).
    pub scans_invalidated: u64,
    /// Log-engine window descriptors consumed from the shared span log
    /// (one ownership epoch each).
    pub log_spans: u64,
    /// Blocking ops that actually fenced a log span (cross-shard
    /// accesses and barriers; folded arms never fence).
    pub log_fences: u64,
    /// `ArmFirstTouch` ops the log scan applied in place, in trace
    /// order, instead of fencing a window — the retired global
    /// barriers. Windows on either side of a folded arm merge.
    pub arms_folded: u64,
}

/// Footprint record of one page: which shards ever referenced it, which
/// shards ever stored to it, its (immutable once fixed) home, and the
/// ownership epoch of its last writer-set transition.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PageInfo {
    shard_mask: u32,
    /// Monotone: the set of shards that have ever stored to the page.
    /// While empty, the page provably has no owner in any directory
    /// (ownership requires a store) and no dirty copy anywhere; while
    /// it is a subset of one shard's bit, every owner and every dirty
    /// copy lives inside that shard. Both facts license the ownership
    /// containment relaxation in [`classify`].
    writer_mask: u32,
    home: NodeId,
    /// Epoch (global window/span counter) of the page's last ownership
    /// transition — the most recent scan point where a new shard joined
    /// `writer_mask` (or the page was first referenced). A shard may
    /// run ahead on pages whose transitions it owns; an access that
    /// would move ownership across shards is exactly a blocking op, so
    /// this stamp is the per-page fence the log engine waits at, and
    /// the `epoch` component of every deferred effect key
    /// ([`EffectKey`]) for pages written in that span.
    owner_epoch: u64,
}

/// The monotone per-page footprint/home directory the window scan
/// maintains, banked into `RNUMA_DIR_SHARDS` sub-shards by
/// [`dir_shard_of`] — finer-grained than the per-node execution shards,
/// so scan lookups, prefetch overlays, and overlay merges each work
/// against small independent tables instead of one monolith.
///
/// Banking is layout only: which bank a page lives in never influences
/// classification or simulation results (the pipelined determinism
/// suite pins bit-identity across sub-shard counts).
///
/// During a parallel window every worker holds a shared (`Arc`) view:
/// homes are pre-resolved in trace order by the coordinator before the
/// window starts, so lanes never race on the home table. Between
/// windows the coordinator is the sole owner and updates it in place;
/// during a window the coordinator's prefetch scan writes to a
/// separate overlay `Footprints` merged bank-by-bank at the barrier.
#[derive(Clone, Debug)]
pub(crate) struct Footprints {
    banks: Vec<FxMap<VPage, PageInfo>>,
    /// Per-bank ownership-epoch high-water marks: the coarse summary
    /// of every `PageInfo::owner_epoch` stamp folded into each bank
    /// (diagnostics and invariant checks; never classification).
    tags: EpochTags,
}

impl Default for Footprints {
    fn default() -> Footprints {
        Footprints::with_banks(1)
    }
}

impl Footprints {
    fn with_banks(banks: usize) -> Footprints {
        Footprints {
            banks: (0..banks.max(1)).map(|_| FxMap::new()).collect(),
            tags: EpochTags::new(banks),
        }
    }

    fn bank_count(&self) -> usize {
        self.banks.len()
    }

    #[inline]
    fn bank_of(&self, page: VPage) -> usize {
        dir_shard_of(page, self.banks.len())
    }

    #[inline]
    fn get(&self, page: VPage) -> Option<&PageInfo> {
        self.banks[self.bank_of(page)].get(page)
    }

    #[inline]
    fn get_mut(&mut self, page: VPage) -> Option<&mut PageInfo> {
        let bank = self.bank_of(page);
        self.banks[bank].get_mut(page)
    }

    #[inline]
    fn insert(&mut self, page: VPage, info: PageInfo) {
        let bank = self.bank_of(page);
        self.banks[bank].insert(page, info);
    }

    /// The pre-resolved home of `page`, if it was ever referenced.
    pub(crate) fn home_of(&self, page: VPage) -> Option<NodeId> {
        self.get(page).map(|info| info.home)
    }

    /// Folds an ownership stamp into the page's bank tag (see
    /// [`EpochTags`]).
    #[inline]
    fn tag(&mut self, page: VPage, epoch: u64) {
        self.tags.record(page, epoch);
    }

    /// The high-water ownership epoch across all banks.
    pub(crate) fn epoch_high_water(&self) -> u64 {
        self.tags.high_water()
    }

    /// Discards every entry (bank structure is kept).
    fn clear(&mut self) {
        for bank in &mut self.banks {
            bank.clear();
        }
        self.tags.clear();
    }

    /// Moves every entry of `overlay` into `self`, bank by bank. An
    /// overlay entry is authoritative: it was copied from the base (or
    /// freshly resolved) and then updated, so it replaces the base's.
    /// Bank tags merge by per-bank max, so the base's high-water marks
    /// cover the overlay's stamps after the merge.
    fn merge_from(&mut self, overlay: &mut Footprints) {
        debug_assert_eq!(self.banks.len(), overlay.banks.len());
        self.tags.merge_from(&overlay.tags);
        overlay.tags.clear();
        for (dst, src) in self.banks.iter_mut().zip(&mut overlay.banks) {
            if src.is_empty() {
                continue;
            }
            for (page, info) in src.iter() {
                dst.insert(page, *info);
            }
            src.clear();
        }
    }
}

/// Upper bound on shards (the footprint mask is a `u32`).
pub const MAX_SHARDS: usize = 32;

/// Upper bound on footprint-directory sub-shards (`RNUMA_DIR_SHARDS`).
pub const MAX_DIR_SHARDS: usize = 256;

/// Default footprint-directory sub-shard count when `RNUMA_DIR_SHARDS`
/// is unset.
pub const DEFAULT_DIR_SHARDS: usize = 8;

/// Contained windows shorter than this run inline on the coordinator —
/// pool handoff only pays off once a window amortizes the barrier cost.
const DEFAULT_PARALLEL_THRESHOLD: usize = 256;

/// How the scanner classified one op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Class {
    /// Provably shard-contained: may run inside the current window.
    Contained,
    /// Needs the whole machine (cross-shard access or global op): ends
    /// the window and runs serially.
    Blocking,
}

/// The window scheduler a [`ShardedMachine`] executes with
/// (`RNUMA_EXEC=log|pipeline|barrier`; [`set_engine`]).
///
/// All three produce bit-identical results for any trace — they differ
/// only in how windows are formed and overlapped, i.e. in scheduling
/// statistics and wall-clock. The pipelined and barrier engines are
/// kept as differential references for the log engine.
///
/// [`set_engine`]: ShardedMachine::set_engine
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecEngine {
    /// Shared-log consumption (the default): one up-front scan per
    /// segment appends fence-delimited window descriptors to an
    /// append-only span log, folding first-touch arming into the scan
    /// so arms never fence; shards consume the log behind per-shard
    /// cursors and fault recovery rolls back only the faulted shard's
    /// cursor.
    Log,
    /// Lockstep windows with the scan of window N+1 overlapped with
    /// the pool's execution of window N (`RNUMA_PIPELINE=1` legacy).
    Pipeline,
    /// Lockstep windows, strictly scan → execute → barrier
    /// (`RNUMA_PIPELINE=0` legacy).
    Barrier,
}

impl std::fmt::Display for ExecEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ExecEngine::Log => "log",
            ExecEngine::Pipeline => "pipeline",
            ExecEngine::Barrier => "barrier",
        })
    }
}

/// One entry of the log engine's shared span log: a fence-delimited
/// window descriptor — the contained op range, the index of the
/// blocking op that fenced it (if any), and, for spans past the
/// parallel threshold, the pre-bucketed per-shard run tables every
/// shard's consumption dispatches from.
#[derive(Debug)]
struct SpanDesc {
    /// Trace positions of the span's contained ops (folded arms
    /// included — re-arming is an idempotent no-op on replay).
    range: Range<usize>,
    /// Trace position of the blocking op closing the span; `None` for
    /// the segment's final span.
    fence: Option<usize>,
    /// Per-CPU ops in `range` (what the buckets hold; folded arms and
    /// the fence excluded).
    per_cpu_ops: usize,
    /// One bucket per shard when the span fans out; empty for
    /// below-threshold spans, which replay batched on the coordinator.
    buckets: Vec<Bucket>,
}

/// A typed worker-pool failure, as observed by the coordinator.
///
/// Channel sends, joins, and window outcomes surface as these instead
/// of opaque `unwrap` panics, so the coordinator can decide between
/// inline fallback, snapshot recovery, and (only when recovery is
/// impossible) a diagnostic panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PoolError {
    /// The pool has no workers: nothing can be submitted, windows run
    /// inline on the coordinator.
    NoWorkers,
    /// The job queue is closed — the pool was poisoned
    /// ([`ShardPool::poison`]) or is tearing down.
    QueueClosed,
    /// A worker panicked executing a window; the captured panic payload
    /// is attached.
    WorkerPanicked(String),
    /// No reply arrived within the watchdog deadline (milliseconds).
    DeadlineElapsed(u64),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::NoWorkers => write!(f, "shard pool has no workers"),
            PoolError::QueueClosed => write!(f, "shard pool job queue is closed"),
            PoolError::WorkerPanicked(payload) => {
                write!(f, "shard worker panicked executing a window: {payload}")
            }
            PoolError::DeadlineElapsed(ms) => {
                write!(f, "no worker reply within the {ms} ms window deadline")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// A fault the coordinator asks a worker to exhibit on one job
/// (decided coordinator-side from the [`FaultPlan`], so schedules stay
/// deterministic regardless of worker interleaving).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Inject {
    /// Panic before touching the chunk.
    PanicBefore,
    /// Panic after executing the window (chunk mutated, reply lost).
    PanicAfter,
    /// Execute, then sleep `ms` before replying (a hang past any
    /// watchdog deadline).
    Hang(u64),
}

/// One parallel-window assignment for a pool worker: a shard's owned
/// state chunk, its op bucket (ops + run table), and the shared frozen
/// home table. Everything is owned or `Arc`-shared, so the job crosses
/// threads without borrowing from the coordinator.
struct Job {
    cfg: MachineConfig,
    epoch: u64,
    homes: Arc<Footprints>,
    chunk: ShardChunk,
    bucket: Bucket,
    /// Coordinator-unique id; the barrier matches replies by it and
    /// discards stale replies of already-recovered (timed-out) jobs.
    job_id: u64,
    /// Injected fault for this job, if the coordinator's plan fired.
    inject: Option<Inject>,
    reply: mpsc::Sender<Done>,
}

/// A worker's reply: the chunk and bucket come home at the epoch
/// barrier. `outcome` carries the captured panic payload when the
/// worker panicked mid-window; the coordinator recovers from its
/// pre-dispatch snapshot (armed) or panics with a typed diagnostic.
struct Done {
    job_id: u64,
    outcome: Result<(ShardChunk, Bucket), String>,
}

/// A persistent pool of parked shard workers.
///
/// Workers are spawned once and live until the pool drops; between
/// windows they park on the job queue. One pool serves any number of
/// [`ShardedMachine`]s concurrently — jobs are self-contained, so the
/// whole figure grid can self-check through a single process-wide pool
/// ([`ShardPool::shared`]).
///
/// A pool with zero workers is valid and means *inline execution*: no
/// fan-out is possible, so the executor bypasses the window scan and
/// replays serially (bit-identical, by the determinism contract). That
/// is what [`ShardPool::shared`] produces on a single-core host, where
/// thread handoff and scan cost could only add overhead — the sharded
/// bench lane measures within noise of serial there.
///
/// # Example
///
/// ```
/// use rnuma::shard::{ShardPool, ShardedMachine, TraceOp};
/// use rnuma::config::{MachineConfig, Protocol};
/// use rnuma_mem::addr::{CpuId, Va};
/// use std::sync::Arc;
///
/// // An explicit two-worker pool (tests force the threaded path this
/// // way even on single-core hosts; production code uses
/// // `ShardedMachine::new`, which shares the process-wide pool).
/// let pool = Arc::new(ShardPool::new(2));
/// let config = MachineConfig::paper_base(Protocol::paper_rnuma());
/// let mut sm = ShardedMachine::with_pool(config, 4, pool).unwrap();
/// sm.run_trace(&[TraceOp::Access { cpu: CpuId(0), va: Va(0x1000), write: true }]);
/// assert_eq!(sm.metrics().references(), 1);
/// ```
#[derive(Debug)]
pub struct ShardPool {
    /// `None` inside means the queue is closed: constructed worker-less,
    /// poisoned, or tearing down. Submissions then fail with a typed
    /// [`PoolError`] and the coordinator degrades to inline execution.
    queue: Mutex<Option<mpsc::Sender<Job>>>,
    /// The shared dequeue end, kept so dead workers can be respawned.
    intake: Option<Arc<Mutex<mpsc::Receiver<Job>>>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Monotone worker-name counter (respawned workers get fresh names).
    spawned: AtomicU64,
    jobs_executed: Arc<AtomicU64>,
}

impl ShardPool {
    /// Spawns a pool with `workers` parked worker threads (0 = inline
    /// execution).
    #[must_use]
    pub fn new(workers: usize) -> ShardPool {
        let jobs_executed = Arc::new(AtomicU64::new(0));
        if workers == 0 {
            return ShardPool {
                queue: Mutex::new(None),
                intake: None,
                workers: Mutex::new(Vec::new()),
                spawned: AtomicU64::new(0),
                jobs_executed,
            };
        }
        let (tx, rx) = mpsc::channel::<Job>();
        let pool = ShardPool {
            queue: Mutex::new(Some(tx)),
            intake: Some(Arc::new(Mutex::new(rx))),
            workers: Mutex::new(Vec::new()),
            spawned: AtomicU64::new(0),
            jobs_executed,
        };
        let mut live = 0usize;
        for _ in 0..workers {
            if pool.spawn_worker() {
                live += 1;
            }
        }
        if live == 0 {
            // Every spawn failed: close the queue so submissions get a
            // typed QueueClosed instead of parking jobs nobody will
            // ever run, and coordinators degrade to inline execution.
            pool.poison();
        }
        pool
    }

    /// Spawns one more parked worker on the shared queue, reaping any
    /// workers that already exited (a worker dies after a panicked
    /// job). Returns `false` on an inline (zero-worker) pool, which has
    /// no queue to park on. The coordinator uses this to replace a
    /// worker that died executing a window.
    pub fn respawn_worker(&self) -> bool {
        {
            let mut workers = self.lock_workers();
            let mut i = 0;
            while i < workers.len() {
                if workers[i].is_finished() {
                    let _ = workers.swap_remove(i).join();
                } else {
                    i += 1;
                }
            }
        }
        self.spawn_worker()
    }

    fn spawn_worker(&self) -> bool {
        let Some(intake) = &self.intake else {
            return false;
        };
        let rx = Arc::clone(intake);
        let counter = Arc::clone(&self.jobs_executed);
        let i = self.spawned.fetch_add(1, Ordering::Relaxed);
        let spawned = std::thread::Builder::new()
            .name(format!("rnuma-shard-{i}"))
            .spawn(move || worker_loop(&rx, &counter));
        match spawned {
            Ok(handle) => {
                self.lock_workers().push(handle);
                true
            }
            Err(err) => {
                // Thread exhaustion is an environment fault, not a bug:
                // report failure and let callers degrade (a window that
                // cannot re-fan-out re-executes inline; a pool whose
                // spawns all failed closes its queue in `new`).
                static WARN: std::sync::Once = std::sync::Once::new();
                WARN.call_once(|| {
                    eprintln!("rnuma: cannot spawn shard worker: {err}; degrading");
                });
                false
            }
        }
    }

    fn lock_workers(&self) -> std::sync::MutexGuard<'_, Vec<std::thread::JoinHandle<()>>> {
        self.workers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Closes the job queue: every subsequent dispatch
    /// fails with [`PoolError::QueueClosed`] and workers exit once the
    /// queue drains. A chaos hook (the [`FaultKind::Poison`] injection
    /// point) that doubles as an orderly shutdown; coordinators degrade
    /// to inline execution, so runs complete either way.
    pub fn poison(&self) {
        *self
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    }

    /// The process-wide pool every [`ShardedMachine::new`] shares: one
    /// worker per available core, zero (inline execution) on a
    /// single-core host.
    #[must_use]
    pub fn shared() -> Arc<ShardPool> {
        static SHARED: OnceLock<Arc<ShardPool>> = OnceLock::new();
        Arc::clone(SHARED.get_or_init(|| {
            let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
            let workers = if cores <= 1 { 0 } else { cores.min(MAX_SHARDS) };
            Arc::new(ShardPool::new(workers))
        }))
    }

    /// The pool self-checking replays run on: [`ShardPool::shared`]
    /// when it has workers, otherwise a process-wide two-worker pool.
    ///
    /// A zero-worker pool makes `ShardedMachine` bypass the executor
    /// entirely, which would turn a "sharded vs. serial" self-check
    /// into serial-vs-serial; forcing workers here keeps
    /// `RNUMA_SHARDS` checks meaningful on single-core hosts.
    #[must_use]
    pub fn checking() -> Arc<ShardPool> {
        let shared = ShardPool::shared();
        if shared.workers() > 0 {
            return shared;
        }
        static FORCED: OnceLock<Arc<ShardPool>> = OnceLock::new();
        Arc::clone(FORCED.get_or_init(|| Arc::new(ShardPool::new(2))))
    }

    /// Number of worker threads (0 = every window runs inline). Dead
    /// workers are counted until [`respawn_worker`](Self::respawn_worker)
    /// reaps them alongside spawning the replacement.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.lock_workers().len()
    }

    /// Total jobs executed by pool workers since the pool was created
    /// (diagnostics; excludes the coordinator's inline buckets).
    #[must_use]
    pub fn jobs_executed(&self) -> u64 {
        self.jobs_executed.load(Ordering::Relaxed)
    }

    /// Ships a job to a parked worker, or hands it back with the typed
    /// reason it cannot be shipped (no workers, or the queue is closed /
    /// poisoned) so the coordinator can run the bucket inline instead.
    ///
    /// The `Err` variant intentionally carries the whole job (like
    /// `mpsc::SendError`): the coordinator must get its chunk and
    /// bucket back to fall back inline, and boxing the rejection path
    /// would put an allocation on every dispatch for the sake of the
    /// cold one.
    #[allow(clippy::result_large_err)]
    fn submit(&self, job: Job) -> Result<(), (PoolError, Job)> {
        let queue = self
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match queue.as_ref() {
            None if self.intake.is_none() => Err((PoolError::NoWorkers, job)),
            None => Err((PoolError::QueueClosed, job)),
            Some(tx) => tx
                .send(job)
                .map_err(|mpsc::SendError(job)| (PoolError::QueueClosed, job)),
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // Closing the queue wakes every parked worker with a recv error.
        *self
            .queue
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
        let workers = self
            .workers
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Renders a captured panic payload for the coordinator's fault log.
fn panic_payload(err: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = err.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = err.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The parked-worker loop: receive a job, run its bucket over its owned
/// chunk, send everything home. A panic mid-window (real, or injected
/// by the job's fault plan decision) is captured and reported, and the
/// worker thread *exits* — modelling a crashed component — leaving the
/// coordinator to respawn a replacement and recover the window.
fn worker_loop(queue: &Mutex<mpsc::Receiver<Job>>, jobs_executed: &AtomicU64) {
    loop {
        // Hold the lock only while dequeuing, not while executing.
        let job = {
            let rx = match queue.lock() {
                Ok(rx) => rx,
                // A poisoned queue means another worker panicked while
                // *dequeuing* (execution happens outside the lock);
                // the receiver itself is still sound.
                Err(poisoned) => poisoned.into_inner(),
            };
            match rx.recv() {
                Ok(job) => job,
                Err(_) => return, // pool dropped: all senders gone
            }
        };
        let Job {
            cfg,
            epoch,
            homes,
            mut chunk,
            bucket,
            job_id,
            inject,
            reply,
        } = job;
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if inject == Some(Inject::PanicBefore) {
                panic!("injected: worker panic before window (epoch {epoch})");
            }
            let mut lane = chunk.lanes(&cfg, &homes, epoch);
            lane.run_batch(&bucket.ops, &bucket.runs);
            if inject == Some(Inject::PanicAfter) {
                panic!("injected: worker panic after window (epoch {epoch})");
            }
        }));
        // Drop the shared home view *before* replying: once the
        // coordinator has collected every reply, it is again the sole
        // owner and may extend the table in place.
        drop(homes);
        jobs_executed.fetch_add(1, Ordering::Relaxed);
        if let Some(Inject::Hang(ms)) = inject {
            // An injected hang: the window is done but the reply is
            // late. The coordinator's watchdog recovers the window and
            // discards this reply as stale by job id.
            std::thread::sleep(Duration::from_millis(ms));
        }
        match run {
            Ok(()) => {
                let _ = reply.send(Done {
                    job_id,
                    outcome: Ok((chunk, bucket)),
                });
            }
            Err(err) => {
                // The chunk may be mid-window; report the payload and
                // die. Recovery happens coordinator-side from the
                // pre-dispatch snapshot.
                let _ = reply.send(Done {
                    job_id,
                    outcome: Err(panic_payload(err.as_ref())),
                });
                return;
            }
        }
    }
}

/// A [`Machine`] executed in deterministic node shards on a
/// [`ShardPool`].
///
/// # Example
///
/// ```
/// use rnuma::config::{MachineConfig, Protocol};
/// use rnuma::machine::Machine;
/// use rnuma::shard::ShardedMachine;
/// use rnuma_mem::addr::{CpuId, Va};
///
/// let config = MachineConfig::paper_base(Protocol::paper_rnuma());
/// // Record a run...
/// let mut serial = Machine::new(config).unwrap();
/// serial.start_tracing();
/// serial.access(CpuId(0), Va(0x1000), true);
/// serial.access(CpuId(17), Va(0x9000), false);
/// let trace = serial.take_trace();
/// // ...and replay it across 4 shards: the metrics are bit-identical.
/// let mut sharded = ShardedMachine::new(config, 4).unwrap();
/// sharded.run_trace(&trace);
/// assert!(serial.metrics().replay_eq(&sharded.metrics()));
/// ```
#[derive(Debug)]
pub struct ShardedMachine {
    machine: Machine,
    /// Contiguous node range of each shard.
    ranges: Vec<Range<usize>>,
    /// Node index → owning shard.
    shard_of_node: Vec<u8>,
    /// Monotone per-page footprint + resolved home, maintained by the
    /// window scan; shared read-only with workers during windows.
    footprints: Arc<Footprints>,
    /// Double buffer of the window scan: while workers execute window
    /// N (holding `Arc` views of `footprints`), the coordinator scans
    /// window N+1 into this coordinator-private overlay, merged into
    /// the base bank-by-bank at the barrier — or discarded (and
    /// counted) when a fault forces inline re-execution.
    scan_overlay: Footprints,
    /// Which window scheduler consumes the trace (`RNUMA_EXEC`, with
    /// `RNUMA_PIPELINE` as the legacy two-way selector; default
    /// [`ExecEngine::Log`]). Results are engine-agnostic by contract.
    engine: ExecEngine,
    epochs: EpochClock,
    parallel_threshold: usize,
    pool: Arc<ShardPool>,
    /// Per-shard chunks: accumulators persist here between windows;
    /// machine state moves in and out per parallel window.
    chunks: Vec<ShardChunk>,
    op_buckets: Vec<Bucket>,
    effect_scratch: Vec<EffectMsg>,
    reply_tx: mpsc::Sender<Done>,
    reply_rx: mpsc::Receiver<Done>,
    stats: ShardStats,
    /// Deterministic fault schedule (`RNUMA_FAULTS`, or
    /// [`set_fault_plan`](Self::set_fault_plan)); `None` = no injection.
    fault_plan: Option<FaultPlan>,
    /// Watchdog: max milliseconds to wait for any worker reply at a
    /// window barrier (`RNUMA_WINDOW_DEADLINE_MS`, default off).
    deadline_ms: Option<u64>,
    /// Faults this machine absorbed (panics recovered, hangs timed out,
    /// submissions degraded to inline).
    fault_log: FaultLog,
    /// Monotone job-id source for stale-reply discrimination.
    next_job_id: u64,
    /// Log engine: each shard's consumption cursor into the shared
    /// span log — the number of window descriptors that shard has
    /// consumed (inline spans count for every shard; a shard with an
    /// empty bucket consumes the descriptor by skipping it).
    span_cursors: Vec<u64>,
    /// Log engine: how often each shard's cursor was rolled back to
    /// its pre-dispatch snapshot by fault recovery. Recovery is
    /// per-cursor — a lost worker re-executes only its own span job;
    /// the other shards' completed spans stand.
    cursor_rollbacks: Vec<u64>,
}

/// A dispatched-but-unresolved window job the barrier is waiting on:
/// its id, its shard slot, what was injected, and — when the executor
/// is armed — the pre-dispatch snapshot exact recovery re-executes.
struct Pending {
    job_id: u64,
    slot: usize,
    inject: Option<Inject>,
    snapshot: Option<(ShardChunk, Bucket)>,
}

impl ShardedMachine {
    /// Builds a fresh machine from `config`, partitioned into `shards`
    /// contiguous node shards (clamped to `1..=min(nodes, MAX_SHARDS)`),
    /// executing parallel windows on the process-wide
    /// [`ShardPool::shared`] pool.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error, if any.
    pub fn new(config: MachineConfig, shards: usize) -> Result<ShardedMachine, ConfigError> {
        ShardedMachine::with_pool(config, shards, ShardPool::shared())
    }

    /// Like [`ShardedMachine::new`], but on an explicit pool. Tests use
    /// this to force the threaded path regardless of host core count;
    /// embedders use it to bound worker threads.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error, if any.
    pub fn with_pool(
        config: MachineConfig,
        shards: usize,
        pool: Arc<ShardPool>,
    ) -> Result<ShardedMachine, ConfigError> {
        let machine = Machine::new(config)?;
        let nodes = config.nodes as usize;
        let shards = shards.clamp(1, nodes.min(MAX_SHARDS));
        // Block-partition the nodes (same scheme as Runner::block_partition).
        let ranges: Vec<Range<usize>> = (0..shards)
            .map(|s| (nodes * s / shards)..(nodes * (s + 1) / shards))
            .collect();
        let mut shard_of_node = vec![0u8; nodes];
        for (s, r) in ranges.iter().enumerate() {
            for n in r.clone() {
                shard_of_node[n] = s as u8;
            }
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        let dir_banks = dir_shards_from_env().unwrap_or(DEFAULT_DIR_SHARDS);
        Ok(ShardedMachine {
            machine,
            shard_of_node,
            footprints: Arc::new(Footprints::with_banks(dir_banks)),
            scan_overlay: Footprints::with_banks(dir_banks),
            engine: engine_from_env(),
            epochs: EpochClock::new(),
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            pool,
            chunks: (0..shards).map(|_| ShardChunk::default()).collect(),
            op_buckets: (0..shards).map(|_| Bucket::default()).collect(),
            effect_scratch: Vec::new(),
            reply_tx,
            reply_rx,
            stats: ShardStats::default(),
            fault_plan: FaultPlan::from_env(),
            deadline_ms: window_deadline_from_env(),
            fault_log: FaultLog::new(),
            next_job_id: 0,
            span_cursors: vec![0; shards],
            cursor_rollbacks: vec![0; shards],
            ranges,
        })
    }

    /// Installs (or clears) a deterministic fault schedule for this
    /// machine's windows, replacing whatever `RNUMA_FAULTS` configured.
    /// A non-`None` plan arms pre-dispatch snapshots, so every injected
    /// (or real) worker fault recovers to bit-identical metrics.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
    }

    /// Sets (or clears) the per-window watchdog deadline in
    /// milliseconds, replacing whatever `RNUMA_WINDOW_DEADLINE_MS`
    /// configured. A deadline arms pre-dispatch snapshots; a window
    /// whose workers do not reply in time is re-executed inline from
    /// the snapshot, and late replies are discarded.
    pub fn set_window_deadline_ms(&mut self, ms: Option<u64>) {
        self.deadline_ms = ms.filter(|&ms| ms > 0);
    }

    /// The faults this machine has absorbed so far: recovered worker
    /// panics, timed-out windows, and submissions that degraded to
    /// inline execution. Empty on an undisturbed run.
    #[must_use]
    pub fn fault_log(&self) -> &FaultLog {
        &self.fault_log
    }

    /// True when window dispatch must take recovery snapshots: some
    /// fault source is armed (an injection plan or a watchdog
    /// deadline). Un-armed runs skip the clone entirely, so the hooks
    /// cost nothing in production.
    fn armed(&self) -> bool {
        self.fault_plan.is_some() || self.deadline_ms.is_some()
    }

    /// Number of shards the node space is partitioned into.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.ranges.len()
    }

    /// Executor scheduling statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> ShardStats {
        self.stats
    }

    /// Overrides the minimum window size for pool fan-out (benchmarks
    /// and tests; the default suits production runs).
    pub fn set_parallel_threshold(&mut self, ops: usize) {
        self.parallel_threshold = ops.max(1);
    }

    /// Selects the window scheduler, replacing whatever `RNUMA_EXEC`
    /// (or the legacy `RNUMA_PIPELINE`) configured. Results are
    /// bit-identical under every engine; only scheduling statistics
    /// and wall-clock differ.
    pub fn set_engine(&mut self, engine: ExecEngine) {
        self.engine = engine;
    }

    /// The selected window scheduler.
    #[must_use]
    pub fn engine(&self) -> ExecEngine {
        self.engine
    }

    /// Legacy two-way selector: `true` is the pipelined engine, `false`
    /// the plain barrier engine (scan, execute, barrier, strictly in
    /// sequence) — the differential references the log engine is
    /// tested against. Results are bit-identical either way.
    pub fn set_pipelined(&mut self, on: bool) {
        self.engine = if on {
            ExecEngine::Pipeline
        } else {
            ExecEngine::Barrier
        };
    }

    /// Whether pipelined window execution is selected.
    #[must_use]
    pub fn pipelined(&self) -> bool {
        self.engine == ExecEngine::Pipeline
    }

    /// Log engine: each shard's consumption cursor into the shared span
    /// log (descriptors consumed so far; other engines leave these 0).
    #[must_use]
    pub fn span_cursors(&self) -> &[u64] {
        &self.span_cursors
    }

    /// How often each shard's consumption was rolled back to its
    /// pre-dispatch snapshot by fault recovery. Recovery is per-shard:
    /// a lost worker re-executes only its own job, so exactly the
    /// faulted shard's counter moves.
    #[must_use]
    pub fn cursor_rollbacks(&self) -> &[u64] {
        &self.cursor_rollbacks
    }

    /// Re-banks the footprint/home directory into `banks` sub-shards
    /// (clamped to `1..=`[`MAX_DIR_SHARDS`]), replacing whatever
    /// `RNUMA_DIR_SHARDS` configured, and resets the scan state. Call
    /// before feeding any trace: banking is pure layout, so results
    /// never depend on it, but the footprint accumulated so far is
    /// discarded.
    pub fn set_dir_shards(&mut self, banks: usize) {
        let banks = banks.clamp(1, MAX_DIR_SHARDS);
        self.footprints = Arc::new(Footprints::with_banks(banks));
        self.scan_overlay = Footprints::with_banks(banks);
    }

    /// Sub-shard (bank) count of the footprint/home directory.
    #[must_use]
    pub fn dir_shards(&self) -> usize {
        self.footprints.bank_count()
    }

    /// High-water ownership epoch across the footprint directory's
    /// bank tags: the newest `PageInfo::owner_epoch` stamp any scan has
    /// folded in (see [`EpochTags`]). Never exceeds the epoch counter —
    /// stamps come only from scans at (or, for a prefetched scan, one
    /// past) the current epoch — which the engines `debug_assert`.
    #[must_use]
    pub fn dir_epoch_high_water(&self) -> u64 {
        self.footprints
            .epoch_high_water()
            .max(self.scan_overlay.epoch_high_water())
    }

    /// The underlying machine (read-only; diagnostics).
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// A snapshot of the run metrics so far.
    ///
    /// Valid between [`ShardedMachine::run_trace`] /
    /// [`ShardedMachine::run_segments`] calls (shard-local metrics are
    /// folded in at the end of each call).
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        self.machine.metrics()
    }

    /// Replays `ops` deterministically across the shards.
    ///
    /// The resulting machine state and metrics are bit-identical to a
    /// serial [`Machine`] executing the same trace, for any shard count
    /// and any pool size.
    ///
    /// # Panics
    ///
    /// Panics if an op references a CPU outside the machine, or
    /// (indicating an executor bug) if a contained window touches
    /// out-of-shard state.
    pub fn run_trace(&mut self, ops: &[TraceOp]) {
        self.run_segments(std::iter::once(ops));
    }

    /// Replays a segmented trace — the form streams take inside an
    /// interned `TraceStore` arena — deterministically across the
    /// shards, bit-identical to a serial batched
    /// [`Machine::apply_batch`] of the same segments, in order.
    ///
    /// Window formation restarts at segment boundaries (a window never
    /// spans two segments); since *any* partition into contained windows
    /// replays exactly, segmentation affects scheduling statistics but
    /// not results.
    ///
    /// # Panics
    ///
    /// As [`ShardedMachine::run_trace`].
    pub fn run_segments<'a, I>(&mut self, segments: I)
    where
        I: IntoIterator<Item = &'a [TraceOp]>,
    {
        for seg in segments {
            self.run_ops(seg);
        }
        self.fold_shard_metrics();
    }

    fn run_ops(&mut self, ops: &[TraceOp]) {
        // With one shard or a worker-less pool no window can ever fan
        // out, so the window scan would be pure overhead: replay
        // serially (identical results, by the determinism contract).
        // This is what keeps the sharded path within noise of serial on
        // single-core hosts.
        if self.ranges.len() == 1 || self.pool.workers() == 0 {
            self.stats.serialized_ops += ops.len() as u64;
            self.machine.apply_batch(ops);
            return;
        }
        match self.engine {
            ExecEngine::Log => self.run_ops_log(ops),
            ExecEngine::Pipeline | ExecEngine::Barrier => self.run_ops_windowed(ops),
        }
    }

    /// Log engine: builds the segment's shared span log in one up-front
    /// pass, then lets the shards consume it descriptor by descriptor.
    /// The scan is entirely off the execution path — footprints freeze
    /// once per segment, there is no overlay and nothing to invalidate
    /// — and only a descriptor's fence (a cross-shard access or a
    /// barrier; never a folded arm) reassembles the whole machine.
    fn run_ops_log(&mut self, ops: &[TraceOp]) {
        let cpus_per_node = self.machine.config().cpus_per_node;
        let log = self.build_log(ops, cpus_per_node);
        for span in log {
            let fence = span.fence;
            self.exec_span(ops, span);
            // Every shard consumed the descriptor (an empty bucket is
            // consumed by skipping it).
            for cursor in &mut self.span_cursors {
                *cursor += 1;
            }
            if let Some(at) = fence {
                self.stats.log_fences += 1;
                self.exec_blocking(&ops[at]);
            }
            self.epochs.advance();
        }
        // The up-front scan stamps each span at its own execution
        // epoch, so once every span has executed (one advance each) no
        // stamp can sit past the clock.
        debug_assert!(
            self.dir_epoch_high_water() <= self.epochs.current().0,
            "ownership stamp from the future: a scan classified past its epoch"
        );
    }

    /// Lockstep engines (pipeline/barrier): scan a window, execute it,
    /// fence at the blocking op, repeat.
    fn run_ops_windowed(&mut self, ops: &[TraceOp]) {
        let cpus_per_node = self.machine.config().cpus_per_node;
        let mut cursor = 0usize;
        // End of the window starting at `cursor` when the previous
        // iteration's overlapped prefetch scan already classified it
        // (and merged its footprint updates at the barrier).
        let mut prefetched: Option<usize> = None;
        while cursor < ops.len() {
            let end = match prefetched.take() {
                Some(end) => end,
                None => self.scan_window(ops, cursor, cpus_per_node),
            };
            // Execute the window; a pipelined parallel window scans
            // the next one into the overlay while its workers run and
            // returns that window's end (unless a fault invalidated
            // the prefetch).
            prefetched = self.exec_window(ops, cursor, end, cpus_per_node);
            debug_assert!(prefetched.is_none() || end < ops.len());
            // Execute the blocking op (if any) serially on the whole
            // machine, then start the next epoch.
            if end < ops.len() {
                self.exec_blocking(&ops[end]);
                cursor = end + 1;
            } else {
                cursor = end;
            }
            self.epochs.advance();
            // A prefetched scan stamps at the *next* window's epoch —
            // exactly the clock value after this advance — so stamps
            // never sit past the clock at a barrier.
            debug_assert!(
                self.dir_epoch_high_water() <= self.epochs.current().0,
                "ownership stamp from the future: a scan classified past its epoch"
            );
        }
    }

    /// Scans the maximal contained window starting at `cursor`,
    /// updating the footprint directory in place. The coordinator is
    /// the sole owner of the table between windows (workers dropped
    /// their views at the last barrier), so one make_mut per window —
    /// not per op — yields the in-place borrow the whole scan
    /// classifies against.
    fn scan_window(&mut self, ops: &[TraceOp], cursor: usize, cpus_per_node: u16) -> usize {
        let epoch = self.epochs.current().0;
        let mut end = cursor;
        let mut target = ScanTarget::Base(Arc::make_mut(&mut self.footprints));
        while end < ops.len()
            && classify(
                &ops[end],
                &mut target,
                &mut self.machine,
                &self.shard_of_node,
                cpus_per_node,
                epoch,
            ) == Class::Contained
        {
            end += 1;
        }
        end
    }

    /// The overlapped half of the pipeline: scans the window *after*
    /// the blocking op at `blocking` while pool workers are still
    /// executing the current window, writing every footprint update to
    /// the coordinator-private overlay (workers hold frozen `Arc`
    /// views of the base, which must not move under them). Returns the
    /// prefetched window's end.
    ///
    /// Scanning past the not-yet-executed blocking op is exact:
    /// classification depends only on the footprint directory, the
    /// page manager's home table, and the first-touch arming flag.
    /// A `Barrier` touches none of those; a blocking `Access`'s page
    /// was already footprinted and homed when it was classified; and
    /// `ArmFirstTouch`'s one scan-visible effect — the arming flag —
    /// is monotone and idempotent, so it is applied here, early (the
    /// serial re-arm at `exec_blocking` is then a no-op). Early arming
    /// cannot perturb the in-flight window: its workers resolve homes
    /// through the frozen footprint view, never the page manager.
    fn prefetch_scan(&mut self, ops: &[TraceOp], blocking: usize, cpus_per_node: u16) -> usize {
        if matches!(ops[blocking], TraceOp::ArmFirstTouch) {
            self.machine.pages_mut().arm_first_touch();
        }
        // The scanned window executes one epoch after the in-flight one.
        let epoch = self.epochs.current().0 + 1;
        let mut end = blocking + 1;
        let mut target = ScanTarget::Overlay {
            base: &self.footprints,
            overlay: &mut self.scan_overlay,
        };
        while end < ops.len()
            && classify(
                &ops[end],
                &mut target,
                &mut self.machine,
                &self.shard_of_node,
                cpus_per_node,
                epoch,
            ) == Class::Contained
        {
            end += 1;
        }
        end
    }

    /// Shard of the node `cpu` lives on.
    fn shard_of_cpu(&self, cpu: CpuId) -> usize {
        let node = (cpu.0 / self.machine.config().cpus_per_node) as usize;
        self.shard_of_node[node] as usize
    }

    /// Builds the shared span log for one segment: a single pass in
    /// trace order classifies every op against the footprint directory
    /// and appends one fence-delimited [`SpanDesc`] per window.
    ///
    /// Two things distinguish this from the lockstep engines' scans:
    ///
    /// * **Arms fold.** `ArmFirstTouch`'s one scan-visible effect —
    ///   the page manager's arming flag — is applied right here, in
    ///   trace order, and the op never fences: the windows on either
    ///   side merge into one span. This is exact for the same reason
    ///   the pipelined prefetch may arm early (the flag is monotone
    ///   and idempotent, homes resolve in trace order either way), and
    ///   it is what retires the global barrier the arm used to force.
    /// * **The whole segment scans before anything executes.**
    ///   Classification depends only on the monotone footprints, the
    ///   trace-order home resolution, and the arming flag — never on
    ///   execution state — so scanning arbitrarily far past unexecuted
    ///   blocking ops is exact (the pipelined engine's one-window
    ///   lookahead argument, applied inductively). Footprints are
    ///   frozen once per segment; there is no overlay.
    ///
    /// Each span's ownership epoch is `base_epoch + its log position`;
    /// [`classify`] stamps that epoch into `PageInfo::owner_epoch` on
    /// every writer-set transition, so a deferred effect's
    /// `(epoch, home, seq)` key carries the epoch of the span that
    /// owns the transition, with `seq` still the global trace position.
    fn build_log(&mut self, ops: &[TraceOp], cpus_per_node: u16) -> Vec<SpanDesc> {
        let base_epoch = self.epochs.current().0;
        let shards = self.ranges.len();
        let threshold = self.parallel_threshold;
        let mut log: Vec<SpanDesc> = Vec::new();
        let mut buckets: Vec<Bucket> = (0..shards).map(|_| Bucket::default()).collect();
        let mut per_cpu_ops = 0usize;
        let mut start = 0usize;
        // The coordinator is sole owner until execution starts: one
        // make_mut for the whole segment scan.
        let mut target = ScanTarget::Base(Arc::make_mut(&mut self.footprints));
        for (i, op) in ops.iter().enumerate() {
            if matches!(op, TraceOp::ArmFirstTouch) {
                self.machine.pages_mut().arm_first_touch();
                self.stats.arms_folded += 1;
                continue;
            }
            let epoch = base_epoch + log.len() as u64;
            let class = classify(
                op,
                &mut target,
                &mut self.machine,
                &self.shard_of_node,
                cpus_per_node,
                epoch,
            );
            match class {
                Class::Contained => {
                    if let TraceOp::Access { cpu, .. } | TraceOp::Think { cpu, .. } = *op {
                        let node = (cpu.0 / cpus_per_node) as usize;
                        let shard = self.shard_of_node[node] as usize;
                        buckets[shard].push(i as u64, cpu, *op);
                        per_cpu_ops += 1;
                    }
                }
                Class::Blocking => {
                    log.push(close_span(
                        start..i,
                        Some(i),
                        per_cpu_ops,
                        threshold,
                        &mut buckets,
                    ));
                    per_cpu_ops = 0;
                    start = i + 1;
                }
            }
        }
        if start < ops.len() || per_cpu_ops > 0 {
            log.push(close_span(
                start..ops.len(),
                None,
                per_cpu_ops,
                threshold,
                &mut buckets,
            ));
        }
        log
    }

    /// Consumes one span of the shared log at the current epoch:
    /// below-threshold spans replay batched on the coordinator (the
    /// folded arms inside the range re-arm as idempotent no-ops);
    /// larger spans dispatch the descriptor's pre-built buckets — one
    /// job per shard, first non-empty bucket inline on the coordinator
    /// — and close with the effect barrier in canonical
    /// `(epoch, home, seq)` order.
    fn exec_span(&mut self, ops: &[TraceOp], span: SpanDesc) {
        if span.range.is_empty() {
            return;
        }
        self.stats.windows += 1;
        self.stats.log_spans += 1;
        self.stats.contained_ops += span.per_cpu_ops as u64;
        let epoch = self.epochs.current().0;
        if span.buckets.is_empty() {
            self.machine.apply_batch(&ops[span.range]);
            return;
        }
        self.stats.parallel_windows += 1;
        for (slot, bucket) in self.op_buckets.iter_mut().zip(span.buckets) {
            self.stats.bucket_runs += bucket.runs.len() as u64;
            *slot = bucket;
        }
        let cfg = *self.machine.config();
        let armed = self.armed();
        self.machine.detach_shards(&self.ranges, &mut self.chunks);
        let mut inline_shard = None;
        let mut pending: Vec<Pending> = Vec::new();
        for s in 0..self.ranges.len() {
            if self.op_buckets[s].is_empty() {
                continue;
            }
            if inline_shard.is_none() {
                inline_shard = Some(s);
                continue;
            }
            self.dispatch_shard(s, &cfg, epoch, armed, &mut pending);
        }
        if let Some(s) = inline_shard {
            let bucket = &self.op_buckets[s];
            let mut lane = self.chunks[s].lanes(&cfg, &self.footprints, epoch);
            lane.run_batch(&bucket.ops, &bucket.runs);
        }
        self.collect_pending(&mut pending, &cfg, epoch);
        self.machine.attach_shards(&mut self.chunks);
        self.apply_effects(epoch);
    }

    /// Executes a contained window: inline when smaller than the
    /// fan-out threshold, otherwise fanned out over the pool with
    /// cross-shard effects replayed in canonical order at the closing
    /// barrier. (Single-shard and worker-less executions never reach
    /// here — `run_ops` bypasses the scan entirely.)
    ///
    /// On the pipelined parallel path the coordinator scans the *next*
    /// window into the overlay while workers execute this one, and
    /// returns that window's end — `None` when nothing was prefetched,
    /// or when a fault recovery at the barrier invalidated the
    /// prefetch (overlay discarded, `scans_invalidated` bumped; the
    /// caller re-scans deterministically).
    fn exec_window(
        &mut self,
        ops: &[TraceOp],
        start: usize,
        end: usize,
        cpus_per_node: u16,
    ) -> Option<usize> {
        if start == end {
            return None;
        }
        self.stats.windows += 1;
        self.stats.contained_ops += (end - start) as u64;
        if end - start < self.parallel_threshold {
            self.machine.apply_batch(&ops[start..end]);
            return None;
        }
        self.stats.parallel_windows += 1;

        // Bucket the window per shard, building each bucket's run
        // table as it fills: each op lands under its global sequence
        // number (the canonical serialization order), and a run grows
        // while both the CPU and the sequence stay contiguous.
        for bucket in &mut self.op_buckets {
            bucket.clear();
        }
        for (i, op) in ops[start..end].iter().enumerate() {
            let cpu = match *op {
                TraceOp::Access { cpu, .. } | TraceOp::Think { cpu, .. } => cpu,
                TraceOp::Barrier | TraceOp::ArmFirstTouch => {
                    unreachable!("global ops never enter a contained window")
                }
            };
            let shard = self.shard_of_cpu(cpu);
            self.op_buckets[shard].push((start + i) as u64, cpu, *op);
        }
        for bucket in &self.op_buckets {
            self.stats.bucket_runs += bucket.runs.len() as u64;
        }

        // Hand each shard its owned state chunk. The first non-empty
        // bucket stays on the coordinator; the rest ship to parked
        // workers. Empty-bucket chunks never leave the coordinator.
        let epoch = self.epochs.current().0;
        let cfg = *self.machine.config();
        let armed = self.armed();
        self.machine.detach_shards(&self.ranges, &mut self.chunks);
        let mut inline_shard = None;
        let mut pending: Vec<Pending> = Vec::new();
        for s in 0..self.ranges.len() {
            if self.op_buckets[s].is_empty() {
                continue;
            }
            if inline_shard.is_none() {
                inline_shard = Some(s);
                continue;
            }
            self.dispatch_shard(s, &cfg, epoch, armed, &mut pending);
        }
        if let Some(s) = inline_shard {
            let bucket = &self.op_buckets[s];
            let mut lane = self.chunks[s].lanes(&cfg, &self.footprints, epoch);
            lane.run_batch(&bucket.ops, &bucket.runs);
        }

        // The pipeline's overlap: with workers still executing their
        // buckets, scan the next window into the overlay. Only worth
        // anything when jobs are actually in flight — otherwise the
        // scan would run now or at the next iteration all the same.
        let mut prefetched = None;
        if self.engine == ExecEngine::Pipeline && end < ops.len() && !pending.is_empty() {
            prefetched = Some(self.prefetch_scan(ops, end, cpus_per_node));
            self.stats.scans_prefetched += 1;
        }

        // Epoch barrier: every chunk comes home — from its worker, or
        // re-executed from its pre-dispatch snapshot when the worker
        // panicked or the watchdog fired — then buffered cross-shard
        // directory effects replay in canonical (epoch, home, seq)
        // order.
        let recovered = self.collect_pending(&mut pending, &cfg, epoch);
        self.machine.attach_shards(&mut self.chunks);
        self.apply_effects(epoch);

        // Resolve the prefetched scan against what the barrier saw.
        // Fault recovery re-executed buckets inline; the recovery
        // invariant is deliberately conservative — no speculative scan
        // state survives a recovered window — so the overlay is
        // discarded and the caller re-scans. The re-scan is exact:
        // every overlay mutation was coordinator-private, and home
        // resolution is idempotent (a re-touched page keeps its fixed
        // home), so the re-scan reproduces the discarded window
        // verbatim. On the undisturbed path the overlay merges into
        // the base — the coordinator is sole owner again, every worker
        // dropped its `Arc` view before replying — and the prefetched
        // window dispatches without ever re-reading those ops.
        if prefetched.is_some() {
            if recovered {
                prefetched = None;
                self.scan_overlay.clear();
                self.stats.scans_invalidated += 1;
            } else {
                Arc::make_mut(&mut self.footprints).merge_from(&mut self.scan_overlay);
            }
        }
        prefetched
    }

    /// Dispatches shard `s`'s filled bucket to the pool, appending to
    /// `pending` on success. Fault decisions are made here,
    /// coordinator-side, in dispatch order, so the schedule is a pure
    /// function of the plan — workers just obey the job's inject flag.
    /// A typed submission failure (no workers, poisoned or closed
    /// queue) runs the bucket inline on the coordinator — degraded,
    /// never aborted, results unchanged.
    fn dispatch_shard(
        &mut self,
        s: usize,
        cfg: &MachineConfig,
        epoch: u64,
        armed: bool,
        pending: &mut Vec<Pending>,
    ) {
        if let Some(plan) = &mut self.fault_plan {
            if plan.should_fire(FaultKind::Poison) {
                self.pool.poison();
            }
        }
        let inject = self.fault_plan.as_mut().and_then(|plan| {
            if plan.should_fire(FaultKind::PanicBefore) {
                Some(Inject::PanicBefore)
            } else if plan.should_fire(FaultKind::PanicAfter) {
                Some(Inject::PanicAfter)
            } else if plan.should_fire(FaultKind::Hang) {
                Some(Inject::Hang(plan.hang_ms()))
            } else {
                None
            }
        });
        let chunk = std::mem::take(&mut self.chunks[s]);
        let bucket = std::mem::take(&mut self.op_buckets[s]);
        // Armed executions snapshot (chunk, bucket) before dispatch:
        // a window is self-contained given (cfg, homes, epoch), so
        // re-executing the snapshot inline reproduces the worker's
        // result exactly. Un-armed runs skip the clone.
        let snapshot = armed.then(|| (chunk.clone(), bucket.clone()));
        let job_id = self.next_job_id;
        self.next_job_id += 1;
        match self.pool.submit(Job {
            cfg: *cfg,
            epoch,
            homes: Arc::clone(&self.footprints),
            chunk,
            bucket,
            job_id,
            inject,
            reply: self.reply_tx.clone(),
        }) {
            Ok(()) => {
                pending.push(Pending {
                    job_id,
                    slot: s,
                    inject,
                    snapshot,
                });
                self.stats.pool_jobs += 1;
            }
            Err((err, job)) => {
                let Job {
                    mut chunk, bucket, ..
                } = job;
                {
                    let mut lane = chunk.lanes(cfg, &self.footprints, epoch);
                    lane.run_batch(&bucket.ops, &bucket.runs);
                }
                self.chunks[s] = chunk;
                self.op_buckets[s] = bucket;
                self.stats.inline_fallbacks += 1;
                self.fault_log
                    .record(FaultKind::Poison, job_id, err.to_string());
            }
        }
    }

    /// Collects every still-pending job at a window/span barrier: each
    /// chunk comes home from its worker, or is re-executed from its
    /// pre-dispatch snapshot when the worker panicked or the watchdog
    /// fired. Returns whether any job was recovered.
    fn collect_pending(
        &mut self,
        pending: &mut Vec<Pending>,
        cfg: &MachineConfig,
        epoch: u64,
    ) -> bool {
        let mut recovered = false;
        while !pending.is_empty() {
            let done = match self.deadline_ms {
                None => match self.reply_rx.recv() {
                    Ok(done) => done,
                    Err(_) => unreachable!("coordinator holds a reply sender"),
                },
                Some(ms) => match self.reply_rx.recv_timeout(Duration::from_millis(ms)) {
                    Ok(done) => done,
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        // Watchdog: every still-pending job is presumed
                        // hung. Recover them all from their snapshots;
                        // late replies are discarded by job id.
                        for p in std::mem::take(pending) {
                            self.recover_window(p, cfg, epoch, &PoolError::DeadlineElapsed(ms));
                        }
                        recovered = true;
                        break;
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        unreachable!("coordinator holds a reply sender")
                    }
                },
            };
            let Some(at) = pending.iter().position(|p| p.job_id == done.job_id) else {
                // A late reply from a job the watchdog already
                // recovered (possibly in an earlier window): drop it.
                self.stats.stale_replies += 1;
                continue;
            };
            let p = pending.swap_remove(at);
            match done.outcome {
                Ok((chunk, bucket)) => {
                    self.chunks[p.slot] = chunk;
                    self.op_buckets[p.slot] = bucket;
                }
                Err(payload) => {
                    // The worker died on this job: replace it, then
                    // recover the window exactly.
                    self.pool.respawn_worker();
                    self.recover_window(p, cfg, epoch, &PoolError::WorkerPanicked(payload));
                    recovered = true;
                }
            }
        }
        recovered
    }

    /// Replays the buffered cross-shard directory effects of the window
    /// (or span) that just closed, in canonical `(epoch, home, seq)`
    /// order.
    fn apply_effects(&mut self, epoch: u64) {
        let effects = &mut self.effect_scratch;
        effects.clear();
        for chunk in &mut self.chunks {
            effects.append(&mut chunk.effects);
        }
        // Buffers drain at their own window's barrier, so a batch holds
        // exactly one epoch; the key's epoch component documents the
        // model rather than discriminating here.
        debug_assert!(effects.iter().all(|msg| msg.key.epoch == epoch));
        effects.sort_unstable_by_key(|msg| msg.key);
        self.stats.effects_applied += effects.len() as u64;
        for msg in effects.drain(..) {
            self.machine.dir_mut(msg.key.home).apply(msg.effect);
        }
    }

    /// Exact recovery of one dispatched window job: re-executes its
    /// bucket from the pre-dispatch snapshot on the coordinator — the
    /// same batched kernel, same frozen homes, same epoch — so the
    /// recovered chunk is bit-identical to what an undisturbed worker
    /// would have returned. The faulty worker's copy of the state (mid-
    /// window, or merely late) is discarded wholesale.
    ///
    /// # Panics
    ///
    /// Panics with the typed [`PoolError`] when the executor was not
    /// armed: a real worker panic without a snapshot cannot be
    /// recovered exactly, so surfacing the bug beats silently
    /// diverging.
    fn recover_window(&mut self, p: Pending, cfg: &MachineConfig, epoch: u64, err: &PoolError) {
        let Some((mut chunk, bucket)) = p.snapshot else {
            panic!(
                "{err}; no recovery snapshot was armed (set RNUMA_FAULTS or \
                 RNUMA_WINDOW_DEADLINE_MS to enable exact self-healing)"
            );
        };
        {
            let mut lane = chunk.lanes(cfg, &self.footprints, epoch);
            lane.run_batch(&bucket.ops, &bucket.runs);
        }
        self.chunks[p.slot] = chunk;
        self.op_buckets[p.slot] = bucket;
        self.stats.recovered_jobs += 1;
        // The rollback is per-cursor: only the faulted shard's
        // consumption rewound to its pre-dispatch snapshot — the other
        // shards' completed work stands.
        self.cursor_rollbacks[p.slot] += 1;
        let kind = match (err, p.inject) {
            (PoolError::DeadlineElapsed(_), _) => FaultKind::Hang,
            (_, Some(Inject::PanicBefore)) => FaultKind::PanicBefore,
            _ => FaultKind::PanicAfter,
        };
        self.fault_log.record(kind, p.job_id, err.to_string());
    }

    fn exec_blocking(&mut self, op: &TraceOp) {
        self.stats.serialized_ops += 1;
        self.machine.apply_op(op);
    }

    /// Folds the shards' metric deltas into the machine's metrics, in
    /// canonical shard order.
    fn fold_shard_metrics(&mut self) {
        for chunk in &mut self.chunks {
            self.machine.metrics_mut().absorb(&mut chunk.metrics);
        }
    }
}

/// Where a window scan writes its footprint updates.
///
/// Between windows the coordinator owns the base table and mutates it
/// in place. During a pipelined window the base is frozen under the
/// workers' `Arc` views, so the overlapped prefetch scan copies each
/// touched entry into the coordinator-private overlay on first touch
/// and updates it there (reads resolve overlay-first); the overlay
/// merges back — or is discarded wholesale on fault recovery — at the
/// barrier.
enum ScanTarget<'a> {
    /// Sole-owner scan between windows: mutate the base in place.
    Base(&'a mut Footprints),
    /// Overlapped prefetch scan: base frozen, updates to the overlay.
    Overlay {
        base: &'a Footprints,
        overlay: &'a mut Footprints,
    },
}

impl PageInfo {
    /// Folds one scanned reference by shard-bit `bit` at `epoch` into
    /// the entry: the shard joins the footprint, a store joins the
    /// writer set, and a writer-set transition (a shard storing for
    /// the first time) re-stamps the ownership epoch.
    fn touch(&mut self, bit: u32, write: bool, epoch: u64) {
        self.shard_mask |= bit;
        if write && self.writer_mask & bit == 0 {
            self.writer_mask |= bit;
            self.owner_epoch = epoch;
        }
    }
}

impl ScanTarget<'_> {
    /// Reads, updates, and returns `page`'s footprint entry, creating
    /// it (home resolved through `resolve`) on the page's first-ever
    /// reference.
    fn update(
        &mut self,
        page: VPage,
        bit: u32,
        write: bool,
        epoch: u64,
        resolve: impl FnOnce() -> NodeId,
    ) -> PageInfo {
        let fresh = |home| PageInfo {
            shard_mask: bit,
            writer_mask: if write { bit } else { 0 },
            home,
            owner_epoch: epoch,
        };
        let info = match self {
            ScanTarget::Base(fp) => {
                if let Some(info) = fp.get_mut(page) {
                    info.touch(bit, write, epoch);
                    *info
                } else {
                    let info = fresh(resolve());
                    fp.insert(page, info);
                    info
                }
            }
            ScanTarget::Overlay { base, overlay } => {
                if let Some(info) = overlay.get_mut(page) {
                    info.touch(bit, write, epoch);
                    *info
                } else {
                    // Copy-on-first-touch from the frozen base, or a
                    // brand-new page; either way the authoritative
                    // entry now lives in the overlay.
                    let info = match base.get(page) {
                        Some(seen) => {
                            let mut info = *seen;
                            info.touch(bit, write, epoch);
                            info
                        }
                        None => fresh(resolve()),
                    };
                    overlay.insert(page, info);
                    info
                }
            }
        };
        // Fold the stamp into the bank's high-water tag on whichever
        // table is authoritative for the page right now.
        match self {
            ScanTarget::Base(fp) => fp.tag(page, info.owner_epoch),
            ScanTarget::Overlay { overlay, .. } => overlay.tag(page, info.owner_epoch),
        }
        info
    }
}

/// Classifies one op, updating the page footprint and pre-resolving
/// the page's home exactly as the serial fault would. A free function
/// over the executor's split-borrowed fields so the scan loop holds
/// one footprint borrow for the whole window.
///
/// The home resolution is sound to run at scan time: a page's first
/// trace reference is necessarily its first machine-wide fault (an
/// unhomed page cannot be mapped — or cached — anywhere), the scan
/// visits references in trace order, and a scan only runs past a
/// blocking op after that op's sole scan-visible effect — first-touch
/// arming — has been applied (see
/// [`ShardedMachine::prefetch_scan`]).
///
/// An access is contained when its page's home lies in the issuer's
/// shard **and** either
///
/// * the page's footprint is exactly the issuer's shard (the strict
///   rule: the walk owns every copy of the page), or
/// * the access is a load of a page whose writer set is contained in
///   the issuer's shard (the ownership relaxation). With no writers
///   the page has no owner in any directory and no dirty copy
///   anywhere; with writers all in the issuing shard, every owner and
///   every dirty copy lives inside that shard too (each past foreign
///   access was blocking — the home is here — and executed serially,
///   leaving foreign copies at most clean-shared). Either way the
///   load's walk touches only the issuer's own caches and the in-shard
///   home's state: a hit or an owner fetch stays in-shard, and adding
///   a sharer bit charges the in-shard home — loads never invalidate
///   or downgrade foreign clean sharers, so foreign shards' contained
///   ops can observe nothing. Stores get no such relaxation: a store
///   must invalidate every foreign copy, so it is contained only under
///   the strict rule.
///
/// The `epoch` stamps `PageInfo::owner_epoch` on every writer-set
/// transition — the per-page fence the log engine's exactness argument
/// is phrased in (`docs/DETERMINISM.md`): an access that would cross
/// an ownership boundary is, by this rule, blocking, so it executes at
/// a fence *after* the epoch that owns the transition.
fn classify(
    op: &TraceOp,
    target: &mut ScanTarget<'_>,
    machine: &mut Machine,
    shard_of_node: &[u8],
    cpus_per_node: u16,
    epoch: u64,
) -> Class {
    match *op {
        TraceOp::Think { .. } => Class::Contained,
        TraceOp::Barrier | TraceOp::ArmFirstTouch => Class::Blocking,
        TraceOp::Access { cpu, va, write } => {
            let node = (cpu.0 / cpus_per_node) as usize;
            let shard = shard_of_node[node] as usize;
            let bit = 1u32 << shard;
            let page = va.vpage();
            let info = target.update(page, bit, write, epoch, || {
                machine.pages_mut().home_on_touch(page, NodeId(node as u8))
            });
            let home_shard = shard_of_node[info.home.0 as usize] as usize;
            let exclusive = info.shard_mask == bit;
            let own_writers = !write && info.writer_mask & !bit == 0;
            if home_shard == shard && (exclusive || own_writers) {
                Class::Contained
            } else {
                Class::Blocking
            }
        }
    }
}

/// Closes the span `range` into a log descriptor: spans past the
/// parallel threshold take the scan's per-shard buckets with them
/// (the slots are left empty for the next span); smaller spans drop
/// the buckets and replay batched at consumption.
fn close_span(
    range: Range<usize>,
    fence: Option<usize>,
    per_cpu_ops: usize,
    threshold: usize,
    buckets: &mut [Bucket],
) -> SpanDesc {
    let taken = if per_cpu_ops >= threshold {
        buckets.iter_mut().map(std::mem::take).collect()
    } else {
        for bucket in buckets.iter_mut() {
            bucket.clear();
        }
        Vec::new()
    };
    SpanDesc {
        range,
        fence,
        per_cpu_ops,
        buckets: taken,
    }
}

/// The shard count requested via `RNUMA_SHARDS`, if any.
///
/// `RNUMA_SHARDS=1` explicitly requests the single-threaded path, and
/// unset means "no intra-machine sharding requested". A value that is
/// *set but not a usable shard count* — `0` or anything unparsable —
/// is a misconfiguration, and both shapes of it behave identically:
/// a warning is printed to stderr (once per process, via the shared
/// [`env_usize`](crate::experiment::env_usize) contract) and sharding
/// is disabled (`None`). Counts above [`MAX_SHARDS`] clamp down.
#[must_use]
pub fn shards_from_env() -> Option<usize> {
    crate::experiment::env_usize("RNUMA_SHARDS", None, MAX_SHARDS)
}

/// The per-window watchdog deadline requested via
/// `RNUMA_WINDOW_DEADLINE_MS`, if any.
///
/// Unset means "no watchdog" (the default: barriers wait indefinitely,
/// as a correct pool always replies). A value that is set but not a
/// usable deadline — `0` or anything unparsable — is a
/// misconfiguration: a warning is printed to stderr (once per process,
/// via the shared [`env_usize`](crate::experiment::env_usize)
/// contract) and the watchdog stays off.
#[must_use]
pub fn window_deadline_from_env() -> Option<u64> {
    crate::experiment::env_usize("RNUMA_WINDOW_DEADLINE_MS", None, usize::MAX).map(|ms| ms as u64)
}

/// The footprint-directory sub-shard count requested via
/// `RNUMA_DIR_SHARDS`, if any.
///
/// Unset means "use the default" ([`DEFAULT_DIR_SHARDS`]). Banking is
/// pure layout — any count produces bit-identical results — so a value
/// that is set but not usable (`0` or unparsable) is a
/// misconfiguration: a warning is printed to stderr (once per process,
/// via the shared [`env_usize`](crate::experiment::env_usize)
/// contract) and the default applies. Counts above [`MAX_DIR_SHARDS`]
/// clamp down.
#[must_use]
pub fn dir_shards_from_env() -> Option<usize> {
    crate::experiment::env_usize("RNUMA_DIR_SHARDS", None, MAX_DIR_SHARDS)
}

/// Whether `RNUMA_PIPELINE` enables pipelined window execution
/// (default: on).
///
/// `0`, `off`, and `false` select the plain barrier engine — the
/// differential reference, and an A/B lever for benchmarks. `1`, `on`,
/// and `true` select the pipeline explicitly. Anything else is a
/// misconfiguration: a warning is printed to stderr (once per process)
/// and the default (pipelined) applies.
#[must_use]
pub fn pipeline_from_env() -> bool {
    let Some(raw) = crate::experiment::env_raw("RNUMA_PIPELINE") else {
        return true;
    };
    match raw.as_str() {
        "0" | "off" | "false" => false,
        "1" | "on" | "true" => true,
        _ => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "rnuma: RNUMA_PIPELINE={raw:?} is not a switch \
                     (want 0/off/false or 1/on/true); pipelining stays on"
                );
            });
            true
        }
    }
}

/// The window scheduler requested via `RNUMA_EXEC`, if any.
///
/// Unset means "no explicit engine choice". A value that is set but
/// not an engine name is a misconfiguration: a warning is printed to
/// stderr (once per process) and the choice falls through to the
/// default resolution (`RNUMA_PIPELINE` if set, else the log engine) —
/// mirroring the other `RNUMA_*` contracts.
#[must_use]
pub fn exec_from_env() -> Option<ExecEngine> {
    let raw = crate::experiment::env_raw("RNUMA_EXEC")?;
    match raw.as_str() {
        "log" => Some(ExecEngine::Log),
        "pipeline" | "pipelined" => Some(ExecEngine::Pipeline),
        "barrier" => Some(ExecEngine::Barrier),
        _ => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "rnuma: RNUMA_EXEC={raw:?} is not an engine \
                     (want log, pipeline, or barrier); using the default"
                );
            });
            None
        }
    }
}

/// Resolves the engine a fresh [`ShardedMachine`] executes with:
/// `RNUMA_EXEC` wins when set to a valid engine; otherwise a *set*
/// `RNUMA_PIPELINE` keeps its legacy two-way meaning; otherwise the
/// log engine (the default).
#[must_use]
pub fn engine_from_env() -> ExecEngine {
    if let Some(engine) = exec_from_env() {
        return engine;
    }
    if crate::experiment::env_raw("RNUMA_PIPELINE").is_some() {
        if pipeline_from_env() {
            ExecEngine::Pipeline
        } else {
            ExecEngine::Barrier
        }
    } else {
        ExecEngine::Log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Protocol;

    fn config() -> MachineConfig {
        MachineConfig::paper_base(Protocol::paper_rnuma())
    }

    /// A pool that always has workers, so tests exercise the threaded
    /// path even on single-core CI hosts.
    fn test_pool() -> Arc<ShardPool> {
        Arc::new(ShardPool::new(2))
    }

    /// A partitioned stream: each CPU walks pages in its own node's
    /// region (fully contained), with a few shared-page accesses mixed
    /// in (blocking).
    fn mixed_trace(refs_per_cpu: u64, shared_every: u64) -> Vec<TraceOp> {
        let mut ops = Vec::new();
        ops.push(TraceOp::ArmFirstTouch);
        for i in 0..refs_per_cpu {
            for cpu in 0..32u16 {
                let node = u64::from(cpu / 4);
                let va = Va(((1 + node) << 20) + (i / 128) * 65536 + (i * 32) % 4096);
                ops.push(TraceOp::Access {
                    cpu: CpuId(cpu),
                    va,
                    write: i % 7 == 0,
                });
                if shared_every != 0 && i % shared_every == 3 && cpu % 9 == 0 {
                    // A page everyone touches: permanently cross-shard.
                    ops.push(TraceOp::Access {
                        cpu: CpuId(cpu),
                        va: Va(0xF00_0000 + (i % 8) * 32),
                        write: false,
                    });
                }
            }
            if i % 64 == 63 {
                ops.push(TraceOp::Barrier);
            }
        }
        ops
    }

    fn serial_replay_on(config: MachineConfig, ops: &[TraceOp]) -> Metrics {
        let mut m = Machine::new(config).unwrap();
        m.apply_batch(ops);
        m.metrics()
    }

    #[test]
    fn sharded_replay_is_bit_identical_to_serial() {
        let ops = mixed_trace(192, 16);
        let serial = serial_replay_on(config(), &ops);
        for shards in [1usize, 2, 4, 8] {
            let mut sm = ShardedMachine::with_pool(config(), shards, test_pool()).unwrap();
            sm.set_parallel_threshold(32); // exercise the threaded path
            sm.run_trace(&ops);
            assert!(
                serial.replay_eq(&sm.metrics()),
                "{shards} shards diverged from serial:\nserial: {serial}\nsharded: {}",
                sm.metrics()
            );
            if shards > 1 {
                assert!(
                    sm.stats().pool_jobs > 0,
                    "pool never engaged at {shards} shards: {:?}",
                    sm.stats()
                );
            }
        }
    }

    #[test]
    fn segmented_replay_matches_flat_replay() {
        let ops = mixed_trace(96, 8);
        let serial = serial_replay_on(config(), &ops);
        // Segment the stream at an awkward boundary: windows must close
        // early without changing results.
        for seg_len in [37usize, 256, 5000] {
            let mut sm = ShardedMachine::with_pool(config(), 4, test_pool()).unwrap();
            sm.set_parallel_threshold(16);
            sm.run_segments(ops.chunks(seg_len));
            assert!(
                serial.replay_eq(&sm.metrics()),
                "segmented replay (len {seg_len}) diverged from serial"
            );
        }
    }

    #[test]
    fn worker_less_pool_runs_inline() {
        let ops = mixed_trace(64, 0);
        let serial = serial_replay_on(config(), &ops);
        let pool = Arc::new(ShardPool::new(0));
        assert_eq!(pool.workers(), 0);
        let mut sm = ShardedMachine::with_pool(config(), 4, Arc::clone(&pool)).unwrap();
        sm.set_parallel_threshold(1);
        sm.run_trace(&ops);
        assert!(serial.replay_eq(&sm.metrics()));
        let stats = sm.stats();
        assert_eq!(
            (stats.windows, stats.parallel_windows),
            (0, 0),
            "zero workers must bypass the window scan entirely: {stats:?}"
        );
        assert_eq!(stats.serialized_ops, ops.len() as u64);
        assert_eq!(pool.jobs_executed(), 0);
    }

    #[test]
    fn one_pool_serves_many_machines() {
        let pool = test_pool();
        let ops = mixed_trace(64, 0);
        let serial = serial_replay_on(config(), &ops);
        for _ in 0..3 {
            let mut sm = ShardedMachine::with_pool(config(), 4, Arc::clone(&pool)).unwrap();
            sm.set_parallel_threshold(16);
            sm.run_trace(&ops);
            assert!(serial.replay_eq(&sm.metrics()));
        }
        assert!(
            pool.jobs_executed() > 0,
            "persistent pool should have executed jobs across machines"
        );
    }

    #[test]
    fn single_shard_never_fans_out() {
        let ops = mixed_trace(64, 0);
        let serial = serial_replay_on(config(), &ops);
        let mut sm = ShardedMachine::with_pool(config(), 1, test_pool()).unwrap();
        sm.set_parallel_threshold(1);
        sm.run_trace(&ops);
        assert_eq!(sm.shards(), 1);
        assert!(serial.replay_eq(&sm.metrics()));
        assert_eq!(
            sm.stats().parallel_windows,
            0,
            "one shard must stay on the coordinator thread"
        );
        assert_eq!(sm.stats().serialized_ops, ops.len() as u64);
    }

    #[test]
    fn partitioned_trace_forms_large_windows() {
        let ops = mixed_trace(128, 0);
        let mut sm = ShardedMachine::with_pool(config(), 4, test_pool()).unwrap();
        sm.set_parallel_threshold(64);
        sm.run_trace(&ops);
        let stats = sm.stats();
        assert!(stats.parallel_windows > 0, "expected fan-out: {stats:?}");
        // Fully partitioned references are all contained; only barriers
        // and the arm op serialize.
        assert!(
            stats.contained_ops > 30 * stats.serialized_ops,
            "partitioned trace should be almost entirely contained: {stats:?}"
        );
    }

    #[test]
    fn cross_shard_eviction_writebacks_are_deferred_and_exact() {
        // A 4-line block cache guarantees conflict evictions; a huge
        // threshold keeps relocation out of the picture.
        let config = MachineConfig::paper_base(Protocol::RNuma {
            block_cache_bytes: 128,
            page_cache_bytes: 320 * 1024,
            threshold: 1_000_000,
        });
        let mut ops = vec![TraceOp::ArmFirstTouch];
        let p = 0x80_0000u64; // page homed at node 5 (shard 2 of 4)
        ops.push(TraceOp::Access {
            cpu: CpuId(20),
            va: Va(p),
            write: true,
        });
        // Node 0 dirties blocks of the shard-2-homed page: cross-shard
        // accesses, leaving dirty lines in node 0's block cache.
        for b in 0..4u64 {
            ops.push(TraceOp::Access {
                cpu: CpuId(0),
                va: Va(p + b * 32),
                write: true,
            });
        }
        // Node 1 homes pages Q; node 0 then streams over them: a fully
        // contained window (home and footprint in shard 0) whose
        // block-cache fills evict the dirty shard-2 blocks — the posted
        // write-backs must cross the shard boundary as ordered effects.
        for q in 0..4u64 {
            ops.push(TraceOp::Access {
                cpu: CpuId(4),
                va: Va(0x10_0000 + q * 4096),
                write: true,
            });
        }
        for i in 0..64u64 {
            ops.push(TraceOp::Access {
                cpu: CpuId(0),
                va: Va(0x10_0000 + (i % 4) * 4096 + (i / 4) * 32),
                write: false,
            });
        }
        // Node 5 reads its page back: the deferred write-backs must have
        // landed (owner cleared, was-owner set) exactly as in serial.
        for b in 0..4u64 {
            ops.push(TraceOp::Access {
                cpu: CpuId(21),
                va: Va(p + b * 32),
                write: false,
            });
        }
        let serial = serial_replay_on(config, &ops);
        let mut sm = ShardedMachine::with_pool(config, 4, test_pool()).unwrap();
        sm.set_parallel_threshold(8);
        sm.run_trace(&ops);
        assert!(
            sm.stats().effects_applied > 0,
            "expected deferred cross-shard write-backs: {:?}",
            sm.stats()
        );
        assert!(
            serial.replay_eq(&sm.metrics()),
            "deferred effects diverged:\nserial: {serial}\nsharded: {}",
            sm.metrics()
        );
    }

    #[test]
    fn shard_count_is_clamped_to_nodes() {
        let sm = ShardedMachine::new(config(), 64).unwrap();
        assert_eq!(sm.shards(), 8);
        let sm = ShardedMachine::new(config(), 0).unwrap();
        assert_eq!(sm.shards(), 1);
    }

    fn access(cpu: u16, va: u64) -> TraceOp {
        TraceOp::Access {
            cpu: CpuId(cpu),
            va: Va(va),
            write: false,
        }
    }

    #[test]
    fn split_cpu_runs_empty_trace_is_empty() {
        assert!(split_cpu_runs(&[]).is_empty());
    }

    #[test]
    fn split_cpu_runs_single_op_forms_one_run() {
        assert_eq!(
            split_cpu_runs(&[access(3, 0x1000)]),
            vec![CpuRun::Cpu {
                cpu: CpuId(3),
                len: 1
            }]
        );
        assert_eq!(split_cpu_runs(&[TraceOp::Barrier]), vec![CpuRun::Global]);
    }

    #[test]
    fn split_cpu_runs_alternating_cpus_yield_unit_runs() {
        let ops: Vec<TraceOp> = (0..6).map(|i| access(i % 2, 0x1000)).collect();
        let runs = split_cpu_runs(&ops);
        assert_eq!(runs.len(), 6);
        for (i, run) in runs.iter().enumerate() {
            assert_eq!(
                *run,
                CpuRun::Cpu {
                    cpu: CpuId((i % 2) as u16),
                    len: 1
                }
            );
        }
    }

    #[test]
    fn split_cpu_runs_groups_maximal_same_cpu_spans() {
        let ops = [
            access(0, 0x1000),
            access(0, 0x1020),
            TraceOp::Think {
                cpu: CpuId(0),
                dur: Cycles(5),
            },
            access(4, 0x2000),
            TraceOp::Barrier,
            TraceOp::ArmFirstTouch,
            access(4, 0x2020),
        ];
        assert_eq!(
            split_cpu_runs(&ops),
            vec![
                CpuRun::Cpu {
                    cpu: CpuId(0),
                    len: 3
                },
                CpuRun::Cpu {
                    cpu: CpuId(4),
                    len: 1
                },
                CpuRun::Global,
                CpuRun::Global,
                CpuRun::Cpu {
                    cpu: CpuId(4),
                    len: 1
                },
            ]
        );
    }

    #[test]
    fn oversized_runs_chunk_instead_of_overflowing() {
        // Synthetic lengths only — a real 2^32-op slice would need
        // ~100 GB. The splitter's chunker is a pure function of the
        // run length, so this covers the gigabyte-trace regime the
        // paper-scale sweeps hit.
        let mut runs = Vec::new();
        push_cpu_run(&mut runs, CpuId(7), MAX_RUN_LEN + 5);
        assert_eq!(
            runs,
            vec![
                CpuRun::Cpu {
                    cpu: CpuId(7),
                    len: u32::MAX
                },
                CpuRun::Cpu {
                    cpu: CpuId(7),
                    len: 5
                },
            ]
        );
        runs.clear();
        push_cpu_run(&mut runs, CpuId(1), 3 * MAX_RUN_LEN);
        assert_eq!(runs.len(), 3);
        let total: u64 = runs
            .iter()
            .map(|r| match r {
                CpuRun::Cpu { len, .. } => u64::from(*len),
                CpuRun::Global => 1,
            })
            .sum();
        assert_eq!(total, 3 * MAX_RUN_LEN as u64);
        // Zero-length runs are never emitted.
        runs.clear();
        push_cpu_run(&mut runs, CpuId(0), 0);
        assert!(runs.is_empty());
    }

    #[test]
    fn bucket_runs_break_on_cpu_change_and_seq_gap() {
        let op = |cpu: u16| TraceOp::Access {
            cpu: CpuId(cpu),
            va: Va(0x1000),
            write: false,
        };
        let mut b = Bucket::default();
        // Contiguous in CPU and seq: one growing run.
        b.push(10, CpuId(0), op(0));
        b.push(11, CpuId(0), op(0));
        // Seq gap (another shard's op sat at seq 12): new run.
        b.push(13, CpuId(0), op(0));
        // CPU change at a contiguous seq: new run.
        b.push(14, CpuId(1), op(1));
        assert_eq!(
            b.runs,
            vec![
                BucketRun {
                    seq_base: 10,
                    cpu: CpuId(0),
                    len: 2
                },
                BucketRun {
                    seq_base: 13,
                    cpu: CpuId(0),
                    len: 1
                },
                BucketRun {
                    seq_base: 14,
                    cpu: CpuId(1),
                    len: 1
                },
            ]
        );
        assert_eq!(b.ops.len(), 4);
    }

    /// A parallel window where exactly one bucket is non-empty runs on
    /// the coordinator's inline-shard path: no pool jobs, bit-identical
    /// metrics.
    #[test]
    fn single_populated_bucket_runs_inline_without_pool_jobs() {
        let mut ops = vec![TraceOp::ArmFirstTouch];
        // All references from node 0's CPUs into node-0-homed pages:
        // contained in shard 0, invisible to every other shard.
        for i in 0..512u64 {
            ops.push(TraceOp::Access {
                cpu: CpuId((i % 4) as u16),
                va: Va((1 << 20) + (i % 8) * 4096 + (i % 128) * 32),
                write: i % 5 == 0,
            });
        }
        let serial = serial_replay_on(config(), &ops);
        let mut sm = ShardedMachine::with_pool(config(), 4, test_pool()).unwrap();
        sm.set_parallel_threshold(64);
        sm.run_trace(&ops);
        assert!(serial.replay_eq(&sm.metrics()));
        let stats = sm.stats();
        assert!(stats.parallel_windows >= 1, "expected fan-out: {stats:?}");
        assert_eq!(
            stats.pool_jobs, 0,
            "one populated bucket must stay on the coordinator: {stats:?}"
        );
        assert_eq!(stats.contained_ops, 512);
        assert!(stats.bucket_runs >= 1);
    }

    /// A contained window of exactly `parallel_threshold` ops takes
    /// the parallel path (the threshold is inclusive); one op fewer
    /// stays inline.
    #[test]
    fn window_exactly_at_threshold_goes_parallel() {
        let threshold = 96usize;
        let window = |n: usize| {
            let mut ops = vec![TraceOp::ArmFirstTouch];
            for i in 0..n {
                ops.push(TraceOp::Access {
                    cpu: CpuId((i % 4) as u16),
                    va: Va((1 << 20) + (i as u64 % 128) * 32),
                    write: false,
                });
            }
            ops.push(TraceOp::Barrier);
            ops
        };
        for (n, parallel) in [(threshold, 1u64), (threshold - 1, 0u64)] {
            let ops = window(n);
            let serial = serial_replay_on(config(), &ops);
            for engine in [ExecEngine::Log, ExecEngine::Pipeline, ExecEngine::Barrier] {
                let mut sm = ShardedMachine::with_pool(config(), 4, test_pool()).unwrap();
                sm.set_parallel_threshold(threshold);
                sm.set_engine(engine);
                sm.run_trace(&ops);
                assert!(
                    serial.replay_eq(&sm.metrics()),
                    "{engine} diverged at {n} ops"
                );
                let stats = sm.stats();
                assert_eq!(stats.windows, 1, "{engine}, {n} ops: {stats:?}");
                assert_eq!(
                    stats.parallel_windows, parallel,
                    "threshold must be inclusive at {n} ops on {engine}: {stats:?}"
                );
                assert_eq!(stats.contained_ops, n as u64);
                if engine == ExecEngine::Log {
                    // The log engine folds the arm into the scan; only
                    // the barrier fences (and serializes).
                    assert_eq!(stats.serialized_ops, 1, "{engine}: {stats:?}");
                    assert_eq!(stats.arms_folded, 1, "{engine}: {stats:?}");
                } else {
                    // ArmFirstTouch + Barrier serialize between windows.
                    assert_eq!(stats.serialized_ops, 2, "{engine}: {stats:?}");
                }
            }
        }
    }

    /// CPU-alternating windows degenerate every bucket run to length
    /// 1 — across shards (seq gaps) and within a node (CPU changes) —
    /// and still replay bit-identically.
    #[test]
    fn alternating_cpus_degenerate_to_unit_runs() {
        // Across shards: CPUs 0 (node 0, shard 0) and 16 (node 4,
        // shard 2) alternate; each bucket sees seq gaps every op.
        let mut ops = vec![TraceOp::ArmFirstTouch];
        for i in 0..256u64 {
            let (cpu, region) = if i % 2 == 0 {
                (0u16, 1u64)
            } else {
                (16u16, 5u64)
            };
            ops.push(TraceOp::Access {
                cpu: CpuId(cpu),
                va: Va((region << 20) + (i / 2 % 128) * 32),
                write: false,
            });
        }
        let serial = serial_replay_on(config(), &ops);
        let mut sm = ShardedMachine::with_pool(config(), 4, test_pool()).unwrap();
        sm.set_parallel_threshold(32);
        sm.run_trace(&ops);
        assert!(serial.replay_eq(&sm.metrics()));
        let stats = sm.stats();
        assert!(stats.pool_jobs > 0, "two shards must fan out: {stats:?}");
        assert_eq!(
            stats.bucket_runs, stats.contained_ops,
            "alternating shards must produce unit runs: {stats:?}"
        );

        // Within one node: CPUs 0 and 1 share a bucket; runs break on
        // the CPU change even though seqs are contiguous.
        let mut ops = vec![TraceOp::ArmFirstTouch];
        for i in 0..256u64 {
            ops.push(TraceOp::Access {
                cpu: CpuId((i % 2) as u16),
                va: Va((1 << 20) + (i / 2 % 128) * 32),
                write: false,
            });
        }
        let serial = serial_replay_on(config(), &ops);
        let mut sm = ShardedMachine::with_pool(config(), 4, test_pool()).unwrap();
        sm.set_parallel_threshold(32);
        sm.run_trace(&ops);
        assert!(serial.replay_eq(&sm.metrics()));
        let stats = sm.stats();
        assert_eq!(
            stats.bucket_runs, stats.contained_ops,
            "alternating CPUs in one bucket must produce unit runs: {stats:?}"
        );
    }

    #[test]
    fn split_cpu_runs_tables_tile_their_input() {
        let ops = mixed_trace(16, 4);
        let runs = split_cpu_runs(&ops);
        let total: u64 = runs
            .iter()
            .map(|r| match r {
                CpuRun::Cpu { len, .. } => u64::from(*len),
                CpuRun::Global => 1,
            })
            .sum();
        assert_eq!(total, ops.len() as u64);
    }

    #[test]
    fn traced_machine_records_every_op_kind() {
        let mut m = Machine::new(config()).unwrap();
        m.start_tracing();
        m.arm_first_touch();
        m.access(CpuId(0), Va(0x1000), true);
        m.advance(CpuId(0), Cycles(10));
        m.barrier_all();
        let trace = m.take_trace();
        assert_eq!(
            trace,
            vec![
                TraceOp::ArmFirstTouch,
                TraceOp::Access {
                    cpu: CpuId(0),
                    va: Va(0x1000),
                    write: true
                },
                TraceOp::Think {
                    cpu: CpuId(0),
                    dur: Cycles(10)
                },
                TraceOp::Barrier,
            ]
        );
        // Tracing is off after take_trace.
        m.access(CpuId(0), Va(0x1000), false);
        assert!(m.take_trace().is_empty());
    }

    /// The ownership relaxation: loads of a page stay contained for the
    /// home shard as long as every writer of the page is that shard —
    /// through foreign reads *and* through the home shard's own stores
    /// — and revert to blocking the moment a foreign shard stores to
    /// it. Exact op-by-op accounting, plus bit-identity to serial.
    #[test]
    fn ownership_relaxes_home_loads_until_a_foreign_store() {
        let p = Va(1 << 20); // first-touched by CPU 0 -> homed in shard 0
        let read = |cpu: u16| TraceOp::Access {
            cpu: CpuId(cpu),
            va: p,
            write: false,
        };
        let write = |cpu: u16| TraceOp::Access {
            cpu: CpuId(cpu),
            va: p,
            write: true,
        };
        let mut ops = vec![TraceOp::ArmFirstTouch];
        ops.push(read(0)); // exclusive: contained
        ops.push(read(28)); // shard 3 reads a shard-0 page: blocking
        for i in 0..100u16 {
            ops.push(read(i % 8)); // shard 0 re-reads (no writers): contained
        }
        ops.push(write(0)); // store: blocking (footprint spans shards)
        for _ in 0..10 {
            ops.push(read(0)); // writers ⊆ {shard 0}: still contained
        }
        ops.push(write(28)); // foreign store: blocking; ownership moves
        for _ in 0..10 {
            ops.push(read(0)); // foreign writer now: blocking
        }
        let serial = serial_replay_on(config(), &ops);
        let mut sm = ShardedMachine::with_pool(config(), 4, test_pool()).unwrap();
        sm.set_parallel_threshold(1);
        sm.set_pipelined(true);
        sm.run_trace(&ops);
        assert!(serial.replay_eq(&sm.metrics()));
        let stats = sm.stats();
        assert_eq!(
            stats.contained_ops, 111,
            "first touch + 100 no-writer re-reads + 10 own-writer \
             re-reads must be contained: {stats:?}"
        );
        assert_eq!(
            stats.serialized_ops, 14,
            "arm + foreign read + 2 stores + 10 foreign-owned reads \
             serialize: {stats:?}"
        );

        // The log engine agrees op-for-op; only the arm stops
        // serializing (it folds into the scan).
        let mut lg = ShardedMachine::with_pool(config(), 4, test_pool()).unwrap();
        lg.set_parallel_threshold(1);
        lg.set_engine(ExecEngine::Log);
        lg.run_trace(&ops);
        assert!(serial.replay_eq(&lg.metrics()));
        let stats = lg.stats();
        assert_eq!(stats.contained_ops, 111, "log engine: {stats:?}");
        assert_eq!(stats.serialized_ops, 13, "log engine: {stats:?}");
        assert_eq!(stats.arms_folded, 1, "log engine: {stats:?}");
    }

    /// The pipelined engine overlaps next-window scans with pool
    /// execution (`scans_prefetched`), the barrier engine never does,
    /// and both are bit-identical to serial on a fan-out-heavy trace.
    #[test]
    fn pipelined_and_barrier_engines_agree_bit_identically() {
        let ops = mixed_trace(128, 16);
        let serial = serial_replay_on(config(), &ops);

        let mut pipelined = ShardedMachine::with_pool(config(), 4, test_pool()).unwrap();
        pipelined.set_parallel_threshold(32);
        pipelined.set_pipelined(true);
        pipelined.run_trace(&ops);
        assert!(serial.replay_eq(&pipelined.metrics()));
        assert!(
            pipelined.stats().scans_prefetched > 0,
            "pipelined engine never overlapped a scan: {:?}",
            pipelined.stats()
        );
        assert_eq!(pipelined.stats().scans_invalidated, 0);

        let mut barrier = ShardedMachine::with_pool(config(), 4, test_pool()).unwrap();
        barrier.set_parallel_threshold(32);
        barrier.set_pipelined(false);
        barrier.run_trace(&ops);
        assert!(serial.replay_eq(&barrier.metrics()));
        assert_eq!(
            barrier.stats().scans_prefetched,
            0,
            "barrier engine must never prefetch: {:?}",
            barrier.stats()
        );
    }

    /// Footprint-directory banking is pure layout: every sub-shard
    /// count yields bit-identical metrics *and* identical scheduling
    /// statistics (same windows, same containment, same fan-out).
    #[test]
    fn dir_shard_banking_is_pure_layout() {
        let ops = mixed_trace(96, 8);
        let serial = serial_replay_on(config(), &ops);
        let mut reference: Option<ShardStats> = None;
        for banks in [1usize, 3, 8] {
            let mut sm = ShardedMachine::with_pool(config(), 4, test_pool()).unwrap();
            sm.set_parallel_threshold(32);
            sm.set_dir_shards(banks);
            assert_eq!(sm.dir_shards(), banks);
            sm.run_trace(&ops);
            assert!(
                serial.replay_eq(&sm.metrics()),
                "{banks} banks diverged from serial"
            );
            let stats = sm.stats();
            match &reference {
                None => reference = Some(stats),
                Some(first) => {
                    assert_eq!(*first, stats, "banking changed scheduling at {banks} banks")
                }
            }
        }
    }

    /// A worker fault detected at a barrier with a prefetched scan in
    /// flight discards the overlay (`scans_invalidated`), re-scans,
    /// and still replays bit-identically.
    #[test]
    fn fault_recovery_invalidates_inflight_prefetch() {
        let ops = mixed_trace(64, 8);
        let serial = serial_replay_on(config(), &ops);
        let mut sm = ShardedMachine::with_pool(config(), 4, test_pool()).unwrap();
        sm.set_parallel_threshold(1);
        sm.set_pipelined(true);
        sm.set_fault_plan(Some(FaultPlan::parse("panic_before@0,seed=5").unwrap()));
        sm.run_trace(&ops);
        assert!(serial.replay_eq(&sm.metrics()));
        let stats = sm.stats();
        assert!(stats.recovered_jobs >= 1, "fault never fired: {stats:?}");
        assert!(
            stats.scans_invalidated >= 1,
            "recovery must discard the in-flight prefetch: {stats:?}"
        );
        assert!(stats.scans_prefetched > stats.scans_invalidated);
    }

    /// The log engine consumes the shared span log bit-identically to
    /// serial, folds every arm into the scan (no arm ever serializes),
    /// keeps the scan entirely off the execution path (nothing
    /// prefetches, nothing invalidates), and advances every shard's
    /// consumption cursor through the whole log.
    #[test]
    fn log_engine_folds_arms_and_consumes_cursors() {
        let ops = mixed_trace(128, 16);
        let serial = serial_replay_on(config(), &ops);
        let mut sm = ShardedMachine::with_pool(config(), 4, test_pool()).unwrap();
        sm.set_parallel_threshold(32);
        sm.set_engine(ExecEngine::Log);
        assert_eq!(sm.engine(), ExecEngine::Log);
        sm.run_trace(&ops);
        assert!(serial.replay_eq(&sm.metrics()));
        let stats = sm.stats();
        assert_eq!(stats.arms_folded, 1, "{stats:?}");
        assert_eq!(stats.windows, stats.log_spans, "{stats:?}");
        assert!(
            stats.log_spans >= 1 && stats.parallel_windows >= 1,
            "{stats:?}"
        );
        assert_eq!(stats.scans_prefetched, 0, "{stats:?}");
        assert_eq!(stats.scans_invalidated, 0, "{stats:?}");
        // Every serialized op was a true fence (never an arm).
        assert_eq!(stats.log_fences, stats.serialized_ops, "{stats:?}");
        let cursors = sm.span_cursors();
        assert!(
            cursors.iter().all(|&c| c == cursors[0]) && cursors[0] >= 1,
            "all shards must have consumed the whole log: {cursors:?}"
        );
        assert!(sm.cursor_rollbacks().iter().all(|&r| r == 0));
    }

    /// Log engine vs. the two lockstep references when an arm is the
    /// only thing separating two contained runs: the lockstep engines
    /// fence at the arm (two windows), the log engine folds it and
    /// forms one merged span — all bit-identical to serial.
    #[test]
    fn log_engine_merges_windows_across_arms() {
        let mut ops = vec![TraceOp::ArmFirstTouch];
        let run_of = |base: u64| {
            (0..64u64).map(move |i| TraceOp::Access {
                cpu: CpuId((i % 4) as u16),
                va: Va((1 << 20) + base + (i % 128) * 32),
                write: false,
            })
        };
        ops.extend(run_of(0));
        ops.push(TraceOp::ArmFirstTouch); // re-arm between the two runs
        ops.extend(run_of(8192));
        ops.push(TraceOp::Barrier);
        let serial = serial_replay_on(config(), &ops);
        let run = |engine: ExecEngine| {
            let mut sm = ShardedMachine::with_pool(config(), 4, test_pool()).unwrap();
            sm.set_parallel_threshold(32);
            sm.set_engine(engine);
            sm.run_trace(&ops);
            assert!(
                serial.replay_eq(&sm.metrics()),
                "{engine} diverged from serial"
            );
            sm.stats()
        };
        let log = run(ExecEngine::Log);
        let pipeline = run(ExecEngine::Pipeline);
        let barrier = run(ExecEngine::Barrier);
        assert_eq!(log.arms_folded, 2, "{log:?}");
        assert_eq!(pipeline.windows, barrier.windows);
        assert_eq!(
            barrier.windows, 2,
            "lockstep engines fence at the mid-stream arm: {barrier:?}"
        );
        assert_eq!(
            log.windows, 1,
            "the folded arm must merge the two runs into one span: {log:?}"
        );
        assert_eq!(log.contained_ops, barrier.contained_ops);
        // Lockstep engines serialize both arms + the barrier; the log
        // engine serializes only the barrier.
        assert_eq!(log.serialized_ops, 1);
        assert_eq!(barrier.serialized_ops, 3);
    }

    /// Log-engine fault recovery is per-cursor: an injected worker
    /// panic rolls back exactly the faulted shard's consumption to its
    /// pre-dispatch snapshot — every other shard's completed spans
    /// stand — and the run still replays bit-identically.
    #[test]
    fn log_fault_rolls_back_only_the_faulted_cursor() {
        let ops = mixed_trace(64, 8);
        let serial = serial_replay_on(config(), &ops);
        let mut sm = ShardedMachine::with_pool(config(), 4, test_pool()).unwrap();
        sm.set_parallel_threshold(1);
        sm.set_engine(ExecEngine::Log);
        sm.set_fault_plan(Some(FaultPlan::parse("panic_before@0,seed=5").unwrap()));
        sm.run_trace(&ops);
        assert!(serial.replay_eq(&sm.metrics()));
        let stats = sm.stats();
        assert_eq!(stats.recovered_jobs, 1, "fault never fired: {stats:?}");
        assert_eq!(
            stats.scans_invalidated, 0,
            "the log engine has no prefetch to discard: {stats:?}"
        );
        let rollbacks = sm.cursor_rollbacks();
        assert_eq!(
            rollbacks.iter().filter(|&&r| r > 0).count(),
            1,
            "exactly one shard's cursor must roll back: {rollbacks:?}"
        );
        assert_eq!(rollbacks.iter().sum::<u64>(), stats.recovered_jobs);
        // Consumption still completed: every cursor reached the end.
        let cursors = sm.span_cursors();
        assert!(cursors.iter().all(|&c| c == cursors[0]));
    }

    /// Engine selection plumbing: a fresh machine picks up the
    /// environment's resolution, and the legacy `set_pipelined` shim
    /// maps onto the two lockstep engines. (Env-mutation scenarios
    /// live in `tests/sharded_env.rs`, which owns the process env.)
    #[test]
    fn engine_selector_and_legacy_shim_agree() {
        let mut sm = ShardedMachine::with_pool(config(), 2, test_pool()).unwrap();
        assert_eq!(sm.engine(), engine_from_env());
        sm.set_pipelined(true);
        assert_eq!(sm.engine(), ExecEngine::Pipeline);
        assert!(sm.pipelined());
        sm.set_pipelined(false);
        assert_eq!(sm.engine(), ExecEngine::Barrier);
        assert!(!sm.pipelined());
        sm.set_engine(ExecEngine::Log);
        assert!(!sm.pipelined());
        assert_eq!(ExecEngine::Log.to_string(), "log");
        assert_eq!(ExecEngine::Pipeline.to_string(), "pipeline");
        assert_eq!(ExecEngine::Barrier.to_string(), "barrier");
    }
}
