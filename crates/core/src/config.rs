//! Machine and protocol configuration.
//!
//! [`MachineConfig`] describes one simulated machine: the cluster shape
//! (the paper's base is 8 nodes × 4 CPUs), the per-CPU cache, the
//! interconnect and OS cost models, and — the independent variable of
//! the whole study — the [`Protocol`] used for remote data.

use rnuma_mem::page_cache::ReplacementPolicy;
use rnuma_net::NetConfig;
use rnuma_os::CostModel;
use rnuma_sim::Cycles;
use std::fmt;

/// The paper's relocation-threshold default (Sections 4–5).
pub const DEFAULT_THRESHOLD: u32 = 64;

/// How a node caches remote data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// CC-NUMA: remote data lives in the RAD's block cache only.
    /// `block_cache_bytes: None` models the *ideal* machine with an
    /// infinite block cache that every figure normalizes to.
    CcNuma {
        /// Block-cache capacity; `None` = infinite (the ideal baseline).
        block_cache_bytes: Option<u64>,
    },
    /// S-COMA: remote data lives in a main-memory page cache guarded by
    /// fine-grain tags.
    SComa {
        /// Page-cache capacity in bytes (the paper's base is 320 KB).
        page_cache_bytes: u64,
    },
    /// R-NUMA: pages start CC-NUMA and relocate to the page cache after
    /// `threshold` capacity/conflict refetches.
    RNuma {
        /// Block-cache capacity (the paper's base is just 128 bytes).
        block_cache_bytes: u64,
        /// Page-cache capacity in bytes (base: 320 KB).
        page_cache_bytes: u64,
        /// The relocation threshold `T` (base: 64).
        threshold: u32,
    },
}

impl Protocol {
    /// The paper's base CC-NUMA: a 32-KB block cache (the sum of the
    /// node's four 8-KB processor caches).
    #[must_use]
    pub fn paper_ccnuma() -> Protocol {
        Protocol::CcNuma {
            block_cache_bytes: Some(32 * 1024),
        }
    }

    /// The ideal CC-NUMA with an infinite block cache (normalization
    /// baseline for every figure).
    #[must_use]
    pub fn ideal() -> Protocol {
        Protocol::CcNuma {
            block_cache_bytes: None,
        }
    }

    /// The paper's base S-COMA: a 320-KB page cache (10× the block
    /// cache, "to compensate for the lower cost of DRAM").
    #[must_use]
    pub fn paper_scoma() -> Protocol {
        Protocol::SComa {
            page_cache_bytes: 320 * 1024,
        }
    }

    /// The paper's base R-NUMA: a 128-byte block cache, a 320-KB page
    /// cache, and threshold 64.
    #[must_use]
    pub fn paper_rnuma() -> Protocol {
        Protocol::RNuma {
            block_cache_bytes: 128,
            page_cache_bytes: 320 * 1024,
            threshold: DEFAULT_THRESHOLD,
        }
    }

    /// Short label used in reports ("CC-NUMA", "S-COMA", "R-NUMA",
    /// "ideal").
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Protocol::CcNuma {
                block_cache_bytes: None,
            } => "ideal",
            Protocol::CcNuma { .. } => "CC-NUMA",
            Protocol::SComa { .. } => "S-COMA",
            Protocol::RNuma { .. } => "R-NUMA",
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Protocol::CcNuma {
                block_cache_bytes: None,
            } => write!(f, "ideal CC-NUMA (infinite block cache)"),
            Protocol::CcNuma {
                block_cache_bytes: Some(b),
            } => write!(f, "CC-NUMA (b={b}B)"),
            Protocol::SComa { page_cache_bytes } => {
                write!(f, "S-COMA (p={page_cache_bytes}B)")
            }
            Protocol::RNuma {
                block_cache_bytes,
                page_cache_bytes,
                threshold,
            } => write!(
                f,
                "R-NUMA (b={block_cache_bytes}B, p={page_cache_bytes}B, T={threshold})"
            ),
        }
    }
}

/// Full description of one simulated machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineConfig {
    /// Number of SMP nodes (paper: 8).
    pub nodes: u8,
    /// Processors per node (paper: 4).
    pub cpus_per_node: u16,
    /// Per-CPU data-cache capacity in bytes (paper: 8 KB).
    pub l1_bytes: u64,
    /// Remote-data caching protocol under study.
    pub protocol: Protocol,
    /// OS and device latencies (Table 2).
    pub costs: CostModel,
    /// Interconnect parameters (100-cycle point-to-point fabric).
    pub net: NetConfig,
    /// Memory-bus occupancy per block transaction, in CPU cycles
    /// (2 bus cycles at the 4:1 clock ratio).
    pub bus_occupancy: Cycles,
    /// Page-cache victim selection (paper: Least Recently Missed; the
    /// alternatives support the replacement-policy ablation).
    pub page_policy: ReplacementPolicy,
    /// Cost charged per barrier episode.
    pub barrier_cost: Cycles,
    /// Seed for workload randomness; the run is a pure function of
    /// (config, workload).
    pub seed: u64,
}

impl MachineConfig {
    /// The paper's base machine with the given protocol.
    #[must_use]
    pub fn paper_base(protocol: Protocol) -> MachineConfig {
        MachineConfig {
            nodes: 8,
            cpus_per_node: 4,
            l1_bytes: 8 * 1024,
            protocol,
            costs: CostModel::base(),
            net: NetConfig::default(),
            bus_occupancy: Cycles::from_bus_cycles(2),
            page_policy: ReplacementPolicy::LeastRecentlyMissed,
            barrier_cost: Cycles(400),
            seed: 0x5EED_0001,
        }
    }

    /// Total CPUs in the machine.
    #[must_use]
    pub fn total_cpus(&self) -> u16 {
        u16::from(self.nodes) * self.cpus_per_node
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint (zero nodes/CPUs, cache sizes below one line, zero
    /// threshold, or more than 64 nodes).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.nodes == 0 {
            return Err(ConfigError("machine needs at least one node"));
        }
        if self.nodes as usize > 64 {
            return Err(ConfigError("at most 64 nodes are supported"));
        }
        if self.cpus_per_node == 0 {
            return Err(ConfigError("nodes need at least one CPU"));
        }
        if self.l1_bytes < 32 {
            return Err(ConfigError("L1 smaller than one 32-byte line"));
        }
        match self.protocol {
            Protocol::CcNuma {
                block_cache_bytes: Some(b),
            } if b < 32 => Err(ConfigError("block cache smaller than one line")),
            Protocol::SComa { page_cache_bytes } if page_cache_bytes < 4096 => {
                Err(ConfigError("page cache smaller than one page"))
            }
            Protocol::RNuma {
                block_cache_bytes, ..
            } if block_cache_bytes < 32 => Err(ConfigError("block cache smaller than one line")),
            Protocol::RNuma {
                page_cache_bytes, ..
            } if page_cache_bytes < 4096 => Err(ConfigError("page cache smaller than one page")),
            Protocol::RNuma { threshold: 0, .. } => {
                Err(ConfigError("relocation threshold must be at least 1"))
            }
            _ => Ok(()),
        }
    }
}

/// An invalid [`MachineConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConfigError(&'static str);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid machine configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_base_matches_section_4() {
        let c = MachineConfig::paper_base(Protocol::paper_ccnuma());
        assert_eq!(c.nodes, 8);
        assert_eq!(c.cpus_per_node, 4);
        assert_eq!(c.total_cpus(), 32);
        assert_eq!(c.l1_bytes, 8 * 1024);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn paper_protocol_presets() {
        assert_eq!(
            Protocol::paper_ccnuma(),
            Protocol::CcNuma {
                block_cache_bytes: Some(32 * 1024)
            }
        );
        assert_eq!(
            Protocol::paper_scoma(),
            Protocol::SComa {
                page_cache_bytes: 320 * 1024
            }
        );
        let Protocol::RNuma {
            block_cache_bytes,
            page_cache_bytes,
            threshold,
        } = Protocol::paper_rnuma()
        else {
            panic!("wrong variant")
        };
        assert_eq!(
            (block_cache_bytes, page_cache_bytes, threshold),
            (128, 320 * 1024, 64)
        );
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(Protocol::paper_ccnuma().label(), "CC-NUMA");
        assert_eq!(Protocol::paper_scoma().label(), "S-COMA");
        assert_eq!(Protocol::paper_rnuma().label(), "R-NUMA");
        assert_eq!(Protocol::ideal().label(), "ideal");
        assert!(Protocol::paper_rnuma().to_string().contains("T=64"));
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut c = MachineConfig::paper_base(Protocol::paper_ccnuma());
        c.nodes = 0;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::paper_base(Protocol::paper_ccnuma());
        c.protocol = Protocol::SComa {
            page_cache_bytes: 100,
        };
        assert!(c.validate().is_err());

        let mut c = MachineConfig::paper_base(Protocol::paper_ccnuma());
        c.protocol = Protocol::RNuma {
            block_cache_bytes: 128,
            page_cache_bytes: 320 * 1024,
            threshold: 0,
        };
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("threshold"));
    }

    #[test]
    fn ideal_is_valid() {
        let c = MachineConfig::paper_base(Protocol::ideal());
        assert!(c.validate().is_ok());
    }
}
