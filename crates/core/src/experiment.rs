//! One-call experiment execution.
//!
//! The paper's figures all follow the same recipe: run an application on
//! several machine configurations and report execution times normalized
//! to the ideal CC-NUMA (infinite block cache). [`run`] performs one
//! such run; [`run_normalized`] performs a batch against the ideal
//! baseline.
//!
//! # Parallel batches
//!
//! Each simulation is a pure function of its `(config, workload)` pair
//! and owns its [`Machine`], so batches are embarrassingly parallel.
//! [`run_parallel`] fans a job list out over the host's cores with
//! scoped threads: every job still runs exactly the serial code path on
//! its own machine, so per-run metrics are bit-identical to a serial
//! execution ([`run_normalized_serial`] exists as the reference
//! implementation, and the workspace determinism tests compare the
//! two).

use crate::config::MachineConfig;
use crate::machine::Machine;
use crate::metrics::Metrics;
use crate::program::{Runner, Workload};
use crate::shard::{shards_from_env, ShardedMachine, TraceOp};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// The result of one (configuration, workload) simulation.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The application's name.
    pub workload: &'static str,
    /// Protocol label ("CC-NUMA", "S-COMA", "R-NUMA", "ideal").
    pub protocol: &'static str,
    /// The configuration that ran.
    pub config: MachineConfig,
    /// Everything measured.
    pub metrics: Metrics,
}

impl RunReport {
    /// Execution time in cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.metrics.exec_cycles.0
    }
}

/// Runs `workload` once on a machine built from `config`.
///
/// The run is deterministic: identical `(config, workload)` pairs give
/// bit-identical metrics.
///
/// # Panics
///
/// Panics if `config` fails validation — experiment configurations are
/// produced by code, not user input, so this is a programming error.
pub fn run<W: Workload + ?Sized>(config: MachineConfig, workload: &mut W) -> RunReport {
    let mut machine = Machine::new(config).expect("experiment configs must be valid");
    {
        let mut runner = Runner::new(&mut machine);
        workload.run(&mut runner);
    }
    RunReport {
        workload: workload.name(),
        protocol: config.protocol.label(),
        config,
        metrics: machine.metrics(),
    }
}

/// Runs `workload` like [`run`] while recording the machine-level
/// operation trace, returning both the report and the trace.
///
/// Replaying the trace on a fresh machine of the same configuration —
/// serially or via [`ShardedMachine`] — reproduces the report's metrics
/// bit-for-bit.
///
/// # Panics
///
/// Panics if `config` fails validation.
pub fn run_traced<W: Workload + ?Sized>(
    config: MachineConfig,
    workload: &mut W,
) -> (RunReport, Vec<TraceOp>) {
    let mut machine = Machine::new(config).expect("experiment configs must be valid");
    machine.start_tracing();
    {
        let mut runner = Runner::new(&mut machine);
        workload.run(&mut runner);
    }
    let trace = machine.take_trace();
    let report = RunReport {
        workload: workload.name(),
        protocol: config.protocol.label(),
        config,
        metrics: machine.metrics(),
    };
    (report, trace)
}

/// Runs `workload` serially, then replays its trace on a
/// [`ShardedMachine`] with `shards` shards and asserts the two
/// executions are bit-identical, returning the (serial) report.
///
/// This is the self-checking mode behind `RNUMA_SHARDS`: pointing it at
/// the full figure grid turns every experiment into a determinism proof
/// of the sharded executor.
///
/// # Panics
///
/// Panics if `config` fails validation, or — the point of the mode — if
/// the sharded replay diverges from the serial execution.
pub fn run_sharded_checked<W: Workload + ?Sized>(
    config: MachineConfig,
    workload: &mut W,
    shards: usize,
) -> RunReport {
    let (report, trace) = run_traced(config, workload);
    let mut sharded = ShardedMachine::new(config, shards).expect("config validated above");
    sharded.run_trace(&trace);
    assert!(
        report.metrics.replay_eq(&sharded.metrics()),
        "sharded replay ({shards} shards) diverged from serial for {} on {}:\n\
         serial:  {}\nsharded: {}",
        report.workload,
        report.protocol,
        report.metrics,
        sharded.metrics()
    );
    report
}

/// [`run`], honoring the `RNUMA_SHARDS` environment variable: when it
/// requests more than one shard, the run is executed through
/// [`run_sharded_checked`] instead. This is what the batch drivers
/// ([`run_parallel`] and `rnuma_bench::run_grid`) call per job.
pub fn run_env_sharded<W: Workload + ?Sized>(config: MachineConfig, workload: &mut W) -> RunReport {
    match shards_from_env() {
        Some(shards) if shards > 1 => run_sharded_checked(config, workload, shards),
        _ => run(config, workload),
    }
}

/// A report together with its execution time normalized to a baseline.
#[derive(Clone, Debug)]
pub struct NormalizedReport {
    /// The underlying run.
    pub report: RunReport,
    /// `report` execution time divided by the baseline's.
    pub normalized_time: f64,
}

/// Runs one simulation per job, fanned out over the host's cores.
///
/// `make` turns a job description into a `(config, workload)` pair *on
/// the worker thread*, so workloads never cross threads (they may hold
/// non-`Send` state). Results come back in job order, and each is
/// bit-identical to what a serial `run` of the same pair produces —
/// runs share nothing.
///
/// Set `RNUMA_JOBS=1` (or any number) to override the worker count,
/// e.g. to force serial execution when profiling. Setting `RNUMA_SHARDS`
/// to more than 1 additionally routes every job through the
/// self-checking intra-machine sharded path
/// ([`run_sharded_checked`]).
///
/// # Example
///
/// ```
/// use rnuma::config::{MachineConfig, Protocol};
/// use rnuma::experiment::run_parallel;
/// use rnuma::program::{Runner, Workload};
///
/// struct Touch(u64);
/// impl Workload for Touch {
///     fn name(&self) -> &'static str { "touch" }
///     fn run(&mut self, r: &mut Runner<'_>) {
///         let data = r.alloc(self.0 * 8);
///         let items = r.block_partition(self.0);
///         r.parallel(&items, |ctx, _cpu, i| ctx.read(data.word(i)));
///     }
/// }
///
/// // One simulation per word count, fanned over the host's cores.
/// let reports = run_parallel(&[256u64, 512], |&words| {
///     (MachineConfig::paper_base(Protocol::paper_rnuma()), Touch(words))
/// });
/// assert_eq!(reports.len(), 2);
/// assert_eq!(reports[0].metrics.references(), 256);
/// assert_eq!(reports[1].metrics.references(), 512);
/// ```
///
/// # Panics
///
/// Propagates panics from workload execution.
pub fn run_parallel<J, W, F>(jobs: &[J], make: F) -> Vec<RunReport>
where
    J: Sync,
    W: Workload,
    F: Fn(&J) -> (MachineConfig, W) + Sync,
{
    let n = jobs.len();
    let workers = std::env::var("RNUMA_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
        .clamp(1, n.max(1));
    if n <= 1 || workers == 1 {
        return jobs
            .iter()
            .map(|j| {
                let (config, mut w) = make(j);
                run_env_sharded(config, &mut w)
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, RunReport)>();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let make = &make;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let (config, mut w) = make(&jobs[i]);
                let report = run_env_sharded(config, &mut w);
                if tx.send((i, report)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut results: Vec<Option<RunReport>> = (0..n).map(|_| None).collect();
    for (i, report) in rx {
        results[i] = Some(report);
    }
    results
        .into_iter()
        .map(|r| r.expect("worker pool covered every job"))
        .collect()
}

/// Runs `workload` on each configuration — in parallel across
/// configurations — and normalizes execution times to the first
/// configuration in `configs` (conventionally the ideal machine).
///
/// Returns one entry per configuration, in order; the first entry's
/// `normalized_time` is 1.0 by construction. Every entry is
/// bit-identical to the serial [`run_normalized_serial`] result.
///
/// # Panics
///
/// Panics if `configs` is empty or the baseline executes in zero cycles.
pub fn run_normalized<W, F>(configs: &[MachineConfig], make_workload: F) -> Vec<NormalizedReport>
where
    W: Workload,
    F: Fn() -> W + Sync,
{
    assert!(
        !configs.is_empty(),
        "need at least a baseline configuration"
    );
    let reports = run_parallel(configs, |&config| (config, make_workload()));
    normalize_to_first(reports)
}

/// The serial reference implementation of [`run_normalized`]: identical
/// results, one run at a time. Kept for determinism tests and
/// single-core profiling.
///
/// # Panics
///
/// Panics if `configs` is empty or the baseline executes in zero cycles.
pub fn run_normalized_serial<W, F>(
    configs: &[MachineConfig],
    mut make_workload: F,
) -> Vec<NormalizedReport>
where
    W: Workload,
    F: FnMut() -> W,
{
    assert!(
        !configs.is_empty(),
        "need at least a baseline configuration"
    );
    let reports = configs
        .iter()
        .map(|&config| run(config, &mut make_workload()))
        .collect();
    normalize_to_first(reports)
}

fn normalize_to_first(reports: Vec<RunReport>) -> Vec<NormalizedReport> {
    let base = reports[0].cycles();
    assert!(base > 0, "baseline executed no cycles");
    reports
        .into_iter()
        .map(|report| NormalizedReport {
            normalized_time: report.cycles() as f64 / base as f64,
            report,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Protocol;
    use crate::program::Ctx;
    use rnuma_mem::addr::CpuId;

    /// A trivial workload: every CPU streams over a shared array.
    struct Stream {
        words: u64,
    }

    impl Workload for Stream {
        fn name(&self) -> &'static str {
            "stream"
        }
        fn run(&mut self, r: &mut Runner<'_>) {
            let region = r.alloc(self.words * 8);
            r.arm_first_touch();
            let items = r.block_partition(self.words);
            r.parallel(&items, |ctx: &mut Ctx<'_>, _cpu: CpuId, i: u64| {
                ctx.update(region.word(i));
                ctx.think(16);
            });
            r.barrier();
        }
    }

    #[test]
    fn run_produces_labeled_report() {
        let report = run(
            MachineConfig::paper_base(Protocol::paper_ccnuma()),
            &mut Stream { words: 4096 },
        );
        assert_eq!(report.workload, "stream");
        assert_eq!(report.protocol, "CC-NUMA");
        assert!(report.cycles() > 0);
        assert_eq!(report.metrics.references(), 2 * 4096);
    }

    #[test]
    fn identical_runs_are_bit_identical() {
        let config = MachineConfig::paper_base(Protocol::paper_rnuma());
        let a = run(config, &mut Stream { words: 2048 });
        let b = run(config, &mut Stream { words: 2048 });
        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(a.metrics.remote_fetches, b.metrics.remote_fetches);
        assert_eq!(a.metrics.refetches, b.metrics.refetches);
    }

    #[test]
    fn parallel_batch_matches_serial_bit_for_bit() {
        let configs = [
            MachineConfig::paper_base(Protocol::ideal()),
            MachineConfig::paper_base(Protocol::paper_ccnuma()),
            MachineConfig::paper_base(Protocol::paper_scoma()),
            MachineConfig::paper_base(Protocol::paper_rnuma()),
        ];
        let par = run_normalized(&configs, || Stream { words: 2048 });
        let ser = run_normalized_serial(&configs, || Stream { words: 2048 });
        assert_eq!(par.len(), ser.len());
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.report.cycles(), s.report.cycles());
            assert_eq!(p.report.metrics.references(), s.report.metrics.references());
            assert_eq!(
                p.report.metrics.remote_fetches,
                s.report.metrics.remote_fetches
            );
            assert_eq!(p.report.metrics.refetches, s.report.metrics.refetches);
            assert!((p.normalized_time - s.normalized_time).abs() < f64::EPSILON);
        }
    }

    #[test]
    fn run_parallel_preserves_job_order() {
        let jobs: Vec<u64> = vec![4096, 1024, 2048];
        let reports = run_parallel(&jobs, |&words| {
            (
                MachineConfig::paper_base(Protocol::paper_ccnuma()),
                Stream { words },
            )
        });
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].metrics.references(), 2 * 4096);
        assert_eq!(reports[1].metrics.references(), 2 * 1024);
        assert_eq!(reports[2].metrics.references(), 2 * 2048);
    }

    #[test]
    fn run_parallel_handles_empty_and_single() {
        let empty: Vec<u64> = Vec::new();
        assert!(run_parallel(&empty, |&w| (
            MachineConfig::paper_base(Protocol::paper_ccnuma()),
            Stream { words: w }
        ))
        .is_empty());
        let one = run_parallel(&[64u64], |&w| {
            (
                MachineConfig::paper_base(Protocol::paper_ccnuma()),
                Stream { words: w },
            )
        });
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn normalization_baseline_is_first() {
        let configs = [
            MachineConfig::paper_base(Protocol::ideal()),
            MachineConfig::paper_base(Protocol::paper_ccnuma()),
        ];
        let reports = run_normalized(&configs, || Stream { words: 2048 });
        assert_eq!(reports.len(), 2);
        assert!((reports[0].normalized_time - 1.0).abs() < 1e-12);
        // The finite machine can never beat the ideal one.
        assert!(reports[1].normalized_time >= 1.0 - 1e-12);
    }
}
