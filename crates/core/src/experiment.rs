//! One-call experiment execution.
//!
//! The paper's figures all follow the same recipe: run an application on
//! several machine configurations and report execution times normalized
//! to the ideal CC-NUMA (infinite block cache). [`run`] performs one
//! such run; [`run_normalized`] performs a batch against the ideal
//! baseline.

use crate::config::MachineConfig;
use crate::machine::Machine;
use crate::metrics::Metrics;
use crate::program::{Runner, Workload};

/// The result of one (configuration, workload) simulation.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The application's name.
    pub workload: &'static str,
    /// Protocol label ("CC-NUMA", "S-COMA", "R-NUMA", "ideal").
    pub protocol: &'static str,
    /// The configuration that ran.
    pub config: MachineConfig,
    /// Everything measured.
    pub metrics: Metrics,
}

impl RunReport {
    /// Execution time in cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.metrics.exec_cycles.0
    }
}

/// Runs `workload` once on a machine built from `config`.
///
/// The run is deterministic: identical `(config, workload)` pairs give
/// bit-identical metrics.
///
/// # Panics
///
/// Panics if `config` fails validation — experiment configurations are
/// produced by code, not user input, so this is a programming error.
pub fn run<W: Workload + ?Sized>(config: MachineConfig, workload: &mut W) -> RunReport {
    let mut machine = Machine::new(config).expect("experiment configs must be valid");
    {
        let mut runner = Runner::new(&mut machine);
        workload.run(&mut runner);
    }
    RunReport {
        workload: workload.name(),
        protocol: config.protocol.label(),
        config,
        metrics: machine.metrics(),
    }
}

/// A report together with its execution time normalized to a baseline.
#[derive(Clone, Debug)]
pub struct NormalizedReport {
    /// The underlying run.
    pub report: RunReport,
    /// `report` execution time divided by the baseline's.
    pub normalized_time: f64,
}

/// Runs `workload` on each configuration and normalizes execution times
/// to the first configuration in `configs` (conventionally the ideal
/// machine).
///
/// Returns one entry per configuration, in order; the first entry's
/// `normalized_time` is 1.0 by construction.
///
/// # Panics
///
/// Panics if `configs` is empty or the baseline executes in zero cycles.
pub fn run_normalized<W, F>(configs: &[MachineConfig], mut make_workload: F) -> Vec<NormalizedReport>
where
    W: Workload,
    F: FnMut() -> W,
{
    assert!(!configs.is_empty(), "need at least a baseline configuration");
    let mut out = Vec::with_capacity(configs.len());
    let mut baseline = None;
    for &config in configs {
        let report = run(config, &mut make_workload());
        let cycles = report.cycles();
        let base = *baseline.get_or_insert(cycles);
        assert!(base > 0, "baseline executed no cycles");
        out.push(NormalizedReport {
            report,
            normalized_time: cycles as f64 / base as f64,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Protocol;
    use crate::program::Ctx;
    use rnuma_mem::addr::CpuId;

    /// A trivial workload: every CPU streams over a shared array.
    struct Stream {
        words: u64,
    }

    impl Workload for Stream {
        fn name(&self) -> &'static str {
            "stream"
        }
        fn run(&mut self, r: &mut Runner<'_>) {
            let region = r.alloc(self.words * 8);
            r.arm_first_touch();
            let items = r.block_partition(self.words);
            r.parallel(&items, |ctx: &mut Ctx<'_>, _cpu: CpuId, i: u64| {
                ctx.update(region.word(i));
                ctx.think(16);
            });
            r.barrier();
        }
    }

    #[test]
    fn run_produces_labeled_report() {
        let report = run(
            MachineConfig::paper_base(Protocol::paper_ccnuma()),
            &mut Stream { words: 4096 },
        );
        assert_eq!(report.workload, "stream");
        assert_eq!(report.protocol, "CC-NUMA");
        assert!(report.cycles() > 0);
        assert_eq!(report.metrics.references(), 2 * 4096);
    }

    #[test]
    fn identical_runs_are_bit_identical() {
        let config = MachineConfig::paper_base(Protocol::paper_rnuma());
        let a = run(config, &mut Stream { words: 2048 });
        let b = run(config, &mut Stream { words: 2048 });
        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(a.metrics.remote_fetches, b.metrics.remote_fetches);
        assert_eq!(a.metrics.refetches, b.metrics.refetches);
    }

    #[test]
    fn normalization_baseline_is_first() {
        let configs = [
            MachineConfig::paper_base(Protocol::ideal()),
            MachineConfig::paper_base(Protocol::paper_ccnuma()),
        ];
        let reports = run_normalized(&configs, || Stream { words: 2048 });
        assert_eq!(reports.len(), 2);
        assert!((reports[0].normalized_time - 1.0).abs() < 1e-12);
        // The finite machine can never beat the ideal one.
        assert!(reports[1].normalized_time >= 1.0 - 1e-12);
    }
}
