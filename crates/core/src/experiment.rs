//! One-call experiment execution and the trace-once/replay-many sweep
//! driver.
//!
//! The paper's figures all follow the same recipe: run an application on
//! several machine configurations and report execution times normalized
//! to the ideal CC-NUMA (infinite block cache). [`run`] performs one
//! such run; [`run_normalized`] performs a batch against the ideal
//! baseline.
//!
//! # Parallel batches
//!
//! Each simulation is a pure function of its `(config, workload)` pair
//! and owns its [`Machine`], so batches are embarrassingly parallel.
//! [`run_parallel`] fans a job list out over the host's cores with
//! scoped threads: every job still runs exactly the serial code path on
//! its own machine, so per-run metrics are bit-identical to a serial
//! execution ([`run_normalized_serial`] exists as the reference
//! implementation, and the workspace determinism tests compare the
//! two).
//!
//! # Trace-once, replay many
//!
//! A parameter sweep runs the *same* application against every
//! configuration in a grid. Re-executing the workload per cell re-pays
//! its generation cost (item scheduling, address arithmetic, setup
//! RNG) once per configuration; the sweep driver instead captures the
//! workload's [`TraceOp`] stream **once** — into a [`TraceStore`], a
//! columnar, delta-encoded, profile-interned store with streaming
//! (bounded-memory) capture and optional spill-to-disk — and replays
//! it against every other configuration ([`run_replayed`] per cell,
//! [`run_sweep`] for a whole config axis). Replay is bit-identical to
//! a serial batched
//! [`Machine::apply_batch`] of the same stream in every execution mode
//! (`RNUMA_SHARDS` turns each cell into a pool-backed self-check), and
//! the sweep's reference stream is *fixed across cells* — the classic
//! trace-driven methodology. See `docs/SWEEP.md` for the model and its
//! guarantees.

use crate::config::MachineConfig;
use crate::journal::{cell_key, Journal};
use crate::machine::Machine;
use crate::metrics::Metrics;
use crate::program::{Runner, Workload};
use crate::shard::{shards_from_env, CpuRun, ExecEngine, ShardPool, ShardedMachine, TraceOp};
use crate::trace::{
    decode_segment, encode_segment, spill_dir_from_env, CpuRefs, ProfileArena, SegMeta, SEG_OPS,
};
use rnuma_sim::fault::{FaultKind, FaultLog, FaultPlan};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// The result of one (configuration, workload) simulation.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The application's name.
    pub workload: &'static str,
    /// Protocol label ("CC-NUMA", "S-COMA", "R-NUMA", "ideal").
    pub protocol: &'static str,
    /// The configuration that ran.
    pub config: MachineConfig,
    /// Everything measured.
    pub metrics: Metrics,
}

impl RunReport {
    /// Execution time in cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.metrics.exec_cycles.0
    }
}

/// Runs `workload` once on a machine built from `config`.
///
/// The run is deterministic: identical `(config, workload)` pairs give
/// bit-identical metrics.
///
/// # Panics
///
/// Panics if `config` fails validation — experiment configurations are
/// produced by code, not user input, so this is a programming error.
pub fn run<W: Workload + ?Sized>(config: MachineConfig, workload: &mut W) -> RunReport {
    let mut machine = Machine::new(config).expect("experiment configs must be valid");
    {
        let mut runner = Runner::new(&mut machine);
        workload.run(&mut runner);
    }
    RunReport {
        workload: workload.name(),
        protocol: config.protocol.label(),
        config,
        metrics: machine.metrics(),
    }
}

/// Runs `workload` like [`run`] while recording the machine-level
/// operation trace, returning both the report and the trace.
///
/// Replaying the trace on a fresh machine of the same configuration —
/// serially or via [`ShardedMachine`] — reproduces the report's metrics
/// bit-for-bit.
///
/// # Panics
///
/// Panics if `config` fails validation.
pub fn run_traced<W: Workload + ?Sized>(
    config: MachineConfig,
    workload: &mut W,
) -> (RunReport, Vec<TraceOp>) {
    let mut machine = Machine::new(config).expect("experiment configs must be valid");
    machine.start_tracing();
    {
        let mut runner = Runner::new(&mut machine);
        workload.run(&mut runner);
    }
    let trace = machine.take_trace();
    let report = RunReport {
        workload: workload.name(),
        protocol: config.protocol.label(),
        config,
        metrics: machine.metrics(),
    };
    (report, trace)
}

/// Runs `workload` serially, then replays its trace on a
/// [`ShardedMachine`] with `shards` shards and asserts the two
/// executions are bit-identical, returning the (serial) report.
///
/// This is the self-checking mode behind `RNUMA_SHARDS`: pointing it at
/// the full figure grid turns every experiment into a determinism proof
/// of the sharded executor.
///
/// # Panics
///
/// Panics if `config` fails validation, or — the point of the mode — if
/// the sharded replay diverges from the serial execution.
pub fn run_sharded_checked<W: Workload + ?Sized>(
    config: MachineConfig,
    workload: &mut W,
    shards: usize,
) -> RunReport {
    let (report, trace) = run_traced(config, workload);
    check_sharded_replay(&report, config, shards, |sm| sm.run_trace(&trace));
    report
}

/// [`run`], honoring the `RNUMA_SHARDS` environment variable: when it
/// requests more than one shard, the run is executed through
/// [`run_sharded_checked`] instead. This is what the batch drivers
/// ([`run_parallel`] and `rnuma_bench::run_grid`) call per job.
pub fn run_env_sharded<W: Workload + ?Sized>(config: MachineConfig, workload: &mut W) -> RunReport {
    match shards_from_env() {
        Some(shards) if shards > 1 => run_sharded_checked(config, workload, shards),
        _ => run(config, workload),
    }
}

/// A report together with its execution time normalized to a baseline.
#[derive(Clone, Debug)]
pub struct NormalizedReport {
    /// The underlying run.
    pub report: RunReport,
    /// `report` execution time divided by the baseline's.
    pub normalized_time: f64,
}

/// Runs one simulation per job, fanned out over the host's cores.
///
/// `make` turns a job description into a `(config, workload)` pair *on
/// the worker thread*, so workloads never cross threads (they may hold
/// non-`Send` state). Results come back in job order, and each is
/// bit-identical to what a serial `run` of the same pair produces —
/// runs share nothing.
///
/// Set `RNUMA_JOBS=1` (or any number) to override the worker count,
/// e.g. to force serial execution when profiling. Setting `RNUMA_SHARDS`
/// to more than 1 additionally routes every job through the
/// self-checking intra-machine sharded path
/// ([`run_sharded_checked`]).
///
/// # Example
///
/// ```
/// use rnuma::config::{MachineConfig, Protocol};
/// use rnuma::experiment::run_parallel;
/// use rnuma::program::{Runner, Workload};
///
/// struct Touch(u64);
/// impl Workload for Touch {
///     fn name(&self) -> &'static str { "touch" }
///     fn run(&mut self, r: &mut Runner<'_>) {
///         let data = r.alloc(self.0 * 8);
///         let items = r.block_partition(self.0);
///         r.parallel(&items, |ctx, _cpu, i| ctx.read(data.word(i)));
///     }
/// }
///
/// // One simulation per word count, fanned over the host's cores.
/// let reports = run_parallel(&[256u64, 512], |&words| {
///     (MachineConfig::paper_base(Protocol::paper_rnuma()), Touch(words))
/// });
/// assert_eq!(reports.len(), 2);
/// assert_eq!(reports[0].metrics.references(), 256);
/// assert_eq!(reports[1].metrics.references(), 512);
/// ```
///
/// # Panics
///
/// Propagates panics from workload execution.
pub fn run_parallel<J, W, F>(jobs: &[J], make: F) -> Vec<RunReport>
where
    J: Sync,
    W: Workload,
    F: Fn(&J) -> (MachineConfig, W) + Sync,
{
    parallel_map(jobs, |j| {
        let (config, mut w) = make(j);
        run_env_sharded(config, &mut w)
    })
}

/// Applies `f` to every job, fanned out over the host's cores, and
/// returns the results in job order.
///
/// This is the worker-pool primitive behind [`run_parallel`] and the
/// sweep drivers: jobs are claimed from a shared cursor, each `f`
/// invocation runs entirely on one worker thread, and `RNUMA_JOBS`
/// overrides the worker count (1 forces serial execution). `f` must be
/// order-independent — a pure function of its job — which every
/// simulation in this workspace is.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map<J, T, F>(jobs: &[J], f: F) -> Vec<T>
where
    J: Sync,
    T: Send,
    F: Fn(&J) -> T + Sync,
{
    let n = jobs.len();
    let workers = parallel_workers(n);
    if n <= 1 || workers == 1 {
        return jobs.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if tx.send((i, f(&jobs[i]))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, out) in rx {
        results[i] = Some(out);
    }
    results
        .into_iter()
        .map(|r| r.expect("worker pool covered every job"))
        .collect()
}

/// Shared parser for numeric `RNUMA_*` environment variables under the
/// workspace's uniform misconfiguration contract.
///
/// * Unset → `default` (each variable's documented fallback).
/// * A parse in `1..` → `Some(value)`, clamped down to `max`.
/// * Set but *not a usable count* — `0` or anything unparsable — is a
///   misconfiguration: one warning naming the variable goes to stderr
///   (once per variable per process; tests count the name in
///   subprocess stderr), and `default` applies. Misconfiguration never
///   aborts a run and never silently coerces.
#[must_use]
pub fn env_usize(name: &str, default: Option<usize>, max: usize) -> Option<usize> {
    let Ok(raw) = std::env::var(name) else {
        return default;
    };
    match raw.parse::<usize>() {
        Ok(n) if n >= 1 => Some(n.min(max)),
        _ => {
            warn_once_misconfigured(name, &raw, max);
            default
        }
    }
}

/// The raw string value of a *non-numeric* `RNUMA_*` knob, or `None`
/// when unset (or not valid UTF-8).
///
/// This is the blessed escape hatch companion to [`env_usize`] for
/// knobs whose values are names, paths, or switch words
/// (`RNUMA_EXEC`, `RNUMA_TRACE_SPILL`, `RNUMA_JOURNAL`, …). Call sites
/// still own their documented warn-once misconfiguration semantics —
/// what this helper centralizes is the *access point*: `rnuma-lint`'s
/// D03 lint rejects raw `std::env::var("RNUMA_…")` reads anywhere
/// else, so the whole knob surface stays inventoried in this module
/// (and cross-checked against README's env table by E01).
#[must_use]
pub fn env_raw(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

/// One stderr warning per misconfigured variable per process. A
/// per-name registry (rather than one `Once` per call site) keeps the
/// contract uniform no matter how many call sites parse the same
/// variable.
fn warn_once_misconfigured(name: &str, raw: &str, max: usize) {
    use std::sync::{Mutex, OnceLock, PoisonError};
    static WARNED: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    let mut warned = WARNED
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if warned.iter().any(|n| n == name) {
        return;
    }
    warned.push(name.to_string());
    if max == usize::MAX {
        eprintln!("rnuma: {name}={raw:?} is not a count (want an integer >= 1); using the documented default");
    } else {
        eprintln!(
            "rnuma: {name}={raw:?} is not a count (want 1..={max}); using the documented default"
        );
    }
}

/// The worker count [`parallel_map`] would use for `jobs` jobs:
/// `RNUMA_JOBS` when set to a usable count, otherwise the host's
/// available parallelism, clamped to the job count. `RNUMA_JOBS=0` or
/// an unparsable value is a misconfiguration: it warns once to stderr
/// and falls back to available parallelism ([`env_usize`] contract),
/// exactly like the other numeric `RNUMA_*` variables. Batch drivers
/// that want to bound in-flight memory (e.g. raw traces awaiting
/// interning) size their batches with this.
#[must_use]
pub fn parallel_workers(jobs: usize) -> usize {
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    env_usize("RNUMA_JOBS", Some(host), usize::MAX)
        .unwrap_or(host)
        .clamp(1, jobs.max(1))
}

/// Runs `workload` on each configuration — in parallel across
/// configurations — and normalizes execution times to the first
/// configuration in `configs` (conventionally the ideal machine).
///
/// Returns one entry per configuration, in order; the first entry's
/// `normalized_time` is 1.0 by construction. Every entry is
/// bit-identical to the serial [`run_normalized_serial`] result.
///
/// # Panics
///
/// Panics if `configs` is empty or the baseline executes in zero cycles.
pub fn run_normalized<W, F>(configs: &[MachineConfig], make_workload: F) -> Vec<NormalizedReport>
where
    W: Workload,
    F: Fn() -> W + Sync,
{
    assert!(
        !configs.is_empty(),
        "need at least a baseline configuration"
    );
    let reports = run_parallel(configs, |&config| (config, make_workload()));
    normalize_to_first(reports)
}

/// The serial reference implementation of [`run_normalized`]: identical
/// results, one run at a time. Kept for determinism tests and
/// single-core profiling.
///
/// # Panics
///
/// Panics if `configs` is empty or the baseline executes in zero cycles.
pub fn run_normalized_serial<W, F>(
    configs: &[MachineConfig],
    mut make_workload: F,
) -> Vec<NormalizedReport>
where
    W: Workload,
    F: FnMut() -> W,
{
    assert!(
        !configs.is_empty(),
        "need at least a baseline configuration"
    );
    let reports = configs
        .iter()
        .map(|&config| run(config, &mut make_workload()))
        .collect();
    normalize_to_first(reports)
}

/// [`run_traced`], plus the `RNUMA_SHARDS` self-check: when the
/// environment requests more than one shard, the captured stream is
/// replayed on the pool-backed sharded executor and checked
/// bit-identical against the capture run before returning. Batch sweep
/// drivers use this to capture in parallel and intern serially.
///
/// # Panics
///
/// Panics if `config` fails validation, or if the sharded replay
/// diverges (an executor bug).
pub fn run_traced_env_checked<W: Workload + ?Sized>(
    config: MachineConfig,
    workload: &mut W,
) -> (RunReport, Vec<TraceOp>) {
    let (report, trace) = run_traced(config, workload);
    if let Some(shards) = shards_from_env().filter(|&s| s > 1) {
        check_sharded_replay(&report, config, shards, |sm| sm.run_trace(&trace));
    }
    (report, trace)
}

/// Handle of one captured trace inside a [`TraceStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceId(u32);

/// One captured stream: its workload, the configuration it was captured
/// under, and its contiguous segment range in the shared store.
#[derive(Debug)]
struct TraceRec {
    workload: &'static str,
    config: MachineConfig,
    seg_start: u32,
    seg_end: u32,
    ops: u64,
}

/// The encodable innards of a [`TraceStore`]: the profile arena, run
/// and segment tables, and the capture-time state (interning flag,
/// fault plan). Split out so a streaming capture can move it behind an
/// `Arc<Mutex<_>>` shared with the machine's trace sink and take it
/// back afterwards.
#[derive(Debug)]
struct StoreCore {
    profiles: ProfileArena,
    /// The varint-coded run streams of every segment, concatenated
    /// (each [`SegMeta`] owns a byte range).
    runs: Vec<u8>,
    segs: Vec<SegMeta>,
    interning: bool,
    captured_ops: u64,
    /// Deterministic fault plan for capture-time allocation pressure
    /// (`RNUMA_FAULTS`, `pressure` kind); `None` when faults are off.
    fault_plan: Option<FaultPlan>,
    /// Injected faults this store absorbed.
    fault_log: FaultLog,
    /// Reusable encode scratch (one run's blob).
    blob_scratch: Vec<u8>,
    /// Reusable spilled-read scratch for dedup verification.
    read_scratch: Vec<u8>,
    /// Reusable per-CPU base references for encoding.
    refs_scratch: CpuRefs,
}

impl Default for StoreCore {
    /// A cheap placeholder (no env reads, no spill file) for
    /// `std::mem::take` during streaming capture.
    fn default() -> StoreCore {
        StoreCore {
            profiles: ProfileArena::new(None),
            runs: Vec::new(),
            segs: Vec::new(),
            interning: true,
            captured_ops: 0,
            fault_plan: None,
            fault_log: FaultLog::new(),
            blob_scratch: Vec::new(),
            read_scratch: Vec::new(),
            refs_scratch: CpuRefs::default(),
        }
    }
}

impl StoreCore {
    fn new(spill: Option<&std::path::Path>) -> StoreCore {
        StoreCore {
            profiles: ProfileArena::new(spill),
            fault_plan: FaultPlan::from_env(),
            ..StoreCore::default()
        }
    }

    /// Encodes one segment of captured ops into the store. This is the
    /// streaming-capture sink: it holds no reference to the chunk after
    /// returning, so capture memory stays bounded by one chunk plus the
    /// encoded tables.
    fn push_segment(&mut self, chunk: &[TraceOp]) {
        if chunk.is_empty() {
            return;
        }
        if self.interning {
            if let Some(plan) = self.fault_plan.as_mut() {
                if plan.should_fire(FaultKind::CapturePressure) {
                    // Simulated allocation pressure: the dedup table
                    // "fails to grow", so the store degrades to verbatim
                    // profile storage from here on. Replay results are
                    // identical either way — interning only affects
                    // memory residency — so the sweep keeps its
                    // bit-identical contract under this fault.
                    self.interning = false;
                    self.profiles.drop_dedup();
                    let index = self.segs.len() as u64;
                    self.fault_log.record(
                        FaultKind::CapturePressure,
                        index,
                        "dedup table allocation failed; interning disabled".to_string(),
                    );
                }
            }
        }
        let meta = encode_segment(
            chunk,
            seg_hash(chunk),
            &mut self.profiles,
            &mut self.runs,
            self.interning,
            &mut self.blob_scratch,
            &mut self.read_scratch,
            &mut self.refs_scratch,
        );
        self.segs.push(meta);
        self.captured_ops += chunk.len() as u64;
    }

    /// Encoded size of the store: profile bytes (resident or spilled)
    /// plus the run streams and the segment/span tables.
    fn encoded_bytes(&self) -> u64 {
        self.profiles.stored_bytes()
            + self.profiles.table_bytes()
            + self.runs.len() as u64
            + (self.segs.len() * std::mem::size_of::<SegMeta>()) as u64
    }
}

/// A columnar, delta-encoded store of captured [`TraceOp`] streams —
/// the "capture once" half of trace-once/replay-many sweeps.
///
/// Streams are stored as per-CPU *runs* (the same maximal same-CPU
/// spans the batched replay kernels consume), each reduced to a small
/// run record plus an interned *profile*: packed 2-bit op kinds and
/// varint payload deltas (see the `trace` module). Interning works at
/// profile granularity — two runs with the same kinds and relative
/// address pattern share one blob regardless of base address — so
/// every CPU walking its partition with a common stride dedups, and
/// [`TraceStore::interning_ratio`] drops well below 1.0 on real
/// workloads. Capture is *streaming*: the workload's ops are encoded
/// in fixed-size chunks as they are produced, never materializing the
/// flat op array, and profile bytes optionally spill to a temp file
/// (`RNUMA_TRACE_SPILL`). Replay decodes segment by segment into a
/// bounded scratch ([`TraceStore::for_each_batch`]) feeding
/// [`Machine::replay_segment`] / [`ShardedMachine::run_trace`];
/// `tests/trace_codec.rs` pins the encoded replay bit-identical to
/// both the flat replay and the live execution.
///
/// # Example
///
/// ```
/// use rnuma::config::{MachineConfig, Protocol};
/// use rnuma::experiment::TraceStore;
/// use rnuma::program::{Runner, Workload};
///
/// struct Touch;
/// impl Workload for Touch {
///     fn name(&self) -> &'static str { "touch" }
///     fn run(&mut self, r: &mut Runner<'_>) {
///         let data = r.alloc(4096);
///         let items = r.block_partition(64);
///         r.parallel(&items, |ctx, _cpu, i| ctx.read(data.word(i)));
///     }
/// }
///
/// let mut store = TraceStore::new();
/// let base = MachineConfig::paper_base(Protocol::ideal());
/// let (id, report) = store.capture(base, &mut Touch);
/// // Replaying the captured stream on the capture configuration
/// // reproduces the capture run bit-for-bit...
/// let again = store.replay_serial(id, base);
/// assert!(report.metrics.replay_eq(&again.metrics));
/// // ...and the same stream replays against any other configuration.
/// let rnuma = store.replay_serial(id, MachineConfig::paper_base(Protocol::paper_rnuma()));
/// assert_eq!(rnuma.metrics.references(), report.metrics.references());
/// ```
#[derive(Debug)]
pub struct TraceStore {
    core: StoreCore,
    traces: Vec<TraceRec>,
}

impl Default for TraceStore {
    fn default() -> Self {
        TraceStore::new()
    }
}

impl TraceStore {
    /// An empty store with profile interning enabled and spill behavior
    /// taken from `RNUMA_TRACE_SPILL` (unset: profiles stay resident).
    #[must_use]
    pub fn new() -> TraceStore {
        TraceStore {
            core: StoreCore::new(spill_dir_from_env().as_deref()),
            traces: Vec::new(),
        }
    }

    /// An empty store spilling profile bytes to a file under `dir`
    /// regardless of `RNUMA_TRACE_SPILL` (tests and tools; degrades to
    /// resident storage, with a warning, when `dir` is unusable).
    #[must_use]
    pub fn spilled_to(dir: &std::path::Path) -> TraceStore {
        TraceStore {
            core: StoreCore::new(Some(dir)),
            traces: Vec::new(),
        }
    }

    /// The spill file backing this store's profile bytes, if any
    /// (tests truncate it to drill the torn-file diagnostics).
    #[must_use]
    pub fn spill_path(&self) -> Option<&std::path::Path> {
        self.core.profiles.spill_path()
    }

    /// Overrides the capture-pressure fault plan (tests; `new` reads
    /// `RNUMA_FAULTS`). `None` disables injection.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.core.fault_plan = plan;
    }

    /// Injected faults this store absorbed (capture-time allocation
    /// pressure downgrading interning to verbatim storage).
    #[must_use]
    pub fn fault_log(&self) -> &FaultLog {
        &self.core.fault_log
    }

    /// An empty store that stores every run's profile verbatim (no
    /// interning). Replay results are identical either way; this exists
    /// for benchmarking the interning itself and for debugging.
    #[must_use]
    pub fn raw() -> TraceStore {
        let mut store = TraceStore::new();
        store.core.interning = false;
        store.core.profiles.drop_dedup();
        store
    }

    /// Runs `workload` on `config` — exactly like [`run`] — while
    /// *streaming* its operation stream into the store: ops are encoded
    /// in segment-sized (`SEG_OPS`) chunks as the machine produces them, so
    /// capture memory is bounded by one chunk plus the encoded tables —
    /// the flat op array is never materialized. Returns the stream's id
    /// and the capture run's report.
    ///
    /// When `RNUMA_SHARDS` requests more than one shard, the captured
    /// stream is additionally replayed on the pool-backed sharded
    /// executor and checked bit-identical against the capture run.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation, or if the self-checking
    /// sharded replay diverges (an executor bug).
    pub fn capture<W: Workload + ?Sized>(
        &mut self,
        config: MachineConfig,
        workload: &mut W,
    ) -> (TraceId, RunReport) {
        let seg_start = u32::try_from(self.core.segs.len()).expect("segment count overflow");
        let captured_before = self.core.captured_ops;
        // The machine's trace sink must own its half of the store: the
        // encodable core moves behind a shared handle for the duration
        // of the run and is taken back once the machine (and with it
        // the sink closure) is dropped.
        let shared = Arc::new(Mutex::new(std::mem::take(&mut self.core)));
        let sink = Arc::clone(&shared);
        let mut machine = Machine::new(config).expect("experiment configs must be valid");
        machine.start_streaming_trace(
            SEG_OPS,
            Box::new(move |ops| {
                sink.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push_segment(ops);
            }),
        );
        {
            let mut runner = Runner::new(&mut machine);
            workload.run(&mut runner);
        }
        machine.finish_streaming_trace();
        let report = RunReport {
            workload: workload.name(),
            protocol: config.protocol.label(),
            config,
            metrics: machine.metrics(),
        };
        drop(machine);
        self.core = Arc::try_unwrap(shared)
            .expect("capture sink outlived its machine")
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let captured = self.core.captured_ops - captured_before;
        let id = self.push_trace(report.workload, config, seg_start, captured);
        if let Some(shards) = shards_from_env().filter(|&s| s > 1) {
            check_sharded_replay(&report, config, shards, |sm| self.replay_sharded(id, sm));
        }
        (id, report)
    }

    /// Stores one already-materialized stream (segmenting, encoding,
    /// and interning it) and returns its id.
    pub fn insert(
        &mut self,
        workload: &'static str,
        config: MachineConfig,
        ops: &[TraceOp],
    ) -> TraceId {
        let seg_start = u32::try_from(self.core.segs.len()).expect("segment count overflow");
        for chunk in ops.chunks(SEG_OPS) {
            self.core.push_segment(chunk);
        }
        self.push_trace(workload, config, seg_start, ops.len() as u64)
    }

    fn push_trace(
        &mut self,
        workload: &'static str,
        config: MachineConfig,
        seg_start: u32,
        ops: u64,
    ) -> TraceId {
        let seg_end = u32::try_from(self.core.segs.len()).expect("segment count overflow");
        let id = TraceId(u32::try_from(self.traces.len()).expect("trace count overflow"));
        self.traces.push(TraceRec {
            workload,
            config,
            seg_start,
            seg_end,
            ops,
        });
        id
    }

    fn rec(&self, id: TraceId) -> &TraceRec {
        &self.traces[id.0 as usize]
    }

    /// Decodes the stream segment by segment into a bounded scratch and
    /// hands each `(ops, runs)` batch — the form
    /// [`Machine::replay_segment`] consumes — to `f`, in replay order.
    /// Peak decode memory is one segment (`SEG_OPS` ops), independent
    /// of stream length; the scratch is call-local, so concurrent
    /// replays of a shared store never contend.
    pub fn for_each_batch(&self, id: TraceId, mut f: impl FnMut(&[TraceOp], &[CpuRun])) {
        let rec = self.rec(id);
        let mut ops = Vec::with_capacity(SEG_OPS);
        let mut runs = Vec::new();
        let mut scratch = Vec::new();
        let mut refs = CpuRefs::default();
        for seg in rec.seg_start..rec.seg_end {
            decode_segment(
                self.core.segs[seg as usize],
                &self.core.profiles,
                &self.core.runs,
                &mut ops,
                &mut runs,
                &mut scratch,
                &mut refs,
            );
            f(&ops, &runs);
        }
    }

    /// Decodes the whole stream back to its flat op array (tests and
    /// diagnostics; replay never materializes this form).
    #[must_use]
    pub fn decode(&self, id: TraceId) -> Vec<TraceOp> {
        let mut out = Vec::with_capacity(usize::try_from(self.ops(id)).unwrap_or(usize::MAX));
        self.for_each_batch(id, |ops, _| out.extend_from_slice(ops));
        out
    }

    /// Feeds the stream, segment by segment, to a sharded machine.
    /// Bit-identical to one `run_trace` over the flat stream: the
    /// sharded executor folds its per-chunk metrics after every feed,
    /// so segment boundaries are invisible to the result.
    pub fn replay_sharded(&self, id: TraceId, sharded: &mut ShardedMachine) {
        self.for_each_batch(id, |ops, _| sharded.run_trace(ops));
    }

    /// Number of operations in the stream.
    #[must_use]
    pub fn ops(&self, id: TraceId) -> u64 {
        self.rec(id).ops
    }

    /// The workload name recorded at capture.
    #[must_use]
    pub fn workload(&self, id: TraceId) -> &'static str {
        self.rec(id).workload
    }

    /// The configuration the stream was captured under.
    #[must_use]
    pub fn capture_config(&self, id: TraceId) -> MachineConfig {
        self.rec(id).config
    }

    /// Number of captured streams.
    #[must_use]
    pub fn traces(&self) -> usize {
        self.traces.len()
    }

    /// Total ops captured across all streams.
    #[must_use]
    pub fn captured_ops(&self) -> u64 {
        self.core.captured_ops
    }

    /// Bytes the captured streams would occupy as flat `TraceOp` arrays
    /// — the storage format this store's encoding replaces.
    #[must_use]
    pub fn flat_bytes(&self) -> u64 {
        self.core.captured_ops * std::mem::size_of::<TraceOp>() as u64
    }

    /// Bytes the encoded store occupies: profile bytes (resident or
    /// spilled) plus the run, segment, and profile-span tables.
    #[must_use]
    pub fn encoded_bytes(&self) -> u64 {
        self.core.encoded_bytes()
    }

    /// Encoded bytes actually resident in memory — [`encoded_bytes`]
    /// minus profile bytes living in the spill file.
    ///
    /// [`encoded_bytes`]: TraceStore::encoded_bytes
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.core.encoded_bytes() - self.core.profiles.spilled_bytes()
    }

    /// Profile bytes living in the spill file (0 unless spilling).
    #[must_use]
    pub fn spilled_bytes(&self) -> u64 {
        self.core.profiles.spilled_bytes()
    }

    /// Stored over referenced profile bytes: 1.0 when every run's
    /// profile is unique, below 1.0 when interning dedups — the common
    /// case, since every CPU walking its partition with a shared stride
    /// pattern references one stored profile.
    #[must_use]
    pub fn interning_ratio(&self) -> f64 {
        let referenced = self.core.profiles.referenced_bytes();
        if referenced == 0 {
            return 1.0;
        }
        self.core.profiles.stored_bytes() as f64 / referenced as f64
    }

    /// Flat over encoded bytes — the compression the columnar encoding
    /// buys (≥ 4× on the sweep bench workloads; see `RESULTS.md`).
    #[must_use]
    pub fn footprint_ratio(&self) -> f64 {
        let encoded = self.encoded_bytes();
        if encoded == 0 {
            return 1.0;
        }
        self.flat_bytes() as f64 / encoded as f64
    }

    /// A stable content hash of the stream: the fold of its segments'
    /// hashes in replay order, seeded with the op count. Segment hashes
    /// are computed from the raw ops at capture time (`seg_hash` over
    /// the pre-encoding chunk), so this hash is a property of the
    /// *operation sequence*, not the encoding. Two streams hash equal
    /// iff their operation sequences are identical (modulo hash
    /// collisions, which [`Journal`] keying tolerates: a collision only
    /// risks a stale journal hit, and journal cells additionally carry
    /// the configuration in their key). This is what distinguishes
    /// `em3d@Tiny` from `em3d@Paper` in a sweep journal — same workload
    /// name, different stream.
    #[must_use]
    pub fn content_hash(&self, id: TraceId) -> u64 {
        const MIX: u64 = 0x9E37_79B9_7F4A_7C15;
        let rec = self.rec(id);
        let mut h = 0x6a09_e667_f3bc_c908u64 ^ rec.ops;
        for seg in rec.seg_start..rec.seg_end {
            h = (h ^ self.core.segs[seg as usize].hash)
                .wrapping_mul(MIX)
                .rotate_left(23);
        }
        h
    }

    /// Replays the stream serially on a fresh machine built from
    /// `config`, returning its report. This is the *serial path* every
    /// other replay mode is bit-identical to; it decodes segment by
    /// segment ([`for_each_batch`]) into the batched loop
    /// ([`Machine::replay_segment`]), which `tests/trace_codec.rs` and
    /// `tests/batched_replay.rs` prove bit-identical to the live
    /// execution the stream was captured from.
    ///
    /// `config` need not be the capture configuration — that is the
    /// point of a sweep — but it must describe the same cluster shape
    /// (node and CPU counts), since the stream addresses CPUs by id.
    ///
    /// [`for_each_batch`]: TraceStore::for_each_batch
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation or its cluster shape differs
    /// from the capture configuration's.
    #[must_use]
    pub fn replay_serial(&self, id: TraceId, config: MachineConfig) -> RunReport {
        let rec = self.rec(id);
        assert_eq!(
            (config.nodes, config.cpus_per_node),
            (rec.config.nodes, rec.config.cpus_per_node),
            "replay configuration must match the capture cluster shape"
        );
        let mut machine = Machine::new(config).expect("experiment configs must be valid");
        self.for_each_batch(id, |ops, runs| machine.replay_segment(ops, runs));
        RunReport {
            workload: rec.workload,
            protocol: config.protocol.label(),
            config,
            metrics: machine.metrics(),
        }
    }
}

/// Deterministic content hash of one segment (FxHash-style multiply
/// mixing; collisions are verified against the arena, never trusted).
fn seg_hash(ops: &[TraceOp]) -> u64 {
    const MIX: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (ops.len() as u64);
    let feed = |h: &mut u64, v: u64| *h = (*h ^ v).wrapping_mul(MIX).rotate_left(23);
    for op in ops {
        match *op {
            TraceOp::Access { cpu, va, write } => {
                feed(&mut h, 1);
                feed(&mut h, u64::from(cpu.0));
                feed(&mut h, va.0);
                feed(&mut h, u64::from(write));
            }
            TraceOp::Think { cpu, dur } => {
                feed(&mut h, 2);
                feed(&mut h, u64::from(cpu.0));
                feed(&mut h, dur.0);
            }
            TraceOp::Barrier => feed(&mut h, 3),
            TraceOp::ArmFirstTouch => feed(&mut h, 4),
        }
    }
    h
}

/// Asserts that a pool-backed sharded replay on `config` is
/// bit-identical to `report` (the serial execution of the same
/// stream) — through **all three** window engines: the shared-log
/// executor (per-shard span consumption), the pipelined executor
/// (scan overlapped with pool execution), and the plain barrier
/// engine both are differentially pinned against. `feed` drives the
/// stream into each sharded machine — a flat `run_trace` or a
/// segment-by-segment decoded replay; the executor folds its metrics
/// after every feed, so the two are equivalent.
///
/// Runs on [`ShardPool::checking`], which always has workers — a
/// zero-worker pool would make the executor bypass itself and turn the
/// check into serial-vs-serial.
fn check_sharded_replay(
    report: &RunReport,
    config: MachineConfig,
    shards: usize,
    feed: impl Fn(&mut ShardedMachine),
) {
    for engine in [ExecEngine::Log, ExecEngine::Pipeline, ExecEngine::Barrier] {
        let mut sharded = ShardedMachine::with_pool(config, shards, ShardPool::checking())
            .expect("config validated by caller");
        sharded.set_engine(engine);
        feed(&mut sharded);
        assert!(
            report.metrics.replay_eq(&sharded.metrics()),
            "{engine} sharded replay ({shards} shards) diverged from serial for {} on {}:\n\
             serial:  {}\nsharded: {}",
            report.workload,
            report.protocol,
            report.metrics,
            sharded.metrics()
        );
    }
}

/// Replays one sweep cell: the captured stream `id` against `config`,
/// serially — and, when `RNUMA_SHARDS` requests more than one shard,
/// additionally through the pool-backed sharded executor with a
/// bit-identical self-check. This is the per-cell entry point of the
/// trace-once/replay-many driver (`rnuma_bench::sweep_grid` calls it
/// for every non-capture cell).
///
/// # Panics
///
/// Panics if `config` fails validation or mismatches the capture
/// cluster shape, or — the point of the self-check — if the sharded
/// replay diverges from the serial one.
#[must_use]
pub fn run_replayed(store: &TraceStore, id: TraceId, config: MachineConfig) -> RunReport {
    let report = store.replay_serial(id, config);
    if let Some(shards) = shards_from_env().filter(|&s| s > 1) {
        check_sharded_replay(&report, config, shards, |sm| store.replay_sharded(id, sm));
    }
    report
}

/// Runs one workload against a whole configuration axis the
/// trace-once/replay-many way: the workload executes **once**, on
/// `configs[0]` (capturing its stream), and every other configuration
/// replays the captured stream — fanned over the host's cores
/// (`RNUMA_JOBS` overrides; `RNUMA_SHARDS` adds the per-cell sharded
/// self-check). Returns one report per configuration, in order.
///
/// All cells therefore simulate the *same* reference stream — the
/// fixed-trace methodology classic ccNUMA tooling uses for sweeps —
/// and each cell is bit-identical to a serial batched
/// [`Machine::apply_batch`] of that stream on its configuration (see
/// `docs/SWEEP.md`).
///
/// # Example
///
/// ```
/// use rnuma::config::{MachineConfig, Protocol};
/// use rnuma::experiment::run_sweep;
/// use rnuma::program::{Runner, Workload};
///
/// struct Touch;
/// impl Workload for Touch {
///     fn name(&self) -> &'static str { "touch" }
///     fn run(&mut self, r: &mut Runner<'_>) {
///         let data = r.alloc(4096);
///         let items = r.block_partition(64);
///         r.parallel(&items, |ctx, _cpu, i| ctx.update(data.word(i)));
///     }
/// }
///
/// let configs = [
///     MachineConfig::paper_base(Protocol::ideal()),
///     MachineConfig::paper_base(Protocol::paper_rnuma()),
/// ];
/// // The workload executes once; the second cell replays its stream.
/// let reports = run_sweep(&configs, &mut Touch);
/// assert_eq!(reports.len(), 2);
/// assert_eq!(
///     reports[0].metrics.references(),
///     reports[1].metrics.references(),
/// );
/// ```
///
/// # Panics
///
/// Panics if `configs` is empty, a configuration fails validation, or
/// the configurations disagree on cluster shape.
pub fn run_sweep<W: Workload + ?Sized>(
    configs: &[MachineConfig],
    workload: &mut W,
) -> Vec<RunReport> {
    run_sweep_journaled(
        configs,
        workload,
        Journal::from_env().as_ref(),
        &SweepAbort::from_env(),
    )
}

/// The sweep drivers' crash-injection point: fires [`FaultKind::SweepAbort`]
/// decisions *after* completed cells, panicking the driver mid-sweep so the
/// checkpoint/resume lane can prove a journal-resumed sweep is bit-identical
/// to a clean one.
///
/// Decisions are taken in cell *completion* order, which under a parallel
/// driver is nondeterministic — deliberately so: the resume contract must
/// hold no matter where the sweep died.
#[derive(Debug, Default)]
pub struct SweepAbort(Mutex<Option<FaultPlan>>);

impl SweepAbort {
    /// An abort plan from `RNUMA_FAULTS` (inactive when unset or the
    /// plan has no `abort` events/rates).
    #[must_use]
    pub fn from_env() -> SweepAbort {
        SweepAbort(Mutex::new(FaultPlan::from_env()))
    }

    /// An abort point driven by an explicit plan (tests). `None` never
    /// fires.
    #[must_use]
    pub fn with_plan(plan: Option<FaultPlan>) -> SweepAbort {
        SweepAbort(Mutex::new(plan))
    }

    /// Takes one abort decision; panics with an "injected:" payload
    /// when it fires. Call after each durably-completed unit of work.
    ///
    /// # Panics
    ///
    /// Panics — that is the injection — when the plan fires.
    pub fn after_cell(&self) {
        let mut guard = self
            .0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(plan) = guard.as_mut() {
            if plan.should_fire(FaultKind::SweepAbort) {
                panic!("injected: sweep abort (checkpoint/resume drill)");
            }
        }
    }
}

/// [`run_sweep`] with explicit checkpoint/resume plumbing: completed
/// replay cells are appended to `journal` (keyed by workload, stream
/// content hash and configuration), and cells already present in the
/// journal are restored without re-simulation — so a sweep killed
/// mid-run resumes where it died and finishes bit-identical to a clean
/// run. `abort` is the crash-injection point exercising exactly that.
///
/// The capture cell is *not* journaled: re-running the workload is what
/// regenerates the reference stream (deterministically), and the
/// journal's keys depend on that stream's content hash.
///
/// # Panics
///
/// Panics if `configs` is empty, a configuration fails validation, the
/// configurations disagree on cluster shape — or when `abort` fires.
pub fn run_sweep_journaled<W: Workload + ?Sized>(
    configs: &[MachineConfig],
    workload: &mut W,
    journal: Option<&Journal>,
    abort: &SweepAbort,
) -> Vec<RunReport> {
    assert!(!configs.is_empty(), "need at least one configuration");
    let mut store = TraceStore::new();
    let (id, first) = store.capture(configs[0], workload);
    let trace_hash = store.content_hash(id);
    let mut reports = vec![first];
    reports.extend(parallel_map(&configs[1..], |&config| {
        let key = cell_key(store.workload(id), trace_hash, &config);
        if let Some(metrics) = journal.and_then(|j| j.lookup(key)) {
            return RunReport {
                workload: store.workload(id),
                protocol: config.protocol.label(),
                config,
                metrics: metrics.clone(),
            };
        }
        let report = run_replayed(&store, id, config);
        if let Some(journal) = journal {
            journal.record(key, report.workload, report.protocol, &report.metrics);
        }
        abort.after_cell();
        report
    }));
    reports
}

fn normalize_to_first(reports: Vec<RunReport>) -> Vec<NormalizedReport> {
    let base = reports[0].cycles();
    assert!(base > 0, "baseline executed no cycles");
    reports
        .into_iter()
        .map(|report| NormalizedReport {
            normalized_time: report.cycles() as f64 / base as f64,
            report,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Protocol;
    use crate::program::Ctx;
    use rnuma_mem::addr::CpuId;

    /// A trivial workload: every CPU streams over a shared array.
    struct Stream {
        words: u64,
    }

    impl Workload for Stream {
        fn name(&self) -> &'static str {
            "stream"
        }
        fn run(&mut self, r: &mut Runner<'_>) {
            let region = r.alloc(self.words * 8);
            r.arm_first_touch();
            let items = r.block_partition(self.words);
            r.parallel(&items, |ctx: &mut Ctx<'_>, _cpu: CpuId, i: u64| {
                ctx.update(region.word(i));
                ctx.think(16);
            });
            r.barrier();
        }
    }

    #[test]
    fn run_produces_labeled_report() {
        let report = run(
            MachineConfig::paper_base(Protocol::paper_ccnuma()),
            &mut Stream { words: 4096 },
        );
        assert_eq!(report.workload, "stream");
        assert_eq!(report.protocol, "CC-NUMA");
        assert!(report.cycles() > 0);
        assert_eq!(report.metrics.references(), 2 * 4096);
    }

    #[test]
    fn identical_runs_are_bit_identical() {
        let config = MachineConfig::paper_base(Protocol::paper_rnuma());
        let a = run(config, &mut Stream { words: 2048 });
        let b = run(config, &mut Stream { words: 2048 });
        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(a.metrics.remote_fetches, b.metrics.remote_fetches);
        assert_eq!(a.metrics.refetches, b.metrics.refetches);
    }

    #[test]
    fn parallel_batch_matches_serial_bit_for_bit() {
        let configs = [
            MachineConfig::paper_base(Protocol::ideal()),
            MachineConfig::paper_base(Protocol::paper_ccnuma()),
            MachineConfig::paper_base(Protocol::paper_scoma()),
            MachineConfig::paper_base(Protocol::paper_rnuma()),
        ];
        let par = run_normalized(&configs, || Stream { words: 2048 });
        let ser = run_normalized_serial(&configs, || Stream { words: 2048 });
        assert_eq!(par.len(), ser.len());
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.report.cycles(), s.report.cycles());
            assert_eq!(p.report.metrics.references(), s.report.metrics.references());
            assert_eq!(
                p.report.metrics.remote_fetches,
                s.report.metrics.remote_fetches
            );
            assert_eq!(p.report.metrics.refetches, s.report.metrics.refetches);
            assert!((p.normalized_time - s.normalized_time).abs() < f64::EPSILON);
        }
    }

    #[test]
    fn run_parallel_preserves_job_order() {
        let jobs: Vec<u64> = vec![4096, 1024, 2048];
        let reports = run_parallel(&jobs, |&words| {
            (
                MachineConfig::paper_base(Protocol::paper_ccnuma()),
                Stream { words },
            )
        });
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].metrics.references(), 2 * 4096);
        assert_eq!(reports[1].metrics.references(), 2 * 1024);
        assert_eq!(reports[2].metrics.references(), 2 * 2048);
    }

    #[test]
    fn run_parallel_handles_empty_and_single() {
        let empty: Vec<u64> = Vec::new();
        assert!(run_parallel(&empty, |&w| (
            MachineConfig::paper_base(Protocol::paper_ccnuma()),
            Stream { words: w }
        ))
        .is_empty());
        let one = run_parallel(&[64u64], |&w| {
            (
                MachineConfig::paper_base(Protocol::paper_ccnuma()),
                Stream { words: w },
            )
        });
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn trace_store_replay_matches_capture_bit_for_bit() {
        let config = MachineConfig::paper_base(Protocol::paper_rnuma());
        let mut store = TraceStore::new();
        let (id, report) = store.capture(config, &mut Stream { words: 2048 });
        assert_eq!(store.traces(), 1);
        assert_eq!(store.workload(id), "stream");
        assert_eq!(store.capture_config(id), config);
        let replayed = store.replay_serial(id, config);
        assert!(
            report.metrics.replay_eq(&replayed.metrics),
            "replay diverged from capture:\ncapture: {}\nreplay: {}",
            report.metrics,
            replayed.metrics
        );
    }

    #[test]
    fn trace_store_interns_repeated_profiles() {
        // Three identical 4096-op segments: one run profile each, all
        // three interning to a single stored blob.
        let op = TraceOp::Access {
            cpu: CpuId(0),
            va: rnuma_mem::addr::Va(0x2000),
            write: false,
        };
        let ops = vec![op; 3 * 4096];
        let config = MachineConfig::paper_base(Protocol::paper_ccnuma());
        let mut interned = TraceStore::new();
        let a = interned.insert("synthetic", config, &ops);
        assert_eq!(interned.captured_ops(), 3 * 4096);
        assert!(
            interned.interning_ratio() < 1.0,
            "identical profiles must dedup (ratio {})",
            interned.interning_ratio()
        );
        assert_eq!(interned.ops(a), 3 * 4096);
        // A raw store pays for every profile; both replay identically.
        let mut raw = TraceStore::raw();
        let b = raw.insert("synthetic", config, &ops);
        assert!((raw.interning_ratio() - 1.0).abs() < f64::EPSILON);
        assert!(raw.encoded_bytes() > interned.encoded_bytes());
        let ra = interned.replay_serial(a, config);
        let rb = raw.replay_serial(b, config);
        assert!(ra.metrics.replay_eq(&rb.metrics));
        assert_eq!(ra.metrics.references(), 3 * 4096);
    }

    #[test]
    fn trace_store_decode_round_trips_and_compresses() {
        let config = MachineConfig::paper_base(Protocol::paper_rnuma());
        let (_, trace) = run_traced(config, &mut Stream { words: 2048 });
        let mut store = TraceStore::new();
        let id = store.insert("stream", config, &trace);
        assert_eq!(store.decode(id), trace, "decode must invert encode");
        assert!(
            store.footprint_ratio() >= 4.0,
            "columnar encoding must compress the stream ≥ 4× (got {:.2}×: {} flat vs {} encoded bytes)",
            store.footprint_ratio(),
            store.flat_bytes(),
            store.encoded_bytes()
        );
        // Without spilling, everything encoded is resident.
        assert_eq!(store.spilled_bytes(), 0);
        assert_eq!(store.resident_bytes(), store.encoded_bytes());
    }

    #[test]
    fn sweep_replays_one_fixed_stream_across_the_axis() {
        let configs = [
            MachineConfig::paper_base(Protocol::ideal()),
            MachineConfig::paper_base(Protocol::paper_ccnuma()),
            MachineConfig::paper_base(Protocol::paper_scoma()),
            MachineConfig::paper_base(Protocol::paper_rnuma()),
        ];
        let reports = run_sweep(&configs, &mut Stream { words: 2048 });
        assert_eq!(reports.len(), 4);
        // The capture cell is the execution-driven run itself.
        let direct = run(configs[0], &mut Stream { words: 2048 });
        assert!(reports[0].metrics.replay_eq(&direct.metrics));
        // Every cell simulates the same reference stream.
        for r in &reports {
            assert_eq!(r.metrics.references(), reports[0].metrics.references());
            assert!(r.cycles() > 0);
        }
        assert_eq!(reports[1].protocol, "CC-NUMA");
        assert_eq!(reports[3].protocol, "R-NUMA");
        // Each replay cell is bit-identical to a serial replay of the
        // captured stream on its configuration.
        let mut store = TraceStore::new();
        let (id, _) = store.capture(configs[0], &mut Stream { words: 2048 });
        for (i, r) in reports.iter().enumerate().skip(1) {
            let serial = store.replay_serial(id, configs[i]);
            assert!(
                serial.metrics.replay_eq(&r.metrics),
                "sweep cell {i} diverged from the serial replay path"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cluster shape")]
    fn replay_rejects_mismatched_geometry() {
        let mut store = TraceStore::new();
        let base = MachineConfig::paper_base(Protocol::ideal());
        let (id, _) = store.capture(base, &mut Stream { words: 64 });
        let mut other = base;
        other.nodes = 4;
        let _ = store.replay_serial(id, other);
    }

    #[test]
    fn parallel_map_preserves_order_and_covers_all() {
        let jobs: Vec<u64> = (0..37).collect();
        let out = parallel_map(&jobs, |&j| j * 3);
        assert_eq!(out, (0..37).map(|j| j * 3).collect::<Vec<_>>());
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, |&j| j).is_empty());
    }

    #[test]
    fn normalization_baseline_is_first() {
        let configs = [
            MachineConfig::paper_base(Protocol::ideal()),
            MachineConfig::paper_base(Protocol::paper_ccnuma()),
        ];
        let reports = run_normalized(&configs, || Stream { words: 2048 });
        assert_eq!(reports.len(), 2);
        assert!((reports[0].normalized_time - 1.0).abs() < 1e-12);
        // The finite machine can never beat the ideal one.
        assert!(reports[1].normalized_time >= 1.0 - 1e-12);
    }
}
