//! Append-only checkpoint/resume journal for parameter sweeps.
//!
//! A paper-scale sweep is hours of deterministic work; a killed process
//! should not restart it from zero. The journal records each completed
//! sweep cell — one line of JSON per `(application, trace, config)`
//! cell, keyed by a stable content hash — in the canonical results
//! directory. A re-run of the same sweep consults the journal first and
//! *resumes*: journaled cells are restored verbatim (metrics are stored
//! exactly, every counter and per-page profile), and only the missing
//! cells execute. Because every cell is a pure function of its key, a
//! resumed sweep's final report is identical to an uninterrupted run's
//! — the property `tests/fault_recovery.rs` asserts.
//!
//! The file format is JSONL: one self-contained JSON object per line,
//! appended and flushed as each cell completes, so a kill at any moment
//! loses at most the line being written. Loading skips unparsable lines
//! (a torn final write) instead of failing.
//!
//! Journals are opt-in via `RNUMA_JOURNAL`:
//!
//! * in the core driver ([`crate::experiment::run_sweep`]) the value is
//!   the journal file path;
//! * the bench driver (`rnuma_bench::sweep_grid`) additionally resolves
//!   the value `1` to `sweep_journal.jsonl` in the canonical results
//!   directory.
//!
//! Capture cells (the baseline every replay derives its stream from)
//! are *not* journaled: a resume must re-capture to regenerate the
//! trace anyway, and captures are deterministic, so re-running them is
//! both necessary and exact.

use crate::config::MachineConfig;
use crate::metrics::{Metrics, PageProfile};
use rnuma_mem::addr::{NodeMask, VPage};
use rnuma_mem::fxmap::FxMap64;
use rnuma_os::OsStats;
use rnuma_sim::Cycles;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The stable identity of one sweep cell: the workload's name, the
/// content hash of the reference stream it replays, and the
/// configuration it replays against. Two cells collide only if all
/// three match — in which case their results are identical by the
/// determinism contract, which is exactly when reuse is sound.
#[must_use]
pub fn cell_key(workload: &str, trace_hash: u64, config: &MachineConfig) -> u64 {
    const MIX: u64 = 0x9E37_79B9_7F4A_7C15;
    let feed = |h: &mut u64, v: u64| *h = (*h ^ v).wrapping_mul(MIX).rotate_left(23);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in workload.bytes() {
        feed(&mut h, u64::from(b));
    }
    feed(&mut h, 0xff); // terminator: "ab"+"c" never keys like "a"+"bc"
    feed(&mut h, trace_hash);
    // The configuration's derived Debug form covers every field
    // (protocol, geometry, latencies, policies); hashing it is stable
    // for a given build of the workspace, which is the resume contract.
    for b in format!("{config:?}").bytes() {
        feed(&mut h, u64::from(b));
    }
    h
}

/// An append-only JSONL journal of completed sweep cells.
///
/// Concurrent appends (sweep cells complete on parallel driver workers)
/// are serialized internally; each append is written and flushed as one
/// line, so the journal is crash-safe at line granularity.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    entries: FxMap64<Metrics>,
    append_lock: Mutex<()>,
}

impl Journal {
    /// Opens (or starts) the journal at `path`, loading every
    /// well-formed entry already present. Unparsable lines — a torn
    /// final write from a killed process — are skipped, not fatal.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if an existing journal file cannot be
    /// read (a *missing* file is fine: the journal starts empty).
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Journal> {
        let path = path.into();
        let mut entries = FxMap64::new();
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                for line in text.lines() {
                    if let Some((key, metrics)) = parse_entry(line) {
                        entries.insert(key, metrics);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(Journal {
            path,
            entries,
            append_lock: Mutex::new(()),
        })
    }

    /// The journal configured by `RNUMA_JOURNAL` (the value is the
    /// journal file path), if any. An unopenable journal warns on
    /// stderr once per process and disables journaling — a sweep must
    /// run (slower, un-resumable) rather than abort.
    #[must_use]
    pub fn from_env() -> Option<Journal> {
        let path = crate::experiment::env_raw("RNUMA_JOURNAL")?;
        if path.trim().is_empty() {
            return None;
        }
        match Journal::open(&path) {
            Ok(j) => Some(j),
            Err(e) => {
                static WARN: std::sync::Once = std::sync::Once::new();
                WARN.call_once(|| {
                    eprintln!("warning: cannot open RNUMA_JOURNAL={path}: {e}; journaling off");
                });
                None
            }
        }
    }

    /// The journal's file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of entries loaded at open (later appends do not count:
    /// a resumed cell is never looked up twice in one sweep).
    #[must_use]
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    /// The journaled metrics for `key`, if that cell already completed
    /// in an earlier run.
    #[must_use]
    pub fn lookup(&self, key: u64) -> Option<&Metrics> {
        self.entries.get(key)
    }

    /// Appends one completed cell. `workload` and `protocol` are
    /// recorded for human readers; [`lookup`](Self::lookup) keys on
    /// `key` alone.
    ///
    /// Failure to append warns on stderr and is otherwise ignored: a
    /// sweep that cannot checkpoint must still complete.
    pub fn record(&self, key: u64, workload: &str, protocol: &str, metrics: &Metrics) {
        let mut line = String::with_capacity(256);
        let _ = write!(
            line,
            "{{\"key\":\"{key:016x}\",\"app\":\"{workload}\",\"protocol\":\"{protocol}\",\
             \"metrics\":"
        );
        push_metrics_json(metrics, &mut line);
        line.push_str("}\n");
        let guard = self
            .append_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let result = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .and_then(|mut f| {
                f.write_all(line.as_bytes())?;
                f.flush()
            });
        drop(guard);
        if let Err(e) = result {
            eprintln!(
                "warning: cannot append to sweep journal {}: {e}",
                self.path.display()
            );
        }
    }
}

/// Serializes `m` exactly: every counter as a decimal integer, pages in
/// ascending page order with their raw [`NodeMask`] bits. No floats
/// anywhere, so a round trip is bit-identical ([`Metrics::replay_eq`]).
fn push_metrics_json(m: &Metrics, out: &mut String) {
    let _ = write!(
        out,
        "{{\"reads\":{},\"writes\":{},\"l1_hits\":{},\"mru_translation_hits\":{},\
         \"l1_misses\":{},\"c2c_transfers\":{},\"local_fills\":{},\"block_cache_hits\":{},\
         \"page_cache_hits\":{},\"remote_fetches\":{},\"refetches\":{},\
         \"relocation_interrupts\":{}",
        m.reads,
        m.writes,
        m.l1_hits,
        m.mru_translation_hits,
        m.l1_misses,
        m.c2c_transfers,
        m.local_fills,
        m.block_cache_hits,
        m.page_cache_hits,
        m.remote_fetches,
        m.refetches,
        m.relocation_interrupts,
    );
    let _ = write!(
        out,
        ",\"os\":{{\"page_faults\":{},\"ccnuma_maps\":{},\"scoma_allocations\":{},\
         \"page_replacements\":{},\"relocations\":{},\"tlb_shootdowns\":{},\
         \"blocks_flushed\":{}}}",
        m.os.page_faults,
        m.os.ccnuma_maps,
        m.os.scoma_allocations,
        m.os.page_replacements,
        m.os.relocations,
        m.os.tlb_shootdowns,
        m.os.blocks_flushed,
    );
    let _ = write!(
        out,
        ",\"exec_cycles\":{},\"net_messages\":{},\"ni_wait\":{},\"per_cpu_cycles\":[",
        m.exec_cycles.0, m.net_messages, m.ni_wait.0
    );
    for (i, c) in m.per_cpu_cycles.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", c.0);
    }
    out.push_str("],\"pages\":[");
    for (i, (page, p)) in m.pages_sorted().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "[{},{},{},{},{}]",
            page.0,
            p.accessors.bits(),
            p.writers.bits(),
            p.refetches,
            p.remote_fetches
        );
    }
    out.push_str("]}");
}

/// Parses one journal line into its key and exact metrics. `None` for
/// anything malformed (torn writes, foreign lines) — the loader skips
/// those.
fn parse_entry(line: &str) -> Option<(u64, Metrics)> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    let top = Json::parse(line)?;
    let key = u64::from_str_radix(top.get("key")?.as_str()?, 16).ok()?;
    let m = top.get("metrics")?;
    let os = m.get("os")?;
    let mut metrics = Metrics {
        reads: m.field("reads")?,
        writes: m.field("writes")?,
        l1_hits: m.field("l1_hits")?,
        mru_translation_hits: m.field("mru_translation_hits")?,
        l1_misses: m.field("l1_misses")?,
        c2c_transfers: m.field("c2c_transfers")?,
        local_fills: m.field("local_fills")?,
        block_cache_hits: m.field("block_cache_hits")?,
        page_cache_hits: m.field("page_cache_hits")?,
        remote_fetches: m.field("remote_fetches")?,
        refetches: m.field("refetches")?,
        relocation_interrupts: m.field("relocation_interrupts")?,
        os: OsStats {
            page_faults: os.field("page_faults")?,
            ccnuma_maps: os.field("ccnuma_maps")?,
            scoma_allocations: os.field("scoma_allocations")?,
            page_replacements: os.field("page_replacements")?,
            relocations: os.field("relocations")?,
            tlb_shootdowns: os.field("tlb_shootdowns")?,
            blocks_flushed: os.field("blocks_flushed")?,
        },
        exec_cycles: Cycles(m.field("exec_cycles")?),
        per_cpu_cycles: m
            .get("per_cpu_cycles")?
            .as_arr()?
            .iter()
            .map(|v| v.as_u64().map(Cycles))
            .collect::<Option<Vec<_>>>()?,
        net_messages: m.field("net_messages")?,
        ni_wait: Cycles(m.field("ni_wait")?),
        pages: rnuma_mem::fxmap::FxMap::new(),
    };
    for row in m.get("pages")?.as_arr()? {
        let row = row.as_arr()?;
        if row.len() != 5 {
            return None;
        }
        metrics.pages.insert(
            VPage(row[0].as_u64()?),
            PageProfile {
                accessors: NodeMask::from_bits(row[1].as_u64()?),
                writers: NodeMask::from_bits(row[2].as_u64()?),
                refetches: row[3].as_u64()?,
                remote_fetches: row[4].as_u64()?,
            },
        );
    }
    Some((key, metrics))
}

/// The minimal JSON subset the journal uses: objects, arrays, strings
/// without escapes, and unsigned decimal integers. Hand-rolled because
/// the workspace deliberately carries no external dependencies.
#[derive(Debug)]
enum Json {
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn parse(s: &str) -> Option<Json> {
        let mut p = Parser {
            s: s.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.ws();
        (p.i == p.s.len()).then_some(v)
    }

    fn get(&self, name: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    fn field(&self, name: &str) -> Option<u64> {
        self.get(name)?.as_u64()
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.s.get(self.i).is_some_and(u8::is_ascii_whitespace) {
            self.i += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.ws();
        if self.s.get(self.i) == Some(&b) {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<Json> {
        self.ws();
        match self.s.get(self.i)? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Some(Json::Str(self.string()?)),
            b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let start = self.i;
        while *self.s.get(self.i)? != b'"' {
            // The journal never writes escapes; a backslash means a
            // foreign or corrupt line.
            if self.s[self.i] == b'\\' {
                return None;
            }
            self.i += 1;
        }
        let out = std::str::from_utf8(&self.s[start..self.i])
            .ok()?
            .to_string();
        self.i += 1;
        Some(out)
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.i;
        while self.s.get(self.i).is_some_and(u8::is_ascii_digit) {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).ok()?;
        text.parse().ok().map(Json::Num)
    }

    fn array(&mut self) -> Option<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.s.get(self.i) == Some(&b']') {
            self.i += 1;
            return Some(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            match self.s.get(self.i)? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Some(Json::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.s.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Some(Json::Obj(fields));
        }
        loop {
            self.ws();
            let name = self.string()?;
            self.eat(b':')?;
            fields.push((name, self.value()?));
            self.ws();
            match self.s.get(self.i)? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Some(Json::Obj(fields));
                }
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnuma_mem::addr::NodeId;

    fn sample_metrics() -> Metrics {
        let mut m = Metrics {
            reads: 101,
            writes: 17,
            l1_hits: 90,
            mru_translation_hits: 5,
            l1_misses: 28,
            c2c_transfers: 3,
            local_fills: 9,
            block_cache_hits: 2,
            page_cache_hits: 1,
            remote_fetches: 12,
            refetches: 4,
            relocation_interrupts: 1,
            os: OsStats {
                page_faults: 7,
                ccnuma_maps: 6,
                scoma_allocations: 5,
                page_replacements: 4,
                relocations: 3,
                tlb_shootdowns: 2,
                blocks_flushed: 1,
            },
            exec_cycles: Cycles(123_456),
            per_cpu_cycles: vec![Cycles(10), Cycles(0), Cycles(123_456)],
            net_messages: 55,
            ni_wait: Cycles(7),
            pages: rnuma_mem::fxmap::FxMap::new(),
        };
        m.touch_page(VPage(3), NodeId(0), true);
        m.touch_page(VPage(3), NodeId(5), false);
        m.record_refetch(VPage(3));
        m.touch_page(VPage(1), NodeId(2), false);
        m
    }

    #[test]
    fn metrics_round_trip_is_bit_identical() {
        let m = sample_metrics();
        let mut line = String::from(
            "{\"key\":\"00000000000000ab\",\"app\":\"x\",\"protocol\":\"y\",\"metrics\":",
        );
        push_metrics_json(&m, &mut line);
        line.push('}');
        let (key, parsed) = parse_entry(&line).expect("round trip parses");
        assert_eq!(key, 0xab);
        assert!(m.replay_eq(&parsed), "round trip must be exact");
    }

    #[test]
    fn corrupt_lines_are_skipped() {
        for junk in [
            "",
            "   ",
            "{",
            "{\"key\":\"zz\"}",
            "{\"key\":\"10\",\"metrics\":{}}",
            "not json at all",
            "{\"key\":\"10\",\"metrics\":{\"reads\":1}} trailing",
        ] {
            assert!(parse_entry(junk).is_none(), "{junk:?} must not parse");
        }
    }

    #[test]
    fn journal_resume_and_torn_tail() {
        let dir = std::env::temp_dir().join(format!(
            "rnuma-journal-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        let _ = std::fs::remove_file(&path);

        let j = Journal::open(&path).unwrap();
        assert_eq!(j.entries(), 0);
        let m = sample_metrics();
        j.record(42, "em3d", "R-NUMA", &m);
        j.record(43, "moldyn", "S-COMA", &m);
        drop(j);
        // Simulate a torn final write from a killed process.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            writeln!(f, "{{\"key\":\"0000000000").unwrap();
        }
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.entries(), 2, "torn tail line is skipped");
        assert!(j.lookup(42).unwrap().replay_eq(&m));
        assert!(j.lookup(43).unwrap().replay_eq(&m));
        assert!(j.lookup(44).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Json::get finds the *first* matching field, so a duplicate
    /// field name cannot smuggle a second value past the parser.
    #[test]
    fn duplicate_json_fields_first_wins() {
        let m = sample_metrics();
        let mut line =
            String::from("{\"key\":\"00000000000000aa\",\"key\":\"00000000000000bb\",\"metrics\":");
        push_metrics_json(&m, &mut line);
        line.push('}');
        let (key, parsed) = parse_entry(&line).expect("duplicate fields still parse");
        assert_eq!(key, 0xaa, "first key field wins");
        assert!(m.replay_eq(&parsed));
    }

    /// Builds a `Metrics` from flat random material: 22 counters, a
    /// per-CPU cycle vector, and a page-profile table.
    #[allow(clippy::type_complexity)]
    fn metrics_from(vals: &[u64], per_cpu: &[u64], pages: &[(u64, u64, u64, u64, u64)]) -> Metrics {
        let mut m = Metrics {
            reads: vals[0],
            writes: vals[1],
            l1_hits: vals[2],
            mru_translation_hits: vals[3],
            l1_misses: vals[4],
            c2c_transfers: vals[5],
            local_fills: vals[6],
            block_cache_hits: vals[7],
            page_cache_hits: vals[8],
            remote_fetches: vals[9],
            refetches: vals[10],
            relocation_interrupts: vals[11],
            os: OsStats {
                page_faults: vals[12],
                ccnuma_maps: vals[13],
                scoma_allocations: vals[14],
                page_replacements: vals[15],
                relocations: vals[16],
                tlb_shootdowns: vals[17],
                blocks_flushed: vals[18],
            },
            exec_cycles: Cycles(vals[19]),
            per_cpu_cycles: per_cpu.iter().copied().map(Cycles).collect(),
            net_messages: vals[20],
            ni_wait: Cycles(vals[21]),
            pages: rnuma_mem::fxmap::FxMap::new(),
        };
        for &(page, accessors, writers, refetches, remote) in pages {
            m.pages.insert(
                VPage(page),
                PageProfile {
                    accessors: NodeMask::from_bits(accessors),
                    writers: NodeMask::from_bits(writers),
                    refetches,
                    remote_fetches: remote,
                },
            );
        }
        m
    }

    /// Serializes `m` exactly as `Journal::record` writes it (sans the
    /// trailing newline).
    fn entry_line(key: u64, m: &Metrics) -> String {
        let mut line =
            format!("{{\"key\":\"{key:016x}\",\"app\":\"a\",\"protocol\":\"p\",\"metrics\":");
        push_metrics_json(m, &mut line);
        line.push('}');
        line
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any serializable `Metrics` — random counters across the
        /// full magnitude range, random CPU-cycle vectors, random page
        /// profiles — survives a serialize/parse round trip **exactly**
        /// (`replay_eq`), with its cell key intact.
        #[test]
        fn serialized_metrics_round_trip_exactly(
            key in 0u64..u64::MAX,
            vals in prop::collection::vec(0u64..u64::MAX / 2, 22..23),
            per_cpu in prop::collection::vec(0u64..1_000_000_000_000, 0..9),
            pages in prop::collection::vec(
                (0u64..(1 << 40), 0u64..(1 << 16), 0u64..(1 << 16), 0u64..1_000, 0u64..1_000),
                0..12,
            ),
        ) {
            let m = metrics_from(&vals, &per_cpu, &pages);
            let (k, parsed) = parse_entry(&entry_line(key, &m))
                .expect("well-formed entries parse");
            prop_assert_eq!(k, key);
            prop_assert!(m.replay_eq(&parsed), "round trip must be bit-identical");
        }

        /// Every strict prefix of a well-formed journal line — the torn
        /// tail a killed process leaves — fails to parse. No truncation
        /// point yields a silently different entry.
        #[test]
        fn torn_prefixes_never_parse(
            key in 0u64..u64::MAX,
            vals in prop::collection::vec(0u64..u64::MAX / 2, 22..23),
            per_cpu in prop::collection::vec(0u64..1_000_000, 1..5),
            cut_permille in 0usize..1000,
        ) {
            let m = metrics_from(&vals, &per_cpu, &[(7, 3, 1, 0, 2)]);
            let line = entry_line(key, &m);
            let cut = cut_permille * line.len() / 1000;
            prop_assert!(cut < line.len(), "cut must be strict");
            prop_assert!(
                parse_entry(&line[..cut]).is_none(),
                "torn prefix of length {} (of {}) must not parse",
                cut,
                line.len()
            );
        }

        /// Duplicate cell keys across journal lines: `Journal::open`
        /// keeps the *last* record — a re-run that re-journals a cell
        /// supersedes the stale entry, never resurrects it.
        #[test]
        fn duplicate_cell_keys_last_record_wins(
            key in 0u64..u64::MAX,
            a in prop::collection::vec(0u64..1_000_000, 22..23),
            b in prop::collection::vec(0u64..1_000_000, 22..23),
        ) {
            let first = metrics_from(&a, &[1, 2], &[]);
            let second = metrics_from(&b, &[3], &[(9, 1, 1, 0, 0)]);
            let dir = std::env::temp_dir().join(format!(
                "rnuma-journal-prop-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("dup.jsonl");
            std::fs::write(
                &path,
                format!("{}\n{}\n", entry_line(key, &first), entry_line(key, &second)),
            )
            .unwrap();
            let j = Journal::open(&path).unwrap();
            prop_assert_eq!(j.entries(), 1, "duplicate keys collapse to one entry");
            prop_assert!(
                j.lookup(key).expect("key is present").replay_eq(&second),
                "the later record must win"
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn cell_keys_separate_all_components() {
        let a = MachineConfig::paper_base(crate::config::Protocol::paper_rnuma());
        let b = MachineConfig::paper_base(crate::config::Protocol::paper_scoma());
        let k = cell_key("em3d", 7, &a);
        assert_eq!(k, cell_key("em3d", 7, &a), "stable");
        assert_ne!(k, cell_key("em3d", 8, &a), "trace hash matters");
        assert_ne!(k, cell_key("em3e", 7, &a), "workload matters");
        assert_ne!(k, cell_key("em3d", 7, &b), "config matters");
        assert_ne!(cell_key("ab", 0, &a), cell_key("a", 0, &a));
    }
}
