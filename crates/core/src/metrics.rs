//! Run metrics and per-page profiles.
//!
//! Everything the paper's evaluation reports is derived from these
//! counters: execution time (Figures 6–9), block refetches and page
//! replacements (Table 4), and the per-page refetch distribution
//! (Figure 5).

use rnuma_mem::addr::{NodeId, NodeMask, VPage};
use rnuma_mem::fxmap::FxMap;
use rnuma_os::OsStats;
use rnuma_sim::{Cdf, Cycles};
use std::fmt;

/// Sharing profile of one virtual page, accumulated over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageProfile {
    /// Nodes that referenced the page at all.
    pub accessors: NodeMask,
    /// Nodes that wrote the page.
    pub writers: NodeMask,
    /// Directory-detected capacity/conflict refetches of this page's
    /// blocks (all nodes).
    pub refetches: u64,
    /// Remote fetches (requests that crossed the network) for this page.
    pub remote_fetches: u64,
}

impl PageProfile {
    /// `true` when more than one node touched the page (it is "remote"
    /// for at least one of them).
    #[must_use]
    pub fn is_shared(&self) -> bool {
        self.accessors.count() >= 2
    }

    /// The paper's Table-4 classification: the page incurs both read and
    /// write sharing traffic (it is shared and somebody writes it).
    #[must_use]
    pub fn is_read_write_shared(&self) -> bool {
        self.is_shared() && !self.writers.is_empty()
    }
}

/// Aggregated results of one simulation run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Loads retired.
    pub reads: u64,
    /// Stores retired.
    pub writes: u64,
    /// References satisfied inside the issuing CPU's cache.
    pub l1_hits: u64,
    /// L1-miss page translations satisfied by the per-CPU MRU entry
    /// (no page-table walk).
    pub mru_translation_hits: u64,
    /// References that needed a node-bus transaction.
    pub l1_misses: u64,
    /// Misses supplied cache-to-cache by a peer L1 (MOESI owner).
    pub c2c_transfers: u64,
    /// Fills from node-local memory (page homed here).
    pub local_fills: u64,
    /// Fills satisfied by the RAD's block cache.
    pub block_cache_hits: u64,
    /// Fills satisfied by the S-COMA page cache.
    pub page_cache_hits: u64,
    /// Requests sent to a remote home (block fetches and upgrades).
    pub remote_fetches: u64,
    /// Directory-detected capacity/conflict refetches.
    pub refetches: u64,
    /// R-NUMA relocation interrupts taken.
    pub relocation_interrupts: u64,
    /// Merged OS paging statistics (all nodes).
    pub os: OsStats,
    /// Execution time: the latest CPU clock at the end of the run.
    pub exec_cycles: Cycles,
    /// Per-CPU finishing times.
    pub per_cpu_cycles: Vec<Cycles>,
    /// Total messages injected into the interconnect.
    pub net_messages: u64,
    /// Total queueing delay at network interfaces.
    pub ni_wait: Cycles,
    /// Per-page sharing/refetch profiles.
    pub pages: FxMap<VPage, PageProfile>,
}

impl Metrics {
    /// Total references retired.
    #[must_use]
    pub fn references(&self) -> u64 {
        self.reads + self.writes
    }

    /// L1 hit fraction (0 when no references).
    #[must_use]
    pub fn l1_hit_rate(&self) -> f64 {
        if self.references() == 0 {
            0.0
        } else {
            self.l1_hits as f64 / self.references() as f64
        }
    }

    /// Pages accessed by at least two nodes (each is remote to somebody).
    #[must_use]
    pub fn shared_pages(&self) -> usize {
        self.pages.values().filter(|p| p.is_shared()).count()
    }

    /// The Figure-5 distribution: refetch weights per shared page.
    #[must_use]
    pub fn refetch_cdf(&self) -> Cdf {
        let weights: Vec<u64> = self
            .pages
            .values()
            .filter(|p| p.is_shared())
            .map(|p| p.refetches)
            .collect();
        Cdf::from_weights("refetches-by-remote-page", weights)
    }

    /// The Table-4 left column: fraction of refetches due to pages with
    /// both read and write sharing traffic (0 when no refetches).
    #[must_use]
    pub fn rw_page_refetch_fraction(&self) -> f64 {
        let total: u64 = self.pages.values().map(|p| p.refetches).sum();
        if total == 0 {
            return 0.0;
        }
        let rw: u64 = self
            .pages
            .values()
            .filter(|p| p.is_read_write_shared())
            .map(|p| p.refetches)
            .sum();
        rw as f64 / total as f64
    }

    /// Coefficient of load imbalance: max CPU time over mean CPU time.
    /// 1.0 is perfectly balanced; returns 0 with no CPUs.
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        if self.per_cpu_cycles.is_empty() {
            return 0.0;
        }
        let max = self.per_cpu_cycles.iter().map(|c| c.0).max().unwrap_or(0) as f64;
        let mean = self.per_cpu_cycles.iter().map(|c| c.0).sum::<u64>() as f64
            / self.per_cpu_cycles.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean
        }
    }

    /// Records that `node` touched `page` (with `wrote` set for stores).
    pub fn touch_page(&mut self, page: VPage, node: NodeId, wrote: bool) {
        let p = self.pages.entry_or_default(page);
        p.accessors.insert(node);
        if wrote {
            p.writers.insert(node);
        }
    }

    /// Records a directory-detected refetch of `page`.
    pub fn record_refetch(&mut self, page: VPage) {
        self.refetches += 1;
        self.pages.entry_or_default(page).refetches += 1;
    }

    /// Records a remote fetch for `page`.
    pub fn record_remote_fetch(&mut self, page: VPage) {
        self.remote_fetches += 1;
        self.pages.entry_or_default(page).remote_fetches += 1;
    }

    /// The per-page profiles in ascending page order.
    ///
    /// [`Metrics::pages`] is an insertion-ordered hash table, so its
    /// iteration order depends on execution history; sorted access is
    /// what reports and cross-mode comparisons should use.
    #[must_use]
    pub fn pages_sorted(&self) -> Vec<(VPage, PageProfile)> {
        let mut v: Vec<(VPage, PageProfile)> = self.pages.iter().map(|(k, p)| (k, *p)).collect();
        v.sort_unstable_by_key(|&(page, _)| page);
        v
    }

    /// Folds another metrics record into this one and resets the other
    /// to zero (used to merge per-shard metric deltas in canonical shard
    /// order).
    ///
    /// Only the event counters and per-page profiles are folded; the
    /// state-derived fields (`exec_cycles`, `per_cpu_cycles`, `os`,
    /// `relocation_interrupts`, `net_messages`, `ni_wait`) are refreshed
    /// from machine state by [`crate::machine::Machine::metrics`] and
    /// carry no standalone deltas.
    pub fn absorb(&mut self, other: &mut Metrics) {
        self.reads += std::mem::take(&mut other.reads);
        self.writes += std::mem::take(&mut other.writes);
        self.l1_hits += std::mem::take(&mut other.l1_hits);
        self.mru_translation_hits += std::mem::take(&mut other.mru_translation_hits);
        self.l1_misses += std::mem::take(&mut other.l1_misses);
        self.c2c_transfers += std::mem::take(&mut other.c2c_transfers);
        self.local_fills += std::mem::take(&mut other.local_fills);
        self.block_cache_hits += std::mem::take(&mut other.block_cache_hits);
        self.page_cache_hits += std::mem::take(&mut other.page_cache_hits);
        self.remote_fetches += std::mem::take(&mut other.remote_fetches);
        self.refetches += std::mem::take(&mut other.refetches);
        for (page, p) in other.pages.iter() {
            let mine = self.pages.entry_or_default(page);
            mine.accessors = mine.accessors.union(p.accessors);
            mine.writers = mine.writers.union(p.writers);
            mine.refetches += p.refetches;
            mine.remote_fetches += p.remote_fetches;
        }
        other.pages.clear();
    }

    /// `true` when `other` is a bit-identical replay of this run: every
    /// event counter, clock, OS statistic, network figure, and per-page
    /// profile matches.
    ///
    /// This is the determinism contract between execution modes (serial,
    /// parallel driver, sharded); the per-page comparison is on sorted
    /// contents, because the hash tables' internal layouts legitimately
    /// differ between modes while holding identical profiles.
    #[must_use]
    pub fn replay_eq(&self, other: &Metrics) -> bool {
        self.reads == other.reads
            && self.writes == other.writes
            && self.l1_hits == other.l1_hits
            && self.mru_translation_hits == other.mru_translation_hits
            && self.l1_misses == other.l1_misses
            && self.c2c_transfers == other.c2c_transfers
            && self.local_fills == other.local_fills
            && self.block_cache_hits == other.block_cache_hits
            && self.page_cache_hits == other.page_cache_hits
            && self.remote_fetches == other.remote_fetches
            && self.refetches == other.refetches
            && self.relocation_interrupts == other.relocation_interrupts
            && self.os == other.os
            && self.exec_cycles == other.exec_cycles
            && self.per_cpu_cycles == other.per_cpu_cycles
            && self.net_messages == other.net_messages
            && self.ni_wait == other.ni_wait
            && self.pages_sorted() == other.pages_sorted()
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "exec time       : {}", self.exec_cycles)?;
        writeln!(
            f,
            "references      : {} ({} rd, {} wr), L1 hit {:.1}%",
            self.references(),
            self.reads,
            self.writes,
            self.l1_hit_rate() * 100.0
        )?;
        writeln!(
            f,
            "fills           : local {}, block$ {}, page$ {}, c2c {}",
            self.local_fills, self.block_cache_hits, self.page_cache_hits, self.c2c_transfers
        )?;
        writeln!(
            f,
            "remote traffic  : {} fetches, {} refetches, {} msgs",
            self.remote_fetches, self.refetches, self.net_messages
        )?;
        writeln!(
            f,
            "paging          : {} ({} relocation interrupts)",
            self.os, self.relocation_interrupts
        )?;
        write!(
            f,
            "pages           : {} tracked, {} shared",
            self.pages.len(),
            self.shared_pages()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn page_profile_classification() {
        let mut p = PageProfile::default();
        p.accessors.insert(NodeId(0));
        assert!(!p.is_shared());
        assert!(!p.is_read_write_shared());
        p.accessors.insert(NodeId(1));
        assert!(p.is_shared());
        assert!(!p.is_read_write_shared(), "read-only sharing");
        p.writers.insert(NodeId(1));
        assert!(p.is_read_write_shared());
    }

    #[test]
    fn touch_and_refetch_bookkeeping() {
        let mut m = Metrics::default();
        m.touch_page(VPage(1), NodeId(0), false);
        m.touch_page(VPage(1), NodeId(2), true);
        m.record_refetch(VPage(1));
        m.record_refetch(VPage(1));
        m.record_remote_fetch(VPage(1));
        let p = m.pages[&VPage(1)];
        assert_eq!(p.refetches, 2);
        assert_eq!(p.remote_fetches, 1);
        assert!(p.is_read_write_shared());
        assert_eq!(m.refetches, 2);
        assert_eq!(m.remote_fetches, 1);
    }

    #[test]
    fn rw_fraction_weights_by_refetches() {
        let mut m = Metrics::default();
        // RW-shared page with 3 refetches.
        m.touch_page(VPage(1), NodeId(0), false);
        m.touch_page(VPage(1), NodeId(1), true);
        for _ in 0..3 {
            m.record_refetch(VPage(1));
        }
        // RO-shared page with 1 refetch.
        m.touch_page(VPage(2), NodeId(0), false);
        m.touch_page(VPage(2), NodeId(1), false);
        m.record_refetch(VPage(2));
        assert!((m.rw_page_refetch_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn rw_fraction_empty_is_zero() {
        assert_eq!(Metrics::default().rw_page_refetch_fraction(), 0.0);
    }

    #[test]
    fn cdf_only_counts_shared_pages() {
        let mut m = Metrics::default();
        m.touch_page(VPage(1), NodeId(0), false); // private
        m.touch_page(VPage(2), NodeId(0), false);
        m.touch_page(VPage(2), NodeId(1), false); // shared
        m.record_refetch(VPage(2));
        let cdf = m.refetch_cdf();
        assert_eq!(cdf.contributors(), 1);
        assert_eq!(cdf.total(), 1);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn hit_rate_and_imbalance() {
        let mut m = Metrics::default();
        m.reads = 80;
        m.writes = 20;
        m.l1_hits = 90;
        assert!((m.l1_hit_rate() - 0.9).abs() < 1e-12);
        m.per_cpu_cycles = vec![Cycles(100), Cycles(100), Cycles(200)];
        let imb = m.imbalance();
        assert!((imb - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let m = Metrics::default();
        let s = m.to_string();
        assert!(s.contains("exec time"));
        assert!(s.contains("remote traffic"));
    }
}
