//! # Reactive NUMA (R-NUMA)
//!
//! A from-scratch reproduction of *"Reactive NUMA: A Design for Unifying
//! S-COMA and CC-NUMA"* (Babak Falsafi and David A. Wood, ISCA 1997).
//!
//! R-NUMA is a distributed-shared-memory design in which every node
//! caches each remote page either **CC-NUMA**-style — in a small SRAM
//! *block cache* on the node's Remote Access Device — or
//! **S-COMA**-style — in a main-memory *page cache* guarded by
//! fine-grain access tags — and *reacts* to observed behavior: pages
//! start CC-NUMA, and a per-node, per-page count of capacity/conflict
//! *refetches* triggers OS relocation into the page cache once it
//! crosses a threshold. The result is provably within
//! `2 + C_relocate/C_allocate` (≈ 2–3×) of the better of the two pure
//! protocols on any reference pattern, and usually better than both in
//! practice.
//!
//! ## What this crate provides
//!
//! * [`config`] — machine/protocol configurations, including the paper's
//!   base systems ([`config::Protocol::paper_ccnuma`],
//!   [`config::Protocol::paper_scoma`], [`config::Protocol::paper_rnuma`],
//!   and the ideal infinite-block-cache baseline).
//! * [`machine`] — the full simulated cluster: 8 SMP nodes × 4 CPUs with
//!   8-KB caches on snoopy MOESI buses, RADs with block caches,
//!   fine-grain tags, page caches and reactive counters, a full-map
//!   directory protocol with refetch detection, and a 100-cycle
//!   point-to-point interconnect with NI contention.
//! * [`program`] — the shared-memory programming framework for workload
//!   kernels (allocation, parallel phases, barriers, think time).
//! * [`experiment`] — one-call runs, ideal-normalized batches, the
//!   parallel batch driver (`RNUMA_JOBS` workers across machines,
//!   `RNUMA_SHARDS` self-checking shards within one), and the
//!   trace-once/replay-many sweep driver (`TraceStore`, `run_sweep`;
//!   see `docs/SWEEP.md`).
//! * [`shard`] — deterministic epoch-sharded execution of one machine:
//!   node shards run a trace's contained windows on a persistent worker
//!   pool (`ShardPool`) and replay cross-shard effects in canonical
//!   order, bit-identical to serial (see `docs/DETERMINISM.md`).
//! * [`model`] — the paper's Section-3.2 competitive analysis (EQ 1–3).
//! * [`metrics`] — everything the paper's tables and figures report.
//!
//! ## Quickstart
//!
//! ```
//! use rnuma::config::{MachineConfig, Protocol};
//! use rnuma::experiment::run;
//! use rnuma::program::{Runner, Workload};
//!
//! /// Every CPU sums a strided slice of a shared array.
//! struct Sum;
//! impl Workload for Sum {
//!     fn name(&self) -> &'static str { "sum" }
//!     fn run(&mut self, r: &mut Runner<'_>) {
//!         let data = r.alloc(64 * 1024);
//!         r.arm_first_touch();
//!         let items = r.block_partition(data.len(8));
//!         r.parallel(&items, |ctx, _cpu, i| {
//!             ctx.read(data.word(i));
//!             ctx.think(8);
//!         });
//!         r.barrier();
//!     }
//! }
//!
//! let report = run(MachineConfig::paper_base(Protocol::paper_rnuma()), &mut Sum);
//! assert!(report.cycles() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod experiment;
pub mod journal;
pub mod machine;
pub mod metrics;
pub mod model;
pub mod program;
pub mod shard;
mod trace;

pub use config::{MachineConfig, Protocol};
pub use experiment::{
    parallel_map, run, run_env_sharded, run_normalized, run_normalized_serial, run_parallel,
    run_replayed, run_sharded_checked, run_sweep, run_sweep_journaled, run_traced,
    run_traced_env_checked, NormalizedReport, RunReport, SweepAbort, TraceId, TraceStore,
};
pub use journal::{cell_key, Journal};
pub use machine::Machine;
pub use metrics::{Metrics, PageProfile};
pub use model::ModelParams;
pub use program::{Ctx, Region, Runner, Workload};
pub use rnuma_sim::fault::{FaultEvent, FaultKind, FaultLog, FaultPlan};
pub use shard::{shards_from_env, ShardPool, ShardStats, ShardedMachine, TraceOp};
