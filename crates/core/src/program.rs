//! The shared-memory programming framework workloads run on.
//!
//! Applications in this reproduction are *kernels*: ordinary Rust code
//! that walks the same shared data structures as the original programs
//! and emits every load and store to the simulated machine. The
//! framework mirrors the structure of the SPLASH-2 codes:
//!
//! * [`Runner::alloc`] — shared-region allocation (page-aligned, like
//!   `G_MALLOC`);
//! * [`Runner::parallel`] — a parallel phase: each CPU owns a list of
//!   work items and the scheduler interleaves CPUs at item granularity
//!   in *minimum-clock order*, so cross-CPU contention and sharing are
//!   simulated in (approximate) time order;
//! * [`Runner::barrier`] — global barrier (SPLASH-2 `BARRIER`);
//! * [`Ctx`] — the per-item execution context: [`Ctx::read`],
//!   [`Ctx::write`], and [`Ctx::think`] (compute time at the paper's
//!   dual-issue rate).
//!
//! Item-granularity interleaving is the reproduction's analogue of the
//! paper's instruction-interleaved execution-driven simulation: items
//! (a particle, a matrix block operation, a graph node update) are small
//! enough that protocol interactions across CPUs happen in close to
//! true time order.

use crate::machine::Machine;
use rnuma_mem::addr::{CpuId, Va, PAGE_BYTES};
use rnuma_sim::Cycles;

/// A page-aligned shared-memory region.
///
/// Element helpers address the region as an array of fixed-size records
/// without exposing raw address arithmetic to workload code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    base: Va,
    bytes: u64,
}

impl Region {
    /// First byte address.
    #[must_use]
    pub fn base(&self) -> Va {
        self.base
    }

    /// Region length in bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Address of byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of bounds.
    #[must_use]
    pub fn at(&self, offset: u64) -> Va {
        assert!(offset < self.bytes, "offset {offset} out of region");
        Va(self.base.0 + offset)
    }

    /// Address of the `i`-th record of `stride` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the record extends past the region.
    #[must_use]
    pub fn elem(&self, i: u64, stride: u64) -> Va {
        let offset = i * stride;
        assert!(
            offset + stride <= self.bytes,
            "element {i} (stride {stride}) out of region"
        );
        Va(self.base.0 + offset)
    }

    /// Address of the `i`-th 8-byte word (the dominant element size in
    /// the scientific codes).
    #[must_use]
    pub fn word(&self, i: u64) -> Va {
        self.elem(i, 8)
    }

    /// Number of whole `stride`-byte records the region holds.
    #[must_use]
    pub fn len(&self, stride: u64) -> u64 {
        self.bytes / stride
    }

    /// `true` when the region is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }
}

/// Per-item execution context handed to workload bodies.
///
/// All references execute at the owning CPU's clock and advance it.
#[derive(Debug)]
pub struct Ctx<'m> {
    machine: &'m mut Machine,
    cpu: CpuId,
}

impl Ctx<'_> {
    /// The CPU this item runs on.
    #[must_use]
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// Issues a load.
    pub fn read(&mut self, va: Va) {
        self.machine.access(self.cpu, va, false);
    }

    /// Issues a store.
    pub fn write(&mut self, va: Va) {
        self.machine.access(self.cpu, va, true);
    }

    /// Issues a load followed by a store to the same word
    /// (read-modify-write, e.g. `x += ...`).
    pub fn update(&mut self, va: Va) {
        self.read(va);
        self.write(va);
    }

    /// Reads `n` consecutive 8-byte words starting at `va`.
    pub fn read_words(&mut self, va: Va, n: u64) {
        for i in 0..n {
            self.read(Va(va.0 + i * 8));
        }
    }

    /// Writes `n` consecutive 8-byte words starting at `va`.
    pub fn write_words(&mut self, va: Va, n: u64) {
        for i in 0..n {
            self.write(Va(va.0 + i * 8));
        }
    }

    /// Charges `instructions` of compute at the paper's dual-issue rate
    /// (two instructions per cycle).
    pub fn think(&mut self, instructions: u64) {
        self.machine.advance(self.cpu, Cycles(instructions / 2));
    }

    /// The CPU's current clock (diagnostics).
    #[must_use]
    pub fn now(&self) -> Cycles {
        self.machine.clock(self.cpu)
    }
}

/// Drives a [`Workload`] on a [`Machine`].
#[derive(Debug)]
pub struct Runner<'m> {
    machine: &'m mut Machine,
    next_va: u64,
    total_cpus: u16,
}

impl<'m> Runner<'m> {
    /// Wraps a machine for one workload run.
    #[must_use]
    pub fn new(machine: &'m mut Machine) -> Runner<'m> {
        let total_cpus = machine.config().total_cpus();
        Runner {
            machine,
            // Leave page 0 unused so Va(0) never aliases real data.
            next_va: PAGE_BYTES,
            total_cpus,
        }
    }

    /// Number of CPUs in the machine.
    #[must_use]
    pub fn cpus(&self) -> u16 {
        self.total_cpus
    }

    /// Allocates a page-aligned shared region of at least `bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn alloc(&mut self, bytes: u64) -> Region {
        assert!(bytes > 0, "empty allocation");
        let rounded = bytes.div_ceil(PAGE_BYTES) * PAGE_BYTES;
        let base = Va(self.next_va);
        self.next_va += rounded;
        Region {
            base,
            bytes: rounded,
        }
    }

    /// Arms first-touch page placement; call at the start of the
    /// parallel phase (the paper's user-invoked directive).
    pub fn arm_first_touch(&mut self) {
        self.machine.arm_first_touch();
    }

    /// Synchronizes all CPUs (SPLASH-2 `BARRIER`).
    pub fn barrier(&mut self) {
        self.machine.barrier_all();
    }

    /// Runs one parallel phase.
    ///
    /// `items[cpu]` lists the work items owned by each CPU (empty lists
    /// are fine — that CPU simply waits). The scheduler repeatedly picks
    /// the unfinished CPU with the smallest clock and executes its next
    /// item via `body(ctx, cpu, item)`. Ties resolve by CPU id, so runs
    /// are deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `items.len()` differs from the machine's CPU count.
    pub fn parallel<F>(&mut self, items: &[Vec<u64>], mut body: F)
    where
        F: FnMut(&mut Ctx<'_>, CpuId, u64),
    {
        assert_eq!(
            items.len(),
            self.total_cpus as usize,
            "one item list per CPU required"
        );
        let mut cursors = vec![0usize; items.len()];
        loop {
            // Pick the unfinished CPU with the smallest clock.
            let mut best: Option<(Cycles, usize)> = None;
            for (idx, cursor) in cursors.iter().enumerate() {
                if *cursor < items[idx].len() {
                    let clock = self.machine.clock(CpuId(idx as u16));
                    match best {
                        Some((c, _)) if c <= clock => {}
                        _ => best = Some((clock, idx)),
                    }
                }
            }
            let Some((_, idx)) = best else { break };
            let item = items[idx][cursors[idx]];
            cursors[idx] += 1;
            let cpu = CpuId(idx as u16);
            let mut ctx = Ctx {
                machine: self.machine,
                cpu,
            };
            body(&mut ctx, cpu, item);
        }
    }

    /// Runs a sequential section on one CPU (e.g., a master-only setup
    /// step that must be timed).
    pub fn serial<F>(&mut self, cpu: CpuId, body: F)
    where
        F: FnOnce(&mut Ctx<'_>),
    {
        let mut ctx = Ctx {
            machine: self.machine,
            cpu,
        };
        body(&mut ctx);
    }

    /// Splits `n` items into per-CPU contiguous chunks (block
    /// distribution, the dominant SPLASH-2 pattern).
    #[must_use]
    pub fn block_partition(&self, n: u64) -> Vec<Vec<u64>> {
        let cpus = self.total_cpus as u64;
        (0..cpus)
            .map(|c| {
                let lo = n * c / cpus;
                let hi = n * (c + 1) / cpus;
                (lo..hi).collect()
            })
            .collect()
    }

    /// Distributes `n` items round-robin across CPUs (interleaved
    /// distribution).
    #[must_use]
    pub fn cyclic_partition(&self, n: u64) -> Vec<Vec<u64>> {
        let cpus = self.total_cpus as u64;
        (0..cpus)
            .map(|c| (c..n).step_by(cpus as usize).collect())
            .collect()
    }

    /// Access to the underlying machine (diagnostics and custom flows).
    #[must_use]
    pub fn machine(&mut self) -> &mut Machine {
        self.machine
    }
}

/// A runnable application kernel.
///
/// Implementations live in the `rnuma-workloads` crate; anything that
/// drives a [`Runner`] works, so downstream users can simulate their own
/// access patterns (see the `custom_workload` example).
pub trait Workload {
    /// The application's name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// Executes the kernel against the machine.
    fn run(&mut self, runner: &mut Runner<'_>);
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn run(&mut self, runner: &mut Runner<'_>) {
        (**self).run(runner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MachineConfig, Protocol};

    fn machine() -> Machine {
        Machine::new(MachineConfig::paper_base(Protocol::paper_ccnuma())).unwrap()
    }

    #[test]
    fn alloc_is_page_aligned_and_disjoint() {
        let mut m = machine();
        let mut r = Runner::new(&mut m);
        let a = r.alloc(100);
        let b = r.alloc(5000);
        assert_eq!(a.base().0 % PAGE_BYTES, 0);
        assert_eq!(a.bytes(), PAGE_BYTES);
        assert_eq!(b.bytes(), 2 * PAGE_BYTES);
        assert!(b.base().0 >= a.base().0 + a.bytes());
        assert!(a.base().0 >= PAGE_BYTES, "page 0 reserved");
    }

    #[test]
    fn region_addressing() {
        let mut m = machine();
        let mut r = Runner::new(&mut m);
        let a = r.alloc(4096);
        assert_eq!(a.word(0), a.base());
        assert_eq!(a.word(1).0, a.base().0 + 8);
        assert_eq!(a.elem(3, 16).0, a.base().0 + 48);
        assert_eq!(a.len(8), 512);
        assert!(!a.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of region")]
    fn out_of_bounds_addressing_panics() {
        let mut m = machine();
        let mut r = Runner::new(&mut m);
        let a = r.alloc(64);
        let _ = a.at(PAGE_BYTES);
    }

    #[test]
    fn partitions_cover_everything_exactly_once() {
        let mut m = machine();
        let r = Runner::new(&mut m);
        for part in [r.block_partition(101), r.cyclic_partition(101)] {
            let mut seen: Vec<u64> = part.into_iter().flatten().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..101).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_runs_items_in_min_clock_order() {
        let mut m = machine();
        let mut r = Runner::new(&mut m);
        let region = r.alloc(PAGE_BYTES * 32);
        // Give CPU 0 a long item first; others short items. The long
        // item must not monopolize the schedule.
        let mut order = Vec::new();
        let items: Vec<Vec<u64>> = (0..32).map(|c| vec![c as u64]).collect();
        r.parallel(&items, |ctx, cpu, item| {
            order.push(cpu.0);
            ctx.read(region.elem(item, PAGE_BYTES));
            if cpu.0 == 0 {
                ctx.think(100_000);
            }
        });
        assert_eq!(order.len(), 32);
        // All CPUs participated exactly once.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn think_advances_at_dual_issue_rate() {
        let mut m = machine();
        let mut r = Runner::new(&mut m);
        r.serial(CpuId(3), |ctx| {
            let before = ctx.now();
            ctx.think(1000);
            assert_eq!(ctx.now(), before + Cycles(500));
        });
    }

    #[test]
    fn update_issues_read_then_write() {
        let mut m = machine();
        {
            let mut r = Runner::new(&mut m);
            let region = r.alloc(64);
            r.serial(CpuId(0), |ctx| {
                ctx.update(region.word(0));
            });
        }
        let metrics = m.metrics();
        assert_eq!(metrics.reads, 1);
        assert_eq!(metrics.writes, 1);
    }

    #[test]
    fn read_write_words_emit_n_references() {
        let mut m = machine();
        {
            let mut r = Runner::new(&mut m);
            let region = r.alloc(4096);
            r.serial(CpuId(0), |ctx| {
                ctx.read_words(region.base(), 10);
                ctx.write_words(region.base(), 5);
            });
        }
        let metrics = m.metrics();
        assert_eq!(metrics.reads, 10);
        assert_eq!(metrics.writes, 5);
    }

    #[test]
    #[should_panic(expected = "one item list per CPU")]
    fn wrong_item_list_count_panics() {
        let mut m = machine();
        let mut r = Runner::new(&mut m);
        r.parallel(&[vec![0u64]], |_, _, _| {});
    }
}
