//! The simulated distributed shared-memory machine.
//!
//! [`Machine`] assembles the full system of Figure 1 of the paper: eight
//! SMP nodes (four CPUs with 8-KB data caches on a snoopy MOESI bus,
//! plus a Remote Access Device) connected by a 100-cycle point-to-point
//! network. The protocol under study ([`Protocol`]) decides what lives
//! on the RAD: a block cache (CC-NUMA), a page cache with fine-grain
//! tags (S-COMA), or both plus the reactive refetch counters (R-NUMA).
//!
//! # Timing model
//!
//! Each CPU owns a clock and retires one memory reference at a time,
//! suspending on misses exactly like the paper's statically scheduled
//! processors. A reference walks the hierarchy synchronously; shared
//! resources (node buses, NIs, RAD controllers, memory controllers) are
//! FCFS occupancy servers, so contention appears as queueing delay in
//! the walk. Third-party coherence actions (invalidations, downgrades)
//! update state eagerly and charge their latency to the requester's
//! transaction, the standard protocol-level-simulator treatment.
//! Eviction write-backs are *posted*: they occupy the evictor's
//! outbound NI and sink at the home's memory controller without a
//! reply.
//!
//! The end-to-end uncontended costs reproduce Table 2 — see the
//! calibration tests at the bottom of this file.
//!
//! # Execution lanes
//!
//! The reference walk itself lives in the crate-private `Lanes` engine:
//! a view over a contiguous range of nodes (and their CPUs' clocks and
//! MRU slots), the matching network window, a page-home view, and a
//! metrics sink. [`Machine::access`] drives a full-range lane — the
//! serial path — while the deterministic sharded executor
//! ([`crate::shard::ShardedMachine`]) splits one machine into disjoint
//! lanes and drives them from worker threads. Both paths execute the
//! *same* walk code over the same state, which is what makes sharded
//! runs bit-identical to serial ones (see `docs/DETERMINISM.md`).

use crate::config::{MachineConfig, Protocol};
use crate::metrics::Metrics;
use crate::shard::{CpuRun, Footprints, TraceOp};
use rnuma_mem::addr::{CpuId, NodeId, VBlock, VPage, Va};
use rnuma_mem::block_cache::{BlockCache, BlockEviction, BlockState};
use rnuma_mem::fine_tags::AccessTag;
use rnuma_mem::l1::{L1Cache, L1Probe};
use rnuma_mem::page_cache::{PageCache, PageVictim};
use rnuma_mem::page_table::{Mapping, NodePageTable};
use rnuma_net::net::NodeNi;
use rnuma_net::{MsgKind, NetWindow, Network};
use rnuma_os::{OsStats, PageManager};
use rnuma_proto::bus::{self, BusRequest};
use rnuma_proto::directory::Directory;
use rnuma_proto::effect::{DirEffect, EffectKey, EffectMsg};
use rnuma_proto::reactive::RefetchCounters;
use rnuma_sim::{Cycles, Resource};
use std::ops::Range;

/// Extra protocol-FSM processing charged at the home per request, chosen
/// so that the uncontended end-to-end remote fetch equals Table 2's 376
/// cycles (see `calibration` tests).
const HOME_SERVICE: Cycles = Cycles(43);

/// Bus data-return phase: one 100-MHz bus cycle.
const BUS_DATA: Cycles = Cycles(4);

/// Per-CPU most-recently-used translation: the last page this CPU
/// resolved through its node's page table, with the table version the
/// answer was read under. Repeated references to the same page — the
/// overwhelmingly common case — skip the table walk entirely; any
/// `map`/`unmap` on the node bumps the version and invalidates the
/// entry implicitly.
#[derive(Clone, Copy, Debug)]
pub(crate) struct MruTranslation {
    page: VPage,
    mapping: Mapping,
    version: u64,
}

impl MruTranslation {
    /// A slot that can never match a real lookup.
    const INVALID: MruTranslation = MruTranslation {
        page: VPage(u64::MAX),
        mapping: Mapping::CcNuma,
        version: u64::MAX,
    };
}

/// One node of the machine.
///
/// `Clone` exists for the recovery snapshots the sharded executor takes
/// before dispatching a window under an armed fault plan or watchdog.
#[derive(Clone)]
pub(crate) struct Node {
    l1s: Vec<L1Cache>,
    bus: Resource,
    rad: Resource,
    mem: Resource,
    block_cache: Option<BlockCache>,
    page_cache: Option<PageCache>,
    pt: NodePageTable,
    dir: Directory,
    counters: Option<RefetchCounters>,
    os: OsStats,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("mapped_pages", &self.pt.len())
            .field("os", &self.os)
            .finish_non_exhaustive()
    }
}

/// The full simulated machine: nodes, interconnect, OS, and metrics.
///
/// # Example
///
/// ```
/// use rnuma::config::{MachineConfig, Protocol};
/// use rnuma::machine::Machine;
/// use rnuma_mem::addr::{CpuId, Va};
///
/// let mut m = Machine::new(MachineConfig::paper_base(Protocol::paper_rnuma())).unwrap();
/// // CPU 0 writes a word; the first touch faults and homes the page there.
/// m.access(CpuId(0), Va(0x1000), true);
/// // A CPU on another node reads it remotely.
/// m.access(CpuId(4), Va(0x1000), false);
/// assert!(m.metrics().remote_fetches >= 1);
/// ```
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    nodes: Vec<Node>,
    net: Network,
    pages: PageManager,
    clocks: Vec<Cycles>,
    mru: Vec<MruTranslation>,
    /// Reusable eviction buffer for page flushes (no per-flush allocs).
    flush_scratch: Vec<BlockEviction>,
    metrics: Metrics,
    /// When recording, every machine-level operation goes here so the
    /// run can be replayed (serially or sharded) on a fresh machine.
    tracing: Tracing,
}

/// A streaming-capture consumer: receives each flushed chunk of traced
/// ops (see [`Machine::start_streaming_trace`]).
pub type TraceSink = Box<dyn FnMut(&[TraceOp]) + Send>;

/// How the machine records its operation stream, if at all.
enum Tracing {
    /// Not recording — the default, and the only hot-path mode.
    Off,
    /// Recording into an in-memory op vector ([`Machine::start_tracing`]).
    Record(Vec<TraceOp>),
    /// Streaming: ops accumulate in a bounded chunk buffer handed to
    /// the sink every `cap` ops ([`Machine::start_streaming_trace`]),
    /// so capture memory never scales with run length.
    Stream {
        buf: Vec<TraceOp>,
        cap: usize,
        sink: TraceSink,
    },
}

impl std::fmt::Debug for Tracing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tracing::Off => f.write_str("Off"),
            Tracing::Record(ops) => f.debug_tuple("Record").field(&ops.len()).finish(),
            Tracing::Stream { buf, cap, .. } => f
                .debug_struct("Stream")
                .field("buffered", &buf.len())
                .field("cap", cap)
                .finish_non_exhaustive(),
        }
    }
}

impl Machine {
    /// Builds a machine from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error, if any.
    pub fn new(cfg: MachineConfig) -> Result<Machine, crate::config::ConfigError> {
        cfg.validate()?;
        let nodes = (0..cfg.nodes)
            .map(|n| {
                let (block_cache, page_cache, counters) =
                    match cfg.protocol {
                        Protocol::CcNuma { block_cache_bytes } => (
                            Some(block_cache_bytes.map_or_else(BlockCache::infinite, |b| {
                                BlockCache::direct_mapped(b)
                            })),
                            None,
                            None,
                        ),
                        Protocol::SComa { page_cache_bytes } => (
                            None,
                            Some(PageCache::with_policy(page_cache_bytes, cfg.page_policy)),
                            None,
                        ),
                        Protocol::RNuma {
                            block_cache_bytes,
                            page_cache_bytes,
                            threshold,
                        } => (
                            Some(BlockCache::direct_mapped(block_cache_bytes)),
                            Some(PageCache::with_policy(page_cache_bytes, cfg.page_policy)),
                            Some(RefetchCounters::new(threshold)),
                        ),
                    };
                Node {
                    l1s: (0..cfg.cpus_per_node)
                        .map(|_| L1Cache::new(cfg.l1_bytes))
                        .collect(),
                    bus: Resource::new("membus"),
                    rad: Resource::new("rad"),
                    mem: Resource::new("mem"),
                    block_cache,
                    page_cache,
                    pt: NodePageTable::new(),
                    dir: Directory::new(NodeId(n)),
                    counters,
                    os: OsStats::new(),
                }
            })
            .collect();
        Ok(Machine {
            net: Network::new(cfg.nodes as usize, cfg.net),
            pages: PageManager::new(cfg.nodes),
            clocks: vec![Cycles::ZERO; cfg.total_cpus() as usize],
            mru: vec![MruTranslation::INVALID; cfg.total_cpus() as usize],
            flush_scratch: Vec::new(),
            metrics: Metrics::default(),
            tracing: Tracing::Off,
            nodes,
            cfg,
        })
    }

    /// The machine's configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The current clock of `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn clock(&self, cpu: CpuId) -> Cycles {
        self.clocks[cpu.0 as usize]
    }

    /// Starts recording every subsequent machine-level operation
    /// (accesses, think time, barriers, first-touch arming) for replay.
    ///
    /// Take the recording with [`Machine::take_trace`].
    pub fn start_tracing(&mut self) {
        self.tracing = Tracing::Record(Vec::new());
    }

    /// Stops recording and returns the operations recorded since
    /// [`Machine::start_tracing`] (empty if tracing was never started).
    #[must_use]
    pub fn take_trace(&mut self) -> Vec<TraceOp> {
        match std::mem::replace(&mut self.tracing, Tracing::Off) {
            Tracing::Record(ops) => ops,
            _ => Vec::new(),
        }
    }

    /// Starts *streaming* capture: every subsequent machine-level
    /// operation is buffered and handed to `sink` in chunks of
    /// `chunk_ops` ops, so capture memory stays bounded by one chunk
    /// regardless of run length (the flat op array is never built).
    /// End the capture — flushing the final partial chunk — with
    /// [`Machine::finish_streaming_trace`].
    ///
    /// # Panics
    ///
    /// Panics if `chunk_ops` is zero.
    pub fn start_streaming_trace(&mut self, chunk_ops: usize, sink: TraceSink) {
        assert!(
            chunk_ops > 0,
            "streaming trace chunks must hold at least one op"
        );
        self.tracing = Tracing::Stream {
            buf: Vec::with_capacity(chunk_ops),
            cap: chunk_ops,
            sink,
        };
    }

    /// Ends a streaming capture, flushing the final partial chunk to
    /// the sink and dropping it. No-op when not streaming.
    pub fn finish_streaming_trace(&mut self) {
        if let Tracing::Stream { buf, mut sink, .. } =
            std::mem::replace(&mut self.tracing, Tracing::Off)
        {
            if !buf.is_empty() {
                sink(&buf);
            }
        }
    }

    /// Appends one op to the active trace, flushing a full streaming
    /// chunk to its sink. No-op when not tracing.
    #[inline]
    fn trace_push(&mut self, op: TraceOp) {
        match &mut self.tracing {
            Tracing::Off => {}
            Tracing::Record(ops) => ops.push(op),
            Tracing::Stream { buf, cap, sink } => {
                buf.push(op);
                if buf.len() >= *cap {
                    sink(buf);
                    buf.clear();
                }
            }
        }
    }

    /// Advances `cpu`'s clock by `dur` (compute/think time).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn advance(&mut self, cpu: CpuId, dur: Cycles) {
        self.trace_push(TraceOp::Think { cpu, dur });
        self.clocks[cpu.0 as usize] += dur;
    }

    /// Synchronizes all CPUs at a barrier: every clock jumps to the
    /// latest arrival plus the configured barrier cost.
    pub fn barrier_all(&mut self) {
        self.trace_push(TraceOp::Barrier);
        self.lanes().barrier_all();
    }

    /// Arms first-touch page placement (start of the parallel phase).
    pub fn arm_first_touch(&mut self) {
        self.trace_push(TraceOp::ArmFirstTouch);
        self.pages.arm_first_touch();
    }

    /// Performs one memory reference for `cpu` at its current clock,
    /// advancing the clock by the reference's latency, which is
    /// returned.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn access(&mut self, cpu: CpuId, va: Va, write: bool) -> Cycles {
        self.trace_push(TraceOp::Access { cpu, va, write });
        self.lanes().access(cpu, va, write)
    }

    /// Applies one recorded operation through the live per-op dispatch
    /// — the retired per-op replay path's last remaining step. Crate-
    /// private by design: its only callers are the tracing fallback of
    /// the batched entry points below and the sharded executor's
    /// serial between-window leg (`ShardedMachine::exec_blocking`);
    /// everything else replays through [`Machine::apply_batch`] /
    /// [`Machine::replay_segment`] (`tools/check_perop_guard.sh`
    /// enforces this).
    ///
    /// # Panics
    ///
    /// Panics if the op references a CPU outside the machine.
    pub(crate) fn apply_op(&mut self, op: &TraceOp) {
        match *op {
            TraceOp::Access { cpu, va, write } => {
                self.access(cpu, va, write);
            }
            TraceOp::Think { cpu, dur } => self.advance(cpu, dur),
            TraceOp::Barrier => self.barrier_all(),
            TraceOp::ArmFirstTouch => self.arm_first_touch(),
        }
    }

    /// The tracing fallback of the batched entry points: per-op live
    /// dispatch, which owns trace appends.
    fn replay_per_op(&mut self, ops: &[TraceOp]) {
        for op in ops {
            self.apply_op(op);
        }
    }

    /// Replays `ops` through the batched execution loop — the *only*
    /// replay engine: one construction of the crate-private `Lanes`
    /// walk engine for the whole batch, with contiguous same-CPU runs
    /// streamed through per-run hoisted state instead of per-op
    /// dispatch. Bit-identical to driving the live API
    /// ([`Machine::access`] and friends) one op at a time — the
    /// contract `tests/batched_replay.rs` enforces.
    ///
    /// When the machine is recording a trace, the batch falls back to
    /// per-op live dispatch (which owns trace appends).
    ///
    /// # Panics
    ///
    /// Panics if an op references a CPU outside the machine.
    pub fn apply_batch(&mut self, ops: &[TraceOp]) {
        if !matches!(self.tracing, Tracing::Off) {
            self.replay_per_op(ops);
            return;
        }
        self.lanes().run_ops(ops);
    }

    /// Replays one trace segment through the batched loop, consuming a
    /// pre-split run table (see
    /// [`split_cpu_runs`](crate::shard::split_cpu_runs) and
    /// `TraceStore::batches`) instead of re-scanning the ops for
    /// same-CPU runs. Bit-identical to [`Machine::apply_batch`] of
    /// `ops`.
    ///
    /// When the machine is recording a trace, the segment falls back
    /// to per-op live dispatch (which owns trace appends).
    ///
    /// # Panics
    ///
    /// Panics if an op references a CPU outside the machine, or if
    /// `runs` does not tile `ops` exactly.
    pub fn replay_segment(&mut self, ops: &[TraceOp], runs: &[CpuRun]) {
        if !matches!(self.tracing, Tracing::Off) {
            self.replay_per_op(ops);
            return;
        }
        self.lanes().run_segment(ops, runs);
    }

    /// A snapshot of the run metrics so far (execution time fields are
    /// refreshed from the CPU clocks).
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        let mut m = self.metrics.clone();
        m.exec_cycles = self.clocks.iter().copied().fold(Cycles::ZERO, Cycles::max);
        m.per_cpu_cycles = self.clocks.clone();
        m.os = self
            .nodes
            .iter()
            .fold(OsStats::new(), |acc, n| acc.merged(n.os));
        m.relocation_interrupts = self
            .nodes
            .iter()
            .filter_map(|n| n.counters.as_ref())
            .map(RefetchCounters::interrupts)
            .sum();
        m.net_messages = self.net.total_sends();
        m.ni_wait = self.net.total_ni_wait();
        m
    }

    /// The full-range execution lane: the serial reference walk.
    fn lanes(&mut self) -> Lanes<'_> {
        Lanes {
            cfg: &self.cfg,
            node_base: 0,
            nodes: &mut self.nodes,
            cpu_base: 0,
            clocks: &mut self.clocks,
            mru: &mut self.mru,
            net: self.net.full_window(),
            homes: Homes::Live(&mut self.pages),
            metrics: &mut self.metrics,
            flush_scratch: &mut self.flush_scratch,
            effects: None,
            epoch: 0,
            seq: 0,
        }
    }

    /// Mutable access to the page-home table (shard pre-resolution).
    pub(crate) fn pages_mut(&mut self) -> &mut PageManager {
        &mut self.pages
    }

    /// Direct (sum-)merge of externally accumulated metrics.
    pub(crate) fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// The directory of `home`, for canonical effect replay.
    pub(crate) fn dir_mut(&mut self, home: NodeId) -> &mut Directory {
        &mut self.nodes[home.0 as usize].dir
    }

    /// Moves each node range's simulation state (nodes, CPU clocks, MRU
    /// slots, NI ports) out of the machine and into the given chunks —
    /// the ownership-handoff half of the persistent shard worker pool:
    /// chunks are plain owned values, so they cross threads through
    /// channels with no borrowed state.
    ///
    /// The chunks' accumulator fields (metrics, scratch, effect buffers)
    /// are left untouched, so they persist across windows. Restore with
    /// [`Machine::attach_shards`] before using the machine again.
    ///
    /// # Panics
    ///
    /// Panics unless `ranges` tile `0..nodes` in ascending order and the
    /// chunks' state vectors are empty.
    pub(crate) fn detach_shards(&mut self, ranges: &[Range<usize>], chunks: &mut [ShardChunk]) {
        assert_eq!(ranges.len(), chunks.len());
        let cpus_per_node = self.cfg.cpus_per_node as usize;
        let mut nodes = std::mem::take(&mut self.nodes);
        let mut clocks = std::mem::take(&mut self.clocks);
        let mut mru = std::mem::take(&mut self.mru);
        let mut nis = self.net.take_nis();
        assert_eq!(nodes.len(), self.cfg.nodes as usize, "already detached");
        // Tail-first: each chunk drains its suffix without shifting the
        // elements before it.
        for (r, chunk) in ranges.iter().zip(chunks.iter_mut()).rev() {
            assert!(
                chunk.nodes.is_empty() && chunk.nis.is_empty(),
                "chunk already holds detached state"
            );
            chunk.node_base = r.start;
            chunk.cpu_base = r.start * cpus_per_node;
            chunk.nodes.extend(nodes.drain(r.start..));
            chunk.clocks.extend(clocks.drain(r.start * cpus_per_node..));
            chunk.mru.extend(mru.drain(r.start * cpus_per_node..));
            chunk.nis.extend(nis.drain(r.start..));
        }
        assert!(nodes.is_empty(), "ranges must tile the node space");
        // Keep the emptied vectors (and their capacity) for reattach.
        self.nodes = nodes;
        self.clocks = clocks;
        self.mru = mru;
        self.net.put_nis(nis);
    }

    /// Moves chunk state back into the machine, inverting
    /// [`Machine::detach_shards`]. The chunks must arrive in ascending
    /// node order (the order `detach_shards` filled them in).
    ///
    /// # Panics
    ///
    /// Panics if the reassembled machine does not cover every node.
    pub(crate) fn attach_shards(&mut self, chunks: &mut [ShardChunk]) {
        let mut nis = self.net.take_nis();
        for chunk in chunks.iter_mut() {
            assert_eq!(chunk.node_base, self.nodes.len(), "chunk order broken");
            self.nodes.append(&mut chunk.nodes);
            self.clocks.append(&mut chunk.clocks);
            self.mru.append(&mut chunk.mru);
            nis.append(&mut chunk.nis);
        }
        self.net.put_nis(nis);
        assert_eq!(
            self.nodes.len(),
            self.cfg.nodes as usize,
            "chunks must cover every node"
        );
    }
}

/// One shard's owned slice of machine state, plus its per-shard
/// accumulators (metrics deltas, flush scratch, deferred cross-shard
/// effects).
///
/// Between windows a chunk holds only the accumulators; during a
/// parallel window [`Machine::detach_shards`] moves the shard's nodes,
/// clocks, MRU slots, and NI ports in, the chunk travels to a pool
/// worker as a plain owned value, and [`Machine::attach_shards`] moves
/// the state back at the epoch barrier.
#[derive(Clone, Debug, Default)]
pub(crate) struct ShardChunk {
    pub(crate) node_base: usize,
    pub(crate) cpu_base: usize,
    pub(crate) nodes: Vec<Node>,
    pub(crate) clocks: Vec<Cycles>,
    pub(crate) mru: Vec<MruTranslation>,
    pub(crate) nis: Vec<NodeNi>,
    pub(crate) metrics: Metrics,
    pub(crate) scratch: Vec<BlockEviction>,
    pub(crate) effects: Vec<EffectMsg>,
}

impl ShardChunk {
    /// The execution lane over this chunk's state: the same walk engine
    /// the serial path runs, against a frozen home table.
    pub(crate) fn lanes<'a>(
        &'a mut self,
        cfg: &'a MachineConfig,
        homes: &'a Footprints,
        epoch: u64,
    ) -> Lanes<'a> {
        Lanes {
            cfg,
            node_base: self.node_base,
            nodes: &mut self.nodes,
            cpu_base: self.cpu_base,
            clocks: &mut self.clocks,
            mru: &mut self.mru,
            net: NetWindow::over(cfg.net, self.node_base, &mut self.nis),
            homes: Homes::Frozen(homes),
            metrics: &mut self.metrics,
            flush_scratch: &mut self.scratch,
            effects: Some(&mut self.effects),
            epoch,
            seq: 0,
        }
    }
}

/// How an execution lane resolves page homes.
///
/// The serial walk owns the [`PageManager`] and fixes homes on first
/// touch; a shard lane runs against a frozen view whose homes were
/// pre-resolved — in trace order — by the coordinator before the window
/// started, so concurrent lanes never race on the home table. The
/// pipelined executor preserves this contract under overlap: while
/// workers hold frozen views of window N's table, the coordinator
/// scans window N+1 into a separate overlay (the base never moves or
/// grows under a live lane) and merges it only after every worker has
/// dropped its view at the epoch barrier. The [`PageManager`] itself
/// stays on the machine across [`Machine::detach_shards`], which is
/// what lets the coordinator keep resolving homes mid-window.
enum Homes<'a> {
    /// Exclusive ownership: faults fix homes on touch (serial path).
    Live(&'a mut PageManager),
    /// Shared frozen view: every page faulted in this window was
    /// pre-homed — in trace order — by the window scan (shard path).
    Frozen(&'a Footprints),
}

impl Homes<'_> {
    fn on_touch(&mut self, page: VPage, toucher: NodeId) -> NodeId {
        match self {
            Homes::Live(pm) => pm.home_on_touch(page, toucher),
            Homes::Frozen(fp) => fp
                .home_of(page)
                .expect("window scan pre-homes every page faulted in a shard window"),
        }
    }

    fn of(&self, page: VPage) -> Option<NodeId> {
        match self {
            Homes::Live(pm) => pm.home_of(page),
            Homes::Frozen(fp) => fp.home_of(page),
        }
    }

    fn arm_first_touch(&mut self) {
        match self {
            Homes::Live(pm) => pm.arm_first_touch(),
            Homes::Frozen(_) => unreachable!("first-touch arming inside a shard window"),
        }
    }
}

/// The reference-walk engine over one contiguous node range.
///
/// All node and CPU ids are absolute; a full-range lane (the serial
/// path) owns everything, a shard lane owns its range and panics on any
/// out-of-range touch except posted write-backs, which it buffers as
/// canonical [`EffectMsg`]s for the epoch barrier.
pub(crate) struct Lanes<'a> {
    cfg: &'a MachineConfig,
    node_base: usize,
    nodes: &'a mut [Node],
    cpu_base: usize,
    clocks: &'a mut [Cycles],
    mru: &'a mut [MruTranslation],
    net: NetWindow<'a>,
    homes: Homes<'a>,
    metrics: &'a mut Metrics,
    flush_scratch: &'a mut Vec<BlockEviction>,
    effects: Option<&'a mut Vec<EffectMsg>>,
    epoch: u64,
    seq: u64,
}

impl Lanes<'_> {
    // ------------------------------------------------------------------
    // Windowed state accessors (absolute ids).
    // ------------------------------------------------------------------

    fn node(&self, idx: usize) -> &Node {
        &self.nodes[idx - self.node_base]
    }

    fn node_mut(&mut self, idx: usize) -> &mut Node {
        &mut self.nodes[idx - self.node_base]
    }

    fn owns_node(&self, idx: usize) -> bool {
        idx >= self.node_base && idx - self.node_base < self.nodes.len()
    }

    fn node_of(&self, cpu: CpuId) -> usize {
        (cpu.0 / self.cfg.cpus_per_node) as usize
    }

    /// Performs one memory reference for `cpu` at its current clock,
    /// advancing the clock by the reference's latency, which is
    /// returned.
    pub(crate) fn access(&mut self, cpu: CpuId, va: Va, write: bool) -> Cycles {
        let cpu_idx = cpu.0 as usize - self.cpu_base;
        let node_idx = self.node_of(cpu);
        let l1_idx = (cpu.0 % self.cfg.cpus_per_node) as usize;
        self.metrics
            .touch_page(va.vpage(), NodeId(node_idx as u8), write);
        let latency = self.walk(cpu_idx, node_idx, l1_idx, va, write);
        self.clocks[cpu_idx] += latency;
        latency
    }

    /// Synchronizes all CPUs at a barrier — the one implementation both
    /// [`Machine::barrier_all`] and the batched replay loop run. Only
    /// valid on a full-range lane; a shard lane barriering would
    /// silently synchronize one shard's clocks against a shard-local
    /// max, so the guard is a hard assert (barriers are rare — this is
    /// nowhere near the hot path).
    fn barrier_all(&mut self) {
        assert!(
            self.cpu_base == 0 && self.clocks.len() == self.cfg.total_cpus() as usize,
            "barrier inside a shard window"
        );
        let max = self.clocks.iter().copied().fold(Cycles::ZERO, Cycles::max);
        let after = max + self.cfg.barrier_cost;
        for c in &mut *self.clocks {
            *c = after;
        }
    }

    /// Streams a batch of ops through this lane, grouping contiguous
    /// same-CPU runs on the fly ([`crate::shard::scan_runs`], the same
    /// rule the pre-split tables are built with). The whole-machine
    /// equivalent of [`Lanes::run_segment`] when no run table exists.
    fn run_ops(&mut self, ops: &[TraceOp]) {
        crate::shard::scan_runs(ops, |issuer, range| match issuer {
            Some(cpu) => self.access_run(cpu, 0, &ops[range]),
            None => self.run_global(&ops[range.start]),
        });
    }

    /// Executes one pooled-window bucket through the batched window
    /// kernel: every run streams through [`Lanes::access_run`] with
    /// its CPU-derived indices hoisted and `seq` advanced per op from
    /// the run's `seq_base` — a run is contiguous in both CPU and
    /// global trace position by construction
    /// (`rnuma::shard::BucketRun`), so the advancing `seq` reproduces
    /// exactly the per-op `seq` the retired dispatch loop set.
    ///
    /// # Panics
    ///
    /// Panics if `runs` does not tile `ops` exactly.
    pub(crate) fn run_batch(&mut self, ops: &[TraceOp], runs: &[crate::shard::BucketRun]) {
        let mut at = 0usize;
        for run in runs {
            let end = at + run.len as usize;
            self.access_run(run.cpu, run.seq_base, &ops[at..end]);
            at = end;
        }
        assert_eq!(at, ops.len(), "run table does not tile its bucket");
    }

    /// Streams one segment through this lane, consuming its pre-split
    /// run table (computed once at capture time by `TraceStore`).
    ///
    /// # Panics
    ///
    /// Panics if `runs` does not tile `ops` exactly.
    fn run_segment(&mut self, ops: &[TraceOp], runs: &[CpuRun]) {
        let mut at = 0usize;
        for run in runs {
            match *run {
                CpuRun::Cpu { cpu, len } => {
                    let end = at + len as usize;
                    self.access_run(cpu, 0, &ops[at..end]);
                    at = end;
                }
                CpuRun::Global => {
                    self.run_global(&ops[at]);
                    at += 1;
                }
            }
        }
        assert_eq!(at, ops.len(), "run table does not tile its segment");
    }

    /// Executes one global op (batched-loop dispatch).
    fn run_global(&mut self, op: &TraceOp) {
        match op {
            TraceOp::Barrier => self.barrier_all(),
            TraceOp::ArmFirstTouch => self.homes.arm_first_touch(),
            TraceOp::Access { .. } | TraceOp::Think { .. } => {
                unreachable!("per-CPU op dispatched as global")
            }
        }
    }

    /// Executes one contiguous same-CPU run of `Access`/`Think` ops with
    /// the CPU-derived indices (clock slot, node, L1) hoisted out of the
    /// per-op loop — the batched replay loop's inner kernel.
    ///
    /// `seq_base` is the global trace position of the run's first op;
    /// `seq` advances per op from it, keeping cross-shard effect keys
    /// exact inside pooled windows (whose runs are seq-contiguous by
    /// construction). Serial full-range lanes never buffer effects and
    /// pass 0.
    ///
    /// Within the run, the per-reference page-profile touch is
    /// coalesced: [`Metrics::touch_page`] is idempotent per
    /// `(page, node, wrote)` triple, so a span of consecutive
    /// same-page references pays its hash probe once for the span's
    /// first reference (creating the profile at the same point in
    /// execution order as the per-op path) plus once for its first
    /// write — never once per op.
    fn access_run(&mut self, cpu: CpuId, seq_base: u64, ops: &[TraceOp]) {
        let cpu_idx = cpu.0 as usize - self.cpu_base;
        let node_idx = self.node_of(cpu);
        let node_id = NodeId(node_idx as u8);
        let l1_idx = (cpu.0 % self.cfg.cpus_per_node) as usize;
        // An unreachable page number (addresses are page-offset-shifted
        // u64s, so their page indices never reach u64::MAX).
        let mut span_page = VPage(u64::MAX);
        let mut span_wrote = false;
        // Only shard lanes consume `seq` (cross-shard effect keys);
        // hoisting the check keeps the per-op store off the serial
        // batched hot path, which never buffers effects.
        let track_seq = self.effects.is_some();
        for (seq, op) in (seq_base..).zip(ops) {
            if track_seq {
                self.seq = seq;
            }
            // A run table paired with the wrong segment of equal length
            // would otherwise execute silently with every op charged to
            // the hoisted run CPU.
            debug_assert_eq!(op.issuer(), Some(cpu), "op outside its CPU run");
            match *op {
                TraceOp::Access { va, write, .. } => {
                    let page = va.vpage();
                    if page != span_page {
                        span_page = page;
                        span_wrote = write;
                        self.metrics.touch_page(page, node_id, write);
                    } else if write && !span_wrote {
                        span_wrote = true;
                        self.metrics.touch_page(page, node_id, true);
                    }
                    let latency = self.walk(cpu_idx, node_idx, l1_idx, va, write);
                    self.clocks[cpu_idx] += latency;
                }
                TraceOp::Think { dur, .. } => self.clocks[cpu_idx] += dur,
                TraceOp::Barrier | TraceOp::ArmFirstTouch => {
                    unreachable!("global op inside a same-CPU run")
                }
            }
        }
    }

    /// Posts an eviction write-back of `block` from `from` toward its
    /// home: the network message is posted (sender-side state only), and
    /// the home's directory transition is applied directly when the home
    /// is inside this lane, or buffered as a canonical effect message
    /// when it is not.
    fn post_writeback(&mut self, now: Cycles, from: NodeId, home: NodeId, block: VBlock) {
        self.net.post(now, from, home, MsgKind::WriteBack);
        if self.owns_node(home.0 as usize) {
            self.node_mut(home.0 as usize).dir.writeback(block, from);
        } else {
            let msg = EffectMsg {
                key: EffectKey {
                    epoch: self.epoch,
                    home,
                    seq: self.seq,
                },
                effect: DirEffect::WriteBack { block, from },
            };
            self.effects
                .as_deref_mut()
                .expect("cross-shard write-back outside a shard window")
                .push(msg);
        }
    }

    // ------------------------------------------------------------------
    // The reference walk.
    // ------------------------------------------------------------------

    /// The full reference walk, with the issuing CPU's derived indices
    /// (clock slot, node, L1 slot) already resolved — callers hoist them
    /// once per op ([`Lanes::access`]) or once per same-CPU run
    /// ([`Lanes::access_run`]). Callers also own the page-profile touch
    /// ([`Metrics::touch_page`]), which must precede the walk; the
    /// batched loop coalesces it across same-page spans.
    fn walk(
        &mut self,
        cpu_idx: usize,
        node_idx: usize,
        l1_idx: usize,
        va: Va,
        write: bool,
    ) -> Cycles {
        let start = self.clocks[cpu_idx];
        let block = va.vblock();
        let page = va.vpage();

        if write {
            self.metrics.writes += 1;
        } else {
            self.metrics.reads += 1;
        }

        // 1. L1 probe (1 cycle).
        let probe = {
            let l1 = &self.node(node_idx).l1s[l1_idx];
            if write {
                l1.probe_write(block)
            } else {
                l1.probe_read(block)
            }
        };
        if probe == L1Probe::Hit {
            if write {
                self.node_mut(node_idx).l1s[l1_idx].store_hit(block);
            }
            self.metrics.l1_hits += 1;
            return Cycles(1);
        }
        self.metrics.l1_misses += 1;
        let mut t = start + Cycles(1);

        // 2. Page translation. The per-CPU MRU entry short-circuits the
        //    table walk for repeated references to the same page; a soft
        //    fault maps the page on first touch.
        let mru = self.mru[cpu_idx];
        let mapping = if mru.version == self.node(node_idx).pt.version() && mru.page == page {
            self.metrics.mru_translation_hits += 1;
            mru.mapping
        } else {
            let m = match self.node(node_idx).pt.lookup(page) {
                Some(m) => m,
                None => {
                    let (m, fault_end) = self.fault_in_page(node_idx, page, t);
                    t = fault_end;
                    m
                }
            };
            self.mru[cpu_idx] = MruTranslation {
                page,
                mapping: m,
                version: self.node(node_idx).pt.version(),
            };
            m
        };

        // 3. Node-bus transaction with snoop of the peer caches.
        let request = match (write, probe) {
            (false, _) => BusRequest::Read,
            (true, L1Probe::UpgradeMiss) => BusRequest::Upgrade,
            (true, _) => BusRequest::ReadExclusive,
        };
        let occ = self.cfg.bus_occupancy;
        let grant = self.node_mut(node_idx).bus.acquire(t, occ);
        t = grant + occ;
        let snoop = bus::snoop(&mut self.node_mut(node_idx).l1s, l1_idx, block, request);

        // 4. A peer owner supplies reads cache-to-cache (write misses
        //    continue to the node-level permission check; peer copies are
        //    already invalidated by the snoop).
        if !write && snoop.supplied_by_cache {
            self.metrics.c2c_transfers += 1;
            t += BUS_DATA;
            self.fill_l1(
                node_idx,
                l1_idx,
                block,
                false,
                rnuma_mem::moesi::Moesi::Shared,
                t,
            );
            return t - start;
        }

        // 5. Dispatch on the page's mapping mode.
        let done = match mapping {
            Mapping::Local => self.access_local(node_idx, block, write, snoop.peer_had_copy, t),
            Mapping::CcNuma => self.access_ccnuma(
                node_idx,
                l1_idx,
                page,
                block,
                write,
                probe,
                snoop.peer_had_copy,
                t,
            ),
            Mapping::SComa(_) => {
                self.access_scoma(node_idx, l1_idx, page, block, write, snoop.peer_had_copy, t)
            }
        };

        // 6. Fill the issuing L1 for the non-CC-NUMA paths (the CC-NUMA
        //    path fills inside to sequence block-cache evictions).
        match mapping {
            Mapping::Local | Mapping::SComa(_) => {
                let state =
                    self.fill_state(node_idx, mapping, page, block, write, snoop.peer_had_copy);
                self.fill_l1(node_idx, l1_idx, block, write, state, done);
            }
            Mapping::CcNuma => {}
        }
        done - start
    }

    /// Chooses the MOESI state for an L1 fill from node-level permission.
    /// `mapping` is the page's already-resolved translation, so the walk
    /// is not repeated here.
    fn fill_state(
        &self,
        node_idx: usize,
        mapping: Mapping,
        page: VPage,
        block: VBlock,
        write: bool,
        peer_had_copy: bool,
    ) -> rnuma_mem::moesi::Moesi {
        use rnuma_mem::moesi::Moesi;
        if write {
            return Moesi::Modified;
        }
        if peer_had_copy {
            return Moesi::Shared;
        }
        let node = self.node(node_idx);
        let node_rw = match mapping {
            Mapping::Local => {
                let e = node.dir.entry(block);
                let home = NodeId(node_idx as u8);
                e.owner.is_none_or(|o| o == home) && e.sharers.without(home).is_empty()
            }
            Mapping::SComa(_) => node
                .page_cache
                .as_ref()
                .and_then(|pc| pc.tag(page, block.index_in_page()))
                .is_some_and(AccessTag::writable),
            Mapping::CcNuma => node
                .block_cache
                .as_ref()
                .and_then(|bc| bc.probe(block))
                .is_some_and(|s| s.read_write),
        };
        if node_rw {
            Moesi::Exclusive
        } else {
            Moesi::Shared
        }
    }

    fn fill_l1(
        &mut self,
        node_idx: usize,
        l1_idx: usize,
        block: VBlock,
        write: bool,
        state: rnuma_mem::moesi::Moesi,
        now: Cycles,
    ) {
        let ev = if write {
            self.node_mut(node_idx).l1s[l1_idx].grant_write(block)
        } else {
            self.node_mut(node_idx).l1s[l1_idx].fill(block, state)
        };
        if let Some(ev) = ev {
            self.handle_l1_eviction(node_idx, ev.block, ev.dirty, now);
        }
    }

    /// Routes a dirty L1 victim to the node-level holder of the block.
    fn handle_l1_eviction(&mut self, node_idx: usize, block: VBlock, dirty: bool, _now: Cycles) {
        if !dirty {
            return; // clean drops are silent everywhere
        }
        let page = block.vpage();
        match self.node(node_idx).pt.lookup(page) {
            Some(Mapping::CcNuma) => {
                // Inclusion holds for read-write blocks, so the block
                // cache has the line; the write-back lands there.
                if let Some(bc) = self.node_mut(node_idx).block_cache.as_mut() {
                    bc.mark_dirty(block);
                }
            }
            // Local memory and S-COMA frames absorb write-backs directly
            // (the RW fine-grain tag already marks the frame dirty).
            Some(Mapping::Local) | Some(Mapping::SComa(_)) | None => {}
        }
    }

    // ------------------------------------------------------------------
    // Page faults and mapping.
    // ------------------------------------------------------------------

    fn fault_in_page(&mut self, node_idx: usize, page: VPage, now: Cycles) -> (Mapping, Cycles) {
        let node_id = NodeId(node_idx as u8);
        let home = self.homes.on_touch(page, node_id);
        self.node_mut(node_idx).os.page_faults += 1;
        if home == node_id {
            self.node_mut(node_idx).pt.map(page, Mapping::Local);
            return (Mapping::Local, now + self.cfg.costs.page_fault());
        }
        match self.cfg.protocol {
            Protocol::CcNuma { .. } => {
                self.node_mut(node_idx).pt.map(page, Mapping::CcNuma);
                self.node_mut(node_idx).os.ccnuma_maps += 1;
                (Mapping::CcNuma, now + self.cfg.costs.page_fault())
            }
            Protocol::RNuma { .. } => {
                // R-NUMA always starts a remote page as CC-NUMA.
                self.node_mut(node_idx).pt.map(page, Mapping::CcNuma);
                self.node_mut(node_idx).os.ccnuma_maps += 1;
                (Mapping::CcNuma, now + self.cfg.costs.page_fault())
            }
            Protocol::SComa { .. } => {
                let cost = self.map_scoma_page(node_idx, page, now);
                (
                    self.node(node_idx)
                        .pt
                        .lookup(page)
                        .expect("map_scoma_page installed a mapping"),
                    now + cost,
                )
            }
        }
    }

    /// Allocates a page-cache frame for `page` and maps it S-COMA,
    /// flushing an LRM victim if needed. Returns the total OS cost.
    fn map_scoma_page(&mut self, node_idx: usize, page: VPage, now: Cycles) -> Cycles {
        let alloc = self
            .node_mut(node_idx)
            .page_cache
            .as_mut()
            .expect("S-COMA mapping requires a page cache")
            .allocate(page);
        let victim_blocks = match alloc.victim {
            Some(victim) => {
                let blocks = victim.valid_blocks;
                self.flush_scoma_victim(node_idx, victim, now);
                blocks
            }
            None => 0,
        };
        let node = self.node_mut(node_idx);
        node.pt.map(page, Mapping::SComa(alloc.frame));
        node.os.scoma_allocations += 1;
        node.os.tlb_shootdowns += 1;
        self.cfg.costs.page_allocation(victim_blocks)
    }

    /// Unmaps and flushes an evicted page-cache page: dirty blocks are
    /// written back to their home (updating its directory so the next
    /// fetch is recognized as a refetch), read-only blocks are dropped
    /// silently (non-notifying), and local L1 copies are invalidated
    /// under the TLB shootdown.
    fn flush_scoma_victim(&mut self, node_idx: usize, victim: PageVictim, now: Cycles) {
        let node_id = NodeId(node_idx as u8);
        let home = self
            .homes
            .of(victim.vpage)
            .expect("cached page must have a home");
        debug_assert_ne!(home, node_id, "page cache never holds local pages");
        for (idx, tag) in victim.tags.iter_valid() {
            let block = victim.vpage.block(idx);
            if tag == AccessTag::ReadWrite {
                self.post_writeback(now, node_id, home, block);
            }
        }
        for l1 in &mut self.node_mut(node_idx).l1s {
            l1.invalidate_page(victim.vpage);
        }
        let node = self.node_mut(node_idx);
        node.pt.unmap(victim.vpage);
        node.os.page_replacements += 1;
        node.os.blocks_flushed += u64::from(victim.valid_blocks);
        if let Some(counters) = node.counters.as_mut() {
            counters.reset(victim.vpage);
        }
    }

    // ------------------------------------------------------------------
    // Access paths by mapping mode.
    // ------------------------------------------------------------------

    /// Access to a page homed at this node: plain local memory, plus any
    /// coherence actions against foreign copies recorded in the
    /// directory.
    fn access_local(
        &mut self,
        node_idx: usize,
        block: VBlock,
        write: bool,
        _peer_had_copy: bool,
        mut t: Cycles,
    ) -> Cycles {
        let node_id = NodeId(node_idx as u8);
        let entry = self.node(node_idx).dir.entry(block);
        let foreign_owner = entry.owner.filter(|&o| o != node_id);
        let foreign_sharers = entry.sharers.without(node_id);

        if write {
            if foreign_owner.is_some() || !foreign_sharers.is_empty() {
                let outcome = self.node_mut(node_idx).dir.write(block, node_id, true);
                if let Some(owner) = outcome.fetch_from {
                    t = self.fetch_invalidate_foreign_owner(node_idx, owner, block, t);
                }
                let invals = outcome.invalidate.without(node_id);
                t = self.invalidate_sharers(node_idx, invals, block, t);
            }
        } else if let Some(owner) = foreign_owner {
            let outcome = self.node_mut(node_idx).dir.read(block, node_id);
            debug_assert_eq!(outcome.fetch_from, Some(owner));
            t = self.downgrade_foreign_owner(node_idx, owner, block, t);
        }

        // Local memory fill: DRAM access plus the bus data return.
        let dram = self.cfg.costs.dram_access;
        let grant = self.node_mut(node_idx).mem.acquire(t, dram);
        t = grant + dram + BUS_DATA;
        self.metrics.local_fills += 1;
        t
    }

    /// Access to a CC-NUMA-mapped remote page via the block cache.
    #[allow(clippy::too_many_arguments)]
    fn access_ccnuma(
        &mut self,
        node_idx: usize,
        l1_idx: usize,
        page: VPage,
        block: VBlock,
        write: bool,
        probe: L1Probe,
        peer_had_copy: bool,
        mut t: Cycles,
    ) -> Cycles {
        use rnuma_mem::moesi::Moesi;
        let sram = self.cfg.costs.sram_access;
        let grant = self.node_mut(node_idx).rad.acquire(t, sram);
        t = grant + sram;

        let bc_state = self
            .node(node_idx)
            .block_cache
            .as_ref()
            .expect("CC-NUMA mapping requires a block cache")
            .probe(block);

        match (write, bc_state) {
            // Read hit in the block cache.
            (false, Some(state)) => {
                t += sram + BUS_DATA;
                self.metrics.block_cache_hits += 1;
                let fill = if state.read_write && !peer_had_copy {
                    Moesi::Exclusive
                } else {
                    Moesi::Shared
                };
                self.fill_l1(node_idx, l1_idx, block, false, fill, t);
                t
            }
            // Write hit with write permission.
            (true, Some(state)) if state.read_write => {
                t += sram + BUS_DATA;
                self.metrics.block_cache_hits += 1;
                if let Some(bc) = self.node_mut(node_idx).block_cache.as_mut() {
                    bc.mark_dirty(block);
                }
                self.fill_l1(node_idx, l1_idx, block, true, Moesi::Modified, t);
                t
            }
            // Write to a read-only copy: upgrade at the home. The node
            // still holds the data, so no data reply is needed and no
            // refetch is charged.
            (true, Some(_)) => {
                let holds_copy = true;
                let (done, refetch) = self.fetch_remote(node_idx, page, block, true, holds_copy, t);
                debug_assert!(!refetch);
                if let Some(bc) = self.node_mut(node_idx).block_cache.as_mut() {
                    bc.grant_write(block);
                    bc.mark_dirty(block);
                }
                t = done + BUS_DATA;
                self.fill_l1(node_idx, l1_idx, block, true, Moesi::Modified, t);
                t
            }
            // Miss: fetch from the home node.
            (_, None) => {
                let _ = probe;
                let (done, refetch) = self.fetch_remote(node_idx, page, block, write, false, t);
                t = done + BUS_DATA;
                // Install in the block cache, handling the victim.
                let state = if write {
                    let mut s = BlockState::writable();
                    s.dirty = true;
                    s
                } else {
                    BlockState::read_only()
                };
                let evicted = self
                    .node_mut(node_idx)
                    .block_cache
                    .as_mut()
                    .expect("checked above")
                    .fill(block, state);
                if let Some(ev) = evicted {
                    self.handle_bc_eviction(node_idx, ev, t);
                }
                let fill = if write {
                    Moesi::Modified
                } else {
                    Moesi::Shared
                };
                self.fill_l1(node_idx, l1_idx, block, write, fill, t);

                // The reactive policy: count the refetch and relocate the
                // page once the threshold is crossed.
                if refetch {
                    let crossed = self
                        .node_mut(node_idx)
                        .counters
                        .as_mut()
                        .is_some_and(|c| c.record(page));
                    if crossed {
                        t += self.relocate_page(node_idx, page, t);
                    }
                }
                t
            }
        }
    }

    /// Access to an S-COMA-mapped remote page via the page cache.
    #[allow(clippy::too_many_arguments)]
    fn access_scoma(
        &mut self,
        node_idx: usize,
        _l1_idx: usize,
        page: VPage,
        block: VBlock,
        write: bool,
        _peer_had_copy: bool,
        mut t: Cycles,
    ) -> Cycles {
        let sram = self.cfg.costs.sram_access;
        let dram = self.cfg.costs.dram_access;
        let grant = self.node_mut(node_idx).rad.acquire(t, sram);
        t = grant + sram; // fine-grain tag check

        let tag = self
            .node(node_idx)
            .page_cache
            .as_ref()
            .expect("S-COMA mapping requires a page cache")
            .tag(page, block.index_in_page())
            .expect("mapped page must be resident");

        let hit = if write {
            tag.writable()
        } else {
            tag.readable()
        };
        if hit {
            // Local page-cache fill from DRAM.
            let grant = self.node_mut(node_idx).mem.acquire(t, dram);
            t = grant + dram + BUS_DATA;
            self.metrics.page_cache_hits += 1;
            return t;
        }

        // Miss: inhibit memory, translate LPA->GPA (SRAM), go to home.
        t += sram;
        let holds_copy = tag == AccessTag::ReadOnly && write;
        let (done, _refetch) = self.fetch_remote(node_idx, page, block, write, holds_copy, t);
        t = done + BUS_DATA;
        let new_tag = if write {
            AccessTag::ReadWrite
        } else {
            AccessTag::ReadOnly
        };
        let pc = self
            .node_mut(node_idx)
            .page_cache
            .as_mut()
            .expect("checked above");
        pc.set_tag(page, block.index_in_page(), new_tag);
        pc.record_miss(page); // LRM reorders on remote misses only
        t
    }

    // ------------------------------------------------------------------
    // Remote protocol transactions.
    // ------------------------------------------------------------------

    /// Fetches `block` (or upgrades permission when `holds_copy`) from
    /// its home. Returns the completion time at the requester and the
    /// directory's refetch verdict.
    fn fetch_remote(
        &mut self,
        node_idx: usize,
        page: VPage,
        block: VBlock,
        write: bool,
        holds_copy: bool,
        mut t: Cycles,
    ) -> (Cycles, bool) {
        let node_id = NodeId(node_idx as u8);
        let home = self
            .homes
            .of(page)
            .expect("remote access to a homeless page");
        debug_assert_ne!(home, node_id);
        let home_idx = home.0 as usize;
        self.metrics.record_remote_fetch(page);

        let request = match (write, holds_copy) {
            (true, true) => MsgKind::Upgrade,
            (true, false) => MsgKind::GetExclusive,
            (false, _) => MsgKind::GetShared,
        };
        t = self.net.send(t, node_id, home, request);

        // Home-side service.
        let sram = self.cfg.costs.sram_access;
        let grant = self.node_mut(home_idx).rad.acquire(t, sram);
        t = grant + sram; // controller dispatch
        t += sram; // directory SRAM access

        let (fetch_from, invalidate, refetch) = if write {
            let out = self
                .node_mut(home_idx)
                .dir
                .write(block, node_id, holds_copy);
            (out.fetch_from, out.invalidate, out.refetch)
        } else {
            let out = self.node_mut(home_idx).dir.read(block, node_id);
            (
                out.fetch_from,
                rnuma_mem::addr::NodeMask::EMPTY,
                out.refetch,
            )
        };
        if refetch {
            self.metrics.record_refetch(page);
        }

        // The home's own caches are snooped by the RAD's bus transaction
        // (home CPUs may hold the line dirty).
        let occ = self.cfg.bus_occupancy;
        let bus_grant = self.node_mut(home_idx).bus.acquire(t, occ);
        t = bus_grant + occ;
        let home_req = if write {
            BusRequest::ReadExclusive
        } else {
            BusRequest::Read
        };
        // The RAD is its own bus agent: all of the home's caches snoop.
        bus::snoop_all(&mut self.node_mut(home_idx).l1s, block, home_req);

        if let Some(owner) = fetch_from {
            if owner != home {
                t = if write {
                    self.fetch_invalidate_foreign_owner(home_idx, owner, block, t)
                } else {
                    self.downgrade_foreign_owner(home_idx, owner, block, t)
                };
            }
        }
        if write {
            let invals = invalidate.without(home);
            t = self.invalidate_sharers(home_idx, invals, block, t);
        }

        // Protocol FSM processing and, for data replies, the memory read.
        t += HOME_SERVICE;
        let needs_data = !(write && holds_copy);
        if needs_data {
            let dram = self.cfg.costs.dram_access;
            let grant = self.node_mut(home_idx).mem.acquire(t, dram);
            t = grant + dram;
        }

        let reply = match (write, holds_copy) {
            (true, true) => MsgKind::AckUpgrade,
            (true, false) => MsgKind::DataExclusive,
            (false, _) => MsgKind::DataShared,
        };
        t = self.net.send(t, home, node_id, reply);

        // Requester-side fill processing.
        let grant = self.node_mut(node_idx).rad.acquire(t, sram);
        t = grant + sram;
        (t, refetch)
    }

    /// Home-side helper: pull a dirty block home from a foreign owner and
    /// leave the owner with a clean read-only copy.
    fn downgrade_foreign_owner(
        &mut self,
        home_idx: usize,
        owner: NodeId,
        block: VBlock,
        mut t: Cycles,
    ) -> Cycles {
        let home = NodeId(home_idx as u8);
        let sram = self.cfg.costs.sram_access;
        t = self.net.send(t, home, owner, MsgKind::FetchDowngrade);
        let owner_idx = owner.0 as usize;
        let grant = self.node_mut(owner_idx).rad.acquire(t, sram);
        t = grant + sram;
        self.apply_downgrade_at(owner_idx, block);
        let occ = self.cfg.bus_occupancy;
        let bus_grant = self.node_mut(owner_idx).bus.acquire(t, occ);
        t = bus_grant + occ;
        t = self.net.send(t, owner, home, MsgKind::WriteBack);
        // Home memory update.
        let dram = self.cfg.costs.dram_access;
        let grant = self.node_mut(home_idx).mem.acquire(t, dram);
        grant + dram
    }

    /// Home-side helper: pull a dirty block home from a foreign owner and
    /// invalidate the owner's copy (a writer is taking over).
    fn fetch_invalidate_foreign_owner(
        &mut self,
        home_idx: usize,
        owner: NodeId,
        block: VBlock,
        mut t: Cycles,
    ) -> Cycles {
        let home = NodeId(home_idx as u8);
        let sram = self.cfg.costs.sram_access;
        t = self.net.send(t, home, owner, MsgKind::FetchInvalidate);
        let owner_idx = owner.0 as usize;
        let grant = self.node_mut(owner_idx).rad.acquire(t, sram);
        t = grant + sram;
        self.apply_invalidation_at(owner_idx, block);
        let occ = self.cfg.bus_occupancy;
        let bus_grant = self.node_mut(owner_idx).bus.acquire(t, occ);
        t = bus_grant + occ;
        t = self.net.send(t, owner, home, MsgKind::WriteBack);
        let dram = self.cfg.costs.dram_access;
        let grant = self.node_mut(home_idx).mem.acquire(t, dram);
        grant + dram
    }

    /// Home-side helper: invalidate all foreign read-only copies in
    /// parallel; completion is the latest acknowledgement.
    fn invalidate_sharers(
        &mut self,
        home_idx: usize,
        sharers: rnuma_mem::addr::NodeMask,
        block: VBlock,
        t: Cycles,
    ) -> Cycles {
        if sharers.is_empty() {
            return t;
        }
        let home = NodeId(home_idx as u8);
        let sram = self.cfg.costs.sram_access;
        let mut done = t;
        for s in sharers.iter() {
            let mut ti = self.net.send(t, home, s, MsgKind::Invalidate);
            let s_idx = s.0 as usize;
            let grant = self.node_mut(s_idx).rad.acquire(ti, sram);
            ti = grant + sram;
            self.apply_invalidation_at(s_idx, block);
            ti = self.net.send(ti, s, home, MsgKind::InvalAck);
            done = done.max(ti);
        }
        done
    }

    /// Removes every copy of `block` at `node_idx` (a foreign writer took
    /// exclusive ownership).
    fn apply_invalidation_at(&mut self, node_idx: usize, block: VBlock) {
        let node = self.node_mut(node_idx);
        if let Some(bc) = node.block_cache.as_mut() {
            bc.invalidate(block);
        }
        if let Some(pc) = node.page_cache.as_mut() {
            pc.invalidate_block(block.vpage(), block.index_in_page());
        }
        for l1 in &mut node.l1s {
            l1.snoop_write(block);
        }
    }

    /// Downgrades every copy of `block` at `node_idx` to clean read-only
    /// (a foreign reader forced the dirty data home).
    fn apply_downgrade_at(&mut self, node_idx: usize, block: VBlock) {
        let node = self.node_mut(node_idx);
        if let Some(bc) = node.block_cache.as_mut() {
            bc.downgrade(block);
        }
        if let Some(pc) = node.page_cache.as_mut() {
            pc.downgrade_block(block.vpage(), block.index_in_page());
        }
        for l1 in &mut node.l1s {
            l1.downgrade_to_shared(block);
        }
    }

    /// Handles a block-cache eviction: read-write victims enforce
    /// inclusion over the L1s and write back dirty data to their home;
    /// read-only victims are dropped silently (which is precisely what
    /// makes their next fetch a detectable refetch).
    fn handle_bc_eviction(&mut self, node_idx: usize, ev: BlockEviction, now: Cycles) {
        if !ev.state.read_write {
            return;
        }
        let node_id = NodeId(node_idx as u8);
        let mut dirty = ev.state.dirty;
        for l1 in &mut self.node_mut(node_idx).l1s {
            if let Some(state) = l1.invalidate(ev.block) {
                dirty |= state.is_dirty();
            }
        }
        let home = self
            .homes
            .of(ev.block.vpage())
            .expect("cached block must have a home");
        debug_assert_ne!(home, node_id);
        if dirty {
            self.post_writeback(now, node_id, home, ev.block);
        }
        // A clean read-write victim is dropped silently; the directory
        // still lists this node as owner, so its next request is likewise
        // detected as a refetch.
    }

    // ------------------------------------------------------------------
    // R-NUMA relocation.
    // ------------------------------------------------------------------

    /// Relocates `page` from CC-NUMA to S-COMA mode after the refetch
    /// counter crossed the threshold. Only blocks the node actually holds
    /// (block cache or L1s) are replicated into the new frame; dirty data
    /// stays local under a read-write tag. Returns the OS cost charged to
    /// the interrupted CPU.
    ///
    /// The relocation cost is charged per *distinct* replicated block: a
    /// block resident in both the block cache and an L1 moves into the
    /// frame once and is counted once (earlier revisions double-counted
    /// such blocks in `blocks_flushed` and the cycle charge).
    fn relocate_page(&mut self, node_idx: usize, page: VPage, now: Cycles) -> Cycles {
        // 1. Collect the node's resident blocks of this page into a
        //    fine-grain tag accumulator (128 two-bit cells — no heap).
        //    ReadWrite wins when a block is seen from several sources.
        let mut moved_tags = rnuma_mem::fine_tags::FineTags::new();
        let merge = |tags: &mut rnuma_mem::fine_tags::FineTags, idx: u64, tag: AccessTag| {
            if tags.get(idx) != AccessTag::ReadWrite {
                tags.set(idx, tag);
            }
        };
        let mut flushed = std::mem::take(self.flush_scratch);
        flushed.clear();
        self.node_mut(node_idx)
            .block_cache
            .as_mut()
            .expect("R-NUMA has a block cache")
            .flush_page_into(page, &mut flushed);
        for ev in &flushed {
            let tag = if ev.state.read_write {
                AccessTag::ReadWrite
            } else {
                AccessTag::ReadOnly
            };
            merge(&mut moved_tags, ev.block.index_in_page(), tag);
        }
        *self.flush_scratch = flushed;
        // L1 copies (read-only blocks may exist without a block-cache
        // line) are also replicated; dirty ones keep write permission.
        for l1 in &mut self.node_mut(node_idx).l1s {
            for (b, state) in l1.iter().filter(|(b, _)| b.vpage() == page) {
                let tag = if state.is_dirty() || state.can_write() {
                    AccessTag::ReadWrite
                } else {
                    AccessTag::ReadOnly
                };
                merge(&mut moved_tags, b.index_in_page(), tag);
            }
            l1.invalidate_page(page);
        }

        // 2. Allocate a frame (possibly cleaning an LRM victim).
        let alloc = self
            .node_mut(node_idx)
            .page_cache
            .as_mut()
            .expect("R-NUMA has a page cache")
            .allocate(page);
        let mut cost = Cycles::ZERO;
        if let Some(victim) = alloc.victim {
            let blocks = victim.valid_blocks;
            self.flush_scoma_victim(node_idx, victim, now);
            cost += self.cfg.costs.page_allocation(blocks);
        }

        // 3. Install tags for the replicated blocks and remap the page.
        let moved = moved_tags.count_valid();
        {
            let pc = self
                .node_mut(node_idx)
                .page_cache
                .as_mut()
                .expect("checked above");
            for (idx, tag) in moved_tags.iter_valid() {
                pc.set_tag(page, idx, tag);
            }
        }
        let node = self.node_mut(node_idx);
        node.pt.map(page, Mapping::SComa(alloc.frame));
        node.os.relocations += 1;
        node.os.tlb_shootdowns += 1;
        node.os.blocks_flushed += u64::from(moved);
        cost + self.cfg.costs.page_relocation(moved)
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MachineConfig, Protocol};

    fn machine(p: Protocol) -> Machine {
        Machine::new(MachineConfig::paper_base(p)).unwrap()
    }

    /// CPU ids: node = cpu / 4 on the paper machine.
    const CPU_N0: CpuId = CpuId(0);
    const CPU_N1: CpuId = CpuId(4);
    const CPU_N2: CpuId = CpuId(8);

    #[test]
    fn l1_hit_costs_one_cycle() {
        let mut m = machine(Protocol::paper_ccnuma());
        m.access(CPU_N0, Va(0), false); // fault + local fill
        let lat = m.access(CPU_N0, Va(0), false);
        assert_eq!(lat, Cycles(1));
        assert_eq!(m.metrics().l1_hits, 1);
    }

    #[test]
    fn first_touch_homes_page_locally() {
        let mut m = machine(Protocol::paper_ccnuma());
        let lat = m.access(CPU_N1, Va(0x4000), true);
        // Soft trap + bus + local fill-ish: in the thousands.
        assert!(lat >= Cycles(2000), "got {lat}");
        let metrics = m.metrics();
        assert_eq!(metrics.local_fills, 1);
        assert_eq!(metrics.remote_fetches, 0);
        assert_eq!(metrics.os.page_faults, 1);
    }

    /// Calibration: an uncontended remote read miss (page already mapped,
    /// clean at home) costs exactly Table 2's 376 cycles.
    #[test]
    fn calibration_uncontended_remote_fetch_is_376() {
        let mut m = machine(Protocol::paper_ccnuma());
        let va = Va(0x8000);
        // Home the page at node 0 (CPU 0 touches it first).
        m.access(CPU_N0, va, false);
        // Map it on node 1 with a first access, then measure a *different*
        // block on the now-mapped page (no fault in the path). Block 1
        // conflicts with nothing. The barrier aligns every clock past all
        // in-flight resource occupancy, so the measurement is uncontended.
        m.access(CPU_N1, va, false);
        m.barrier_all();
        let lat = m.access(CPU_N1, Va(0x8000 + 32), false);
        assert_eq!(lat, Cycles(376), "remote fetch calibration broken: {lat}");
    }

    /// Calibration: a local miss (page mapped, home here) costs Table 2's
    /// 69 cycles: 1 (L1) + 8 (bus) + 56 (DRAM) + 4 (data return).
    #[test]
    fn calibration_local_fill_is_69() {
        let mut m = machine(Protocol::paper_ccnuma());
        m.access(CPU_N0, Va(0), false); // fault
        let lat = m.access(CPU_N0, Va(32), false);
        assert_eq!(lat, Cycles(69), "local fill calibration broken: {lat}");
    }

    #[test]
    fn block_cache_hit_is_cheap_sram() {
        let mut m = machine(Protocol::paper_ccnuma());
        let va = Va(0x8000);
        m.access(CPU_N0, va, false); // home at node 0
        m.access(CPU_N1, va, false); // node 1 faults + fetches, fills bc + L1
        m.barrier_all();
        // Another CPU on node 1 misses in its own L1 but hits the bc.
        let lat = m.access(CpuId(5), va, false);
        assert!(lat < Cycles(69), "block-cache hit should beat DRAM: {lat}");
        assert_eq!(m.metrics().block_cache_hits, 1);
    }

    #[test]
    fn scoma_hit_is_a_local_dram_fill() {
        let mut m = machine(Protocol::paper_scoma());
        let va = Va(0x8000);
        m.access(CPU_N0, va, false); // home at node 0
        m.access(CPU_N1, va, false); // node 1: fault + allocate + fetch
        m.barrier_all();
        let lat = m.access(CpuId(5), va, false); // peer CPU: page-cache hit
        assert_eq!(m.metrics().page_cache_hits, 1);
        assert!(lat > Cycles(69) && lat < Cycles(120), "got {lat}");
    }

    #[test]
    fn read_only_refetch_detected_in_ccnuma() {
        let mut m = machine(Protocol::CcNuma {
            block_cache_bytes: Some(128), // 4 lines: conflicts guaranteed
        });
        let a = Va(0x8000); // page 8, block 0
        m.access(CPU_N0, a, false); // home at node 0
        m.access(CPU_N1, a, false); // node 1 fetches block 1024 (set 0)
                                    // Conflicting remote block on the same page: 4 lines => block 4
                                    // of the page maps to set 0 as well.
        let b = Va(0x8000 + 4 * 32);
        m.access(CPU_N1, b, false); // evicts block 0 from bc
                                    // Note: block 0 may still sit in the CPU's L1, so force an L1
                                    // conflict too by using another CPU of node 1.
        let lat = m.access(CpuId(5), a, false);
        let metrics = m.metrics();
        assert_eq!(metrics.refetches, 1, "directory must flag the refetch");
        assert!(lat >= Cycles(300));
    }

    #[test]
    fn dirty_writeback_enables_rw_refetch() {
        let mut m = machine(Protocol::CcNuma {
            block_cache_bytes: Some(128),
        });
        let a = Va(0x8000);
        m.access(CPU_N0, a, false); // home node 0
        m.access(CPU_N1, a, true); // node 1 writes (GetX)
                                   // Conflict it out (same bc set): dirty writeback to home.
        m.access(CPU_N1, Va(0x8000 + 4 * 32), false);
        // Re-fetch by node 1: was_owner => refetch.
        m.access(CpuId(5), a, false);
        assert_eq!(m.metrics().refetches, 1);
    }

    #[test]
    fn coherence_misses_are_not_refetches() {
        let mut m = machine(Protocol::paper_ccnuma());
        let va = Va(0x8000);
        m.access(CPU_N0, va, false); // home node 0
        m.access(CPU_N1, va, false); // node 1 reads
        m.access(CPU_N2, va, true); // node 2 writes: invalidates node 1
        m.access(CPU_N1, va, false); // node 1 re-reads: coherence miss
        assert_eq!(m.metrics().refetches, 0);
    }

    #[test]
    fn rnuma_relocates_after_threshold() {
        let mut m = Machine::new(MachineConfig::paper_base(Protocol::RNuma {
            block_cache_bytes: 128,
            page_cache_bytes: 320 * 1024,
            threshold: 2,
        }))
        .unwrap();
        let page_base = 0x8000u64;
        m.access(CPU_N0, Va(page_base), false); // home node 0
                                                // Node 1: refetch the same block repeatedly by conflicting it out
                                                // of the 4-line block cache with block+4, alternating CPUs so the
                                                // L1s do not satisfy the re-reads.
        for i in 0..6 {
            let cpu = if i % 2 == 0 { CpuId(4) } else { CpuId(5) };
            m.access(cpu, Va(page_base), false);
            m.access(cpu, Va(page_base + 4 * 32), false);
        }
        let metrics = m.metrics();
        assert!(
            metrics.relocation_interrupts >= 1,
            "threshold 2 must relocate: {metrics}"
        );
        assert_eq!(metrics.os.relocations, metrics.relocation_interrupts);
        // After relocation the page is S-COMA-mapped: further accesses hit
        // the page cache locally.
        let before = m.metrics().page_cache_hits;
        m.access(CpuId(6), Va(page_base), false);
        assert!(m.metrics().page_cache_hits > before);
    }

    #[test]
    fn scoma_replacement_occurs_when_page_cache_full() {
        let mut m = Machine::new(MachineConfig::paper_base(Protocol::SComa {
            page_cache_bytes: 2 * 4096, // two frames
        }))
        .unwrap();
        // Home three pages at node 0.
        for p in 0..3u64 {
            m.access(CPU_N0, Va(0x10_0000 + p * 4096), true);
        }
        // Node 1 touches all three: the third allocation evicts the LRM.
        for p in 0..3u64 {
            m.access(CPU_N1, Va(0x10_0000 + p * 4096), false);
        }
        let metrics = m.metrics();
        assert_eq!(metrics.os.page_replacements, 1);
        assert_eq!(metrics.os.scoma_allocations, 3);
    }

    #[test]
    fn ideal_machine_never_refetches_capacity() {
        let mut m = machine(Protocol::ideal());
        let va = Va(0x8000);
        m.access(CPU_N0, va, false);
        for i in 0..200u64 {
            m.access(CPU_N1, Va(0x8000 + i * 32 * 4), false);
        }
        // Re-read everything: all block-cache hits, no refetches.
        for i in 0..200u64 {
            m.access(CpuId(5), Va(0x8000 + i * 32 * 4), false);
        }
        assert_eq!(m.metrics().refetches, 0);
    }

    #[test]
    fn mru_translation_serves_repeated_page_references() {
        let mut m = machine(Protocol::paper_ccnuma());
        // Stream over one page: after the first L1 miss resolves the
        // translation, subsequent misses on the page hit the MRU entry.
        for i in 0..32u64 {
            m.access(CPU_N0, Va(i * 32), false);
        }
        let metrics = m.metrics();
        assert!(
            metrics.mru_translation_hits >= 30,
            "expected MRU hits on a page stream, got {}",
            metrics.mru_translation_hits
        );
    }

    #[test]
    fn mru_translation_invalidated_by_relocation() {
        // The rnuma_relocates_after_threshold scenario exercises a
        // map() between references; this asserts the stale MRU entry is
        // not served after the page table changes.
        let mut m = Machine::new(MachineConfig::paper_base(Protocol::RNuma {
            block_cache_bytes: 128,
            page_cache_bytes: 320 * 1024,
            threshold: 2,
        }))
        .unwrap();
        let page_base = 0x8000u64;
        m.access(CPU_N0, Va(page_base), false);
        for i in 0..6 {
            let cpu = if i % 2 == 0 { CpuId(4) } else { CpuId(5) };
            m.access(cpu, Va(page_base), false);
            m.access(cpu, Va(page_base + 4 * 32), false);
        }
        assert!(m.metrics().relocation_interrupts >= 1);
        // Post-relocation accesses must see the S-COMA mapping (page
        // cache hits), not the stale CC-NUMA MRU entry.
        let before = m.metrics().page_cache_hits;
        m.access(CpuId(6), Va(page_base), false);
        assert!(m.metrics().page_cache_hits > before);
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let mut m = machine(Protocol::paper_ccnuma());
        m.access(CPU_N0, Va(0), false);
        m.access(CPU_N1, Va(0x4000), false);
        let before = m.clock(CPU_N0).max(m.clock(CPU_N1));
        m.barrier_all();
        let expected = before + m.config().barrier_cost;
        assert_eq!(m.clock(CPU_N0), expected);
        assert_eq!(m.clock(CpuId(31)), expected);
    }

    #[test]
    fn think_time_advances_only_one_cpu() {
        let mut m = machine(Protocol::paper_ccnuma());
        m.advance(CPU_N0, Cycles(100));
        assert_eq!(m.clock(CPU_N0), Cycles(100));
        assert_eq!(m.clock(CPU_N1), Cycles::ZERO);
    }

    #[test]
    fn remote_write_invalidates_all_sharers() {
        let mut m = machine(Protocol::paper_ccnuma());
        let va = Va(0x8000);
        m.access(CPU_N0, va, false); // home
        m.access(CPU_N1, va, false); // sharer
        m.access(CPU_N2, va, false); // sharer
        m.access(CpuId(12), va, true); // node 3 writes
                                       // Node 1 and 2 re-read: coherence misses (not refetches), and
                                       // node 3's dirty copy must be pulled home.
        m.access(CPU_N1, va, false);
        assert_eq!(m.metrics().refetches, 0);
        // The write-invalidate messages were actually sent.
        assert!(m.metrics().net_messages > 4);
    }
}
