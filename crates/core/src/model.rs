//! The paper's analytical worst-case model (Section 3.2, EQ 1–3).
//!
//! The model compares per-page overheads against an ideal machine with
//! an infinite block cache. With `C_refetch` the cost of refetching a
//! block, `C_allocate` the cost of allocating/replacing a page,
//! `C_relocate` the cost of relocating a page, and `T` the relocation
//! threshold:
//!
//! * EQ 1: `O_RNUMA / O_CCNUMA = (T·Cref + Crel + Call) / (T·Cref)`
//! * EQ 2: `O_RNUMA / O_SCOMA  = (T·Cref + Crel + Call) / Call`
//! * EQ 3: at `T* = Call / Cref` both ratios equal
//!   `2 + Crel / Call`,
//!
//! so R-NUMA is never more than two to three times worse than the
//! better of CC-NUMA and S-COMA: the bound is ~2 for aggressive
//! implementations (`Crel ≪ Call`) and ~3 for conservative ones
//! (`Crel ≈ Call`).

use rnuma_os::CostModel;
use std::fmt;

/// The three per-page costs of the competitive model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelParams {
    /// Cost of refetching one block from home (`C_refetch`).
    pub c_refetch: f64,
    /// Cost of allocating and later replacing a page (`C_allocate`).
    pub c_allocate: f64,
    /// Cost of relocating a page from CC-NUMA to S-COMA (`C_relocate`).
    pub c_relocate: f64,
}

impl ModelParams {
    /// Builds model parameters with explicit costs.
    ///
    /// # Panics
    ///
    /// Panics unless all three costs are positive and finite.
    #[must_use]
    pub fn new(c_refetch: f64, c_allocate: f64, c_relocate: f64) -> ModelParams {
        for (name, v) in [
            ("c_refetch", c_refetch),
            ("c_allocate", c_allocate),
            ("c_relocate", c_relocate),
        ] {
            assert!(
                v.is_finite() && v > 0.0,
                "{name} must be positive and finite, got {v}"
            );
        }
        ModelParams {
            c_refetch,
            c_allocate,
            c_relocate,
        }
    }

    /// Derives the parameters from a Table-2 cost model, assuming a
    /// typical half-populated page (64 blocks) for the page operations.
    #[must_use]
    pub fn from_costs(costs: &CostModel) -> ModelParams {
        let typical_blocks = 64;
        ModelParams::new(
            costs.remote_fetch.0 as f64,
            costs.page_allocation(typical_blocks).0 as f64,
            costs.page_relocation(typical_blocks).0 as f64,
        )
    }

    /// EQ 1: R-NUMA's worst-case overhead relative to CC-NUMA at
    /// threshold `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not positive.
    #[must_use]
    pub fn rnuma_vs_ccnuma(&self, t: f64) -> f64 {
        assert!(t > 0.0, "threshold must be positive");
        (t * self.c_refetch + self.c_relocate + self.c_allocate) / (t * self.c_refetch)
    }

    /// EQ 2: R-NUMA's worst-case overhead relative to S-COMA at
    /// threshold `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not positive.
    #[must_use]
    pub fn rnuma_vs_scoma(&self, t: f64) -> f64 {
        assert!(t > 0.0, "threshold must be positive");
        (t * self.c_refetch + self.c_relocate + self.c_allocate) / self.c_allocate
    }

    /// EQ 3 (threshold): the `T*` minimizing the worst case,
    /// `C_allocate / C_refetch`. Note it is independent of the
    /// relocation cost.
    #[must_use]
    pub fn optimal_threshold(&self) -> f64 {
        self.c_allocate / self.c_refetch
    }

    /// EQ 3 (bound): the worst-case performance ratio at `T*`,
    /// `2 + C_relocate / C_allocate`.
    #[must_use]
    pub fn worst_case_bound(&self) -> f64 {
        2.0 + self.c_relocate / self.c_allocate
    }

    /// The worst case at an arbitrary threshold: R-NUMA's competitive
    /// ratio is the *max* of EQ 1 and EQ 2 (the adversary picks the
    /// reference pattern).
    ///
    /// # Panics
    ///
    /// Panics if `t` is not positive.
    #[must_use]
    pub fn worst_case_at(&self, t: f64) -> f64 {
        self.rnuma_vs_ccnuma(t).max(self.rnuma_vs_scoma(t))
    }
}

impl fmt::Display for ModelParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cref={:.0} Call={:.0} Crel={:.0} => T*={:.1}, bound={:.2}",
            self.c_refetch,
            self.c_allocate,
            self.c_relocate,
            self.optimal_threshold(),
            self.worst_case_bound()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams::from_costs(&CostModel::base())
    }

    #[test]
    fn equations_intersect_at_optimal_threshold() {
        let p = params();
        let t = p.optimal_threshold();
        let eq1 = p.rnuma_vs_ccnuma(t);
        let eq2 = p.rnuma_vs_scoma(t);
        assert!((eq1 - eq2).abs() < 1e-9, "EQ1={eq1} EQ2={eq2}");
        assert!((eq1 - p.worst_case_bound()).abs() < 1e-9);
    }

    #[test]
    fn bound_is_between_two_and_three_for_paper_costs() {
        // "Crelocate will be approximately equal to Callocate, and the
        // worst-case performance will be close to 3" for conservative
        // implementations; our cost model has Crel == Call.
        let p = params();
        let bound = p.worst_case_bound();
        assert!((2.9..=3.0).contains(&bound), "bound {bound}");
    }

    #[test]
    fn aggressive_relocation_approaches_two() {
        let p = ModelParams::new(376.0, 7000.0, 70.0);
        assert!((p.worst_case_bound() - 2.01).abs() < 0.1);
    }

    #[test]
    fn paper_threshold_is_near_optimal_for_table_2_costs() {
        // T* = Call/Cref ≈ 7224/376 ≈ 19; the paper runs T=64 for its
        // base systems and finds T=16 better for several apps (Fig. 8) —
        // consistent with this estimate.
        let p = params();
        let t = p.optimal_threshold();
        assert!((10.0..=32.0).contains(&t), "T* = {t}");
    }

    #[test]
    fn eq1_decreases_and_eq2_increases_in_t() {
        let p = params();
        let (lo, hi) = (4.0, 4096.0);
        assert!(p.rnuma_vs_ccnuma(lo) > p.rnuma_vs_ccnuma(hi));
        assert!(p.rnuma_vs_scoma(lo) < p.rnuma_vs_scoma(hi));
    }

    #[test]
    fn optimal_threshold_independent_of_relocation_cost() {
        let a = ModelParams::new(376.0, 7000.0, 100.0);
        let b = ModelParams::new(376.0, 7000.0, 7000.0);
        assert_eq!(a.optimal_threshold(), b.optimal_threshold());
        assert!(a.worst_case_bound() < b.worst_case_bound());
    }

    #[test]
    fn worst_case_at_is_minimized_near_optimal() {
        let p = params();
        let t_star = p.optimal_threshold();
        let at_star = p.worst_case_at(t_star);
        for t in [t_star / 4.0, t_star / 2.0, t_star * 2.0, t_star * 4.0] {
            assert!(p.worst_case_at(t) >= at_star - 1e-9, "t={t}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cost_panics() {
        let _ = ModelParams::new(0.0, 1.0, 1.0);
    }

    #[test]
    fn display_mentions_bound() {
        assert!(params().to_string().contains("bound="));
    }
}
