//! Columnar, delta-encoded storage for captured [`TraceOp`] streams.
//!
//! This module is the storage layer under
//! [`TraceStore`](crate::experiment::TraceStore). A captured stream is
//! held not as an array of 24-byte `TraceOp` structs but as *runs* —
//! the maximal same-CPU spans [`scan_runs`](crate::shard::scan_runs)
//! already defines for the batched replay kernels — each reduced to a
//! varint-coded entry in a per-segment *run stream* plus a *profile*:
//! a byte blob holding the run's op kinds as a packed 2-bit column and
//! its payloads as varints, with access addresses stored as zigzag
//! deltas from the previous address in the run (and run bases as
//! deltas from the same CPU's previous run in the segment). R-NUMA
//! reference streams are dominated by small-stride runs inside a CPU's
//! working set, so the typical access costs one or two bytes instead
//! of twenty-four.
//!
//! Profiles — not whole segments — are the interning unit: two runs
//! with the same kinds and the same *relative* address pattern share
//! one blob regardless of their base addresses (the base lives in the
//! `RunRec`). That is what makes dedup actually fire: every CPU
//! walking its own partition of an array with the same stride maps to
//! the same profile.
//!
//! Profile bytes can optionally spill to a temporary file
//! (`RNUMA_TRACE_SPILL`), bounding capture memory to the run/segment
//! tables plus one in-flight chunk; replay then reads blobs back
//! positionally (`read_at`), verifying each against its recorded
//! content hash so a torn or truncated spill file fails loudly instead
//! of replaying garbage.

use crate::shard::{scan_runs, CpuRun, TraceOp};
use rnuma_mem::addr::{CpuId, Va};
use rnuma_mem::fxmap::FxMap64;
use rnuma_sim::Cycles;

/// Ops per stream segment: the decode/replay granularity (and the
/// streaming-capture flush unit). Long enough that segment dispatch is
/// noise, short enough that a decode scratch buffer stays around a
/// hundred kilobytes.
pub(crate) const SEG_OPS: usize = 4096;

// ---------------------------------------------------------------------
// Varint / zigzag primitives (LEB128, little-endian base-128).
// ---------------------------------------------------------------------

pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        // A u64 is at most ten varint bytes; more is corruption.
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---------------------------------------------------------------------
// Run records and the profile codec.
// ---------------------------------------------------------------------

/// Per-op kind codes inside a profile's packed 2-bit column.
const KIND_READ: u8 = 0;
const KIND_WRITE: u8 = 1;
const KIND_THINK: u8 = 2;

/// Encodes one same-CPU run into `blob` (cleared first). Layout:
/// `ceil(len / 4)` bytes of 2-bit kind codes (op `i` in byte `i / 4` at
/// bit `2 * (i % 4)`), then one varint per op — a zigzag-encoded
/// address delta for accesses (relative to the previous access,
/// starting from the base, so the first access encodes delta 0), a
/// plain duration for thinks.
///
/// Returns `Some((base, last))` — the run's first and last access
/// addresses — or `None` for an all-think run. The base is *not* part
/// of the blob: two runs with the same relative pattern at different
/// bases encode to the same blob, which is what makes profile interning
/// fire.
///
/// # Panics
///
/// Panics if `ops` contains a global op — callers feed maximal same-CPU
/// runs from [`scan_runs`].
pub(crate) fn encode_run(ops: &[TraceOp], blob: &mut Vec<u8>) -> Option<(Va, Va)> {
    blob.clear();
    let base = ops.iter().find_map(|op| match op {
        TraceOp::Access { va, .. } => Some(*va),
        _ => None,
    })?;
    blob.resize(ops.len().div_ceil(4), 0);
    let mut prev = base;
    for (i, op) in ops.iter().enumerate() {
        let kind = match *op {
            TraceOp::Access { va, write, .. } => {
                put_varint(blob, zigzag(va.0.wrapping_sub(prev.0) as i64));
                prev = va;
                if write {
                    KIND_WRITE
                } else {
                    KIND_READ
                }
            }
            TraceOp::Think { dur, .. } => {
                put_varint(blob, dur.0);
                KIND_THINK
            }
            TraceOp::Barrier | TraceOp::ArmFirstTouch => {
                panic!("global ops never enter a same-CPU run")
            }
        };
        blob[i / 4] |= kind << (2 * (i % 4));
    }
    Some((base, prev))
}

/// Encodes an all-think run (no accesses, so no base address) into
/// `blob` — the degenerate case [`encode_run`] returns `None` for.
fn encode_think_run(ops: &[TraceOp], blob: &mut Vec<u8>) {
    blob.clear();
    blob.resize(ops.len().div_ceil(4), 0);
    for (i, op) in ops.iter().enumerate() {
        match *op {
            TraceOp::Think { dur, .. } => put_varint(blob, dur.0),
            _ => unreachable!("think-only runs by construction"),
        }
        blob[i / 4] |= KIND_THINK << (2 * (i % 4));
    }
}

/// Decodes one run back into `TraceOp`s, appending `len` ops to `out`
/// and returning the last access address (`None` for all-think runs).
///
/// # Panics
///
/// Panics with a "trace profile corrupt" diagnostic when the blob does
/// not decode to exactly `len` ops — a truncated spill file or a store
/// bug, either of which must fail loudly rather than replay garbage.
pub(crate) fn decode_run(
    cpu: CpuId,
    len: u32,
    base: Va,
    blob: &[u8],
    out: &mut Vec<TraceOp>,
) -> Option<Va> {
    let len = len as usize;
    let kind_bytes = len.div_ceil(4);
    let mut pos = kind_bytes;
    let mut prev = base;
    let mut last = None;
    for i in 0..len {
        let kind = blob
            .get(i / 4)
            .map(|b| (b >> (2 * (i % 4))) & 0b11)
            .unwrap_or_else(|| corrupt("kind column short"));
        let payload = get_varint(blob, &mut pos).unwrap_or_else(|| corrupt("payload short"));
        out.push(match kind {
            KIND_THINK => TraceOp::Think {
                cpu,
                dur: Cycles(payload),
            },
            kind => {
                let va = Va(prev.0.wrapping_add(unzigzag(payload) as u64));
                prev = va;
                last = Some(va);
                TraceOp::Access {
                    cpu,
                    va,
                    write: kind == KIND_WRITE,
                }
            }
        });
    }
    if pos != blob.len() {
        corrupt("payload overlong");
    }
    last
}

#[cold]
fn corrupt(what: &str) -> ! {
    panic!("trace profile corrupt ({what}): truncated spill file or store bug")
}

// ---------------------------------------------------------------------
// The profile arena: interned blobs, resident or spilled to disk.
// ---------------------------------------------------------------------

/// Where a profile's bytes live: `(offset, len)` into the arena's byte
/// store, plus the content hash interning keyed it under (re-verified
/// on every spilled read).
#[derive(Clone, Copy, Debug)]
struct ProfileSpan {
    offset: u64,
    len: u32,
    hash: u64,
}

/// The arena's byte store: an in-memory vector, or an anonymous
/// append-only temp file when `RNUMA_TRACE_SPILL` is active.
#[derive(Debug)]
enum ProfileBytes {
    Resident(Vec<u8>),
    Spilled {
        file: std::fs::File,
        path: std::path::PathBuf,
        len: u64,
    },
}

impl Drop for ProfileBytes {
    fn drop(&mut self) {
        if let ProfileBytes::Spilled { path, .. } = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Deterministic content hash of a profile blob (FxHash-style multiply
/// mixing; collisions are verified byte-for-byte, never trusted).
fn blob_hash(blob: &[u8]) -> u64 {
    const MIX: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut h = 0x6c62_272e_07bb_0142u64 ^ (blob.len() as u64);
    for chunk in blob.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = (h ^ u64::from_le_bytes(word))
            .wrapping_mul(MIX)
            .rotate_left(23);
    }
    h
}

/// Interned storage for profile blobs.
#[derive(Debug)]
pub(crate) struct ProfileArena {
    spans: Vec<ProfileSpan>,
    bytes: ProfileBytes,
    /// Blob hash → profile id (first-wins; collisions verified).
    dedup: FxMap64<u32>,
    /// Bytes actually stored (resident or spilled), after dedup.
    stored_bytes: u64,
    /// Bytes all runs reference — what storage would cost without dedup.
    referenced_bytes: u64,
}

impl ProfileArena {
    pub(crate) fn new(spill: Option<&std::path::Path>) -> ProfileArena {
        let bytes = match spill {
            Some(dir) => match spill_file(dir) {
                Some((file, path)) => ProfileBytes::Spilled { file, path, len: 0 },
                None => ProfileBytes::Resident(Vec::new()),
            },
            None => ProfileBytes::Resident(Vec::new()),
        };
        ProfileArena {
            spans: Vec::new(),
            bytes,
            dedup: FxMap64::new(),
            stored_bytes: 0,
            referenced_bytes: 0,
        }
    }

    /// Interns `blob`, returning its profile id. With `interning` off
    /// every call stores a fresh copy (the capture-pressure degraded
    /// mode); replay results are identical either way.
    pub(crate) fn intern(&mut self, blob: &[u8], interning: bool, scratch: &mut Vec<u8>) -> u32 {
        self.referenced_bytes += blob.len() as u64;
        let hash = blob_hash(blob);
        if interning {
            // First-wins on hash collisions: a mismatching occupant just
            // costs this blob its dedup, never its correctness.
            if let Some(&id) = self.dedup.get(hash) {
                if self.read(id, scratch) == blob {
                    return id;
                }
            } else {
                let id = self.push(blob, hash);
                self.dedup.insert(hash, id);
                return id;
            }
        }
        self.push(blob, hash)
    }

    fn push(&mut self, blob: &[u8], hash: u64) -> u32 {
        let id = u32::try_from(self.spans.len()).expect("profile count overflow");
        let len = u32::try_from(blob.len()).expect("profile blob overflow");
        let offset = match &mut self.bytes {
            ProfileBytes::Resident(v) => {
                let offset = v.len() as u64;
                v.extend_from_slice(blob);
                offset
            }
            ProfileBytes::Spilled { file, path, len } => {
                use std::io::Write as _;
                let offset = *len;
                file.write_all(blob).unwrap_or_else(|e| {
                    panic!("cannot append to trace spill file {}: {e}", path.display())
                });
                *len += blob.len() as u64;
                offset
            }
        };
        self.spans.push(ProfileSpan { offset, len, hash });
        self.stored_bytes += blob.len() as u64;
        id
    }

    /// The bytes of profile `id` — borrowed from the arena when
    /// resident, read into `scratch` (and hash-verified) when spilled.
    ///
    /// # Panics
    ///
    /// Panics when a spilled blob cannot be read back intact: a torn or
    /// truncated spill file must fail loudly, not replay garbage.
    pub(crate) fn read<'a>(&'a self, id: u32, scratch: &'a mut Vec<u8>) -> &'a [u8] {
        let span = self.spans[id as usize];
        match &self.bytes {
            ProfileBytes::Resident(v) => {
                &v[span.offset as usize..span.offset as usize + span.len as usize]
            }
            ProfileBytes::Spilled { file, path, .. } => {
                use std::os::unix::fs::FileExt as _;
                scratch.clear();
                scratch.resize(span.len as usize, 0);
                file.read_exact_at(scratch, span.offset)
                    .unwrap_or_else(|e| {
                        panic!(
                            "trace spill file {} truncated or unreadable at {}+{}: {e}",
                            path.display(),
                            span.offset,
                            span.len
                        )
                    });
                assert_eq!(
                    blob_hash(scratch),
                    span.hash,
                    "trace spill file {} corrupt: profile {id} fails its content hash",
                    path.display()
                );
                scratch
            }
        }
    }

    /// Forgets the dedup table (capture-pressure fault: the table
    /// "failed to grow", so interning degrades to verbatim storage).
    pub(crate) fn drop_dedup(&mut self) {
        self.dedup = FxMap64::new();
    }

    pub(crate) fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    pub(crate) fn referenced_bytes(&self) -> u64 {
        self.referenced_bytes
    }

    /// Stored bytes living on disk rather than in memory.
    pub(crate) fn spilled_bytes(&self) -> u64 {
        match &self.bytes {
            ProfileBytes::Resident(_) => 0,
            ProfileBytes::Spilled { len, .. } => *len,
        }
    }

    /// Heap bytes of the span/dedup tables (the resident cost that
    /// remains even when blob bytes are spilled).
    pub(crate) fn table_bytes(&self) -> u64 {
        (self.spans.len() * std::mem::size_of::<ProfileSpan>()) as u64
    }

    /// The spill file's path, when spilling (tests truncate it to drill
    /// the torn-file diagnostics).
    pub(crate) fn spill_path(&self) -> Option<&std::path::Path> {
        match &self.bytes {
            ProfileBytes::Resident(_) => None,
            ProfileBytes::Spilled { path, .. } => Some(path),
        }
    }
}

/// Removes stale spill files left under `dir` by processes that died
/// without unwinding through [`ProfileBytes::drop`] — a `SweepAbort`
/// fault, a `panic = "abort"` build, or a kill. Spill names embed the
/// owning pid (`rnuma-trace-spill-<pid>-<counter>.bin`), so a file is
/// stale exactly when its pid is not ours and no longer has a live
/// `/proc/<pid>` entry; live pids (including our own other arenas) are
/// never touched. Runs on every spilling-arena construction, keeping
/// the reap races-free without a registry: the worst case is two
/// processes both observing a dead pid and one `remove_file` losing,
/// which is harmless.
fn reap_stale_spills(dir: &std::path::Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return; // unusable dir is spill_file's problem to warn about
    };
    let me = std::process::id();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(pid) = name
            .to_str()
            .and_then(|n| n.strip_prefix("rnuma-trace-spill-"))
            .and_then(|n| n.strip_suffix(".bin"))
            .and_then(|n| n.split_once('-'))
            .filter(|(_, counter)| counter.bytes().all(|b| b.is_ascii_digit()))
            .and_then(|(pid, _)| pid.parse::<u32>().ok())
        else {
            continue; // not one of ours; never delete foreign files
        };
        if pid != me && !std::path::Path::new(&format!("/proc/{pid}")).exists() {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Creates a unique spill file under `dir`. `None` (with a warning,
/// once per process) when the directory is unusable — a misconfigured
/// `RNUMA_TRACE_SPILL` must degrade to resident storage, not abort.
/// Stale spill files from dead processes are reaped first (see
/// [`reap_stale_spills`]).
fn spill_file(dir: &std::path::Path) -> Option<(std::fs::File, std::path::PathBuf)> {
    reap_stale_spills(dir);
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let name = format!(
        "rnuma-trace-spill-{}-{}.bin",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    );
    let path = dir.join(name);
    match std::fs::File::options()
        .read(true)
        .append(true)
        .create_new(true)
        .open(&path)
    {
        Ok(file) => Some((file, path)),
        Err(e) => {
            static WARN: std::sync::Once = std::sync::Once::new();
            WARN.call_once(|| {
                eprintln!(
                    "warning: cannot create RNUMA_TRACE_SPILL file {}: {e}; \
                     trace stays resident",
                    path.display()
                );
            });
            None
        }
    }
}

/// The spill directory requested by `RNUMA_TRACE_SPILL`: unset, empty,
/// or `0` means off; `1` means the system temp directory; anything else
/// is the directory itself.
pub(crate) fn spill_dir_from_env() -> Option<std::path::PathBuf> {
    let v = crate::experiment::env_raw("RNUMA_TRACE_SPILL")?;
    let v = v.trim();
    match v {
        "" | "0" => None,
        "1" => Some(std::env::temp_dir()),
        dir => Some(std::path::PathBuf::from(dir)),
    }
}

// ---------------------------------------------------------------------
// Encoded segments: the run stream.
// ---------------------------------------------------------------------

/// Run-stream tags for the two global ops; a CPU run is stored as
/// `varint(cpu + 2)` followed by its length, base delta, and profile
/// id.
const TAG_BARRIER: u64 = 0;
const TAG_ARM_FIRST_TOUCH: u64 = 1;
const TAG_CPU_BASE: u64 = 2;

/// Per-CPU last-access-address references threaded through one
/// segment's run stream: a CPU run's base address is stored as a
/// zigzag delta from where that CPU's previous run in the *same
/// segment* left off (its partition walk usually continues there, so
/// the delta is a byte or two). References reset at segment
/// boundaries, keeping every segment independently decodable.
#[derive(Debug, Default)]
pub(crate) struct CpuRefs(Vec<u64>);

impl CpuRefs {
    fn reset(&mut self) {
        self.0.clear();
    }

    fn get(&self, cpu: CpuId) -> u64 {
        self.0.get(cpu.0 as usize).copied().unwrap_or(0)
    }

    fn set(&mut self, cpu: CpuId, va: u64) {
        let idx = cpu.0 as usize;
        if self.0.len() <= idx {
            self.0.resize(idx + 1, 0);
        }
        self.0[idx] = va;
    }
}

/// One stored segment: its byte range in the run stream, its op count,
/// and its content hash (computed from the raw ops at encode time;
/// folded into `TraceStore::content_hash` for journal keying).
#[derive(Clone, Copy, Debug)]
pub(crate) struct SegMeta {
    pub(crate) run_start: u64,
    pub(crate) run_len: u32,
    pub(crate) ops: u32,
    pub(crate) hash: u64,
}

/// Encodes one segment of ops into the arena + run stream, returning
/// its [`SegMeta`] (the caller appends it to the segment table). The
/// run stream is itself varint-coded — a short-run-heavy segment (CPUs
/// interleaving every item) costs ~5 bytes per run, not a fixed
/// record.
#[allow(clippy::too_many_arguments)] // the store's scratch buffers are threaded in individually
pub(crate) fn encode_segment(
    chunk: &[TraceOp],
    hash: u64,
    arena: &mut ProfileArena,
    runs: &mut Vec<u8>,
    interning: bool,
    blob_scratch: &mut Vec<u8>,
    read_scratch: &mut Vec<u8>,
    refs: &mut CpuRefs,
) -> SegMeta {
    let run_start = runs.len() as u64;
    refs.reset();
    scan_runs(chunk, |issuer, range| match issuer {
        Some(cpu) => {
            let run_ops = &chunk[range.clone()];
            let delta = match encode_run(run_ops, blob_scratch) {
                Some((base, last)) => {
                    let delta = zigzag(base.0.wrapping_sub(refs.get(cpu)) as i64);
                    refs.set(cpu, last.0);
                    delta
                }
                None => {
                    encode_think_run(run_ops, blob_scratch);
                    0
                }
            };
            let profile = arena.intern(blob_scratch, interning, read_scratch);
            put_varint(runs, TAG_CPU_BASE + u64::from(cpu.0));
            put_varint(runs, range.len() as u64);
            put_varint(runs, delta);
            put_varint(runs, u64::from(profile));
        }
        None => put_varint(
            runs,
            match chunk[range.start] {
                TraceOp::Barrier => TAG_BARRIER,
                TraceOp::ArmFirstTouch => TAG_ARM_FIRST_TOUCH,
                _ => unreachable!("scan_runs only yields global ops without an issuer"),
            },
        ),
    });
    SegMeta {
        run_start,
        run_len: u32::try_from(runs.len() as u64 - run_start).expect("segment run stream overflow"),
        ops: chunk.len() as u32,
        hash,
    }
}

/// Decodes one segment back into ops and a [`CpuRun`] table (both
/// cleared first) — exactly the batched form
/// [`Machine::replay_segment`](crate::machine::Machine::replay_segment)
/// consumes.
///
/// # Panics
///
/// Panics with a "trace profile corrupt" diagnostic on a malformed run
/// stream or profile blob (a truncated spill file or a store bug).
pub(crate) fn decode_segment(
    seg: SegMeta,
    arena: &ProfileArena,
    run_stream: &[u8],
    ops: &mut Vec<TraceOp>,
    runs: &mut Vec<CpuRun>,
    read_scratch: &mut Vec<u8>,
    refs: &mut CpuRefs,
) {
    ops.clear();
    runs.clear();
    refs.reset();
    let start = usize::try_from(seg.run_start).expect("run stream offset fits usize");
    let bytes = &run_stream[start..start + seg.run_len as usize];
    let mut pos = 0;
    while pos < bytes.len() {
        let tag = get_varint(bytes, &mut pos).unwrap_or_else(|| corrupt("run tag short"));
        match tag {
            TAG_BARRIER => {
                ops.push(TraceOp::Barrier);
                runs.push(CpuRun::Global);
            }
            TAG_ARM_FIRST_TOUCH => {
                ops.push(TraceOp::ArmFirstTouch);
                runs.push(CpuRun::Global);
            }
            tag => {
                let cpu = u16::try_from(tag - TAG_CPU_BASE)
                    .map(CpuId)
                    .unwrap_or_else(|_| corrupt("cpu id overflow"));
                let len = get_varint(bytes, &mut pos)
                    .and_then(|v| u32::try_from(v).ok())
                    .unwrap_or_else(|| corrupt("run length short"));
                let delta =
                    get_varint(bytes, &mut pos).unwrap_or_else(|| corrupt("base delta short"));
                let profile = get_varint(bytes, &mut pos)
                    .and_then(|v| u32::try_from(v).ok())
                    .unwrap_or_else(|| corrupt("profile id short"));
                let base = Va(refs.get(cpu).wrapping_add(unzigzag(delta) as u64));
                let blob = arena.read(profile, read_scratch);
                if let Some(last) = decode_run(cpu, len, base, blob, ops) {
                    refs.set(cpu, last.0);
                }
                runs.push(CpuRun::Cpu { cpu, len });
            }
        }
    }
    debug_assert_eq!(ops.len(), seg.ops as usize, "segment decode length drift");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(cpu: u16, va: u64, write: bool) -> TraceOp {
        TraceOp::Access {
            cpu: CpuId(cpu),
            va: Va(va),
            write,
        }
    }

    fn think(cpu: u16, dur: u64) -> TraceOp {
        TraceOp::Think {
            cpu: CpuId(cpu),
            dur: Cycles(dur),
        }
    }

    fn round_trip(ops: &[TraceOp]) -> Vec<TraceOp> {
        let cpu = match ops[0] {
            TraceOp::Access { cpu, .. } | TraceOp::Think { cpu, .. } => cpu,
            _ => panic!("same-CPU runs only"),
        };
        let mut blob = Vec::new();
        let base = match encode_run(ops, &mut blob) {
            Some((base, _)) => base,
            None => {
                encode_think_run(ops, &mut blob);
                Va(0)
            }
        };
        let mut out = Vec::new();
        decode_run(cpu, ops.len() as u32, base, &blob, &mut out);
        out
    }

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
        assert_eq!(get_varint(&[], &mut 0), None);
        assert_eq!(get_varint(&[0x80], &mut 0), None, "unterminated varint");
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn run_codec_round_trips_mixed_ops_and_sign_flips() {
        let ops = vec![
            access(3, 0x10_0000, false),
            access(3, 0x10_0008, true),
            think(3, 57),
            access(3, 0x0f_ff00, false), // negative stride
            access(3, u64::MAX, true),   // wraparound delta
            access(3, 0, false),
            think(3, 0),
        ];
        assert_eq!(round_trip(&ops), ops);
    }

    #[test]
    fn run_codec_handles_single_op_and_all_think_runs() {
        let one = vec![access(0, 0x2000, true)];
        assert_eq!(round_trip(&one), one);
        let thinks = vec![think(5, 1), think(5, 1 << 40), think(5, 0)];
        assert_eq!(round_trip(&thinks), thinks);
    }

    #[test]
    fn identical_relative_patterns_share_one_profile() {
        let mut arena = ProfileArena::new(None);
        let mut blob = Vec::new();
        let mut scratch = Vec::new();
        // Two walks with the same stride pattern at different bases.
        let a: Vec<TraceOp> = (0..64).map(|i| access(0, 0x1000 + i * 8, false)).collect();
        let b: Vec<TraceOp> = (0..64).map(|i| access(0, 0x9000 + i * 8, false)).collect();
        encode_run(&a, &mut blob).unwrap();
        let pa = arena.intern(&blob, true, &mut scratch);
        encode_run(&b, &mut blob).unwrap();
        let pb = arena.intern(&blob, true, &mut scratch);
        assert_eq!(pa, pb, "same relative pattern must intern to one blob");
        assert!(arena.stored_bytes() < arena.referenced_bytes());
        // A different stride is a different profile.
        let c: Vec<TraceOp> = (0..64).map(|i| access(0, 0x1000 + i * 16, false)).collect();
        encode_run(&c, &mut blob).unwrap();
        assert_ne!(arena.intern(&blob, true, &mut scratch), pa);
    }

    #[test]
    fn segment_round_trips_interleaved_cpus_and_global_ops() {
        // CPUs alternating per item (unit-length runs), global ops in
        // the middle, a think-only run, and a second segment continuing
        // each CPU's walk — exercising the per-CPU base references and
        // their reset at the segment boundary.
        let mut seg_a = vec![TraceOp::ArmFirstTouch];
        for i in 0..32u64 {
            seg_a.push(access(0, 0x1_0000 + i * 8, i % 3 == 0));
            seg_a.push(access(1, 0x9_0000 + i * 8, false));
        }
        seg_a.push(TraceOp::Barrier);
        seg_a.push(think(2, 77));
        let seg_b: Vec<TraceOp> = (32..48u64)
            .flat_map(|i| {
                [
                    access(0, 0x1_0000 + i * 8, false),
                    access(1, 0x9_0000 + i * 8, true),
                ]
            })
            .collect();

        let mut arena = ProfileArena::new(None);
        let mut runs = Vec::new();
        let (mut blob, mut read, mut refs) = (Vec::new(), Vec::new(), CpuRefs::default());
        let metas: Vec<SegMeta> = [&seg_a, &seg_b]
            .iter()
            .map(|seg| {
                encode_segment(
                    seg, 0, &mut arena, &mut runs, true, &mut blob, &mut read, &mut refs,
                )
            })
            .collect();

        let (mut ops, mut cpu_runs) = (Vec::new(), Vec::new());
        for (meta, expect) in metas.iter().zip([&seg_a, &seg_b]) {
            decode_segment(
                *meta,
                &arena,
                &runs,
                &mut ops,
                &mut cpu_runs,
                &mut read,
                &mut refs,
            );
            assert_eq!(ops.as_slice(), expect.as_slice());
            let run_total: u64 = cpu_runs
                .iter()
                .map(|r| match r {
                    CpuRun::Cpu { len, .. } => u64::from(*len),
                    CpuRun::Global => 1,
                })
                .sum();
            assert_eq!(run_total, expect.len() as u64, "runs must tile the segment");
        }
    }

    /// A spilling arena reaps stale files left by dead processes but
    /// never touches live-pid spills, foreign files, or its own.
    #[test]
    fn stale_spills_are_reaped_on_arena_construction() {
        let dir = std::env::temp_dir().join(format!("rnuma-reap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Pid far above any real pid_max, guaranteed dead.
        let stale = dir.join("rnuma-trace-spill-999999999-0.bin");
        // Our own pid: alive by definition, must survive.
        let own = dir.join(format!("rnuma-trace-spill-{}-7.bin", std::process::id()));
        // Not a spill name: never touched.
        let foreign = dir.join("rnuma-trace-spill-notapid-0.bin");
        for p in [&stale, &own, &foreign] {
            std::fs::write(p, b"x").unwrap();
        }
        let arena = ProfileArena::new(Some(&dir));
        assert!(
            arena.spill_path().is_some(),
            "arena must spill under {dir:?}"
        );
        assert!(!stale.exists(), "dead-pid spill must be reaped");
        assert!(own.exists(), "live-pid spill must survive");
        assert!(foreign.exists(), "non-spill names must survive");
        drop(arena);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_blob_fails_loudly() {
        let ops = vec![access(1, 0x4000, false), access(1, 0x4100, true)];
        let mut blob = Vec::new();
        let (base, _) = encode_run(&ops, &mut blob).unwrap();
        blob.truncate(blob.len() - 1);
        let err = std::panic::catch_unwind(move || {
            let mut out = Vec::new();
            decode_run(CpuId(1), 2, base, &blob, &mut out);
        })
        .expect_err("truncated blob must panic");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("trace profile corrupt"), "got: {msg}");
    }
}
