//! The S-COMA page cache: main-memory frames for remote pages.
//!
//! A region of each node's main memory is set aside to cache remote pages
//! at page granularity (Section 2.2). The cache is fully associative —
//! the virtual-memory system provides the "tags" — and is replaced with
//! the paper's *Least Recently Missed* (LRM) policy: the frame list is
//! reordered on remote misses rather than on every reference
//! (Section 4), approximating LRU while being implementable with per-page
//! miss counters sampled by the OS.

use crate::addr::{FrameId, VPage, PAGE_BYTES};
use crate::fine_tags::{AccessTag, FineTags};
use crate::fxmap::FxMap;

/// Victim-selection policy for a full page cache.
///
/// The paper uses Least Recently Missed and notes that "page
/// replacement policies are beyond the scope of this paper"; the
/// alternatives here support the ablation study in
/// `rnuma-bench --bin ablation_replacement`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Evict the page whose last remote miss is oldest (the paper's
    /// policy: approximates LRU but only reorders on misses).
    #[default]
    LeastRecentlyMissed,
    /// Evict the page allocated earliest (ignores reuse entirely).
    Fifo,
    /// Evict a pseudo-random resident page (deterministic xorshift).
    Random,
}

/// A page selected for eviction, with the flush work it implies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageVictim {
    /// The page being evicted.
    pub vpage: VPage,
    /// Frame it occupied (reused by the incoming page).
    pub frame: FrameId,
    /// Blocks present in the frame (each must be invalidated; read-write
    /// ones flushed home).
    pub valid_blocks: u32,
    /// Blocks with write permission, flushed back to the home node.
    pub dirty_blocks: u32,
    /// Snapshot of the frame's fine-grain tags at eviction, so the OS can
    /// issue the per-block write-backs the flush implies.
    pub tags: FineTags,
}

/// One frame of the page cache with its fine-grain tags and stamps.
#[derive(Clone, Debug)]
struct Frame {
    vpage: Option<VPage>,
    tags: FineTags,
    /// Monotonic stamp of the last remote miss serviced into this frame.
    last_miss: u64,
    /// Monotonic stamp of the frame's allocation (FIFO policy).
    allocated: u64,
}

/// A node's S-COMA page cache.
///
/// # Example
///
/// ```
/// use rnuma_mem::addr::VPage;
/// use rnuma_mem::page_cache::PageCache;
///
/// // The paper's base configuration: 320 KB = 80 frames.
/// let mut pc = PageCache::new(320 * 1024);
/// assert_eq!(pc.num_frames(), 80);
/// let frame = pc.allocate(VPage(3)).frame;
/// assert_eq!(pc.lookup(VPage(3)), Some(frame));
/// ```
#[derive(Clone, Debug)]
pub struct PageCache {
    frames: Vec<Frame>,
    by_page: FxMap<VPage, FrameId>,
    free: Vec<FrameId>,
    miss_clock: u64,
    policy: ReplacementPolicy,
    rng_state: u64,
}

/// Result of allocating a frame for an incoming page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageAlloc {
    /// Frame granted to the incoming page.
    pub frame: FrameId,
    /// The page that had to be evicted to free the frame, if any.
    pub victim: Option<PageVictim>,
}

impl PageCache {
    /// Creates a page cache of `bytes` capacity (4-KB frames).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` holds no complete frame.
    #[must_use]
    pub fn new(bytes: u64) -> PageCache {
        PageCache::with_policy(bytes, ReplacementPolicy::LeastRecentlyMissed)
    }

    /// Creates a page cache with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` holds no complete frame.
    #[must_use]
    pub fn with_policy(bytes: u64, policy: ReplacementPolicy) -> PageCache {
        let n = bytes / PAGE_BYTES;
        assert!(n > 0, "page cache smaller than one 4-KB frame");
        PageCache {
            frames: (0..n)
                .map(|_| Frame {
                    vpage: None,
                    tags: FineTags::new(),
                    last_miss: 0,
                    allocated: 0,
                })
                .collect(),
            by_page: FxMap::new(),
            free: (0..n as u32).rev().map(FrameId).collect(),
            miss_clock: 0,
            policy,
            rng_state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The configured replacement policy.
    #[must_use]
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Number of frames.
    #[must_use]
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Number of frames holding a page.
    #[must_use]
    pub fn occupied(&self) -> usize {
        self.frames.len() - self.free.len()
    }

    /// The frame holding `vpage`, if cached. This is the auxiliary
    /// SRAM translation lookup (GPA → LPA direction).
    #[must_use]
    pub fn lookup(&self, vpage: VPage) -> Option<FrameId> {
        self.by_page.get(vpage).copied()
    }

    /// The page held by `frame`, if any (LPA → GPA direction).
    ///
    /// # Panics
    ///
    /// Panics if `frame` is out of range.
    #[must_use]
    pub fn page_of(&self, frame: FrameId) -> Option<VPage> {
        self.frames[frame.0 as usize].vpage
    }

    /// Allocates a frame for `vpage`, evicting the least-recently-missed
    /// resident page if the cache is full.
    ///
    /// The caller (the OS model) is responsible for acting on the returned
    /// victim: flushing its dirty blocks home, unmapping it, and shooting
    /// down TLBs — the simulator charges those costs there.
    ///
    /// # Panics
    ///
    /// Panics if `vpage` is already resident (callers must check
    /// [`PageCache::lookup`] first).
    pub fn allocate(&mut self, vpage: VPage) -> PageAlloc {
        assert!(
            !self.by_page.contains_key(vpage),
            "page {vpage} already resident"
        );
        self.miss_clock += 1;
        let (frame, victim) = match self.free.pop() {
            Some(f) => (f, None),
            None => {
                let f = self.select_victim();
                let victim = self.evict(f);
                (f, Some(victim))
            }
        };
        let slot = &mut self.frames[frame.0 as usize];
        slot.vpage = Some(vpage);
        slot.tags = FineTags::new();
        slot.last_miss = self.miss_clock;
        slot.allocated = self.miss_clock;
        self.by_page.insert(vpage, frame);
        PageAlloc { frame, victim }
    }

    /// Records a remote miss serviced into `vpage`'s frame, refreshing its
    /// LRM position. No-op if the page is not resident.
    pub fn record_miss(&mut self, vpage: VPage) {
        if let Some(&frame) = self.by_page.get(vpage) {
            self.miss_clock += 1;
            self.frames[frame.0 as usize].last_miss = self.miss_clock;
        }
    }

    /// Read access-control tag for a block of a resident page.
    #[must_use]
    pub fn tag(&self, vpage: VPage, block_index: u64) -> Option<AccessTag> {
        self.by_page
            .get(vpage)
            .map(|f| self.frames[f.0 as usize].tags.get(block_index))
    }

    /// Sets the access-control tag for a block of a resident page.
    ///
    /// # Panics
    ///
    /// Panics if the page is not resident.
    pub fn set_tag(&mut self, vpage: VPage, block_index: u64, tag: AccessTag) {
        let frame = self.by_page[&vpage];
        self.frames[frame.0 as usize].tags.set(block_index, tag);
    }

    /// Invalidates one block of a resident page (e.g., a remote node took
    /// exclusive ownership). No-op if the page is not resident.
    pub fn invalidate_block(&mut self, vpage: VPage, block_index: u64) {
        if let Some(&frame) = self.by_page.get(vpage) {
            self.frames[frame.0 as usize]
                .tags
                .set(block_index, AccessTag::Invalid);
        }
    }

    /// Downgrades one block of a resident page to read-only (a remote
    /// reader forced a flush of our dirty copy). No-op when absent.
    pub fn downgrade_block(&mut self, vpage: VPage, block_index: u64) {
        if let Some(&frame) = self.by_page.get(vpage) {
            let tags = &mut self.frames[frame.0 as usize].tags;
            if tags.get(block_index) == AccessTag::ReadWrite {
                tags.set(block_index, AccessTag::ReadOnly);
            }
        }
    }

    /// Removes `vpage` from the cache (OS-initiated release rather than
    /// LRM replacement), returning its flush work.
    pub fn release(&mut self, vpage: VPage) -> Option<PageVictim> {
        let frame = self.by_page.get(vpage).copied()?;
        let victim = self.evict(frame);
        self.free.push(frame);
        Some(victim)
    }

    fn evict(&mut self, frame: FrameId) -> PageVictim {
        let slot = &mut self.frames[frame.0 as usize];
        let vpage = slot.vpage.take().expect("evicting an empty frame");
        let tags = slot.tags;
        slot.tags.clear();
        self.by_page.remove(vpage);
        PageVictim {
            vpage,
            frame,
            valid_blocks: tags.count_valid(),
            dirty_blocks: tags.count_read_write(),
            tags,
        }
    }

    fn select_victim(&mut self) -> FrameId {
        match self.policy {
            ReplacementPolicy::LeastRecentlyMissed => self.min_by(|f| f.last_miss),
            ReplacementPolicy::Fifo => self.min_by(|f| f.allocated),
            ReplacementPolicy::Random => {
                // xorshift64*: deterministic, independent of `rand`.
                self.rng_state ^= self.rng_state << 13;
                self.rng_state ^= self.rng_state >> 7;
                self.rng_state ^= self.rng_state << 17;
                let occupied: Vec<u32> = self
                    .frames
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| f.vpage.is_some())
                    .map(|(i, _)| i as u32)
                    .collect();
                assert!(!occupied.is_empty(), "victim from an empty cache");
                FrameId(occupied[(self.rng_state % occupied.len() as u64) as usize])
            }
        }
    }

    fn min_by<K: Ord>(&self, key: impl Fn(&Frame) -> K) -> FrameId {
        let (idx, _) = self
            .frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.vpage.is_some())
            .min_by_key(|(_, f)| key(f))
            .expect("victim from an empty cache");
        FrameId(idx as u32)
    }

    /// Iterates over resident pages with their frames.
    pub fn iter(&self) -> impl Iterator<Item = (VPage, FrameId)> + '_ {
        self.by_page.iter().map(|(p, &f)| (p, f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes() {
        assert_eq!(PageCache::new(320 * 1024).num_frames(), 80);
        assert_eq!(PageCache::new(40 * 1024 * 1024).num_frames(), 10240);
    }

    #[test]
    fn allocate_until_full_then_lrm_evicts() {
        let mut pc = PageCache::new(3 * PAGE_BYTES);
        assert!(pc.allocate(VPage(1)).victim.is_none());
        assert!(pc.allocate(VPage(2)).victim.is_none());
        assert!(pc.allocate(VPage(3)).victim.is_none());
        assert_eq!(pc.occupied(), 3);
        // Page 1 is least recently missed; refresh 2 and 3.
        pc.record_miss(VPage(2));
        pc.record_miss(VPage(3));
        let alloc = pc.allocate(VPage(4));
        let victim = alloc.victim.expect("cache full");
        assert_eq!(victim.vpage, VPage(1));
        assert_eq!(pc.lookup(VPage(1)), None);
        assert_eq!(pc.lookup(VPage(4)), Some(victim.frame));
    }

    #[test]
    fn lrm_reorders_on_miss_not_on_tag_reads() {
        let mut pc = PageCache::new(2 * PAGE_BYTES);
        pc.allocate(VPage(1));
        pc.allocate(VPage(2));
        // Touch page 1's tags (a hit path) — must NOT refresh LRM.
        pc.set_tag(VPage(1), 0, AccessTag::ReadOnly);
        let _ = pc.tag(VPage(1), 0);
        // Page 1 remains LRM victim because only allocation stamped it.
        let victim = pc.allocate(VPage(3)).victim.unwrap();
        assert_eq!(victim.vpage, VPage(1));
    }

    #[test]
    fn victim_reports_flush_work() {
        let mut pc = PageCache::new(PAGE_BYTES);
        pc.allocate(VPage(5));
        pc.set_tag(VPage(5), 0, AccessTag::ReadOnly);
        pc.set_tag(VPage(5), 1, AccessTag::ReadWrite);
        pc.set_tag(VPage(5), 2, AccessTag::ReadWrite);
        let victim = pc.allocate(VPage(6)).victim.unwrap();
        assert_eq!(victim.valid_blocks, 3);
        assert_eq!(victim.dirty_blocks, 2);
        // The reused frame starts with clean tags.
        assert_eq!(pc.tag(VPage(6), 1), Some(AccessTag::Invalid));
    }

    #[test]
    fn tags_follow_the_page_not_the_frame() {
        let mut pc = PageCache::new(2 * PAGE_BYTES);
        pc.allocate(VPage(1));
        pc.set_tag(VPage(1), 7, AccessTag::ReadWrite);
        assert_eq!(pc.tag(VPage(1), 7), Some(AccessTag::ReadWrite));
        assert_eq!(pc.tag(VPage(2), 7), None, "page 2 not resident");
    }

    #[test]
    fn invalidate_and_downgrade_blocks() {
        let mut pc = PageCache::new(PAGE_BYTES);
        pc.allocate(VPage(1));
        pc.set_tag(VPage(1), 0, AccessTag::ReadWrite);
        pc.downgrade_block(VPage(1), 0);
        assert_eq!(pc.tag(VPage(1), 0), Some(AccessTag::ReadOnly));
        // Downgrade of RO/invalid is a no-op.
        pc.downgrade_block(VPage(1), 1);
        assert_eq!(pc.tag(VPage(1), 1), Some(AccessTag::Invalid));
        pc.invalidate_block(VPage(1), 0);
        assert_eq!(pc.tag(VPage(1), 0), Some(AccessTag::Invalid));
        // Non-resident pages are ignored.
        pc.invalidate_block(VPage(9), 0);
    }

    #[test]
    fn release_frees_the_frame() {
        let mut pc = PageCache::new(PAGE_BYTES);
        pc.allocate(VPage(1));
        pc.set_tag(VPage(1), 0, AccessTag::ReadWrite);
        let v = pc.release(VPage(1)).unwrap();
        assert_eq!(v.dirty_blocks, 1);
        assert_eq!(pc.occupied(), 0);
        assert!(pc.release(VPage(1)).is_none());
        // Frame is reusable without eviction.
        assert!(pc.allocate(VPage(2)).victim.is_none());
    }

    #[test]
    fn page_of_round_trips() {
        let mut pc = PageCache::new(2 * PAGE_BYTES);
        let f = pc.allocate(VPage(8)).frame;
        assert_eq!(pc.page_of(f), Some(VPage(8)));
        let (p, f2) = pc.iter().next().unwrap();
        assert_eq!((p, f2), (VPage(8), f));
    }

    #[test]
    fn fifo_evicts_oldest_allocation() {
        let mut pc = PageCache::with_policy(2 * PAGE_BYTES, ReplacementPolicy::Fifo);
        pc.allocate(VPage(1));
        pc.allocate(VPage(2));
        // Refreshing page 1's miss stamp must NOT save it under FIFO.
        pc.record_miss(VPage(1));
        let victim = pc.allocate(VPage(3)).victim.unwrap();
        assert_eq!(victim.vpage, VPage(1));
        assert_eq!(pc.policy(), ReplacementPolicy::Fifo);
    }

    #[test]
    fn random_policy_is_deterministic_and_valid() {
        let run = || {
            let mut pc = PageCache::with_policy(4 * PAGE_BYTES, ReplacementPolicy::Random);
            for p in 0..4 {
                pc.allocate(VPage(p));
            }
            let mut victims = Vec::new();
            for p in 10..20u64 {
                let v = pc.allocate(VPage(p)).victim.unwrap();
                victims.push(v.vpage.0);
                assert!(pc.lookup(v.vpage).is_none());
                assert_eq!(pc.occupied(), 4);
            }
            victims
        };
        assert_eq!(run(), run(), "xorshift stream must replay");
    }

    #[test]
    fn default_policy_is_lrm() {
        assert_eq!(
            PageCache::new(PAGE_BYTES).policy(),
            ReplacementPolicy::LeastRecentlyMissed
        );
        assert_eq!(
            ReplacementPolicy::default(),
            ReplacementPolicy::LeastRecentlyMissed
        );
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_allocate_panics() {
        let mut pc = PageCache::new(2 * PAGE_BYTES);
        pc.allocate(VPage(1));
        pc.allocate(VPage(1));
    }
}
