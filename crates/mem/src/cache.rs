//! Generic block-granularity cache structures.
//!
//! Two shapes are needed by the paper's machines:
//!
//! * [`DirectCache`] — a direct-mapped, tag-indexed cache, used for the
//!   8-KB processor caches and the CC-NUMA/R-NUMA block caches (both are
//!   direct-mapped in the paper, Sections 4 and 5).
//! * [`InfiniteCache`] — an unbounded cache used for the "ideal CC-NUMA
//!   with an infinite block cache" baseline all figures normalize to.

use crate::addr::VBlock;
use crate::fxmap::FxMap64;

/// One resident line: the block it holds plus caller-defined state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Line<S> {
    /// Which block the line holds.
    pub block: VBlock,
    /// Protocol state attached by the caller (MOESI, dirty bits, ...).
    pub state: S,
}

/// The effect of inserting into a cache set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Insert<S> {
    /// The line was placed in an empty slot.
    Placed,
    /// The line replaced `evicted`, which the caller must now handle
    /// (write back if dirty, maintain inclusion, ...).
    Evicted(Line<S>),
}

/// A direct-mapped cache over [`VBlock`] addresses with per-line state.
///
/// The cache tracks state only — the simulator never materializes data
/// contents, exactly like the protocol-level mode of the simulator used
/// in the paper.
///
/// # Example
///
/// ```
/// use rnuma_mem::addr::VBlock;
/// use rnuma_mem::cache::{DirectCache, Insert};
///
/// // A 128-byte block cache holds 4 lines of 32 bytes.
/// let mut bc: DirectCache<bool> = DirectCache::with_capacity_bytes(128);
/// assert_eq!(bc.num_lines(), 4);
/// bc.insert(VBlock(0), false);
/// // Block 4 maps to the same set as block 0 and evicts it.
/// match bc.insert(VBlock(4), false) {
///     Insert::Evicted(line) => assert_eq!(line.block, VBlock(0)),
///     Insert::Placed => unreachable!(),
/// }
/// ```
#[derive(Clone, Debug)]
pub struct DirectCache<S> {
    lines: Vec<Option<Line<S>>>,
}

impl<S> DirectCache<S> {
    /// Creates a cache with `num_lines` direct-mapped slots.
    ///
    /// # Panics
    ///
    /// Panics if `num_lines` is zero.
    #[must_use]
    pub fn new(num_lines: usize) -> DirectCache<S> {
        assert!(num_lines > 0, "cache must have at least one line");
        DirectCache {
            lines: (0..num_lines).map(|_| None).collect(),
        }
    }

    /// Creates a cache sized in bytes of 32-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is smaller than one line.
    #[must_use]
    pub fn with_capacity_bytes(bytes: u64) -> DirectCache<S> {
        let lines = bytes / crate::addr::BLOCK_BYTES;
        assert!(lines > 0, "cache smaller than one 32-byte line");
        DirectCache::new(lines as usize)
    }

    /// Number of line slots.
    #[must_use]
    pub fn num_lines(&self) -> usize {
        self.lines.len()
    }

    /// Number of slots currently holding a block.
    #[must_use]
    pub fn occupied(&self) -> usize {
        self.lines.iter().filter(|l| l.is_some()).count()
    }

    fn index(&self, block: VBlock) -> usize {
        (block.0 % self.lines.len() as u64) as usize
    }

    /// The resident line for `block`, if present.
    #[must_use]
    pub fn get(&self, block: VBlock) -> Option<&Line<S>> {
        let idx = self.index(block);
        self.lines[idx].as_ref().filter(|l| l.block == block)
    }

    /// Mutable access to the resident line for `block`, if present.
    pub fn get_mut(&mut self, block: VBlock) -> Option<&mut Line<S>> {
        let idx = self.index(block);
        self.lines[idx].as_mut().filter(|l| l.block == block)
    }

    /// `true` when `block` is resident.
    #[must_use]
    pub fn contains(&self, block: VBlock) -> bool {
        self.get(block).is_some()
    }

    /// Installs `block` with `state`, returning what happened to the slot.
    ///
    /// Re-inserting a resident block overwrites its state without an
    /// eviction.
    pub fn insert(&mut self, block: VBlock, state: S) -> Insert<S> {
        let idx = self.index(block);
        match self.lines[idx].take() {
            Some(old) if old.block == block => {
                self.lines[idx] = Some(Line { block, state });
                Insert::Placed
            }
            Some(old) => {
                self.lines[idx] = Some(Line { block, state });
                Insert::Evicted(old)
            }
            None => {
                self.lines[idx] = Some(Line { block, state });
                Insert::Placed
            }
        }
    }

    /// Removes `block` if resident, returning its line.
    pub fn remove(&mut self, block: VBlock) -> Option<Line<S>> {
        let idx = self.index(block);
        if self.lines[idx].as_ref().is_some_and(|l| l.block == block) {
            self.lines[idx].take()
        } else {
            None
        }
    }

    /// Iterates over resident lines in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &Line<S>> {
        self.lines.iter().flatten()
    }

    /// Removes every resident line satisfying `pred`, returning them.
    ///
    /// Used for page-granularity flushes (all blocks of a page leave the
    /// cache when the OS unmaps the page). Hot callers should prefer
    /// [`DirectCache::drain_matching_into`] with a reused buffer.
    pub fn drain_matching<F>(&mut self, pred: F) -> Vec<Line<S>>
    where
        F: FnMut(&Line<S>) -> bool,
    {
        let mut out = Vec::new();
        self.drain_matching_into(pred, &mut out);
        out
    }

    /// Like [`DirectCache::drain_matching`], but appends the drained
    /// lines to a caller-provided buffer instead of allocating one.
    pub fn drain_matching_into<F>(&mut self, pred: F, out: &mut Vec<Line<S>>)
    where
        F: FnMut(&Line<S>) -> bool,
    {
        self.drain_matching_with(pred, |line| out.push(line));
    }

    /// Allocation-free drain: each removed line is handed to `sink`.
    pub fn drain_matching_with<F, G>(&mut self, mut pred: F, mut sink: G)
    where
        F: FnMut(&Line<S>) -> bool,
        G: FnMut(Line<S>),
    {
        for slot in &mut self.lines {
            if slot.as_ref().is_some_and(&mut pred) {
                sink(slot.take().expect("slot checked non-empty"));
            }
        }
    }

    /// Empties the cache.
    pub fn clear(&mut self) {
        for slot in &mut self.lines {
            *slot = None;
        }
    }
}

/// An unbounded cache for the paper's "infinite block cache" baseline.
///
/// Never evicts; otherwise mirrors the [`DirectCache`] interface the
/// simulator uses.
#[derive(Clone, Debug, Default)]
pub struct InfiniteCache<S> {
    lines: FxMap64<S>,
}

impl<S> InfiniteCache<S> {
    /// Creates an empty infinite cache.
    #[must_use]
    pub fn new() -> InfiniteCache<S> {
        InfiniteCache {
            lines: FxMap64::new(),
        }
    }

    /// State of `block` if resident.
    #[must_use]
    pub fn get(&self, block: VBlock) -> Option<&S> {
        self.lines.get(block.0)
    }

    /// Mutable state of `block` if resident.
    pub fn get_mut(&mut self, block: VBlock) -> Option<&mut S> {
        self.lines.get_mut(block.0)
    }

    /// `true` when `block` is resident.
    #[must_use]
    pub fn contains(&self, block: VBlock) -> bool {
        self.lines.contains_key(block.0)
    }

    /// Installs or overwrites `block`. Never evicts.
    pub fn insert(&mut self, block: VBlock, state: S) {
        self.lines.insert(block.0, state);
    }

    /// Removes `block`, returning its state.
    pub fn remove(&mut self, block: VBlock) -> Option<S> {
        self.lines.remove(block.0)
    }

    /// Number of resident blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// `true` when nothing is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_paper_configurations() {
        // 8-KB L1 = 256 lines, 32-KB block cache = 1024 lines,
        // 1-KB = 32 lines, 128-B = 4 lines.
        assert_eq!(
            DirectCache::<()>::with_capacity_bytes(8 * 1024).num_lines(),
            256
        );
        assert_eq!(
            DirectCache::<()>::with_capacity_bytes(32 * 1024).num_lines(),
            1024
        );
        assert_eq!(DirectCache::<()>::with_capacity_bytes(1024).num_lines(), 32);
        assert_eq!(DirectCache::<()>::with_capacity_bytes(128).num_lines(), 4);
    }

    #[test]
    fn hit_miss_and_conflict() {
        let mut c: DirectCache<u8> = DirectCache::new(4);
        assert!(!c.contains(VBlock(1)));
        assert_eq!(c.insert(VBlock(1), 10), Insert::Placed);
        assert_eq!(c.get(VBlock(1)).unwrap().state, 10);
        // Same set, different tag.
        match c.insert(VBlock(5), 20) {
            Insert::Evicted(l) => {
                assert_eq!(l.block, VBlock(1));
                assert_eq!(l.state, 10);
            }
            Insert::Placed => panic!("expected conflict eviction"),
        }
        assert!(!c.contains(VBlock(1)));
        assert!(c.contains(VBlock(5)));
    }

    #[test]
    fn reinsert_updates_state_without_eviction() {
        let mut c: DirectCache<u8> = DirectCache::new(4);
        c.insert(VBlock(2), 1);
        assert_eq!(c.insert(VBlock(2), 9), Insert::Placed);
        assert_eq!(c.get(VBlock(2)).unwrap().state, 9);
        assert_eq!(c.occupied(), 1);
    }

    #[test]
    fn remove_only_removes_matching_tag() {
        let mut c: DirectCache<u8> = DirectCache::new(4);
        c.insert(VBlock(3), 1);
        assert!(c.remove(VBlock(7)).is_none(), "same set, wrong tag");
        assert!(c.contains(VBlock(3)));
        let l = c.remove(VBlock(3)).unwrap();
        assert_eq!(l.state, 1);
        assert_eq!(c.occupied(), 0);
    }

    #[test]
    fn get_mut_allows_state_transitions() {
        let mut c: DirectCache<u8> = DirectCache::new(2);
        c.insert(VBlock(0), 0);
        c.get_mut(VBlock(0)).unwrap().state = 42;
        assert_eq!(c.get(VBlock(0)).unwrap().state, 42);
        assert!(c.get_mut(VBlock(2)).is_none());
    }

    #[test]
    fn drain_matching_extracts_page_blocks() {
        use crate::addr::{VPage, BLOCKS_PER_PAGE};
        let mut c: DirectCache<u8> = DirectCache::new(512);
        let page = VPage(1);
        for b in page.blocks().take(10) {
            c.insert(b, 0);
        }
        // Maps to set 0, clear of page 1's blocks (sets 128..138).
        c.insert(VPage(4).block(0), 0);
        let drained = c.drain_matching(|l| l.block.vpage() == page);
        assert_eq!(drained.len(), 10);
        assert_eq!(c.occupied(), 1);
        assert!(drained.iter().all(|l| l.block.vpage() == page));
        let _ = BLOCKS_PER_PAGE;
    }

    #[test]
    fn clear_empties() {
        let mut c: DirectCache<u8> = DirectCache::new(8);
        for i in 0..8 {
            c.insert(VBlock(i), 0);
        }
        assert_eq!(c.occupied(), 8);
        c.clear();
        assert_eq!(c.occupied(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_lines_panics() {
        let _ = DirectCache::<()>::new(0);
    }

    #[test]
    fn infinite_cache_never_evicts() {
        let mut c: InfiniteCache<u8> = InfiniteCache::new();
        for i in 0..10_000u64 {
            c.insert(VBlock(i), (i % 251) as u8);
        }
        assert_eq!(c.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(*c.get(VBlock(i)).unwrap(), (i % 251) as u8);
        }
        assert_eq!(c.remove(VBlock(3)), Some(3));
        assert!(!c.contains(VBlock(3)));
        assert!(!c.is_empty());
    }
}
