//! Addresses, identifiers, and geometry constants.
//!
//! The machine exposes one global shared *virtual* address space to the
//! applications ([`Va`]). Coherence operates on 32-byte blocks ([`VBlock`],
//! the MBus line size) and allocation on 4-KB pages ([`VPage`]). Global
//! physical addresses in the real hardware encode the home node in their
//! high bits; in the simulator the OS keeps that association in a side
//! table, so a `(VPage, home NodeId)` pair plays the role of the paper's
//! GPA and an S-COMA page-cache [`FrameId`] plays the role of the LPA.

use std::fmt;

/// Bytes per coherence block (MBus line).
pub const BLOCK_BYTES: u64 = 32;
/// Bytes per virtual-memory page.
pub const PAGE_BYTES: u64 = 4096;
/// Coherence blocks per page.
pub const BLOCKS_PER_PAGE: u64 = PAGE_BYTES / BLOCK_BYTES;

/// A virtual byte address in the global shared address space.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Va(pub u64);

/// A virtual page number (`Va >> 12`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VPage(pub u64);

/// A virtual block number (`Va >> 5`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VBlock(pub u64);

/// A node (SMP workstation) identifier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u8);

/// A global CPU identifier (`node * cpus_per_node + local`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CpuId(pub u16);

/// A frame index within a node's S-COMA page cache (the paper's LPA page).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(pub u32);

impl Va {
    /// The page containing this address.
    #[must_use]
    pub fn vpage(self) -> VPage {
        VPage(self.0 / PAGE_BYTES)
    }

    /// The block containing this address.
    #[must_use]
    pub fn vblock(self) -> VBlock {
        VBlock(self.0 / BLOCK_BYTES)
    }

    /// Byte offset within the containing block.
    #[must_use]
    pub fn offset_in_block(self) -> u64 {
        self.0 % BLOCK_BYTES
    }

    /// Byte offset within the containing page.
    #[must_use]
    pub fn offset_in_page(self) -> u64 {
        self.0 % PAGE_BYTES
    }
}

impl VPage {
    /// First byte address of the page.
    #[must_use]
    pub fn base(self) -> Va {
        Va(self.0 * PAGE_BYTES)
    }

    /// The `i`-th block of this page.
    ///
    /// # Panics
    ///
    /// Panics if `i >= BLOCKS_PER_PAGE`.
    #[must_use]
    pub fn block(self, i: u64) -> VBlock {
        assert!(i < BLOCKS_PER_PAGE, "block index {i} out of page");
        VBlock(self.0 * BLOCKS_PER_PAGE + i)
    }

    /// Iterates over all blocks of the page.
    pub fn blocks(self) -> impl Iterator<Item = VBlock> {
        (0..BLOCKS_PER_PAGE).map(move |i| VBlock(self.0 * BLOCKS_PER_PAGE + i))
    }
}

impl VBlock {
    /// The page containing this block.
    #[must_use]
    pub fn vpage(self) -> VPage {
        VPage(self.0 / BLOCKS_PER_PAGE)
    }

    /// Index of this block within its page (`0..BLOCKS_PER_PAGE`).
    #[must_use]
    pub fn index_in_page(self) -> u64 {
        self.0 % BLOCKS_PER_PAGE
    }

    /// First byte address of the block.
    #[must_use]
    pub fn base(self) -> Va {
        Va(self.0 * BLOCK_BYTES)
    }
}

impl CpuId {
    /// The node a CPU belongs to, given the machine's CPUs-per-node.
    ///
    /// # Panics
    ///
    /// Panics if `cpus_per_node` is zero.
    #[must_use]
    pub fn node(self, cpus_per_node: u16) -> NodeId {
        assert!(cpus_per_node > 0, "cpus_per_node must be positive");
        NodeId((self.0 / cpus_per_node) as u8)
    }

    /// CPU index within its node.
    ///
    /// # Panics
    ///
    /// Panics if `cpus_per_node` is zero.
    #[must_use]
    pub fn local_index(self, cpus_per_node: u16) -> u16 {
        assert!(cpus_per_node > 0, "cpus_per_node must be positive");
        self.0 % cpus_per_node
    }
}

impl fmt::Display for Va {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

impl fmt::Display for VPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vp:{}", self.0)
    }
}

impl fmt::Display for VBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vb:{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A set of nodes, stored as a bitmask (at most 64 nodes).
///
/// Used for directory sharer sets and the voluntary-write-back
/// ("was-owner") state that enables read-write refetch detection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct NodeMask(u64);

impl NodeMask {
    /// The empty set.
    pub const EMPTY: NodeMask = NodeMask(0);

    /// A set containing exactly one node.
    #[must_use]
    pub fn single(node: NodeId) -> NodeMask {
        let mut m = NodeMask::EMPTY;
        m.insert(node);
        m
    }

    /// Adds a node to the set.
    ///
    /// # Panics
    ///
    /// Panics if `node.0 >= 64`.
    pub fn insert(&mut self, node: NodeId) {
        assert!(node.0 < 64, "NodeMask supports at most 64 nodes");
        self.0 |= 1 << node.0;
    }

    /// Removes a node from the set.
    pub fn remove(&mut self, node: NodeId) {
        if node.0 < 64 {
            self.0 &= !(1 << node.0);
        }
    }

    /// The raw 64-bit membership mask (bit *n* set means node *n* is a
    /// member). Stable representation used by the sweep journal.
    #[must_use]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Rebuilds a set from a raw mask produced by [`NodeMask::bits`].
    #[must_use]
    pub fn from_bits(bits: u64) -> NodeMask {
        NodeMask(bits)
    }

    /// Membership test.
    #[must_use]
    pub fn contains(self, node: NodeId) -> bool {
        node.0 < 64 && self.0 & (1 << node.0) != 0
    }

    /// Number of members.
    #[must_use]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// `true` when no nodes are present.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Empties the set.
    pub fn clear(&mut self) {
        self.0 = 0;
    }

    /// Iterates over member nodes in ascending id order.
    pub fn iter(self) -> impl Iterator<Item = NodeId> {
        (0..64u8)
            .filter(move |&i| self.0 & (1 << i) != 0)
            .map(NodeId)
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: NodeMask) -> NodeMask {
        NodeMask(self.0 | other.0)
    }

    /// Members of `self` that are not `node`.
    #[must_use]
    pub fn without(self, node: NodeId) -> NodeMask {
        let mut m = self;
        m.remove(node);
        m
    }
}

impl fmt::Display for NodeMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for n in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<NodeId> for NodeMask {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> NodeMask {
        let mut m = NodeMask::EMPTY;
        for n in iter {
            m.insert(n);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_constants_match_the_paper() {
        // 32-byte MBus lines, 4-KB pages => 128 blocks/page.
        assert_eq!(BLOCK_BYTES, 32);
        assert_eq!(PAGE_BYTES, 4096);
        assert_eq!(BLOCKS_PER_PAGE, 128);
    }

    #[test]
    fn va_decomposition() {
        let va = Va(2 * PAGE_BYTES + 5 * BLOCK_BYTES + 7);
        assert_eq!(va.vpage(), VPage(2));
        assert_eq!(va.vblock(), VBlock(2 * BLOCKS_PER_PAGE + 5));
        assert_eq!(va.offset_in_block(), 7);
        assert_eq!(va.offset_in_page(), 5 * BLOCK_BYTES + 7);
    }

    #[test]
    fn page_block_round_trip() {
        let p = VPage(17);
        let b = p.block(127);
        assert_eq!(b.vpage(), p);
        assert_eq!(b.index_in_page(), 127);
        assert_eq!(b.base().vblock(), b);
        assert_eq!(p.base().vpage(), p);
    }

    #[test]
    fn page_blocks_iterator_covers_page_exactly() {
        let p = VPage(3);
        let blocks: Vec<_> = p.blocks().collect();
        assert_eq!(blocks.len(), BLOCKS_PER_PAGE as usize);
        assert!(blocks.iter().all(|b| b.vpage() == p));
        assert_eq!(blocks[0].index_in_page(), 0);
        assert_eq!(blocks.last().unwrap().index_in_page(), BLOCKS_PER_PAGE - 1);
    }

    #[test]
    #[should_panic(expected = "out of page")]
    fn block_index_out_of_page_panics() {
        let _ = VPage(0).block(BLOCKS_PER_PAGE);
    }

    #[test]
    fn cpu_to_node_mapping() {
        // The paper's machine: 8 nodes x 4 CPUs.
        assert_eq!(CpuId(0).node(4), NodeId(0));
        assert_eq!(CpuId(3).node(4), NodeId(0));
        assert_eq!(CpuId(4).node(4), NodeId(1));
        assert_eq!(CpuId(31).node(4), NodeId(7));
        assert_eq!(CpuId(31).local_index(4), 3);
    }

    #[test]
    fn node_mask_set_operations() {
        let mut m = NodeMask::EMPTY;
        assert!(m.is_empty());
        m.insert(NodeId(0));
        m.insert(NodeId(7));
        assert!(m.contains(NodeId(0)));
        assert!(m.contains(NodeId(7)));
        assert!(!m.contains(NodeId(3)));
        assert_eq!(m.count(), 2);
        m.remove(NodeId(0));
        assert_eq!(m.count(), 1);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![NodeId(7)]);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn node_mask_union_and_without() {
        let a: NodeMask = [NodeId(1), NodeId(2)].into_iter().collect();
        let b = NodeMask::single(NodeId(3));
        let u = a.union(b);
        assert_eq!(u.count(), 3);
        assert_eq!(u.without(NodeId(2)).count(), 2);
        // `without` does not mutate.
        assert!(u.contains(NodeId(2)));
    }

    #[test]
    fn node_mask_display() {
        let m: NodeMask = [NodeId(0), NodeId(5)].into_iter().collect();
        assert_eq!(m.to_string(), "{n0,n5}");
        assert_eq!(NodeMask::EMPTY.to_string(), "{}");
    }

    #[test]
    fn displays_are_nonempty() {
        assert_eq!(Va(32).to_string(), "va:0x20");
        assert_eq!(VPage(1).to_string(), "vp:1");
        assert_eq!(VBlock(2).to_string(), "vb:2");
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(CpuId(4).to_string(), "cpu4");
        assert_eq!(FrameId(5).to_string(), "f5");
    }
}
