//! Per-node page tables.
//!
//! Every node runs the single OS image but keeps its own page table so
//! that allocation decisions are independent per node (Section 2). A
//! virtual page can be, from one node's point of view:
//!
//! * unmapped — the next reference takes a soft page fault;
//! * local — this node is (or has become, via first-touch migration) the
//!   page's home, and references go to ordinary local memory;
//! * CC-NUMA — mapped directly to the remote home's global physical
//!   address, so misses travel to the home via the block cache;
//! * S-COMA — mapped to a local page-cache frame guarded by fine-grain
//!   tags.
//!
//! The R-NUMA relocation flow is exactly a transition from `CcNuma` to
//! `SComa` for one page on one node.

use crate::addr::{FrameId, VPage};
use crate::fxmap::FxMap;

/// How one node currently maps one virtual page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mapping {
    /// The page's home is this node; plain local memory.
    Local,
    /// Mapped to the remote home's physical address (CC-NUMA mode).
    CcNuma,
    /// Mapped into the local S-COMA page cache at `FrameId`.
    SComa(FrameId),
}

impl Mapping {
    /// `true` for the S-COMA mode.
    #[must_use]
    pub fn is_scoma(self) -> bool {
        matches!(self, Mapping::SComa(_))
    }
}

/// One node's page table over the shared virtual address space.
///
/// # Example
///
/// ```
/// use rnuma_mem::addr::VPage;
/// use rnuma_mem::page_table::{Mapping, NodePageTable};
///
/// let mut pt = NodePageTable::new();
/// assert_eq!(pt.lookup(VPage(1)), None); // fault
/// pt.map(VPage(1), Mapping::CcNuma);
/// assert_eq!(pt.lookup(VPage(1)), Some(Mapping::CcNuma));
/// ```
#[derive(Clone, Debug, Default)]
pub struct NodePageTable {
    entries: FxMap<VPage, Mapping>,
    version: u64,
}

impl NodePageTable {
    /// An empty page table (everything faults).
    #[must_use]
    pub fn new() -> NodePageTable {
        NodePageTable::default()
    }

    /// A counter bumped on every `map`/`unmap`. Cached translations
    /// (e.g., the machine's per-CPU MRU entry) are valid only while the
    /// version they were read under is still current.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Current mapping of `page`, or `None` when unmapped.
    #[inline]
    #[must_use]
    pub fn lookup(&self, page: VPage) -> Option<Mapping> {
        self.entries.get(page).copied()
    }

    /// Installs a mapping, replacing any previous one. Returns the
    /// previous mapping, which the OS uses to validate transitions.
    pub fn map(&mut self, page: VPage, mapping: Mapping) -> Option<Mapping> {
        self.version += 1;
        self.entries.insert(page, mapping)
    }

    /// Removes the mapping for `page` (relocation or page-cache
    /// replacement), returning it.
    pub fn unmap(&mut self, page: VPage) -> Option<Mapping> {
        self.version += 1;
        self.entries.remove(page)
    }

    /// Number of mapped pages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no page is mapped.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(page, mapping)` in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (VPage, Mapping)> + '_ {
        self.entries.iter().map(|(p, &m)| (p, m))
    }

    /// Counts pages in each mode: `(local, ccnuma, scoma)`.
    #[must_use]
    pub fn mode_census(&self) -> (usize, usize, usize) {
        let mut census = (0, 0, 0);
        for m in self.entries.values() {
            match m {
                Mapping::Local => census.0 += 1,
                Mapping::CcNuma => census.1 += 1,
                Mapping::SComa(_) => census.2 += 1,
            }
        }
        census
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_pages_fault() {
        let pt = NodePageTable::new();
        assert_eq!(pt.lookup(VPage(0)), None);
        assert!(pt.is_empty());
    }

    #[test]
    fn map_lookup_unmap_cycle() {
        let mut pt = NodePageTable::new();
        assert_eq!(pt.map(VPage(1), Mapping::CcNuma), None);
        assert_eq!(pt.lookup(VPage(1)), Some(Mapping::CcNuma));
        // The R-NUMA relocation transition.
        let prev = pt.map(VPage(1), Mapping::SComa(FrameId(3)));
        assert_eq!(prev, Some(Mapping::CcNuma));
        assert!(pt.lookup(VPage(1)).unwrap().is_scoma());
        assert_eq!(pt.unmap(VPage(1)), Some(Mapping::SComa(FrameId(3))));
        assert_eq!(pt.lookup(VPage(1)), None);
    }

    #[test]
    fn version_bumps_on_every_mutation() {
        let mut pt = NodePageTable::new();
        let v0 = pt.version();
        pt.map(VPage(1), Mapping::CcNuma);
        let v1 = pt.version();
        assert_ne!(v0, v1);
        pt.unmap(VPage(1));
        assert_ne!(pt.version(), v1);
        // Lookups never invalidate cached translations.
        let v2 = pt.version();
        let _ = pt.lookup(VPage(1));
        assert_eq!(pt.version(), v2);
    }

    #[test]
    fn census_counts_modes() {
        let mut pt = NodePageTable::new();
        pt.map(VPage(1), Mapping::Local);
        pt.map(VPage(2), Mapping::Local);
        pt.map(VPage(3), Mapping::CcNuma);
        pt.map(VPage(4), Mapping::SComa(FrameId(0)));
        assert_eq!(pt.mode_census(), (2, 1, 1));
        assert_eq!(pt.len(), 4);
    }

    #[test]
    fn iter_visits_all_entries() {
        let mut pt = NodePageTable::new();
        pt.map(VPage(1), Mapping::Local);
        pt.map(VPage(2), Mapping::CcNuma);
        let mut pages: Vec<u64> = pt.iter().map(|(p, _)| p.0).collect();
        pages.sort_unstable();
        assert_eq!(pages, vec![1, 2]);
    }
}
