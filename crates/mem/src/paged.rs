//! A paged dense map over per-block state.
//!
//! The home directory tracks state per 32-byte block, but directory
//! traffic is heavily clustered *within pages*: a remote page fetch,
//! flush, or relocation walks many blocks of one page back to back, and
//! streaming applications touch the blocks of a page consecutively. A
//! flat `FxMap<VBlock, V>` pays a hash probe per block; [`PagedMap`]
//! pays one hash probe per *page* and a dense array index per block:
//!
//! * `page -> slab` resolution goes through one [`FxMap`] keyed by the
//!   block's page number — the same open-addressed table the rest of the
//!   hot path uses;
//! * each slab is a dense `[V; BLOCKS_PER_PAGE]` array indexed by the
//!   block's offset in its page, plus a 128-bit *touched* bitmap that
//!   preserves the sparse-map distinction between "absent" and
//!   "present with default state".
//!
//! Slabs are allocated from an internal arena (a `Vec` of boxed slabs)
//! and never move or free individually, so `get`/`get_mut` are stable
//! and iteration order over a page is always ascending block order —
//! independent of insertion history, which the workspace's
//! bit-identical-replay guarantees rely on.

use crate::addr::{VBlock, VPage, BLOCKS_PER_PAGE};
use crate::fxmap::FxMap;

const SLAB_LEN: usize = BLOCKS_PER_PAGE as usize;
const BITMAP_WORDS: usize = SLAB_LEN / 64;

/// One page's dense block-state array plus its touched bitmap.
#[derive(Clone)]
struct Slab<V> {
    touched: [u64; BITMAP_WORDS],
    cells: Box<[V]>,
}

impl<V: Default> Slab<V> {
    fn new() -> Slab<V> {
        Slab {
            touched: [0; BITMAP_WORDS],
            cells: (0..SLAB_LEN).map(|_| V::default()).collect(),
        }
    }

    #[inline]
    fn is_touched(&self, idx: usize) -> bool {
        self.touched[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Marks `idx` touched; returns `true` when it was untouched before.
    #[inline]
    fn touch(&mut self, idx: usize) -> bool {
        let word = &mut self.touched[idx / 64];
        let bit = 1u64 << (idx % 64);
        let fresh = *word & bit == 0;
        *word |= bit;
        fresh
    }
}

/// A dense-per-page map from [`VBlock`] to `V`.
///
/// Drop-in replacement for the directory's former `FxMap<VBlock, V>`:
/// one page-level hash probe, then a dense index — see the module docs.
///
/// # Example
///
/// ```
/// use rnuma_mem::addr::{VBlock, VPage};
/// use rnuma_mem::paged::PagedMap;
///
/// let mut m: PagedMap<u32> = PagedMap::new();
/// assert_eq!(m.get(VBlock(7)), None);
/// *m.entry_or_default(VBlock(7)) += 1;
/// assert_eq!(m.get(VBlock(7)), Some(&1));
/// assert_eq!(m.len(), 1);
/// // Blocks of one page iterate in ascending block order.
/// *m.entry_or_default(VPage(0).block(3)) += 5;
/// let blocks: Vec<u64> = m.page_entries(VPage(0)).map(|(b, _)| b.0).collect();
/// assert_eq!(blocks, vec![3, 7]);
/// ```
#[derive(Clone)]
pub struct PagedMap<V> {
    index: FxMap<VPage, u32>,
    slabs: Vec<Slab<V>>,
    len: usize,
}

impl<V> std::fmt::Debug for PagedMap<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedMap")
            .field("pages", &self.slabs.len())
            .field("len", &self.len)
            .finish()
    }
}

impl<V: Default> Default for PagedMap<V> {
    fn default() -> Self {
        PagedMap::new()
    }
}

impl<V: Default> PagedMap<V> {
    /// An empty map; slabs allocate on first touch of their page.
    #[must_use]
    pub fn new() -> PagedMap<V> {
        PagedMap {
            index: FxMap::new(),
            slabs: Vec::new(),
            len: 0,
        }
    }

    /// Number of touched blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no block has been touched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages with at least one touched block (slab count).
    #[must_use]
    pub fn pages(&self) -> usize {
        self.slabs.len()
    }

    #[inline]
    fn slab_of(&self, page: VPage) -> Option<&Slab<V>> {
        self.index.get(page).map(|&i| &self.slabs[i as usize])
    }

    /// The state of `block`, if it was ever touched.
    #[inline]
    #[must_use]
    pub fn get(&self, block: VBlock) -> Option<&V> {
        let slab = self.slab_of(block.vpage())?;
        let idx = block.index_in_page() as usize;
        slab.is_touched(idx).then(|| &slab.cells[idx])
    }

    /// Mutable state of `block`, if it was ever touched.
    #[inline]
    pub fn get_mut(&mut self, block: VBlock) -> Option<&mut V> {
        let &slot = self.index.get(block.vpage())?;
        let slab = &mut self.slabs[slot as usize];
        let idx = block.index_in_page() as usize;
        slab.is_touched(idx).then(|| &mut slab.cells[idx])
    }

    /// The state of `block`, touching it with `V::default()` when absent.
    #[inline]
    pub fn entry_or_default(&mut self, block: VBlock) -> &mut V {
        let page = block.vpage();
        let slot = match self.index.get(page) {
            Some(&i) => i as usize,
            None => {
                let i = self.slabs.len();
                assert!(u32::try_from(i).is_ok(), "PagedMap slab index overflow");
                self.slabs.push(Slab::new());
                self.index.insert(page, i as u32);
                i
            }
        };
        let slab = &mut self.slabs[slot];
        let idx = block.index_in_page() as usize;
        if slab.touch(idx) {
            self.len += 1;
        }
        &mut slab.cells[idx]
    }

    /// Iterates the touched blocks of `page` in ascending block order
    /// (deterministic regardless of touch history).
    pub fn page_entries(&self, page: VPage) -> impl Iterator<Item = (VBlock, &V)> + '_ {
        self.slab_of(page).into_iter().flat_map(move |slab| {
            (0..SLAB_LEN)
                .filter(|&i| slab.is_touched(i))
                .map(move |i| (page.block(i as u64), &slab.cells[i]))
        })
    }
}

/// Assigns `page` to one of `shards` fine-grained directory sub-shards.
///
/// This is the *layout* hash of the sharded executor's footprint/home
/// directory: the coordinator banks its per-page scan state into
/// `shards` independent tables (`RNUMA_DIR_SHARDS`), and every lookup,
/// overlay merge, and diagnostic groups pages by this function. It is a
/// pure placement decision — simulation results never depend on it —
/// so the contract is purely structural:
///
/// * **total**: every page maps to a bank in `0..shards` (for
///   `shards <= 1`, always bank 0);
/// * **stable**: a pure function of `(page, shards)` — the same page
///   lands in the same bank on every call, in every process;
/// * **page-granular**: derived from the page number alone, so all
///   blocks and byte addresses within one page agree.
///
/// The definition is fixed (SplitMix64's finalizer over the page
/// number, reduced modulo `shards`) and mirrored by the reference
/// model in `crates/mem/tests/properties.rs`; changing it is safe for
/// correctness but invalidates any bank-keyed diagnostics captured
/// across versions.
#[must_use]
#[inline]
pub fn dir_shard_of(page: VPage, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut x = page.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % shards as u64) as usize
}

/// Per-bank ownership-epoch high-water tags for a [`dir_shard_of`]-
/// banked page directory.
///
/// The sharded executor's footprint directory stamps each page with the
/// epoch of its last ownership transition; this companion structure
/// keeps, per *bank*, the maximum such stamp ever recorded — the
/// coarse summary a consumer can check without walking the bank: if a
/// shard's log cursor has passed `bank_tag(b)`, no page in bank `b`
/// has a pending ownership fence ahead of it. Like the banking itself
/// the tags are layout-only bookkeeping: they summarize per-page
/// stamps and never influence classification or simulation results.
///
/// Tags are monotone (recording is a per-bank `max`) and merge by
/// bank-wise `max`, mirroring how a prefetch overlay's entries merge
/// into the base directory.
#[derive(Clone, Debug)]
pub struct EpochTags {
    banks: Vec<u64>,
}

impl EpochTags {
    /// Zeroed tags for `banks` sub-shards (minimum 1, matching
    /// [`dir_shard_of`]'s degenerate single-bank case).
    #[must_use]
    pub fn new(banks: usize) -> EpochTags {
        EpochTags {
            banks: vec![0; banks.max(1)],
        }
    }

    /// Number of banks.
    #[must_use]
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// Folds an ownership stamp for `page` into its bank's tag.
    #[inline]
    pub fn record(&mut self, page: VPage, epoch: u64) {
        let bank = dir_shard_of(page, self.banks.len());
        self.banks[bank] = self.banks[bank].max(epoch);
    }

    /// The high-water ownership epoch of one bank.
    ///
    /// # Panics
    ///
    /// Panics when `bank >= self.banks()`.
    #[must_use]
    pub fn bank_tag(&self, bank: usize) -> u64 {
        self.banks[bank]
    }

    /// The high-water ownership epoch across all banks.
    #[must_use]
    pub fn high_water(&self) -> u64 {
        self.banks.iter().copied().max().unwrap_or(0)
    }

    /// Folds `other`'s tags in, bank by bank (bank counts must match —
    /// tags always accompany a directory of the same banking).
    pub fn merge_from(&mut self, other: &EpochTags) {
        debug_assert_eq!(self.banks.len(), other.banks.len());
        for (dst, src) in self.banks.iter_mut().zip(&other.banks) {
            *dst = (*dst).max(*src);
        }
    }

    /// Resets every tag to zero (bank structure is kept).
    pub fn clear(&mut self) {
        self.banks.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_tags_track_per_bank_high_water() {
        let mut tags = EpochTags::new(8);
        assert_eq!(tags.banks(), 8);
        assert_eq!(tags.high_water(), 0);
        for p in 0..64u64 {
            tags.record(VPage(p), p);
        }
        assert_eq!(tags.high_water(), 63);
        // Each bank's tag is the max epoch of the pages it hosts, and
        // recording an older epoch never regresses a tag.
        let hot = VPage(63);
        let hot_bank = dir_shard_of(hot, 8);
        let before = tags.bank_tag(hot_bank);
        tags.record(hot, 1);
        assert_eq!(tags.bank_tag(hot_bank), before, "tags are monotone");
        // Merge is a bank-wise max; clear zeroes but keeps the banking.
        let mut other = EpochTags::new(8);
        other.record(VPage(0), 1000);
        tags.merge_from(&other);
        assert_eq!(tags.high_water(), 1000);
        tags.clear();
        assert_eq!((tags.banks(), tags.high_water()), (8, 0));
    }

    #[test]
    fn epoch_tags_degenerate_bankings_stay_total() {
        for banks in [0usize, 1] {
            let mut tags = EpochTags::new(banks);
            assert_eq!(tags.banks(), 1, "minimum one bank");
            tags.record(VPage(u64::MAX), 7);
            assert_eq!(tags.bank_tag(0), 7);
        }
    }

    #[test]
    fn dir_shard_assignment_is_total_and_stable() {
        for shards in [0usize, 1, 2, 3, 8, 64] {
            for p in (0u64..4096).chain([u64::MAX, u64::MAX - 4095]) {
                let bank = dir_shard_of(VPage(p), shards);
                assert!(bank < shards.max(1), "page {p} escaped {shards} banks");
                assert_eq!(bank, dir_shard_of(VPage(p), shards), "unstable for {p}");
            }
        }
    }

    #[test]
    fn dir_shard_assignment_spreads_pages() {
        // Not a statistical guarantee — just a tripwire against a
        // degenerate constant hash: 4096 consecutive pages across 8
        // banks must populate every bank.
        let mut seen = [0usize; 8];
        for p in 0..4096u64 {
            seen[dir_shard_of(VPage(p), 8)] += 1;
        }
        assert!(seen.iter().all(|&n| n > 0), "empty bank: {seen:?}");
    }

    #[test]
    fn absent_blocks_read_none() {
        let m: PagedMap<u64> = PagedMap::new();
        assert_eq!(m.get(VBlock(0)), None);
        assert!(m.is_empty());
        assert_eq!(m.pages(), 0);
    }

    #[test]
    fn entry_or_default_touches_once() {
        let mut m: PagedMap<u64> = PagedMap::new();
        *m.entry_or_default(VBlock(130)) += 1;
        *m.entry_or_default(VBlock(130)) += 1;
        assert_eq!(m.get(VBlock(130)), Some(&2));
        assert_eq!(m.len(), 1);
        assert_eq!(m.pages(), 1);
        // A default-valued touched block is still "present" — the
        // sparse-map distinction the directory's refetch logic needs.
        let _ = m.entry_or_default(VBlock(131));
        assert_eq!(m.get(VBlock(131)), Some(&0));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn untouched_neighbors_stay_absent() {
        let mut m: PagedMap<u64> = PagedMap::new();
        *m.entry_or_default(VPage(3).block(7)) = 9;
        // Same page, different block: slab exists, bit does not.
        assert_eq!(m.get(VPage(3).block(8)), None);
        assert_eq!(m.get_mut(VPage(3).block(8)), None);
        assert_eq!(m.get(VPage(3).block(7)), Some(&9));
    }

    #[test]
    fn get_mut_edits_in_place() {
        let mut m: PagedMap<u64> = PagedMap::new();
        *m.entry_or_default(VBlock(1000)) = 1;
        *m.get_mut(VBlock(1000)).unwrap() = 42;
        assert_eq!(m.get(VBlock(1000)), Some(&42));
    }

    #[test]
    fn page_entries_are_dense_ascending() {
        let mut m: PagedMap<u64> = PagedMap::new();
        let page = VPage(9);
        // Touch out of order; iteration must come back sorted.
        for i in [100u64, 3, 64, 0, 127] {
            *m.entry_or_default(page.block(i)) = i;
        }
        let got: Vec<(u64, u64)> = m.page_entries(page).map(|(b, &v)| (b.0, v)).collect();
        let want: Vec<(u64, u64)> = [0u64, 3, 64, 100, 127]
            .iter()
            .map(|&i| (page.block(i).0, i))
            .collect();
        assert_eq!(got, want);
        // Foreign pages are empty.
        assert_eq!(m.page_entries(VPage(10)).count(), 0);
    }

    #[test]
    fn matches_fxmap_reference_on_mixed_traffic() {
        use crate::fxmap::FxMap;
        let mut paged: PagedMap<u64> = PagedMap::new();
        let mut flat: FxMap<VBlock, u64> = FxMap::new();
        // Deterministic pseudo-random block traffic across many pages.
        let mut x = 0x1234_5678_9abc_def0u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let block = VBlock((x >> 16) % (64 * BLOCKS_PER_PAGE));
            if x.is_multiple_of(3) {
                *paged.entry_or_default(block) += 1;
                *flat.entry_or_default(block) += 1;
            } else {
                assert_eq!(paged.get(block), flat.get(block), "block {block:?}");
            }
        }
        assert_eq!(paged.len(), flat.len());
        for page in 0..64u64 {
            let mut from_flat: Vec<(VBlock, u64)> = VPage(page)
                .blocks()
                .filter_map(|b| flat.get(b).map(|&v| (b, v)))
                .collect();
            from_flat.sort_unstable_by_key(|&(b, _)| b);
            let from_paged: Vec<(VBlock, u64)> = paged
                .page_entries(VPage(page))
                .map(|(b, &v)| (b, v))
                .collect();
            assert_eq!(from_paged, from_flat, "page {page}");
        }
    }
}
