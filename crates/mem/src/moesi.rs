//! The five-state MOESI protocol used by the intra-node snoopy bus.
//!
//! Each node is a bus-based SMP kept coherent by a MOESI protocol modeled
//! after the SPARC MBus (Section 4 of the paper). Processor caches hold
//! blocks in one of the [`Moesi`] states; the state machine here captures
//! the transitions the node simulator applies on local accesses and
//! snoops.
//!
//! One MBus quirk matters for the DSM results and is modeled faithfully
//! upstream: MBus does *not* supply data cache-to-cache for blocks that no
//! cache *owns* (states `M` or `O`), so a read miss to a block cached
//! read-only by a peer still goes to memory — or, for remote pages, all
//! the way to the home node.

use std::fmt;

/// A MOESI cache-line state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Moesi {
    /// Not present.
    #[default]
    Invalid,
    /// Clean, possibly shared with other caches and memory.
    Shared,
    /// Clean, only copy among caches; memory is up to date.
    Exclusive,
    /// Dirty but shared: this cache is responsible for write-back.
    Owned,
    /// Dirty, only copy.
    Modified,
}

impl Moesi {
    /// `true` when the line is present (any state but `Invalid`).
    #[must_use]
    pub fn is_valid(self) -> bool {
        self != Moesi::Invalid
    }

    /// `true` when the cache may satisfy a load without a bus transaction.
    #[must_use]
    pub fn can_read(self) -> bool {
        self.is_valid()
    }

    /// `true` when the cache may satisfy a store without a bus transaction.
    #[must_use]
    pub fn can_write(self) -> bool {
        matches!(self, Moesi::Exclusive | Moesi::Modified)
    }

    /// `true` when this cache must write the block back on eviction.
    #[must_use]
    pub fn is_dirty(self) -> bool {
        matches!(self, Moesi::Owned | Moesi::Modified)
    }

    /// `true` when this cache owns the block (would supply it
    /// cache-to-cache on MBus).
    #[must_use]
    pub fn is_owner(self) -> bool {
        matches!(self, Moesi::Owned | Moesi::Modified)
    }

    /// State after this cache's own store hit (silent upgrade for `E`).
    ///
    /// A store to `S`/`O`/`I` requires a bus upgrade first; model that
    /// upstream, then call [`Moesi::after_store`] on the granted state.
    #[must_use]
    pub fn after_store(self) -> Moesi {
        match self {
            Moesi::Exclusive | Moesi::Modified => Moesi::Modified,
            // Upgrades land here after invalidating other copies.
            Moesi::Shared | Moesi::Owned | Moesi::Invalid => Moesi::Modified,
        }
    }

    /// State after observing another cache's read snoop.
    ///
    /// `M`/`E` degrade to `O`/`S`; `O`/`S` are unchanged.
    #[must_use]
    pub fn after_snoop_read(self) -> Moesi {
        match self {
            Moesi::Modified => Moesi::Owned,
            Moesi::Exclusive => Moesi::Shared,
            other => other,
        }
    }

    /// State after observing another cache's write/upgrade snoop: always
    /// invalid.
    #[must_use]
    pub fn after_snoop_write(self) -> Moesi {
        let _ = self;
        Moesi::Invalid
    }
}

impl fmt::Display for Moesi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Moesi::Invalid => 'I',
            Moesi::Shared => 'S',
            Moesi::Exclusive => 'E',
            Moesi::Owned => 'O',
            Moesi::Modified => 'M',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Moesi; 5] = [
        Moesi::Invalid,
        Moesi::Shared,
        Moesi::Exclusive,
        Moesi::Owned,
        Moesi::Modified,
    ];

    #[test]
    fn read_write_permissions() {
        assert!(!Moesi::Invalid.can_read());
        assert!(Moesi::Shared.can_read());
        assert!(!Moesi::Shared.can_write());
        assert!(Moesi::Exclusive.can_write());
        assert!(Moesi::Modified.can_write());
        assert!(!Moesi::Owned.can_write(), "O must upgrade before writing");
    }

    #[test]
    fn dirty_and_ownership() {
        assert!(Moesi::Modified.is_dirty() && Moesi::Modified.is_owner());
        assert!(Moesi::Owned.is_dirty() && Moesi::Owned.is_owner());
        assert!(!Moesi::Exclusive.is_dirty());
        assert!(!Moesi::Shared.is_owner());
    }

    #[test]
    fn store_always_ends_modified() {
        for s in ALL {
            assert_eq!(s.after_store(), Moesi::Modified);
        }
    }

    #[test]
    fn snoop_read_transitions() {
        assert_eq!(Moesi::Modified.after_snoop_read(), Moesi::Owned);
        assert_eq!(Moesi::Exclusive.after_snoop_read(), Moesi::Shared);
        assert_eq!(Moesi::Owned.after_snoop_read(), Moesi::Owned);
        assert_eq!(Moesi::Shared.after_snoop_read(), Moesi::Shared);
        assert_eq!(Moesi::Invalid.after_snoop_read(), Moesi::Invalid);
    }

    #[test]
    fn snoop_write_invalidates_everything() {
        for s in ALL {
            assert_eq!(s.after_snoop_write(), Moesi::Invalid);
        }
    }

    #[test]
    fn snoop_read_never_creates_dirtiness() {
        for s in ALL {
            assert_eq!(s.after_snoop_read().is_dirty(), s.is_dirty());
        }
    }

    #[test]
    fn default_is_invalid_and_display_single_letters() {
        assert_eq!(Moesi::default(), Moesi::Invalid);
        let letters: String = ALL.iter().map(|s| s.to_string()).collect();
        assert_eq!(letters, "ISEOM");
    }
}
