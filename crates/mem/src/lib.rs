//! Memory-hierarchy structures for the Reactive NUMA reproduction.
//!
//! This crate models the state-holding hardware of each SMP node in the
//! paper's machine (Falsafi & Wood, ISCA 1997, Figure 1):
//!
//! * [`addr`] — the global shared address space, block/page geometry
//!   (32-byte MBus lines, 4-KB pages), node/CPU identifiers, and node
//!   bitmasks.
//! * [`moesi`] — the intra-node snoopy MOESI protocol states.
//! * [`cache`] — generic direct-mapped and infinite cache containers.
//! * [`l1`] — the 8-KB per-processor data caches.
//! * [`block_cache`] — the RAD's remote block cache (CC-NUMA/R-NUMA),
//!   with the paper's read-write-only inclusion policy.
//! * [`fine_tags`] — S-COMA's two-bit-per-block access-control tags.
//! * [`page_cache`] — the S-COMA page cache with Least-Recently-Missed
//!   replacement.
//! * [`page_table`] — per-node page tables mapping pages to local,
//!   CC-NUMA, or S-COMA modes.
//! * [`fxmap`] — the open-addressed, deterministic FxHash tables every
//!   hot-path lookup structure above is built on.
//! * [`paged`] — the dense-per-page block-state map the home directory
//!   uses: one page-level hash probe, then a flat array index.
//!
//! Everything here is *state only*: the simulator never materializes data
//! values, exactly like a protocol-level execution-driven simulator. The
//! timing and protocol logic live in the `rnuma-proto`, `rnuma-os`, and
//! `rnuma` crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod block_cache;
pub mod cache;
pub mod fine_tags;
pub mod fxmap;
pub mod l1;
pub mod moesi;
pub mod page_cache;
pub mod page_table;
pub mod paged;

pub use addr::{CpuId, FrameId, NodeId, NodeMask, VBlock, VPage, Va};
pub use block_cache::{BlockCache, BlockEviction, BlockState};
pub use fine_tags::{AccessTag, FineTags};
pub use fxmap::{FxMap, FxMap64};
pub use l1::{L1Cache, L1Probe};
pub use moesi::Moesi;
pub use page_cache::{PageCache, PageVictim, ReplacementPolicy};
pub use page_table::{Mapping, NodePageTable};
pub use paged::PagedMap;
