//! Open-addressed hash maps for the simulator's hot path.
//!
//! Every memory reference that misses an L1 walks at least one of the
//! per-node page table, the home directory, and the page-cache
//! translation table. `std::collections::HashMap` puts a SipHash
//! invocation and a bucket indirection on each of those walks; for the
//! 64-bit keys used here (page and block numbers) that dominates the
//! lookup cost. [`FxMap`] replaces it with:
//!
//! * a Fibonacci/FxHash-style multiply — one `u64` multiplication whose
//!   high bits index the table — instead of SipHash;
//! * open addressing with linear probing in one flat `Vec`, so a lookup
//!   is a multiply, a shift, and a short contiguous scan;
//! * backward-shift deletion, so no tombstones accumulate and probe
//!   sequences stay short regardless of churn.
//!
//! The map is deterministic: identical operation sequences produce
//! identical layouts and iteration orders, which the workspace's
//! bit-identical-replay guarantees rely on. Iteration order is still
//! arbitrary in the API sense (table order), exactly like the `HashMap`
//! it replaces.

use std::fmt;

/// Keys usable in an [`FxMap`]: newtypes around a `u64`.
pub trait Key64: Copy + Eq {
    /// The raw 64-bit key.
    fn as_u64(self) -> u64;
    /// Rebuilds the key from its raw value (used by iteration).
    fn from_u64(raw: u64) -> Self;
}

impl Key64 for u64 {
    #[inline]
    fn as_u64(self) -> u64 {
        self
    }
    #[inline]
    fn from_u64(raw: u64) -> u64 {
        raw
    }
}

impl Key64 for crate::addr::VPage {
    #[inline]
    fn as_u64(self) -> u64 {
        self.0
    }
    #[inline]
    fn from_u64(raw: u64) -> Self {
        crate::addr::VPage(raw)
    }
}

impl Key64 for crate::addr::VBlock {
    #[inline]
    fn as_u64(self) -> u64 {
        self.0
    }
    #[inline]
    fn from_u64(raw: u64) -> Self {
        crate::addr::VBlock(raw)
    }
}

/// 2^64 / phi — the Fibonacci hashing constant, the same multiplier
/// FxHash folds into its word mix. One multiply spreads consecutive
/// keys (the common case: adjacent pages and blocks) across the table.
const MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Initial capacity on first insert (power of two).
const MIN_CAPACITY: usize = 16;

/// An open-addressed, deterministic `u64`-keyed hash map.
///
/// Drop-in replacement for the simulator's former
/// `HashMap<Key, V>` uses; see the module docs for the design.
///
/// # Example
///
/// ```
/// use rnuma_mem::fxmap::FxMap;
/// use rnuma_mem::addr::VPage;
///
/// let mut m: FxMap<VPage, u32> = FxMap::new();
/// m.insert(VPage(7), 1);
/// assert_eq!(m.get(VPage(7)), Some(&1));
/// assert_eq!(m.remove(VPage(7)), Some(1));
/// assert!(m.is_empty());
/// ```
#[derive(Clone)]
pub struct FxMap<K: Key64, V> {
    /// Power-of-two slot array; `None` marks an empty slot.
    slots: Vec<Option<(u64, V)>>,
    len: usize,
    /// `64 - log2(slots.len())`; the hash's high bits give the index.
    shift: u32,
    _key: std::marker::PhantomData<K>,
}

/// An [`FxMap`] over raw `u64` keys.
pub type FxMap64<V> = FxMap<u64, V>;

impl<K: Key64, V> Default for FxMap<K, V> {
    fn default() -> Self {
        FxMap::new()
    }
}

impl<K: Key64, V: fmt::Debug> fmt::Debug for FxMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.iter().map(|(k, v)| (k.as_u64(), v)))
            .finish()
    }
}

impl<K: Key64, V> FxMap<K, V> {
    /// An empty map; allocates on first insert.
    #[must_use]
    pub fn new() -> Self {
        FxMap {
            slots: Vec::new(),
            len: 0,
            shift: 0,
            _key: std::marker::PhantomData,
        }
    }

    /// An empty map with room for `n` entries before the first resize.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        let mut m = FxMap::new();
        if n > 0 {
            m.allocate((n * 4 / 3 + 1).next_power_of_two().max(MIN_CAPACITY));
        }
        m
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the map holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn index_of(&self, raw: u64) -> usize {
        // High bits of the product: well-mixed even for consecutive keys.
        (raw.wrapping_mul(MIX) >> self.shift) as usize
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    /// One probe walk answers both questions: where `raw` lives, or —
    /// since linear probing terminates at the first empty slot — where
    /// it would be placed. `Err(vacant)` carries that insertion slot so
    /// inserts never walk the chain twice; `Err(usize::MAX)` flags an
    /// unallocated table.
    #[inline]
    fn probe(&self, raw: u64) -> Result<usize, usize> {
        if self.slots.is_empty() {
            return Err(usize::MAX);
        }
        let mask = self.mask();
        let mut i = self.index_of(raw);
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k == raw => return Ok(i),
                Some(_) => i = (i + 1) & mask,
                None => return Err(i),
            }
        }
    }

    /// Slot holding `raw`, if present.
    #[inline]
    fn find(&self, raw: u64) -> Option<usize> {
        self.probe(raw).ok()
    }

    /// A reference to the value for `key`.
    #[inline]
    #[must_use]
    pub fn get(&self, key: K) -> Option<&V> {
        self.find(key.as_u64())
            .map(|i| &self.slots[i].as_ref().expect("found slot is occupied").1)
    }

    /// A mutable reference to the value for `key`.
    #[inline]
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        self.find(key.as_u64())
            .map(|i| &mut self.slots[i].as_mut().expect("found slot is occupied").1)
    }

    /// `true` when `key` is present.
    #[inline]
    #[must_use]
    pub fn contains_key(&self, key: K) -> bool {
        self.find(key.as_u64()).is_some()
    }

    /// Inserts `key -> value`, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let raw = key.as_u64();
        match self.probe(raw) {
            Ok(i) => {
                let slot = self.slots[i].as_mut().expect("found slot is occupied");
                Some(std::mem::replace(&mut slot.1, value))
            }
            Err(vacant) => {
                let i = self.claim(raw, vacant);
                self.slots[i] = Some((raw, value));
                None
            }
        }
    }

    /// The value for `key`, inserting `V::default()` first when absent.
    pub fn entry_or_default(&mut self, key: K) -> &mut V
    where
        V: Default,
    {
        let raw = key.as_u64();
        let i = match self.probe(raw) {
            Ok(i) => i,
            Err(vacant) => {
                let i = self.claim(raw, vacant);
                self.slots[i] = Some((raw, V::default()));
                i
            }
        };
        &mut self.slots[i].as_mut().expect("slot just located").1
    }

    /// Books a slot for an absent key whose probe ended at `vacant`.
    /// Falls back to a fresh walk only when a grow (or first
    /// allocation) invalidates that position.
    #[inline]
    fn claim(&mut self, raw: u64, vacant: usize) -> usize {
        self.len += 1;
        if !self.slots.is_empty() && self.len * 4 <= self.slots.len() * 3 {
            return vacant;
        }
        self.grow();
        let mask = self.mask();
        let mut i = self.index_of(raw);
        while self.slots[i].is_some() {
            i = (i + 1) & mask;
        }
        i
    }

    /// Removes `key`, returning its value. Uses backward-shift deletion,
    /// so the table never accumulates tombstones.
    pub fn remove(&mut self, key: K) -> Option<V> {
        let i = self.find(key.as_u64())?;
        let (_, value) = self.slots[i].take().expect("found slot is occupied");
        self.len -= 1;
        // Backward shift: close the probe-chain hole at `i`.
        let mask = self.mask();
        let mut hole = i;
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let Some((k, _)) = &self.slots[j] else { break };
            let home = self.index_of(*k);
            // The entry at `j` may fill the hole iff its home position
            // does not lie cyclically within (hole, j].
            let blocked = if hole <= j {
                home > hole && home <= j
            } else {
                home > hole || home <= j
            };
            if !blocked {
                self.slots[hole] = self.slots[j].take();
                hole = j;
            }
        }
        Some(value)
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.len = 0;
    }

    /// Iterates over `(key, &value)` in table (arbitrary but
    /// deterministic) order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> + '_ {
        self.slots
            .iter()
            .flatten()
            .map(|(k, v)| (K::from_u64(*k), v))
    }

    /// Iterates over values in table order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.slots.iter().flatten().map(|(_, v)| v)
    }

    /// Iterates over keys in table order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.slots.iter().flatten().map(|(k, _)| K::from_u64(*k))
    }

    fn allocate(&mut self, capacity: usize) {
        debug_assert!(capacity.is_power_of_two());
        self.slots = (0..capacity).map(|_| None).collect();
        self.shift = 64 - capacity.trailing_zeros();
    }

    /// First allocation or doubling; rehashes every resident entry.
    /// Growth happens at 3/4 load, keeping linear probe chains short.
    fn grow(&mut self) {
        if self.slots.is_empty() {
            self.allocate(MIN_CAPACITY);
            return;
        }
        let old = std::mem::take(&mut self.slots);
        self.allocate(old.len() * 2);
        let mask = self.mask();
        for (k, v) in old.into_iter().flatten() {
            let mut i = self.index_of(k);
            while self.slots[i].is_some() {
                i = (i + 1) & mask;
            }
            self.slots[i] = Some((k, v));
        }
    }
}

impl<K: Key64, V> std::ops::Index<&K> for FxMap<K, V> {
    type Output = V;
    fn index(&self, key: &K) -> &V {
        self.get(*key).expect("key not present in FxMap")
    }
}

impl<K: Key64, V> FromIterator<(K, V)> for FxMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = FxMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::VPage;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut m: FxMap64<u32> = FxMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(2, 20), None);
        assert_eq!(m.insert(1, 11), Some(10));
        assert_eq!(m.get(1), Some(&11));
        assert_eq!(m.get(3), None);
        assert_eq!(m.remove(1), Some(11));
        assert_eq!(m.remove(1), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m: FxMap64<u64> = FxMap::new();
        for i in 0..10_000 {
            m.insert(i, i * 3);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000 {
            assert_eq!(m.get(i), Some(&(i * 3)), "key {i}");
        }
    }

    #[test]
    fn backward_shift_deletion_preserves_probe_chains() {
        // Stress collisions and removals: consecutive keys cluster in
        // probe chains; removing from a chain's middle must not orphan
        // its tail.
        let mut m: FxMap64<u64> = FxMap::with_capacity(64);
        for i in 0..48 {
            m.insert(i, i);
        }
        for i in (0..48).step_by(3) {
            assert_eq!(m.remove(i), Some(i));
        }
        for i in 0..48 {
            if i % 3 == 0 {
                assert_eq!(m.get(i), None);
            } else {
                assert_eq!(m.get(i), Some(&i), "chain broken at {i}");
            }
        }
    }

    #[test]
    fn entry_or_default_inserts_once() {
        let mut m: FxMap<VPage, u64> = FxMap::new();
        *m.entry_or_default(VPage(5)) += 1;
        *m.entry_or_default(VPage(5)) += 1;
        assert_eq!(m.get(VPage(5)), Some(&2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iteration_visits_every_entry_exactly_once() {
        let mut m: FxMap<VPage, u32> = FxMap::new();
        for p in 0..100 {
            m.insert(VPage(p), p as u32);
        }
        let mut seen: Vec<u64> = m.iter().map(|(k, _)| k.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
        assert_eq!(m.values().count(), 100);
        assert_eq!(m.keys().count(), 100);
    }

    #[test]
    fn iteration_order_is_deterministic() {
        let build = || {
            let mut m: FxMap64<u32> = FxMap::new();
            for i in 0..500 {
                m.insert(i * 7 + 1, i as u32);
            }
            for i in 0..100 {
                m.remove(i * 13);
            }
            m.iter().map(|(k, _)| k).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn index_operator_matches_hashmap_tests() {
        let mut m: FxMap<VPage, u32> = FxMap::new();
        m.insert(VPage(9), 3);
        assert_eq!(m[&VPage(9)], 3);
    }

    #[test]
    fn clear_then_reuse() {
        let mut m: FxMap64<u8> = FxMap::new();
        for i in 0..50 {
            m.insert(i, 0);
        }
        m.clear();
        assert!(m.is_empty());
        m.insert(1, 1);
        assert_eq!(m.get(1), Some(&1));
    }

    #[test]
    fn from_iterator_collects() {
        let m: FxMap64<u32> = (0..10u64).map(|i| (i, i as u32)).collect();
        assert_eq!(m.len(), 10);
        assert_eq!(m.get(4), Some(&4));
    }

    #[test]
    fn extreme_keys_work() {
        let mut m: FxMap64<&str> = FxMap::new();
        m.insert(0, "zero");
        m.insert(u64::MAX, "max");
        m.insert(1 << 63, "high bit");
        assert_eq!(m.get(0), Some(&"zero"));
        assert_eq!(m.get(u64::MAX), Some(&"max"));
        assert_eq!(m.get(1 << 63), Some(&"high bit"));
    }
}
