//! The per-processor data cache.
//!
//! Each of the node's four CPUs has an 8-KB direct-mapped data cache with
//! 32-byte lines (Section 4: small caches chosen because the SPLASH-2
//! primary working sets fit in 8 KB). Instruction caches are assumed
//! perfect, as in the paper, so only data caches are modeled.

use crate::addr::{VBlock, VPage};
use crate::cache::{DirectCache, Insert, Line};
use crate::moesi::Moesi;

/// Outcome of probing an L1 for a load or store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum L1Probe {
    /// The access completes inside the cache.
    Hit,
    /// The block is present but the access needs a bus upgrade
    /// (store to a `Shared`/`Owned` line).
    UpgradeMiss,
    /// The block is absent.
    Miss,
}

/// What an evicted line requires of the bus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L1Eviction {
    /// The displaced block.
    pub block: VBlock,
    /// `true` when the victim was dirty (`M`/`O`) and must be written back.
    pub dirty: bool,
}

/// An 8-KB-class direct-mapped write-back data cache with MOESI states.
///
/// # Example
///
/// ```
/// use rnuma_mem::addr::VBlock;
/// use rnuma_mem::l1::{L1Cache, L1Probe};
/// use rnuma_mem::moesi::Moesi;
///
/// let mut l1 = L1Cache::new(8 * 1024);
/// assert_eq!(l1.probe_read(VBlock(7)), L1Probe::Miss);
/// l1.fill(VBlock(7), Moesi::Exclusive);
/// assert_eq!(l1.probe_read(VBlock(7)), L1Probe::Hit);
/// assert_eq!(l1.probe_write(VBlock(7)), L1Probe::Hit); // E allows stores
/// ```
#[derive(Clone, Debug)]
pub struct L1Cache {
    lines: DirectCache<Moesi>,
}

impl L1Cache {
    /// Creates a cache of `bytes` capacity (32-byte lines, direct-mapped).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is smaller than one line.
    #[must_use]
    pub fn new(bytes: u64) -> L1Cache {
        L1Cache {
            lines: DirectCache::with_capacity_bytes(bytes),
        }
    }

    /// Number of lines.
    #[must_use]
    pub fn num_lines(&self) -> usize {
        self.lines.num_lines()
    }

    /// Classifies a load.
    #[must_use]
    pub fn probe_read(&self, block: VBlock) -> L1Probe {
        match self.lines.get(block) {
            Some(l) if l.state.can_read() => L1Probe::Hit,
            Some(_) | None => L1Probe::Miss,
        }
    }

    /// Classifies a store.
    #[must_use]
    pub fn probe_write(&self, block: VBlock) -> L1Probe {
        match self.lines.get(block) {
            Some(l) if l.state.can_write() => L1Probe::Hit,
            Some(l) if l.state.is_valid() => L1Probe::UpgradeMiss,
            Some(_) | None => L1Probe::Miss,
        }
    }

    /// Current state of `block` (`Invalid` when absent).
    #[must_use]
    pub fn state(&self, block: VBlock) -> Moesi {
        self.lines.get(block).map_or(Moesi::Invalid, |l| l.state)
    }

    /// Installs `block` in `state`, returning the eviction the fill caused,
    /// if any.
    pub fn fill(&mut self, block: VBlock, state: Moesi) -> Option<L1Eviction> {
        debug_assert!(state.is_valid(), "filling an invalid line is meaningless");
        match self.lines.insert(block, state) {
            Insert::Placed => None,
            Insert::Evicted(Line { block, state }) => Some(L1Eviction {
                block,
                dirty: state.is_dirty(),
            }),
        }
    }

    /// Records a store hit: the line becomes `Modified`.
    ///
    /// # Panics
    ///
    /// Panics if the block is not writable (callers must have upgraded).
    pub fn store_hit(&mut self, block: VBlock) {
        let line = self
            .lines
            .get_mut(block)
            .expect("store_hit requires residency");
        assert!(
            line.state.can_write(),
            "store_hit requires write permission"
        );
        line.state = line.state.after_store();
    }

    /// Grants write permission after a bus upgrade: the line becomes
    /// `Modified` (installing it if absent).
    pub fn grant_write(&mut self, block: VBlock) -> Option<L1Eviction> {
        if let Some(line) = self.lines.get_mut(block) {
            line.state = Moesi::Modified;
            None
        } else {
            self.fill(block, Moesi::Modified)
        }
    }

    /// Applies a peer read snoop. Returns `true` when this cache was the
    /// owner and supplied the data.
    pub fn snoop_read(&mut self, block: VBlock) -> bool {
        if let Some(line) = self.lines.get_mut(block) {
            let was_owner = line.state.is_owner();
            line.state = line.state.after_snoop_read();
            was_owner
        } else {
            false
        }
    }

    /// Applies a peer write/upgrade snoop, invalidating any copy.
    /// Returns `true` when a dirty copy was destroyed (it is implicitly
    /// transferred to the writer on a real bus).
    pub fn snoop_write(&mut self, block: VBlock) -> bool {
        match self.lines.remove(block) {
            Some(line) => line.state.is_dirty(),
            None => false,
        }
    }

    /// Invalidates `block` (inclusion enforcement or page flush).
    /// Returns the line if one was present.
    pub fn invalidate(&mut self, block: VBlock) -> Option<Moesi> {
        self.lines.remove(block).map(|l| l.state)
    }

    /// DSM-level downgrade: a remote reader forced the node to give up
    /// exclusivity; the dirty data has been flushed home, so any local
    /// copy becomes clean `Shared`. Returns `true` when a dirty copy was
    /// flushed.
    pub fn downgrade_to_shared(&mut self, block: VBlock) -> bool {
        if let Some(line) = self.lines.get_mut(block) {
            let was_dirty = line.state.is_dirty();
            line.state = Moesi::Shared;
            was_dirty
        } else {
            false
        }
    }

    /// Invalidates every block of `page`, returning how many lines were
    /// dropped and how many of them were dirty.
    pub fn invalidate_page(&mut self, page: VPage) -> (u32, u32) {
        let (mut dropped, mut dirty) = (0u32, 0u32);
        self.lines.drain_matching_with(
            |l| l.block.vpage() == page,
            |l| {
                dropped += 1;
                dirty += u32::from(l.state.is_dirty());
            },
        );
        (dropped, dirty)
    }

    /// Number of resident lines.
    #[must_use]
    pub fn occupied(&self) -> usize {
        self.lines.occupied()
    }

    /// Iterates over `(block, state)` for resident lines.
    pub fn iter(&self) -> impl Iterator<Item = (VBlock, Moesi)> + '_ {
        self.lines.iter().map(|l| (l.block, l.state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> L1Cache {
        L1Cache::new(128) // 4 lines: easy conflicts
    }

    #[test]
    fn paper_l1_is_256_lines() {
        assert_eq!(L1Cache::new(8 * 1024).num_lines(), 256);
    }

    #[test]
    fn read_miss_then_hit() {
        let mut l1 = small();
        assert_eq!(l1.probe_read(VBlock(1)), L1Probe::Miss);
        assert!(l1.fill(VBlock(1), Moesi::Shared).is_none());
        assert_eq!(l1.probe_read(VBlock(1)), L1Probe::Hit);
        assert_eq!(l1.state(VBlock(1)), Moesi::Shared);
    }

    #[test]
    fn store_to_shared_is_upgrade_miss() {
        let mut l1 = small();
        l1.fill(VBlock(2), Moesi::Shared);
        assert_eq!(l1.probe_write(VBlock(2)), L1Probe::UpgradeMiss);
        l1.grant_write(VBlock(2));
        assert_eq!(l1.probe_write(VBlock(2)), L1Probe::Hit);
        assert_eq!(l1.state(VBlock(2)), Moesi::Modified);
    }

    #[test]
    fn store_hit_on_exclusive_goes_modified_silently() {
        let mut l1 = small();
        l1.fill(VBlock(3), Moesi::Exclusive);
        assert_eq!(l1.probe_write(VBlock(3)), L1Probe::Hit);
        l1.store_hit(VBlock(3));
        assert_eq!(l1.state(VBlock(3)), Moesi::Modified);
    }

    #[test]
    fn conflict_eviction_reports_dirtiness() {
        let mut l1 = small();
        l1.fill(VBlock(0), Moesi::Modified);
        // Block 4 conflicts with block 0 in a 4-line cache.
        let ev = l1.fill(VBlock(4), Moesi::Shared).expect("conflict");
        assert_eq!(ev.block, VBlock(0));
        assert!(ev.dirty);
        let ev2 = l1.fill(VBlock(8), Moesi::Shared).expect("conflict");
        assert!(!ev2.dirty);
    }

    #[test]
    fn snoop_read_downgrades_and_reports_supply() {
        let mut l1 = small();
        l1.fill(VBlock(1), Moesi::Modified);
        assert!(l1.snoop_read(VBlock(1)), "M owner supplies data");
        assert_eq!(l1.state(VBlock(1)), Moesi::Owned);
        // Shared copies do not supply on MBus.
        let mut l2 = small();
        l2.fill(VBlock(1), Moesi::Shared);
        assert!(!l2.snoop_read(VBlock(1)));
        assert_eq!(l2.state(VBlock(1)), Moesi::Shared);
    }

    #[test]
    fn snoop_write_invalidates() {
        let mut l1 = small();
        l1.fill(VBlock(1), Moesi::Owned);
        assert!(l1.snoop_write(VBlock(1)), "dirty copy destroyed");
        assert_eq!(l1.state(VBlock(1)), Moesi::Invalid);
        assert!(!l1.snoop_write(VBlock(1)));
    }

    #[test]
    fn invalidate_page_sweeps_only_that_page() {
        let mut l1 = L1Cache::new(8 * 1024);
        let p = VPage(0);
        for (i, b) in p.blocks().take(6).enumerate() {
            l1.fill(
                b,
                if i % 2 == 0 {
                    Moesi::Modified
                } else {
                    Moesi::Shared
                },
            );
        }
        l1.fill(VPage(3).block(0), Moesi::Shared);
        let (n, dirty) = l1.invalidate_page(p);
        assert_eq!((n, dirty), (6, 3));
        assert_eq!(l1.occupied(), 1);
    }

    #[test]
    #[should_panic(expected = "write permission")]
    fn store_hit_without_permission_panics() {
        let mut l1 = small();
        l1.fill(VBlock(1), Moesi::Shared);
        l1.store_hit(VBlock(1));
    }
}
