//! Fine-grain access-control tags for S-COMA page-cache frames.
//!
//! The S-COMA RAD keeps "two bits per block to detect when the RAD must
//! inhibit memory and intervene" (Section 2.2). A block in a page-cache
//! frame is either absent ([`AccessTag::Invalid`]), readable
//! ([`AccessTag::ReadOnly`]), or writable ([`AccessTag::ReadWrite`]).
//! Loads to `Invalid` and stores to `Invalid`/`ReadOnly` inhibit memory
//! and trigger a protocol action at the home node.
//!
//! The tags are stored exactly as the hardware would: two bits per block,
//! 128 blocks per 4-KB page, i.e. four 64-bit words per frame.

use std::fmt;

use crate::addr::BLOCKS_PER_PAGE;

/// The access-control state of one 32-byte block within a frame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AccessTag {
    /// Block not present in the frame; any access must fetch it.
    #[default]
    Invalid = 0,
    /// Block present read-only; stores must upgrade at the home.
    ReadOnly = 1,
    /// Block present with write permission (and possibly dirty).
    ReadWrite = 2,
}

impl AccessTag {
    fn from_bits(bits: u64) -> AccessTag {
        match bits & 0b11 {
            0 => AccessTag::Invalid,
            1 => AccessTag::ReadOnly,
            2 => AccessTag::ReadWrite,
            _ => unreachable!("tag encoding 3 is never written"),
        }
    }

    /// `true` when a load can be satisfied locally.
    #[must_use]
    pub fn readable(self) -> bool {
        self != AccessTag::Invalid
    }

    /// `true` when a store can be satisfied locally.
    #[must_use]
    pub fn writable(self) -> bool {
        self == AccessTag::ReadWrite
    }
}

impl fmt::Display for AccessTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessTag::Invalid => "inv",
            AccessTag::ReadOnly => "ro",
            AccessTag::ReadWrite => "rw",
        };
        f.write_str(s)
    }
}

const WORDS: usize = (BLOCKS_PER_PAGE as usize * 2).div_ceil(64);

/// The 2-bit-per-block tag array of one page-cache frame.
///
/// # Example
///
/// ```
/// use rnuma_mem::fine_tags::{AccessTag, FineTags};
///
/// let mut tags = FineTags::new();
/// assert_eq!(tags.get(5), AccessTag::Invalid);
/// tags.set(5, AccessTag::ReadWrite);
/// assert!(tags.get(5).writable());
/// assert_eq!(tags.count_valid(), 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FineTags {
    words: [u64; WORDS],
}

impl FineTags {
    /// All-invalid tags (a freshly allocated frame).
    #[must_use]
    pub fn new() -> FineTags {
        FineTags::default()
    }

    /// The tag of block `index` within the page.
    ///
    /// # Panics
    ///
    /// Panics if `index >= BLOCKS_PER_PAGE`.
    #[must_use]
    pub fn get(&self, index: u64) -> AccessTag {
        assert!(index < BLOCKS_PER_PAGE, "block index {index} out of page");
        let bit = (index as usize) * 2;
        AccessTag::from_bits(self.words[bit / 64] >> (bit % 64))
    }

    /// Sets the tag of block `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= BLOCKS_PER_PAGE`.
    pub fn set(&mut self, index: u64, tag: AccessTag) {
        assert!(index < BLOCKS_PER_PAGE, "block index {index} out of page");
        let bit = (index as usize) * 2;
        let word = &mut self.words[bit / 64];
        *word &= !(0b11 << (bit % 64));
        *word |= (tag as u64) << (bit % 64);
    }

    /// Number of blocks present (read-only or read-write).
    #[must_use]
    pub fn count_valid(&self) -> u32 {
        (0..BLOCKS_PER_PAGE)
            .filter(|&i| self.get(i).readable())
            .count() as u32
    }

    /// Number of blocks with write permission (flushed as dirty).
    #[must_use]
    pub fn count_read_write(&self) -> u32 {
        (0..BLOCKS_PER_PAGE)
            .filter(|&i| self.get(i).writable())
            .count() as u32
    }

    /// Resets every tag to `Invalid`.
    pub fn clear(&mut self) {
        self.words = [0; WORDS];
    }

    /// Iterates `(block_index, tag)` over non-invalid blocks.
    pub fn iter_valid(&self) -> impl Iterator<Item = (u64, AccessTag)> + '_ {
        (0..BLOCKS_PER_PAGE)
            .map(|i| (i, self.get(i)))
            .filter(|(_, t)| t.readable())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_budget_is_two_bits_per_block() {
        // 128 blocks x 2 bits = 256 bits = 4 words of 64.
        assert_eq!(WORDS, 4);
        assert_eq!(std::mem::size_of::<FineTags>(), 32);
    }

    #[test]
    fn fresh_tags_are_all_invalid() {
        let t = FineTags::new();
        assert_eq!(t.count_valid(), 0);
        for i in 0..BLOCKS_PER_PAGE {
            assert_eq!(t.get(i), AccessTag::Invalid);
        }
    }

    #[test]
    fn set_get_round_trip_all_positions() {
        let mut t = FineTags::new();
        for i in 0..BLOCKS_PER_PAGE {
            let tag = match i % 3 {
                0 => AccessTag::Invalid,
                1 => AccessTag::ReadOnly,
                _ => AccessTag::ReadWrite,
            };
            t.set(i, tag);
        }
        for i in 0..BLOCKS_PER_PAGE {
            let want = match i % 3 {
                0 => AccessTag::Invalid,
                1 => AccessTag::ReadOnly,
                _ => AccessTag::ReadWrite,
            };
            assert_eq!(t.get(i), want, "block {i}");
        }
    }

    #[test]
    fn neighbors_do_not_interfere() {
        let mut t = FineTags::new();
        t.set(31, AccessTag::ReadWrite); // word boundary region
        t.set(32, AccessTag::ReadOnly);
        t.set(33, AccessTag::ReadWrite);
        assert_eq!(t.get(31), AccessTag::ReadWrite);
        assert_eq!(t.get(32), AccessTag::ReadOnly);
        assert_eq!(t.get(33), AccessTag::ReadWrite);
        t.set(32, AccessTag::Invalid);
        assert_eq!(t.get(31), AccessTag::ReadWrite);
        assert_eq!(t.get(33), AccessTag::ReadWrite);
    }

    #[test]
    fn counts() {
        let mut t = FineTags::new();
        t.set(0, AccessTag::ReadOnly);
        t.set(1, AccessTag::ReadWrite);
        t.set(2, AccessTag::ReadWrite);
        assert_eq!(t.count_valid(), 3);
        assert_eq!(t.count_read_write(), 2);
        t.clear();
        assert_eq!(t.count_valid(), 0);
    }

    #[test]
    fn permission_semantics() {
        assert!(!AccessTag::Invalid.readable());
        assert!(AccessTag::ReadOnly.readable());
        assert!(!AccessTag::ReadOnly.writable());
        assert!(AccessTag::ReadWrite.writable());
    }

    #[test]
    fn iter_valid_lists_only_present_blocks() {
        let mut t = FineTags::new();
        t.set(10, AccessTag::ReadOnly);
        t.set(100, AccessTag::ReadWrite);
        let v: Vec<_> = t.iter_valid().collect();
        assert_eq!(
            v,
            vec![(10, AccessTag::ReadOnly), (100, AccessTag::ReadWrite)]
        );
    }

    #[test]
    #[should_panic(expected = "out of page")]
    fn out_of_range_get_panics() {
        let _ = FineTags::new().get(BLOCKS_PER_PAGE);
    }
}
