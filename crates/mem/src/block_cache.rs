//! The CC-NUMA / R-NUMA remote block cache.
//!
//! The block cache is a direct-mapped, write-back SRAM cache on the RAD
//! that holds *remote* blocks only (Section 2.1). It maintains inclusion
//! with respect to the node's processor caches for blocks cached
//! read-write, but **not** for read-only blocks (Section 4): evicting a
//! read-write line therefore forces L1 invalidations, while read-only
//! blocks may outlive their block-cache line in some L1 — and, because
//! MBus lacks cache-to-cache transfer of non-owned lines, a later miss on
//! such a block still travels to the home node.
//!
//! An [`BlockCache::infinite`] variant implements the paper's "ideal
//! CC-NUMA with an infinite block cache" normalization baseline.

use crate::addr::{VBlock, VPage};
use crate::cache::{DirectCache, InfiniteCache, Insert};

/// Per-line protocol state in the block cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockState {
    /// `true` when the node holds the block with write permission.
    pub read_write: bool,
    /// `true` when the cached copy is newer than the home's memory.
    pub dirty: bool,
}

impl BlockState {
    /// A clean read-only copy.
    #[must_use]
    pub fn read_only() -> BlockState {
        BlockState {
            read_write: false,
            dirty: false,
        }
    }

    /// A writable copy (clean until written).
    #[must_use]
    pub fn writable() -> BlockState {
        BlockState {
            read_write: true,
            dirty: false,
        }
    }
}

/// A line displaced from the block cache, with its obligations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockEviction {
    /// The displaced block.
    pub block: VBlock,
    /// Its state; `read_write` requires L1 inclusion invalidations and
    /// `dirty` requires a write-back to the home node.
    pub state: BlockState,
}

#[derive(Clone, Debug)]
enum Store {
    Finite(DirectCache<BlockState>),
    Infinite(InfiniteCache<BlockState>),
}

/// The RAD's remote block cache (finite direct-mapped or ideal infinite).
///
/// # Example
///
/// ```
/// use rnuma_mem::addr::VBlock;
/// use rnuma_mem::block_cache::{BlockCache, BlockState};
///
/// let mut bc = BlockCache::direct_mapped(128); // R-NUMA's tiny cache
/// bc.fill(VBlock(0), BlockState::read_only());
/// assert!(bc.probe(VBlock(0)).is_some());
/// // A conflicting fill evicts.
/// let ev = bc.fill(VBlock(4), BlockState::writable()).unwrap();
/// assert_eq!(ev.block, VBlock(0));
/// ```
#[derive(Clone, Debug)]
pub struct BlockCache {
    store: Store,
}

impl BlockCache {
    /// A direct-mapped cache of `bytes` capacity (32-byte lines).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is smaller than one line.
    #[must_use]
    pub fn direct_mapped(bytes: u64) -> BlockCache {
        BlockCache {
            store: Store::Finite(DirectCache::with_capacity_bytes(bytes)),
        }
    }

    /// The ideal infinite cache used as the normalization baseline.
    #[must_use]
    pub fn infinite() -> BlockCache {
        BlockCache {
            store: Store::Infinite(InfiniteCache::new()),
        }
    }

    /// `true` for the infinite variant.
    #[must_use]
    pub fn is_infinite(&self) -> bool {
        matches!(self.store, Store::Infinite(_))
    }

    /// Line count for the finite variant; `None` when infinite.
    #[must_use]
    pub fn num_lines(&self) -> Option<usize> {
        match &self.store {
            Store::Finite(c) => Some(c.num_lines()),
            Store::Infinite(_) => None,
        }
    }

    /// State of `block` if resident.
    #[must_use]
    pub fn probe(&self, block: VBlock) -> Option<BlockState> {
        match &self.store {
            Store::Finite(c) => c.get(block).map(|l| l.state),
            Store::Infinite(c) => c.get(block).copied(),
        }
    }

    /// Installs `block`, returning the eviction it caused, if any.
    pub fn fill(&mut self, block: VBlock, state: BlockState) -> Option<BlockEviction> {
        match &mut self.store {
            Store::Finite(c) => match c.insert(block, state) {
                Insert::Placed => None,
                Insert::Evicted(l) => Some(BlockEviction {
                    block: l.block,
                    state: l.state,
                }),
            },
            Store::Infinite(c) => {
                c.insert(block, state);
                None
            }
        }
    }

    /// Upgrades a resident block to writable. No-op when absent (the
    /// caller will fill instead).
    pub fn grant_write(&mut self, block: VBlock) {
        if let Some(state) = self.state_mut(block) {
            state.read_write = true;
        }
    }

    /// Marks a resident block dirty (a processor wrote it and the block
    /// cache copy is now stale-in-memory). No-op when absent.
    pub fn mark_dirty(&mut self, block: VBlock) {
        if let Some(state) = self.state_mut(block) {
            debug_assert!(state.read_write, "dirty implies write permission");
            state.dirty = true;
        }
    }

    /// Downgrades a resident block to read-only clean (home forced a
    /// flush for a remote reader). No-op when absent.
    pub fn downgrade(&mut self, block: VBlock) {
        if let Some(state) = self.state_mut(block) {
            state.read_write = false;
            state.dirty = false;
        }
    }

    /// Removes `block` (remote writer invalidated it), returning its
    /// state if it was resident.
    pub fn invalidate(&mut self, block: VBlock) -> Option<BlockState> {
        match &mut self.store {
            Store::Finite(c) => c.remove(block).map(|l| l.state),
            Store::Infinite(c) => c.remove(block),
        }
    }

    /// Removes every block of `page` (page relocation or unmap),
    /// returning the removed lines. Hot callers should prefer
    /// [`BlockCache::flush_page_into`] with a reused buffer — this
    /// convenience form allocates a fresh `Vec` per call.
    pub fn flush_page(&mut self, page: VPage) -> Vec<BlockEviction> {
        let mut out = Vec::new();
        self.flush_page_into(page, &mut out);
        out
    }

    /// Removes every block of `page`, appending the evictions to a
    /// caller-provided buffer. No allocation occurs once the buffer has
    /// reached its high-water mark, which matters on the relocation path
    /// where every R-NUMA page switch flushes the block cache.
    pub fn flush_page_into(&mut self, page: VPage, out: &mut Vec<BlockEviction>) {
        match &mut self.store {
            Store::Finite(c) => {
                c.drain_matching_with(
                    |l| l.block.vpage() == page,
                    |l| {
                        out.push(BlockEviction {
                            block: l.block,
                            state: l.state,
                        });
                    },
                );
            }
            Store::Infinite(c) => {
                for b in page.blocks() {
                    if let Some(state) = c.remove(b) {
                        out.push(BlockEviction { block: b, state });
                    }
                }
            }
        }
    }

    /// Number of resident blocks.
    #[must_use]
    pub fn occupied(&self) -> usize {
        match &self.store {
            Store::Finite(c) => c.occupied(),
            Store::Infinite(c) => c.len(),
        }
    }

    fn state_mut(&mut self, block: VBlock) -> Option<&mut BlockState> {
        match &mut self.store {
            Store::Finite(c) => c.get_mut(block).map(|l| &mut l.state),
            Store::Infinite(c) => c.get_mut(block),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::BLOCKS_PER_PAGE;

    #[test]
    fn paper_configurations() {
        assert_eq!(BlockCache::direct_mapped(128).num_lines(), Some(4));
        assert_eq!(BlockCache::direct_mapped(1024).num_lines(), Some(32));
        assert_eq!(BlockCache::direct_mapped(32 * 1024).num_lines(), Some(1024));
        assert_eq!(BlockCache::infinite().num_lines(), None);
        assert!(BlockCache::infinite().is_infinite());
    }

    #[test]
    fn fill_probe_invalidate() {
        let mut bc = BlockCache::direct_mapped(128);
        assert!(bc.probe(VBlock(9)).is_none());
        assert!(bc.fill(VBlock(9), BlockState::read_only()).is_none());
        assert_eq!(bc.probe(VBlock(9)), Some(BlockState::read_only()));
        assert_eq!(bc.invalidate(VBlock(9)), Some(BlockState::read_only()));
        assert!(bc.probe(VBlock(9)).is_none());
    }

    #[test]
    fn conflict_evictions_surface_obligations() {
        let mut bc = BlockCache::direct_mapped(128); // 4 lines
        bc.fill(VBlock(1), BlockState::writable());
        bc.mark_dirty(VBlock(1));
        let ev = bc.fill(VBlock(5), BlockState::read_only()).unwrap();
        assert_eq!(ev.block, VBlock(1));
        assert!(ev.state.read_write && ev.state.dirty);
    }

    #[test]
    fn write_upgrade_and_downgrade() {
        let mut bc = BlockCache::direct_mapped(128);
        bc.fill(VBlock(2), BlockState::read_only());
        bc.grant_write(VBlock(2));
        bc.mark_dirty(VBlock(2));
        let s = bc.probe(VBlock(2)).unwrap();
        assert!(s.read_write && s.dirty);
        bc.downgrade(VBlock(2));
        let s = bc.probe(VBlock(2)).unwrap();
        assert!(!s.read_write && !s.dirty);
    }

    #[test]
    fn flush_page_clears_only_that_page() {
        let mut bc = BlockCache::direct_mapped(32 * 1024);
        let page = VPage(2);
        for b in page.blocks().take(5) {
            bc.fill(b, BlockState::writable());
        }
        bc.fill(VPage(7).block(0), BlockState::read_only());
        let flushed = bc.flush_page(page);
        assert_eq!(flushed.len(), 5);
        assert_eq!(bc.occupied(), 1);
        let _ = BLOCKS_PER_PAGE;
    }

    #[test]
    fn flush_page_into_reuses_the_buffer() {
        let mut bc = BlockCache::direct_mapped(32 * 1024);
        let mut buf = Vec::new();
        for page in [VPage(2), VPage(3)] {
            for b in page.blocks().take(5) {
                bc.fill(b, BlockState::writable());
            }
            buf.clear();
            bc.flush_page_into(page, &mut buf);
            assert_eq!(buf.len(), 5);
            assert!(buf.iter().all(|ev| ev.block.vpage() == page));
        }
        // The convenience form agrees with the buffered form.
        for b in VPage(4).blocks().take(3) {
            bc.fill(b, BlockState::read_only());
        }
        assert_eq!(bc.flush_page(VPage(4)).len(), 3);
        // Infinite store goes through the same API.
        let mut inf = BlockCache::infinite();
        inf.fill(VPage(9).block(0), BlockState::read_only());
        buf.clear();
        inf.flush_page_into(VPage(9), &mut buf);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn infinite_cache_never_evicts_and_flushes_pages() {
        let mut bc = BlockCache::infinite();
        for i in 0..100_000u64 {
            assert!(bc.fill(VBlock(i), BlockState::read_only()).is_none());
        }
        assert_eq!(bc.occupied(), 100_000);
        let page = VPage(0);
        let flushed = bc.flush_page(page);
        assert_eq!(flushed.len(), BLOCKS_PER_PAGE as usize);
        assert_eq!(bc.occupied(), 100_000 - BLOCKS_PER_PAGE as usize);
    }

    #[test]
    fn ops_on_absent_blocks_are_noops() {
        let mut bc = BlockCache::direct_mapped(128);
        bc.grant_write(VBlock(1));
        bc.downgrade(VBlock(1));
        assert!(bc.invalidate(VBlock(1)).is_none());
        assert_eq!(bc.occupied(), 0);
    }
}
