//! Property-based tests for memory-hierarchy invariants.

use proptest::prelude::*;
use rnuma_mem::addr::{NodeId, NodeMask, VBlock, VPage, Va, BLOCKS_PER_PAGE, PAGE_BYTES};
use rnuma_mem::block_cache::{BlockCache, BlockState};
use rnuma_mem::cache::DirectCache;
use rnuma_mem::fine_tags::{AccessTag, FineTags};
use rnuma_mem::fxmap::FxMap64;
use rnuma_mem::l1::L1Cache;
use rnuma_mem::moesi::Moesi;
use rnuma_mem::page_cache::PageCache;
use rnuma_mem::paged::{dir_shard_of, PagedMap};

fn arb_tag() -> impl Strategy<Value = AccessTag> {
    prop_oneof![
        Just(AccessTag::Invalid),
        Just(AccessTag::ReadOnly),
        Just(AccessTag::ReadWrite),
    ]
}

proptest! {
    /// Address decomposition is consistent: every Va belongs to the page
    /// of its block, and offsets recompose to the original address.
    #[test]
    fn address_round_trip(raw in 0u64..(1 << 44)) {
        let va = Va(raw);
        prop_assert_eq!(va.vblock().vpage(), va.vpage());
        let rebuilt = va.vpage().base().0
            + va.vblock().index_in_page() * 32
            + va.offset_in_block();
        prop_assert_eq!(rebuilt, raw);
    }

    /// A direct-mapped cache never holds more lines than its capacity and
    /// a resident block is always found at its own index.
    #[test]
    fn direct_cache_capacity_invariant(
        lines in 1usize..64,
        blocks in prop::collection::vec(0u64..10_000, 0..500),
    ) {
        let mut c: DirectCache<u8> = DirectCache::new(lines);
        for b in blocks {
            c.insert(VBlock(b), 0);
            prop_assert!(c.occupied() <= lines);
            prop_assert!(c.contains(VBlock(b)));
        }
    }

    /// Two blocks can conflict only if they share an index.
    #[test]
    fn direct_cache_conflicts_share_index(
        lines in 1usize..64,
        a in 0u64..10_000,
        b in 0u64..10_000,
    ) {
        prop_assume!(a != b);
        let mut c: DirectCache<u8> = DirectCache::new(lines);
        c.insert(VBlock(a), 0);
        let evicted = matches!(
            c.insert(VBlock(b), 0),
            rnuma_mem::cache::Insert::Evicted(_)
        );
        prop_assert_eq!(evicted, a % lines as u64 == b % lines as u64);
    }

    /// Fine-grain tags behave as an independent array of 2-bit cells.
    #[test]
    fn fine_tags_independent_cells(
        writes in prop::collection::vec((0u64..BLOCKS_PER_PAGE, arb_tag()), 0..300)
    ) {
        let mut tags = FineTags::new();
        let mut model = [AccessTag::Invalid; 128];
        for (i, t) in writes {
            tags.set(i, t);
            model[i as usize] = t;
        }
        for i in 0..BLOCKS_PER_PAGE {
            prop_assert_eq!(tags.get(i), model[i as usize]);
        }
        let valid = model.iter().filter(|t| t.readable()).count() as u32;
        let rw = model.iter().filter(|t| t.writable()).count() as u32;
        prop_assert_eq!(tags.count_valid(), valid);
        prop_assert_eq!(tags.count_read_write(), rw);
    }

    /// The page cache never exceeds its frame count, and lookup agrees
    /// with allocation history.
    #[test]
    fn page_cache_capacity_invariant(
        frames in 1u64..16,
        pages in prop::collection::vec(0u64..64, 1..200),
    ) {
        let mut pc = PageCache::new(frames * PAGE_BYTES);
        let mut resident: Vec<u64> = Vec::new();
        for p in pages {
            if pc.lookup(VPage(p)).is_some() {
                pc.record_miss(VPage(p));
                continue;
            }
            let alloc = pc.allocate(VPage(p));
            if let Some(v) = alloc.victim {
                prop_assert!(resident.contains(&v.vpage.0));
                resident.retain(|&x| x != v.vpage.0);
            }
            resident.push(p);
            prop_assert!(pc.occupied() <= frames as usize);
            prop_assert_eq!(pc.occupied(), resident.len());
        }
        for &p in &resident {
            prop_assert!(pc.lookup(VPage(p)).is_some());
        }
    }

    /// LRM evicts the resident page whose last miss is oldest.
    #[test]
    fn lrm_evicts_least_recently_missed(
        misses in prop::collection::vec(0u64..4, 0..50),
    ) {
        let mut pc = PageCache::new(4 * PAGE_BYTES);
        for p in 0..4u64 {
            pc.allocate(VPage(p));
        }
        let mut stamps = [0u64, 1, 2, 3]; // allocation order stamps
        let mut clock = 4u64;
        for m in misses {
            clock += 1;
            pc.record_miss(VPage(m));
            stamps[m as usize] = clock;
        }
        let oldest = (0..4).min_by_key(|&i| stamps[i]).unwrap() as u64;
        let victim = pc.allocate(VPage(99)).victim.unwrap();
        prop_assert_eq!(victim.vpage, VPage(oldest));
    }

    /// L1 dirtiness is preserved exactly by fills and snoops: a block
    /// reported dirty on eviction must have been stored to.
    #[test]
    fn l1_eviction_dirtiness_tracks_stores(
        ops in prop::collection::vec((0u64..64, any::<bool>()), 1..300)
    ) {
        let mut l1 = L1Cache::new(128); // 4 lines, lots of conflicts
        let mut wrote = std::collections::HashSet::new();
        for (b, is_write) in ops {
            let block = VBlock(b);
            let ev = if is_write {
                wrote.insert(b);
                l1.grant_write(block)
            } else if l1.state(block) == Moesi::Invalid {
                l1.fill(block, Moesi::Shared)
            } else {
                None
            };
            if let Some(ev) = ev {
                prop_assert_eq!(ev.dirty, wrote.contains(&ev.block.0));
                if ev.dirty {
                    wrote.remove(&ev.block.0);
                }
            }
        }
    }

    /// NodeMask is a faithful set over 0..64.
    #[test]
    fn node_mask_is_a_set(ids in prop::collection::vec(0u8..64, 0..100)) {
        let mut mask = NodeMask::EMPTY;
        let mut model = std::collections::BTreeSet::new();
        for id in ids {
            mask.insert(NodeId(id));
            model.insert(id);
        }
        prop_assert_eq!(mask.count() as usize, model.len());
        let from_mask: Vec<u8> = mask.iter().map(|n| n.0).collect();
        let from_model: Vec<u8> = model.into_iter().collect();
        prop_assert_eq!(from_mask, from_model);
    }

    /// The open-addressed FxMap agrees with a `std` HashMap reference
    /// model under arbitrary insert/remove/lookup sequences — the
    /// correctness contract behind swapping it onto the hot path.
    #[test]
    fn fxmap_matches_hashmap_model(
        ops in prop::collection::vec((0u8..3, 0u64..64, 0u32..1000), 1..600)
    ) {
        let mut map: FxMap64<u32> = FxMap64::new();
        let mut model: std::collections::HashMap<u64, u32> =
            std::collections::HashMap::new();
        for (op, key, value) in ops {
            match op {
                0 => prop_assert_eq!(map.insert(key, value), model.insert(key, value)),
                1 => prop_assert_eq!(map.remove(key), model.remove(&key)),
                _ => prop_assert_eq!(map.get(key).copied(), model.get(&key).copied()),
            }
            prop_assert_eq!(map.len(), model.len());
        }
        // Full sweep: every surviving key agrees, and iteration covers
        // exactly the model's key set.
        for key in 0u64..64 {
            prop_assert_eq!(map.get(key).copied(), model.get(&key).copied());
        }
        let mut keys: Vec<u64> = map.iter().map(|(k, _)| k).collect();
        keys.sort_unstable();
        let mut model_keys: Vec<u64> = model.keys().copied().collect();
        model_keys.sort_unstable();
        prop_assert_eq!(keys, model_keys);
    }

    /// The map also agrees with the model when keys collide heavily and
    /// the table grows through several resizes.
    #[test]
    fn fxmap_survives_growth_and_clustering(
        keys in prop::collection::vec(0u64..10_000, 1..800)
    ) {
        let mut map: FxMap64<u64> = FxMap64::new();
        let mut model = std::collections::HashMap::new();
        for (i, &k) in keys.iter().enumerate() {
            // Consecutive-ish keys cluster probe chains on purpose.
            let key = k / 3;
            map.insert(key, i as u64);
            model.insert(key, i as u64);
        }
        prop_assert_eq!(map.len(), model.len());
        for (&k, &v) in &model {
            prop_assert_eq!(map.get(k), Some(&v));
        }
    }

    /// The paged dense map agrees with a `BTreeMap` reference model
    /// under arbitrary touch/get/get_mut sequences — the correctness
    /// contract behind swapping it under the home directory. The
    /// touched-bitmap semantics the directory's refetch detection needs
    /// are covered by op 1: `entry_or_default` marks a block *present
    /// with default state*, observably different from absent, without
    /// notifying neighbors.
    #[test]
    fn pagedmap_matches_btreemap_model(
        ops in prop::collection::vec(
            (0u8..4, 0u64..(16 * BLOCKS_PER_PAGE), 1u32..100),
            1..600,
        )
    ) {
        let mut paged: PagedMap<u32> = PagedMap::new();
        let mut model: std::collections::BTreeMap<u64, u32> =
            std::collections::BTreeMap::new();
        for (op, b, v) in ops {
            let block = VBlock(b);
            match op {
                // Insert-or-update through the entry API.
                0 => {
                    *paged.entry_or_default(block) += v;
                    *model.entry(b).or_insert(0) += v;
                }
                // Bare touch: present-with-default, not absent.
                1 => {
                    let _ = paged.entry_or_default(block);
                    model.entry(b).or_insert(0);
                }
                // In-place mutation of already-touched blocks only.
                2 => {
                    prop_assert_eq!(paged.get_mut(block).is_some(), model.contains_key(&b));
                    if let Some(slot) = paged.get_mut(block) {
                        *slot = v;
                    }
                    if let Some(slot) = model.get_mut(&b) {
                        *slot = v;
                    }
                }
                // Read-only probe.
                _ => prop_assert_eq!(paged.get(block).copied(), model.get(&b).copied()),
            }
            prop_assert_eq!(paged.len(), model.len());
            prop_assert_eq!(paged.is_empty(), model.is_empty());
        }
        // Full sweep: every block agrees, touched or absent.
        for b in 0..(16 * BLOCKS_PER_PAGE) {
            prop_assert_eq!(paged.get(VBlock(b)).copied(), model.get(&b).copied());
        }
        // Slab count equals the model's distinct touched pages.
        let model_pages: std::collections::BTreeSet<u64> =
            model.keys().map(|&b| VBlock(b).vpage().0).collect();
        prop_assert_eq!(paged.pages(), model_pages.len());
        // Per-page iteration is exactly the model's ascending range.
        for page in 0..16u64 {
            let from_model: Vec<(VBlock, u32)> = model
                .range(page * BLOCKS_PER_PAGE..(page + 1) * BLOCKS_PER_PAGE)
                .map(|(&b, &v)| (VBlock(b), v))
                .collect();
            let from_paged: Vec<(VBlock, u32)> = paged
                .page_entries(VPage(page))
                .map(|(b, &v)| (b, v))
                .collect();
            prop_assert_eq!(from_paged, from_model, "page {}", page);
        }
    }

    /// Page-boundary-straddling access patterns: runs of *consecutive*
    /// blocks whose start offsets land anywhere in a page, long enough
    /// to cross the 64-bit touched-bitmap word boundary (index 63→64)
    /// and the page boundary (index 127→page+1) in one sweep. The
    /// bitmap must mark exactly the run's blocks — never bleeding into
    /// untouched neighbors on either side of a boundary — counts must
    /// track distinct blocks (not touches), and per-page iteration must
    /// come back in ascending block order regardless of the order the
    /// straddling runs arrived in.
    #[test]
    fn boundary_straddling_runs_touch_exactly_their_blocks(
        runs in prop::collection::vec(
            (0u64..15, 0u64..BLOCKS_PER_PAGE, 1u64..(2 * BLOCKS_PER_PAGE + 2)),
            1..40,
        )
    ) {
        let mut paged: PagedMap<u32> = PagedMap::new();
        let mut model: std::collections::BTreeMap<u64, u32> =
            std::collections::BTreeMap::new();
        for &(page, offset, len) in &runs {
            let start = page * BLOCKS_PER_PAGE + offset;
            for b in start..start + len {
                *paged.entry_or_default(VBlock(b)) += 1;
                *model.entry(b).or_insert(0) += 1;
            }
        }
        // Exactly the run blocks are touched, with per-block touch
        // counts intact (no bleed across word or page boundaries), and
        // everything else — including the immediate neighbors of every
        // run end — stays absent.
        let domain = 18 * BLOCKS_PER_PAGE;
        for b in 0..domain {
            prop_assert_eq!(
                paged.get(VBlock(b)).copied(),
                model.get(&b).copied(),
                "block {} (page {}, index {})",
                b,
                VBlock(b).vpage().0,
                VBlock(b).index_in_page()
            );
        }
        prop_assert_eq!(paged.len(), model.len());
        let pages: std::collections::BTreeSet<u64> =
            model.keys().map(|&b| VBlock(b).vpage().0).collect();
        prop_assert_eq!(paged.pages(), pages.len());
        // Iteration order: ascending within each page, tiling the model
        // exactly — a run that arrived high-to-low page still reads
        // back low-to-high.
        for page in 0..18u64 {
            let from_model: Vec<(VBlock, u32)> = model
                .range(page * BLOCKS_PER_PAGE..(page + 1) * BLOCKS_PER_PAGE)
                .map(|(&b, &v)| (VBlock(b), v))
                .collect();
            let from_paged: Vec<(VBlock, u32)> = paged
                .page_entries(VPage(page))
                .map(|(b, &v)| (b, v))
                .collect();
            for pair in from_paged.windows(2) {
                prop_assert!(pair[0].0 .0 < pair[1].0 .0, "page {} out of order", page);
            }
            prop_assert_eq!(from_paged, from_model, "page {}", page);
        }
    }

    /// Directory sub-shard (bank) assignment is total, stable, and
    /// pinned to the reference model below: for any page and any bank
    /// count the production hash must land in range, return the same
    /// bank every time it is asked, and agree bit-for-bit with an
    /// independent spelling of the SplitMix64 finalizer. Pinning the
    /// constants here means any edit to the production hash — which
    /// would silently re-home every page's footprint record — fails a
    /// test instead of changing layout behind the executor's back.
    #[test]
    fn dir_shard_assignment_matches_reference_model(
        pages in prop::collection::vec(any::<u64>(), 1..200),
        shards in prop_oneof![
            Just(1usize), Just(2usize), Just(3usize), Just(8usize),
            Just(17usize), Just(256usize),
            1usize..=256,
        ],
    ) {
        // Independent reference: SplitMix64's finalizer over the raw
        // page number, reduced mod the bank count (1 bank → bank 0).
        let reference = |page: u64| -> usize {
            if shards == 1 {
                return 0;
            }
            let mut z = page.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z % shards as u64) as usize
        };
        for &p in &pages {
            let bank = dir_shard_of(VPage(p), shards);
            prop_assert!(bank < shards, "page {p} overflowed {shards} banks");
            prop_assert_eq!(bank, dir_shard_of(VPage(p), shards), "unstable for page {}", p);
            prop_assert_eq!(bank, reference(p), "diverged from reference for page {}", p);
        }
    }

    /// Bank assignment under boundary-straddling access runs: every
    /// block of a run maps through its *page's* bank, so a run that
    /// crosses a page boundary changes bank only at exactly that
    /// boundary, and revisiting the same pages from a later run lands
    /// in the same banks — the stability the banked footprint directory
    /// relies on when the same page is scanned in different windows.
    #[test]
    fn dir_shard_is_page_granular_across_straddling_runs(
        runs in prop::collection::vec(
            (0u64..64, 0u64..BLOCKS_PER_PAGE, 1u64..(2 * BLOCKS_PER_PAGE + 2)),
            1..40,
        ),
        shards in 1usize..=16,
    ) {
        let mut first_seen: std::collections::BTreeMap<u64, usize> =
            std::collections::BTreeMap::new();
        for &(page, offset, len) in &runs {
            let start = page * BLOCKS_PER_PAGE + offset;
            for b in start..start + len {
                let vpage = VBlock(b).vpage();
                let bank = dir_shard_of(vpage, shards);
                prop_assert!(bank < shards);
                // Same page → same bank, no matter which run (or which
                // side of a straddled boundary) reached it.
                let prior = first_seen.entry(vpage.0).or_insert(bank);
                prop_assert_eq!(
                    *prior, bank,
                    "page {} changed bank between visits", vpage.0
                );
                // Crossing into the next page re-keys the hash; within
                // a page the bank is constant by construction.
                prop_assert_eq!(bank, dir_shard_of(VBlock(b).vpage(), shards));
            }
        }
    }

    /// Block-cache flush_page removes exactly the page's resident blocks.
    #[test]
    fn block_cache_flush_is_exact(
        page_blocks in prop::collection::vec(0u64..BLOCKS_PER_PAGE, 0..32),
        other_blocks in prop::collection::vec(0u64..10_000, 0..32),
    ) {
        let mut bc = BlockCache::infinite();
        let page = VPage(5);
        let mut expected = std::collections::HashSet::new();
        for i in &page_blocks {
            bc.fill(page.block(*i), BlockState::read_only());
            expected.insert(page.block(*i));
        }
        for b in &other_blocks {
            let blk = VBlock(*b);
            if blk.vpage() != page {
                bc.fill(blk, BlockState::read_only());
            }
        }
        let flushed = bc.flush_page(page);
        let got: std::collections::HashSet<_> =
            flushed.iter().map(|e| e.block).collect();
        prop_assert_eq!(got, expected);
        for i in 0..BLOCKS_PER_PAGE {
            prop_assert!(bc.probe(page.block(i)).is_none());
        }
    }
}
