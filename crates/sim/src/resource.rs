//! First-come-first-served occupancy servers.
//!
//! The paper models contention "at the memory bus" and "at the network
//! interfaces" (Section 4). A [`Resource`] is the standard protocol-level
//! abstraction for that: a single server that is busy for an *occupancy*
//! period per transaction and grants access in request order. Requesters
//! arriving while the server is busy are delayed until it frees up; the
//! delay is the queueing component of their latency.

use crate::time::Cycles;
use std::fmt;

/// A FCFS single server modeling one contended hardware resource.
///
/// Typical instances in this workspace: one split-transaction memory bus
/// per node, one network-interface port per node and direction, and one
/// protocol-controller (RAD) occupancy per node.
///
/// # Example
///
/// ```
/// use rnuma_sim::{Cycles, Resource};
///
/// let mut ni = Resource::new("ni-out");
/// // Two messages injected at the same time serialize.
/// let g0 = ni.acquire(Cycles(100), Cycles(16));
/// let g1 = ni.acquire(Cycles(100), Cycles(16));
/// assert_eq!(g0, Cycles(100));
/// assert_eq!(g1, Cycles(116));
/// ```
#[derive(Clone, Debug)]
pub struct Resource {
    name: &'static str,
    next_free: Cycles,
    busy: Cycles,
    grants: u64,
    queued: u64,
    total_wait: Cycles,
}

impl Resource {
    /// Creates an idle resource. `name` labels it in statistics dumps.
    #[must_use]
    pub fn new(name: &'static str) -> Resource {
        Resource {
            name,
            next_free: Cycles::ZERO,
            busy: Cycles::ZERO,
            grants: 0,
            queued: 0,
            total_wait: Cycles::ZERO,
        }
    }

    /// Requests the resource at time `now` for `occupancy` cycles.
    ///
    /// Returns the *grant time*: `now` if the resource is idle, otherwise
    /// the time the previous holder releases it. The caller's transaction
    /// completes at `grant + occupancy` (plus any downstream latency).
    ///
    /// This sits on the innermost simulation loop (several acquisitions
    /// per miss), so the accounting is branchless: the wait term is zero
    /// on the uncontended path and folds into the same adds either way.
    #[inline]
    pub fn acquire(&mut self, now: Cycles, occupancy: Cycles) -> Cycles {
        let grant = Cycles(now.0.max(self.next_free.0));
        let wait = grant.0 - now.0;
        self.queued += u64::from(wait > 0);
        self.total_wait.0 += wait;
        self.next_free = Cycles(grant.0 + occupancy.0);
        self.busy.0 += occupancy.0;
        self.grants += 1;
        grant
    }

    /// The time the resource next becomes free.
    #[must_use]
    pub fn next_free(&self) -> Cycles {
        self.next_free
    }

    /// Label given at construction.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of transactions granted so far.
    #[must_use]
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Number of transactions that had to queue.
    #[must_use]
    pub fn queued(&self) -> u64 {
        self.queued
    }

    /// Sum of all queueing delays imposed.
    #[must_use]
    pub fn total_wait(&self) -> Cycles {
        self.total_wait
    }

    /// Total busy time accumulated.
    #[must_use]
    pub fn busy(&self) -> Cycles {
        self.busy
    }

    /// Busy fraction over a horizon, for utilization reports.
    ///
    /// Returns 0.0 for an empty horizon.
    #[must_use]
    pub fn utilization(&self, horizon: Cycles) -> f64 {
        if horizon.is_zero() {
            0.0
        } else {
            self.busy.0 as f64 / horizon.0 as f64
        }
    }

    /// Forgets all accumulated history, returning the resource to idle.
    pub fn reset(&mut self) {
        self.next_free = Cycles::ZERO;
        self.busy = Cycles::ZERO;
        self.grants = 0;
        self.queued = 0;
        self.total_wait = Cycles::ZERO;
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} grants, {} queued, busy {}, waited {}",
            self.name, self.grants, self.queued, self.busy, self.total_wait
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_grants_immediately() {
        let mut r = Resource::new("bus");
        assert_eq!(r.acquire(Cycles(50), Cycles(8)), Cycles(50));
        assert_eq!(r.next_free(), Cycles(58));
        assert_eq!(r.queued(), 0);
    }

    #[test]
    fn contenders_serialize_in_arrival_order() {
        let mut r = Resource::new("bus");
        let g0 = r.acquire(Cycles(0), Cycles(10));
        let g1 = r.acquire(Cycles(3), Cycles(10));
        let g2 = r.acquire(Cycles(4), Cycles(10));
        assert_eq!((g0, g1, g2), (Cycles(0), Cycles(10), Cycles(20)));
        assert_eq!(r.queued(), 2);
        assert_eq!(r.total_wait(), Cycles(7 + 16));
    }

    #[test]
    fn gaps_leave_the_resource_idle() {
        let mut r = Resource::new("ni");
        r.acquire(Cycles(0), Cycles(4));
        let g = r.acquire(Cycles(100), Cycles(4));
        assert_eq!(g, Cycles(100));
        assert_eq!(r.busy(), Cycles(8));
        // Utilization over 200 cycles: 8/200.
        assert!((r.utilization(Cycles(200)) - 0.04).abs() < 1e-12);
    }

    #[test]
    fn zero_occupancy_is_allowed() {
        let mut r = Resource::new("tag-probe");
        let g0 = r.acquire(Cycles(5), Cycles::ZERO);
        let g1 = r.acquire(Cycles(5), Cycles(2));
        assert_eq!(g0, Cycles(5));
        assert_eq!(g1, Cycles(5));
    }

    #[test]
    fn utilization_of_empty_horizon_is_zero() {
        let r = Resource::new("x");
        assert_eq!(r.utilization(Cycles::ZERO), 0.0);
    }

    #[test]
    fn reset_restores_idle_state() {
        let mut r = Resource::new("bus");
        r.acquire(Cycles(0), Cycles(100));
        r.acquire(Cycles(0), Cycles(100));
        r.reset();
        assert_eq!(r.next_free(), Cycles::ZERO);
        assert_eq!(r.grants(), 0);
        assert_eq!(r.acquire(Cycles(1), Cycles(1)), Cycles(1));
    }

    #[test]
    fn display_mentions_name_and_counts() {
        let mut r = Resource::new("membus");
        r.acquire(Cycles(0), Cycles(4));
        let s = r.to_string();
        assert!(s.contains("membus"));
        assert!(s.contains("1 grants"));
    }
}
