//! Measurement primitives: counters, histograms, and CDFs.
//!
//! The experiment harness reports three kinds of quantities:
//!
//! * event counts (refetches, replacements, relocations) — [`Counter`];
//! * latency distributions — [`Histogram`] with power-of-two buckets;
//! * "what fraction of pages causes what fraction of refetches"
//!   (Figure 5 of the paper) — [`Cdf`].

use std::fmt;

/// A saturating event counter.
///
/// # Example
///
/// ```
/// use rnuma_sim::Counter;
///
/// let mut refetches = Counter::new("refetches");
/// refetches.add(3);
/// refetches.incr();
/// assert_eq!(refetches.get(), 4);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter labeled `name`.
    #[must_use]
    pub fn new(name: &'static str) -> Counter {
        Counter { name, value: 0 }
    }

    /// Adds `n`, saturating at `u64::MAX`.
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Label given at construction.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.value)
    }
}

/// A histogram with power-of-two buckets, for latency distributions.
///
/// Bucket `i` holds samples in `[2^i, 2^(i+1))`; bucket 0 additionally
/// holds zero. 64 buckets cover the entire `u64` range.
///
/// # Example
///
/// ```
/// use rnuma_sim::Histogram;
///
/// let mut h = Histogram::new("miss-latency");
/// for v in [1u64, 2, 3, 69, 376] { h.record(v); }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max(), 376);
/// assert!((h.mean() - 90.2).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    name: &'static str,
    buckets: [u64; 64],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram labeled `name`.
    #[must_use]
    pub fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples; 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample; 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample; 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Label given at construction.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// An approximate quantile from the bucket boundaries.
    ///
    /// Returns the lower bound of the bucket containing the `q`-quantile
    /// sample. `q` is clamped to `[0, 1]`. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }

    /// Iterates over `(bucket_lower_bound, count)` for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={} mean={:.1} min={} max={}",
            self.name,
            self.count,
            self.mean(),
            self.min(),
            self.max()
        )
    }
}

/// Builds the cumulative distribution used in Figure 5 of the paper:
/// sort contributors descending by weight and report what cumulative
/// fraction of the total the top x% of contributors account for.
///
/// # Example
///
/// ```
/// use rnuma_sim::Cdf;
///
/// // Four pages with refetch counts; the top 25% of pages (one page)
/// // accounts for 80/100 = 80% of refetches.
/// let cdf = Cdf::from_weights("refetches-by-page", vec![80, 10, 5, 5]);
/// let pts = cdf.points();
/// assert!((pts[0].1 - 0.8).abs() < 1e-9);
/// assert!((pts[3].1 - 1.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct Cdf {
    name: &'static str,
    /// `(fraction_of_contributors, cumulative_fraction_of_weight)` pairs,
    /// one per contributor, in descending weight order.
    points: Vec<(f64, f64)>,
    total: u64,
    contributors: usize,
}

impl Cdf {
    /// Builds a CDF from per-contributor weights (e.g., refetches per page).
    ///
    /// Zero-weight contributors still count toward the x-axis (they are the
    /// flat tail of the paper's Figure 5). An empty input yields an empty
    /// CDF with no points.
    #[must_use]
    pub fn from_weights(name: &'static str, mut weights: Vec<u64>) -> Cdf {
        weights.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = weights.iter().sum();
        let n = weights.len();
        let mut points = Vec::with_capacity(n);
        let mut running = 0u64;
        for (i, w) in weights.into_iter().enumerate() {
            running += w;
            let frac_pages = (i + 1) as f64 / n as f64;
            let frac_weight = if total == 0 {
                0.0
            } else {
                running as f64 / total as f64
            };
            points.push((frac_pages, frac_weight));
        }
        Cdf {
            name,
            points,
            total,
            contributors: n,
        }
    }

    /// The `(x, y)` points of the CDF, ascending in x.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Cumulative weight fraction accounted for by the top `frac` (0–1)
    /// of contributors. Returns 0.0 for an empty CDF.
    #[must_use]
    pub fn weight_of_top(&self, frac: f64) -> f64 {
        let frac = frac.clamp(0.0, 1.0);
        let mut best = 0.0;
        for &(x, y) in &self.points {
            if x <= frac + 1e-12 {
                best = y;
            } else {
                break;
            }
        }
        best
    }

    /// Total weight across all contributors.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of contributors.
    #[must_use]
    pub fn contributors(&self) -> usize {
        self.contributors
    }

    /// Label given at construction.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl fmt::Display for Cdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} contributors, total weight {}",
            self.name, self.contributors, self.total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new("x");
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(10);
        assert_eq!(c.get(), 11);
        c.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(c.name(), "x");
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new("x");
        c.add(u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_moments() {
        let mut h = Histogram::new("lat");
        for v in [8u64, 56, 69, 376, 376] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 8);
        assert_eq!(h.max(), 376);
        assert!((h.mean() - 177.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_zero_and_one() {
        let mut h = Histogram::new("lat");
        h.record(0);
        h.record(1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1);
        // Both land in bucket 0.
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(buckets, vec![(0, 2)]);
    }

    #[test]
    fn histogram_quantiles_are_monotone() {
        let mut h = Histogram::new("lat");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let q50 = h.quantile(0.5);
        let q90 = h.quantile(0.9);
        let q100 = h.quantile(1.0);
        assert!(q50 <= q90 && q90 <= q100);
        assert!((256..=512).contains(&q50), "median bucket, got {q50}");
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = Histogram::new("lat");
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn cdf_matches_paper_shape_description() {
        // "less than 10% of the remote pages account for over 80% of the
        // capacity and conflict misses" — construct such a distribution
        // and check the reader.
        let mut weights = vec![0u64; 100];
        for w in weights.iter_mut().take(9) {
            *w = 100; // 9% of pages: 900 refetches
        }
        for w in weights.iter_mut().skip(9).take(41) {
            *w = 4; // the rest spread thinly: 164
        }
        let cdf = Cdf::from_weights("t", weights);
        assert!(cdf.weight_of_top(0.10) > 0.80);
        assert!((cdf.weight_of_top(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_handles_all_zero_weights() {
        let cdf = Cdf::from_weights("z", vec![0, 0, 0]);
        assert_eq!(cdf.total(), 0);
        assert_eq!(cdf.weight_of_top(1.0), 0.0);
        assert_eq!(cdf.points().len(), 3);
    }

    #[test]
    fn cdf_empty_input() {
        let cdf = Cdf::from_weights("e", vec![]);
        assert_eq!(cdf.points().len(), 0);
        assert_eq!(cdf.weight_of_top(0.5), 0.0);
    }

    #[test]
    fn cdf_is_monotone_nondecreasing() {
        let cdf = Cdf::from_weights("m", vec![5, 9, 1, 7, 3, 3, 8]);
        let pts = cdf.points();
        for w in pts.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }
}
