//! The simulation time base.
//!
//! All latencies in the workspace are expressed in cycles of the 400-MHz
//! processors the paper models (Ross HyperSparc, Section 4). The paper's
//! Table 2 mixes cycle counts (block operations) with wall-clock times
//! (5 µs page faults); [`Cycles::from_micros_400mhz`] performs the same
//! conversion the paper does (5 µs × 400 MHz = 2000 cycles).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, or a duration, in 400-MHz CPU cycles.
///
/// `Cycles` is deliberately a thin transparent wrapper: it exists to stop
/// cycle counts from being confused with other `u64` quantities (block
/// numbers, page numbers, counters), not to hide the representation.
///
/// # Example
///
/// ```
/// use rnuma_sim::time::Cycles;
///
/// let trap = Cycles::from_micros_400mhz(5.0);
/// assert_eq!(trap, Cycles(2000));
/// assert_eq!(trap + Cycles(200), Cycles(2200));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycles(pub u64);

/// The clock rate the paper's processors run at.
pub const CPU_MHZ: u64 = 400;

/// CPU cycles per bus cycle (400-MHz CPUs over a 100-MHz MBus).
pub const CPU_CYCLES_PER_BUS_CYCLE: u64 = 4;

impl Cycles {
    /// Zero cycles; the start of simulated time.
    pub const ZERO: Cycles = Cycles(0);

    /// The largest representable time; used as "never".
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Converts a wall-clock duration in microseconds to cycles at 400 MHz.
    ///
    /// This is the conversion the paper applies to its OS overheads: a 5-µs
    /// page-fault handler is 2000 cycles (Table 2).
    ///
    /// # Panics
    ///
    /// Panics if `micros` is negative or not finite.
    #[must_use]
    pub fn from_micros_400mhz(micros: f64) -> Cycles {
        assert!(
            micros.is_finite() && micros >= 0.0,
            "duration must be finite and non-negative, got {micros}"
        );
        Cycles((micros * CPU_MHZ as f64).round() as u64)
    }

    /// The wall-clock equivalent of this duration in microseconds at 400 MHz.
    #[must_use]
    pub fn as_micros_400mhz(self) -> f64 {
        self.0 as f64 / CPU_MHZ as f64
    }

    /// Converts whole bus cycles (100 MHz) into CPU cycles.
    ///
    /// ```
    /// use rnuma_sim::time::Cycles;
    /// assert_eq!(Cycles::from_bus_cycles(2), Cycles(8));
    /// ```
    #[must_use]
    pub fn from_bus_cycles(bus_cycles: u64) -> Cycles {
        Cycles(bus_cycles * CPU_CYCLES_PER_BUS_CYCLE)
    }

    /// Saturating subtraction; `a.saturating_sub(b)` is zero when `b > a`.
    #[must_use]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Returns the later of two times.
    #[must_use]
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }

    /// Returns the earlier of two times.
    #[must_use]
    pub fn min(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.min(rhs.0))
    }

    /// `true` when the duration is zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    /// # Panics
    ///
    /// Panics in debug builds on underflow, like integer subtraction.
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(raw: u64) -> Cycles {
        Cycles(raw)
    }
}

impl From<Cycles> for u64 {
    fn from(cycles: Cycles) -> u64 {
        cycles.0
    }
}

/// An execution-epoch number in the sharded deterministic executor.
///
/// Epochs are *logical* time, orthogonal to [`Cycles`]: the sharded
/// machine partitions a reference trace into contained execution windows
/// and numbers them consecutively. Cross-shard effects buffered during
/// epoch `e` are applied at the barrier that ends `e`, ordered by the
/// canonical `(epoch, home node, sequence)` key, before epoch `e + 1`
/// begins. Keeping the number a distinct type stops it from being mixed
/// up with cycle counts or trace sequence numbers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Epoch(pub u64);

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "epoch {}", self.0)
    }
}

/// The epoch counter a deterministic sharded run advances at each
/// barrier.
///
/// # Example
///
/// ```
/// use rnuma_sim::time::{Epoch, EpochClock};
///
/// let mut clock = EpochClock::new();
/// assert_eq!(clock.current(), Epoch(0));
/// assert_eq!(clock.advance(), Epoch(1));
/// assert_eq!(clock.current(), Epoch(1));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochClock {
    current: Epoch,
}

impl EpochClock {
    /// A clock at epoch 0 (the first execution window).
    #[must_use]
    pub fn new() -> EpochClock {
        EpochClock::default()
    }

    /// The epoch currently executing.
    #[must_use]
    pub fn current(&self) -> Epoch {
        self.current
    }

    /// Ends the current epoch at a barrier and returns the next one.
    pub fn advance(&mut self) -> Epoch {
        self.current.0 += 1;
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table2_microsecond_conversions() {
        // Table 2 / Section 5.5: 5 µs soft trap = 2000 cycles,
        // 0.5 µs TLB invalidation = 200 cycles, SOFT variants 10 µs / 5 µs.
        assert_eq!(Cycles::from_micros_400mhz(5.0), Cycles(2000));
        assert_eq!(Cycles::from_micros_400mhz(0.5), Cycles(200));
        assert_eq!(Cycles::from_micros_400mhz(10.0), Cycles(4000));
    }

    #[test]
    fn round_trips_micros() {
        let c = Cycles(376);
        let us = c.as_micros_400mhz();
        assert_eq!(Cycles::from_micros_400mhz(us), c);
    }

    #[test]
    fn bus_cycle_ratio_is_four() {
        assert_eq!(Cycles::from_bus_cycles(1), Cycles(4));
        assert_eq!(Cycles::from_bus_cycles(25), Cycles(100));
    }

    #[test]
    fn arithmetic_behaves_like_u64() {
        let mut t = Cycles(100);
        t += Cycles(28);
        assert_eq!(t, Cycles(128));
        t -= Cycles(28);
        assert_eq!(t, Cycles(100));
        assert_eq!(t * 3, Cycles(300));
        assert_eq!(t / 4, Cycles(25));
        assert_eq!(Cycles(5).saturating_sub(Cycles(9)), Cycles::ZERO);
    }

    #[test]
    fn min_max_and_sum() {
        assert_eq!(Cycles(3).max(Cycles(7)), Cycles(7));
        assert_eq!(Cycles(3).min(Cycles(7)), Cycles(3));
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(total, Cycles(6));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycles(42).to_string(), "42 cyc");
        assert_eq!(Cycles::ZERO.to_string(), "0 cyc");
    }

    #[test]
    fn conversions_to_and_from_u64() {
        let c: Cycles = 17u64.into();
        assert_eq!(u64::from(c), 17);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_micros_panics() {
        let _ = Cycles::from_micros_400mhz(-1.0);
    }
}
