//! Deterministic random-number generation.
//!
//! Every stochastic choice in the workspace (e.g., em3d's 15%-remote graph
//! wiring, barnes' particle distribution) flows through [`DetRng`], which is
//! seeded from the experiment configuration. Identical configurations
//! therefore produce bit-identical simulations — a property the integration
//! tests assert.
//!
//! The generator is a self-contained xoshiro256** seeded through
//! splitmix64, so the workspace carries no external RNG dependency and
//! the stream is stable across toolchains.

/// A small, fast, deterministic RNG with convenience helpers.
///
/// # Example
///
/// ```
/// use rnuma_sim::DetRng;
///
/// let mut a = DetRng::seeded(7);
/// let mut b = DetRng::seeded(7);
/// assert_eq!(a.index(100), b.index(100));
/// ```
#[derive(Clone, Debug)]
pub struct DetRng {
    state: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seeded(seed: u64) -> DetRng {
        // Expand the seed with splitmix64 (the reference seeding
        // procedure for the xoshiro family).
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        DetRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit draw (xoshiro256** step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derives an independent child stream; used to give each node or CPU
    /// its own stream without cross-coupling their draw orders.
    #[must_use]
    pub fn fork(&mut self, salt: u64) -> DetRng {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::seeded(s)
    }

    /// A uniform index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index bound must be positive");
        self.range_u64(0, bound as u64) as usize
    }

    /// A uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        // Debiased modulo: reject draws from the final partial span.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let draw = self.next_u64();
            if draw <= zone {
                return lo + draw % span;
            }
        }
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.unit() < p
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits -> [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seeded(42);
        let mut b = DetRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0, 1 << 40), b.range_u64(0, 1 << 40));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seeded(1);
        let mut b = DetRng::seeded(2);
        let same = (0..64).filter(|_| a.unit() == b.unit()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn forked_streams_are_deterministic_and_distinct() {
        let mut parent1 = DetRng::seeded(9);
        let mut parent2 = DetRng::seeded(9);
        let mut c1 = parent1.fork(5);
        let mut c2 = parent2.fork(5);
        assert_eq!(c1.range_u64(0, u64::MAX), c2.range_u64(0, u64::MAX));

        let mut p = DetRng::seeded(9);
        let mut a = p.fork(1);
        let mut b = p.fork(2);
        assert_ne!(a.range_u64(0, u64::MAX), b.range_u64(0, u64::MAX));
    }

    #[test]
    fn index_stays_in_bounds() {
        let mut r = DetRng::seeded(3);
        for _ in 0..1000 {
            assert!(r.index(7) < 7);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seeded(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-5.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::seeded(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn unit_is_in_range() {
        let mut r = DetRng::seeded(6);
        for _ in 0..1000 {
            let x = r.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        DetRng::seeded(0).index(0);
    }
}
