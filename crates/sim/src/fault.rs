//! Deterministic fault injection for the execution layer.
//!
//! A [`FaultPlan`] is a seeded, reproducible schedule of faults: each
//! *injection point* in the execution layer (worker panic, worker hang,
//! channel poisoning, capture-time allocation pressure, sweep abort)
//! asks the plan [`FaultPlan::should_fire`] at every decision, and the
//! plan answers from either an explicit `kind@index` event list or a
//! per-kind probability derived from the plan seed via [`DetRng`].
//! Identical plans therefore produce identical fault schedules — the
//! property the `fault_recovery` differential suite is built on: a run
//! under any plan must recover to metrics bit-identical to a fault-free
//! run.
//!
//! Plans are configured programmatically or through the `RNUMA_FAULTS`
//! environment variable (see [`FaultPlan::parse`] for the grammar).
//! Faults that actually fired are recorded in a [`FaultLog`] by the
//! recovering coordinator, so tests and operators can distinguish
//! "no fault occurred" from "fault occurred and was healed".

use crate::DetRng;
use std::fmt;

/// An injection point in the execution layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A pool worker panics *before* executing a window job (chunk state
    /// still pristine on the worker side; the job is lost wholesale).
    PanicBefore,
    /// A pool worker panics *after* executing a window job but before
    /// replying (chunk state mutated and lost mid-window).
    PanicAfter,
    /// A pool worker hangs (sleeps past the watchdog deadline) instead
    /// of replying.
    Hang,
    /// The pool's job channel is poisoned (closed) ahead of a
    /// submission, as if the pool had torn down underneath the
    /// coordinator.
    Poison,
    /// Capture-time allocation pressure: the trace interner's dedup
    /// table "fails to grow" and interning degrades for the rest of the
    /// capture.
    CapturePressure,
    /// The sweep driver aborts mid-run after a completed cell — the
    /// checkpoint/resume injection point.
    SweepAbort,
}

/// Every kind, in counter order.
const KINDS: [FaultKind; 6] = [
    FaultKind::PanicBefore,
    FaultKind::PanicAfter,
    FaultKind::Hang,
    FaultKind::Poison,
    FaultKind::CapturePressure,
    FaultKind::SweepAbort,
];

impl FaultKind {
    /// The spec-grammar token for this kind (also the display form).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::PanicBefore => "panic_before",
            FaultKind::PanicAfter => "panic_after",
            FaultKind::Hang => "hang",
            FaultKind::Poison => "poison",
            FaultKind::CapturePressure => "pressure",
            FaultKind::SweepAbort => "abort",
        }
    }

    fn from_label(s: &str) -> Option<FaultKind> {
        KINDS.iter().copied().find(|k| k.label() == s)
    }

    fn slot(self) -> usize {
        KINDS.iter().position(|&k| k == self).unwrap_or_else(|| {
            panic!("FaultKind::{self:?} ({self}) is missing from the KINDS table")
        })
    }

    /// A per-kind salt so the probabilistic streams of different kinds
    /// are independent even under one seed.
    fn salt(self) -> u64 {
        // Arbitrary odd constants; fixed forever for reproducibility.
        [
            0xA076_1D64_78BD_642F,
            0xE703_7ED1_A0B4_28DB,
            0x8EBC_6AF0_9C88_C6E3,
            0x5898_99F5_E2B1_8225,
            0x2D35_8DCC_AA6C_78A5,
            0x9E6C_63D0_A0FF_9527,
        ][self.slot()]
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A deterministic, seeded fault schedule.
///
/// Decisions are counted per kind: the `n`-th call to
/// [`should_fire`](Self::should_fire) for a kind fires if the plan
/// carries an explicit `kind@n` event, or — when the kind has a rate —
/// with that probability, derived purely from `(seed, kind, n)` so the
/// schedule is independent of thread interleaving.
///
/// # Example
///
/// ```
/// use rnuma_sim::fault::{FaultKind, FaultPlan};
///
/// let mut plan = FaultPlan::parse("seed=7,panic_before@1,hang_ms=50").unwrap();
/// assert!(!plan.should_fire(FaultKind::PanicBefore)); // decision 0
/// assert!(plan.should_fire(FaultKind::PanicBefore)); // decision 1
/// assert!(!plan.should_fire(FaultKind::PanicBefore)); // decision 2
/// assert_eq!(plan.hang_ms(), 50);
/// ```
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<(FaultKind, u64)>,
    rates: [f64; KINDS.len()],
    hang_ms: u64,
    counters: [u64; KINDS.len()],
}

impl FaultPlan {
    /// An empty plan (never fires) under the given seed.
    #[must_use]
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            events: Vec::new(),
            rates: [0.0; KINDS.len()],
            hang_ms: 10,
            counters: [0; KINDS.len()],
        }
    }

    /// Adds an explicit event: the `index`-th decision for `kind` fires.
    #[must_use]
    pub fn at(mut self, kind: FaultKind, index: u64) -> FaultPlan {
        self.events.push((kind, index));
        self
    }

    /// Sets a per-decision firing probability for `kind`.
    #[must_use]
    pub fn rate(mut self, kind: FaultKind, p: f64) -> FaultPlan {
        self.rates[kind.slot()] = p.clamp(0.0, 1.0);
        self
    }

    /// Sets how long an injected [`FaultKind::Hang`] sleeps, in
    /// milliseconds (default 10).
    #[must_use]
    pub fn with_hang_ms(mut self, ms: u64) -> FaultPlan {
        self.hang_ms = ms;
        self
    }

    /// The injected-hang sleep duration in milliseconds.
    #[must_use]
    pub fn hang_ms(&self) -> u64 {
        self.hang_ms
    }

    /// True if the plan can never fire anything.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.rates.iter().all(|&r| r == 0.0)
    }

    /// Parses a plan spec.
    ///
    /// The grammar is a comma- (or whitespace-) separated token list:
    ///
    /// * `seed=<u64>` — plan seed (default 0);
    /// * `hang_ms=<u64>` — injected-hang duration (default 10);
    /// * `<kind>@<n>` — the `n`-th decision for `<kind>` fires;
    /// * `<kind>~<p>` — each decision for `<kind>` fires with
    ///   probability `<p>`.
    ///
    /// Kinds: `panic_before`, `panic_after`, `hang`, `poison`,
    /// `pressure`, `abort`. An empty spec parses to an empty plan.
    ///
    /// # Errors
    ///
    /// Returns a one-line description of the first malformed token.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(0);
        for token in spec
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|t| !t.is_empty())
        {
            if let Some(v) = token.strip_prefix("seed=") {
                plan.seed = v
                    .parse()
                    .map_err(|_| format!("bad seed in RNUMA_FAULTS token '{token}'"))?;
            } else if let Some(v) = token.strip_prefix("hang_ms=") {
                plan.hang_ms = v
                    .parse()
                    .map_err(|_| format!("bad hang_ms in RNUMA_FAULTS token '{token}'"))?;
            } else if let Some((kind, idx)) = token.split_once('@') {
                let kind = FaultKind::from_label(kind)
                    .ok_or_else(|| format!("unknown fault kind in token '{token}'"))?;
                let idx = idx
                    .parse()
                    .map_err(|_| format!("bad index in token '{token}'"))?;
                plan.events.push((kind, idx));
            } else if let Some((kind, p)) = token.split_once('~') {
                let kind = FaultKind::from_label(kind)
                    .ok_or_else(|| format!("unknown fault kind in token '{token}'"))?;
                let p: f64 = p
                    .parse()
                    .map_err(|_| format!("bad probability in token '{token}'"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability out of [0,1] in token '{token}'"));
                }
                plan.rates[kind.slot()] = p;
            } else {
                return Err(format!("unparsable RNUMA_FAULTS token '{token}'"));
            }
        }
        Ok(plan)
    }

    /// The plan configured by the `RNUMA_FAULTS` environment variable,
    /// if any. Unset or empty means no plan; a malformed spec warns on
    /// stderr once per process and also means no plan (misconfiguration
    /// must not abort a run, matching `RNUMA_SHARDS` semantics).
    #[must_use]
    pub fn from_env() -> Option<FaultPlan> {
        // lint: allow(D03, rnuma-sim sits below rnuma-core in the dependency graph, so the blessed experiment.rs helpers are unreachable; from_env implements the same warn-once contract locally and is pinned by tests/robust_env.rs)
        let spec = std::env::var("RNUMA_FAULTS").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        match FaultPlan::parse(&spec) {
            Ok(plan) if plan.is_empty() => None,
            Ok(plan) => Some(plan),
            Err(msg) => {
                static WARN: std::sync::Once = std::sync::Once::new();
                WARN.call_once(|| {
                    eprintln!("warning: ignoring RNUMA_FAULTS ({msg})");
                });
                None
            }
        }
    }

    /// Decides whether the next decision for `kind` fires, advancing
    /// that kind's decision counter.
    pub fn should_fire(&mut self, kind: FaultKind) -> bool {
        let idx = self.counters[kind.slot()];
        self.counters[kind.slot()] = idx + 1;
        if self.events.iter().any(|&(k, i)| k == kind && i == idx) {
            return true;
        }
        let p = self.rates[kind.slot()];
        if p > 0.0 {
            // Seed per (plan, kind, decision): the outcome depends only
            // on the triple, never on call interleaving across kinds.
            let s = self
                .seed
                .wrapping_add(kind.salt())
                .wrapping_add(idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            return DetRng::seeded(s).chance(p);
        }
        false
    }

    /// How many decisions have been made for `kind`.
    #[must_use]
    pub fn decisions(&self, kind: FaultKind) -> u64 {
        self.counters[kind.slot()]
    }
}

/// One fault that actually fired and was handled.
#[derive(Clone, Debug)]
pub struct FaultEvent {
    /// The injection point that fired.
    pub kind: FaultKind,
    /// The per-kind decision index at which it fired.
    pub index: u64,
    /// Human-readable context from the recovery site (e.g. the captured
    /// panic payload, or which window was re-executed).
    pub detail: String,
}

/// The record of faults a run absorbed.
///
/// An empty log after a run under a non-empty plan means the plan's
/// events never reached an armed injection point; a non-empty log plus
/// bit-identical metrics is the self-healing contract.
#[derive(Clone, Debug, Default)]
pub struct FaultLog {
    events: Vec<FaultEvent>,
}

impl FaultLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> FaultLog {
        FaultLog::default()
    }

    /// Records a handled fault.
    pub fn record(&mut self, kind: FaultKind, index: u64, detail: impl Into<String>) {
        self.events.push(FaultEvent {
            kind,
            index,
            detail: detail.into(),
        });
    }

    /// All handled faults, in handling order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// How many handled faults were of `kind`.
    #[must_use]
    pub fn count(&self, kind: FaultKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Total handled faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing fired.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Absorbs another log's events (used when merging per-phase logs).
    pub fn merge(&mut self, other: FaultLog) {
        self.events.extend(other.events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_empty_plan() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        let plan = FaultPlan::parse(" , ,, ").unwrap();
        assert!(plan.is_empty());
    }

    #[test]
    fn explicit_events_fire_at_their_index_only() {
        let mut plan = FaultPlan::parse("panic_after@0,panic_after@2").unwrap();
        assert!(plan.should_fire(FaultKind::PanicAfter));
        assert!(!plan.should_fire(FaultKind::PanicAfter));
        assert!(plan.should_fire(FaultKind::PanicAfter));
        assert!(!plan.should_fire(FaultKind::PanicAfter));
        // Other kinds are untouched.
        assert!(!plan.should_fire(FaultKind::Hang));
        assert_eq!(plan.decisions(FaultKind::PanicAfter), 4);
        assert_eq!(plan.decisions(FaultKind::Hang), 1);
    }

    #[test]
    fn rates_are_deterministic_and_interleaving_independent() {
        let spec = "seed=11,hang~0.5,poison~0.5";
        // Same plan, same per-kind decision sequence, regardless of how
        // calls to the two kinds interleave.
        let mut a = FaultPlan::parse(spec).unwrap();
        let mut b = FaultPlan::parse(spec).unwrap();
        let seq_a: Vec<bool> = (0..64).map(|_| a.should_fire(FaultKind::Hang)).collect();
        let mut seq_b = Vec::new();
        for _ in 0..64 {
            b.should_fire(FaultKind::Poison); // interleaved other-kind traffic
            seq_b.push(b.should_fire(FaultKind::Hang));
        }
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|&f| f), "p=0.5 over 64 draws should fire");
        assert!(!seq_a.iter().all(|&f| f));
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let mut a = FaultPlan::new(1).rate(FaultKind::Hang, 0.5);
        let mut b = FaultPlan::new(2).rate(FaultKind::Hang, 0.5);
        let sa: Vec<bool> = (0..64).map(|_| a.should_fire(FaultKind::Hang)).collect();
        let sb: Vec<bool> = (0..64).map(|_| b.should_fire(FaultKind::Hang)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn parse_rejects_malformed_tokens() {
        for bad in [
            "bogus",
            "panic_before@x",
            "nope@3",
            "hang~banana",
            "hang~1.5",
            "seed=pear",
            "hang_ms=-1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn parse_full_grammar() {
        let mut plan =
            FaultPlan::parse("seed=9 hang_ms=25, panic_before@0, pressure~1.0, abort@1").unwrap();
        assert_eq!(plan.hang_ms(), 25);
        assert!(plan.should_fire(FaultKind::PanicBefore));
        assert!(plan.should_fire(FaultKind::CapturePressure)); // p=1
        assert!(!plan.should_fire(FaultKind::SweepAbort));
        assert!(plan.should_fire(FaultKind::SweepAbort));
    }

    /// The `KINDS` table and the enum cannot drift: every variant is
    /// present (so `slot`/`salt` cannot panic), each exactly once, and
    /// every label round-trips. The match below fails to compile if a
    /// variant is added without extending this test.
    #[test]
    fn kinds_table_is_exhaustive() {
        for (i, &kind) in KINDS.iter().enumerate() {
            // Compile-time exhaustiveness: adding a variant breaks this
            // match until the table (and test) learn about it.
            match kind {
                FaultKind::PanicBefore
                | FaultKind::PanicAfter
                | FaultKind::Hang
                | FaultKind::Poison
                | FaultKind::CapturePressure
                | FaultKind::SweepAbort => {}
            }
            assert_eq!(kind.slot(), i, "{kind} is out of counter order");
            assert_eq!(
                FaultKind::from_label(kind.label()),
                Some(kind),
                "{kind} label does not round-trip"
            );
        }
        let mut salts: Vec<u64> = KINDS.iter().map(|k| k.salt()).collect();
        salts.sort_unstable();
        salts.dedup();
        assert_eq!(salts.len(), KINDS.len(), "per-kind salts must be distinct");
    }

    #[test]
    fn log_counts_by_kind() {
        let mut log = FaultLog::new();
        assert!(log.is_empty());
        log.record(FaultKind::Hang, 3, "worker 1 hung");
        log.record(FaultKind::PanicBefore, 0, "payload");
        assert_eq!(log.len(), 2);
        assert_eq!(log.count(FaultKind::Hang), 1);
        assert_eq!(log.count(FaultKind::Poison), 0);
        assert_eq!(log.events()[0].index, 3);
        let mut other = FaultLog::new();
        other.record(FaultKind::Poison, 0, "queue closed");
        log.merge(other);
        assert_eq!(log.count(FaultKind::Poison), 1);
    }
}
