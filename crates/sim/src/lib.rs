//! Discrete-time simulation substrate for the Reactive NUMA reproduction.
//!
//! This crate provides the building blocks shared by every other crate in
//! the workspace:
//!
//! * [`time`] — the [`Cycles`] time base (400-MHz CPU cycles)
//!   and conversions to wall-clock units used by the paper (µs at 400 MHz).
//! * [`resource`] — first-come-first-served occupancy servers used to model
//!   contention at shared hardware resources (memory buses, network
//!   interfaces, protocol controllers).
//! * [`stats`] — counters, log-scale histograms, and the cumulative
//!   distribution builder used to regenerate Figure 5 of the paper.
//! * [`rng`] — a small deterministic RNG wrapper so that every simulation
//!   run is a pure function of its configuration.
//! * [`fault`] — seeded, reproducible fault schedules ([`FaultPlan`]) and
//!   the record of absorbed faults ([`FaultLog`]) backing the
//!   self-healing execution layer.
//!
//! The simulator built on top of this substrate is a *protocol-level*
//! simulator in the spirit of the execution-driven simulator used in the
//! paper: processors are in-order and suspend on misses (one outstanding
//! transaction each), and shared resources serialize contending requests.
//!
//! # Example
//!
//! ```
//! use rnuma_sim::time::Cycles;
//! use rnuma_sim::resource::Resource;
//!
//! // A 100-MHz bus on a 400-MHz machine is busy 4 CPU cycles per bus cycle.
//! let mut bus = Resource::new("membus");
//! let grant = bus.acquire(Cycles(10), Cycles(8));
//! assert_eq!(grant, Cycles(10)); // uncontended
//! let grant2 = bus.acquire(Cycles(12), Cycles(8));
//! assert_eq!(grant2, Cycles(18)); // waits for the first transaction
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fault;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use fault::{FaultEvent, FaultKind, FaultLog, FaultPlan};
pub use resource::Resource;
pub use rng::DetRng;
pub use stats::{Cdf, Counter, Histogram};
pub use time::{Cycles, Epoch, EpochClock};
