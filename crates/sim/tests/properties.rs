//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use rnuma_sim::{Cdf, Cycles, DetRng, Histogram, Resource};

proptest! {
    /// A resource never grants before the request time and never
    /// double-books: grant times are non-decreasing and separated by at
    /// least the previous occupancy when requests arrive in time order.
    #[test]
    fn resource_grants_are_serialized(reqs in prop::collection::vec((0u64..10_000, 1u64..100), 1..200)) {
        let mut reqs = reqs;
        reqs.sort_by_key(|&(t, _)| t);
        let mut r = Resource::new("prop");
        let mut prev_grant = Cycles::ZERO;
        let mut prev_occ = Cycles::ZERO;
        for (t, occ) in reqs {
            let g = r.acquire(Cycles(t), Cycles(occ));
            prop_assert!(g >= Cycles(t));
            prop_assert!(g >= prev_grant + prev_occ);
            prev_grant = g;
            prev_occ = Cycles(occ);
        }
    }

    /// Full reference model of [`Resource::acquire`]: grant time,
    /// `next_free`, and the queued/wait/busy accounting all match a
    /// direct recomputation for arbitrary (not necessarily time-ordered)
    /// request sequences — the contract behind the branchless fast path.
    #[test]
    fn resource_accounting_matches_reference_model(
        reqs in prop::collection::vec((0u64..10_000, 0u64..100), 0..300)
    ) {
        let mut r = Resource::new("prop");
        let mut next_free = 0u64;
        let (mut queued, mut wait, mut busy) = (0u64, 0u64, 0u64);
        for &(t, occ) in &reqs {
            let g = r.acquire(Cycles(t), Cycles(occ));
            let expect = t.max(next_free);
            prop_assert_eq!(g, Cycles(expect));
            if expect > t {
                queued += 1;
                wait += expect - t;
            }
            next_free = expect + occ;
            busy += occ;
            prop_assert_eq!(r.next_free(), Cycles(next_free));
        }
        prop_assert_eq!(r.grants(), reqs.len() as u64);
        prop_assert_eq!(r.queued(), queued);
        prop_assert_eq!(r.total_wait(), Cycles(wait));
        prop_assert_eq!(r.busy(), Cycles(busy));
    }

    /// Monotonicity and occupancy exclusion: each grant starts at or
    /// after the previous transaction's release, so occupancy intervals
    /// never overlap — even when requests arrive out of time order.
    #[test]
    fn resource_occupancy_intervals_never_overlap(
        reqs in prop::collection::vec((0u64..5_000, 1u64..64), 1..200)
    ) {
        let mut r = Resource::new("prop");
        let mut prev_release = 0u64;
        for &(t, occ) in &reqs {
            let g = r.acquire(Cycles(t), Cycles(occ));
            prop_assert!(g >= Cycles(t), "grant before request");
            prop_assert!(g.0 >= prev_release, "occupancy overlap");
            prev_release = g.0 + occ;
        }
    }

    /// Busy time equals the sum of occupancies regardless of contention.
    #[test]
    fn resource_busy_is_sum_of_occupancy(occs in prop::collection::vec(0u64..1000, 0..100)) {
        let mut r = Resource::new("prop");
        let mut total = 0u64;
        for occ in &occs {
            r.acquire(Cycles(0), Cycles(*occ));
            total += occ;
        }
        prop_assert_eq!(r.busy(), Cycles(total));
        prop_assert_eq!(r.grants(), occs.len() as u64);
    }

    /// Histogram count/min/max/mean agree with a direct computation.
    #[test]
    fn histogram_matches_reference(samples in prop::collection::vec(0u64..1_000_000, 1..500)) {
        let mut h = Histogram::new("prop");
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), *samples.iter().min().unwrap());
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-6 * mean.max(1.0));
    }

    /// CDF y-values are within [0,1], monotone, and end at 1 for nonzero
    /// total weight.
    #[test]
    fn cdf_is_a_distribution(weights in prop::collection::vec(0u64..10_000, 1..300)) {
        let nonzero = weights.iter().any(|&w| w > 0);
        let cdf = Cdf::from_weights("prop", weights);
        let mut prev = 0.0;
        for &(x, y) in cdf.points() {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&x));
            prop_assert!((0.0..=1.0 + 1e-12).contains(&y));
            prop_assert!(y + 1e-12 >= prev);
            prev = y;
        }
        if nonzero {
            prop_assert!((cdf.points().last().unwrap().1 - 1.0).abs() < 1e-9);
        }
    }

    /// The CDF's top-fraction reader is monotone in the fraction.
    #[test]
    fn cdf_top_reader_is_monotone(weights in prop::collection::vec(1u64..1000, 1..100),
                                  a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let cdf = Cdf::from_weights("prop", weights);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(cdf.weight_of_top(lo) <= cdf.weight_of_top(hi) + 1e-12);
    }

    /// Cycle arithmetic respects ordering.
    #[test]
    fn cycles_ordering(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let (ca, cb) = (Cycles(a), Cycles(b));
        prop_assert_eq!(ca.max(cb).0, a.max(b));
        prop_assert_eq!(ca.min(cb).0, a.min(b));
        prop_assert_eq!(ca.saturating_sub(cb).0, a.saturating_sub(b));
        prop_assert_eq!((ca + cb).0, a + b);
    }

    /// Deterministic RNG streams replay exactly.
    #[test]
    fn rng_replays(seed in any::<u64>()) {
        let mut a = DetRng::seeded(seed);
        let mut b = DetRng::seeded(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.range_u64(0, 1 << 50), b.range_u64(0, 1 << 50));
        }
    }
}

use rnuma_sim::fault::{FaultKind, FaultPlan};
use std::fmt::Write as _;

/// Every fault kind, in the spec grammar's vocabulary.
const ALL_KINDS: [FaultKind; 6] = [
    FaultKind::PanicBefore,
    FaultKind::PanicAfter,
    FaultKind::Hang,
    FaultKind::Poison,
    FaultKind::CapturePressure,
    FaultKind::SweepAbort,
];

/// Two plans are behaviorally equivalent iff they make the same firing
/// decisions, in order, for every kind (and sleep the same on hangs).
fn assert_same_decisions(mut a: FaultPlan, mut b: FaultPlan) -> Result<(), String> {
    if a.hang_ms() != b.hang_ms() {
        return Err(format!("hang_ms {} != {}", a.hang_ms(), b.hang_ms()));
    }
    for kind in ALL_KINDS {
        for n in 0..96u64 {
            let (fa, fb) = (a.should_fire(kind), b.should_fire(kind));
            if fa != fb {
                return Err(format!("decision {n} for {kind} diverged: {fa} vs {fb}"));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The `RNUMA_FAULTS` grammar round-trips: a plan assembled from
    /// random `seed=`/`hang_ms=`/`kind@N`/`kind~P` components, rendered
    /// as a spec string (comma- or whitespace-separated) and parsed
    /// back, makes exactly the same firing decisions as the same plan
    /// built through the `FaultPlan` builder API.
    #[test]
    fn rendered_fault_specs_parse_back_equivalent(
        seed in any::<u64>(),
        hang_ms in 0u64..100_000,
        events in prop::collection::vec((0usize..6, 0u64..64), 0..8),
        rates in prop::collection::vec((0usize..6, 0u64..1001), 0..6),
        spaces in 0usize..2,
    ) {
        let sep = if spaces == 1 { ' ' } else { ',' };
        let mut built = FaultPlan::new(seed).with_hang_ms(hang_ms);
        let mut spec = format!("seed={seed}{sep}hang_ms={hang_ms}");
        for &(k, i) in &events {
            let kind = ALL_KINDS[k];
            built = built.at(kind, i);
            let _ = write!(spec, "{sep}{}@{i}", kind.label());
        }
        for &(k, permille) in &rates {
            let kind = ALL_KINDS[k];
            let p = permille as f64 / 1000.0;
            built = built.rate(kind, p);
            let _ = write!(spec, "{sep}{}~{p}", kind.label());
        }
        let parsed = FaultPlan::parse(&spec);
        prop_assert!(parsed.is_ok(), "rendered spec {:?} rejected", spec);
        let verdict = assert_same_decisions(built, parsed.unwrap());
        prop_assert!(
            verdict.is_ok(),
            "spec {:?}: {}",
            spec,
            verdict.unwrap_err()
        );
    }

    /// One malformed token anywhere in an otherwise valid spec rejects
    /// the whole plan with an error naming the token — the warn-once
    /// path `FaultPlan::from_env` takes, never a partial plan.
    #[test]
    fn malformed_tokens_reject_the_whole_spec(
        seed in any::<u64>(),
        good in prop::collection::vec((0usize..6, 0u64..64), 0..4),
        bad_idx in 0usize..10,
        prepend in 0usize..2,
    ) {
        let bad = [
            "banana",
            "bogus@1",
            "panic_before@x",
            "panic_before@",
            "panic_before~2.0",
            "panic_before~-0.5",
            "panic_before~x",
            "~0.5",
            "@1",
            "seed=abc",
        ][bad_idx];
        let mut spec = format!("seed={seed}");
        for &(k, i) in &good {
            let _ = write!(spec, ",{}@{i}", ALL_KINDS[k].label());
        }
        let spec = if prepend == 1 {
            format!("{bad},{spec}")
        } else {
            format!("{spec},{bad}")
        };
        let err = FaultPlan::parse(&spec);
        prop_assert!(err.is_err(), "malformed spec {spec:?} parsed");
        prop_assert!(
            err.unwrap_err().contains(bad),
            "the diagnostic must name the offending token"
        );
    }
}
