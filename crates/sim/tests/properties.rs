//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use rnuma_sim::{Cdf, Cycles, DetRng, Histogram, Resource};

proptest! {
    /// A resource never grants before the request time and never
    /// double-books: grant times are non-decreasing and separated by at
    /// least the previous occupancy when requests arrive in time order.
    #[test]
    fn resource_grants_are_serialized(reqs in prop::collection::vec((0u64..10_000, 1u64..100), 1..200)) {
        let mut reqs = reqs;
        reqs.sort_by_key(|&(t, _)| t);
        let mut r = Resource::new("prop");
        let mut prev_grant = Cycles::ZERO;
        let mut prev_occ = Cycles::ZERO;
        for (t, occ) in reqs {
            let g = r.acquire(Cycles(t), Cycles(occ));
            prop_assert!(g >= Cycles(t));
            prop_assert!(g >= prev_grant + prev_occ);
            prev_grant = g;
            prev_occ = Cycles(occ);
        }
    }

    /// Full reference model of [`Resource::acquire`]: grant time,
    /// `next_free`, and the queued/wait/busy accounting all match a
    /// direct recomputation for arbitrary (not necessarily time-ordered)
    /// request sequences — the contract behind the branchless fast path.
    #[test]
    fn resource_accounting_matches_reference_model(
        reqs in prop::collection::vec((0u64..10_000, 0u64..100), 0..300)
    ) {
        let mut r = Resource::new("prop");
        let mut next_free = 0u64;
        let (mut queued, mut wait, mut busy) = (0u64, 0u64, 0u64);
        for &(t, occ) in &reqs {
            let g = r.acquire(Cycles(t), Cycles(occ));
            let expect = t.max(next_free);
            prop_assert_eq!(g, Cycles(expect));
            if expect > t {
                queued += 1;
                wait += expect - t;
            }
            next_free = expect + occ;
            busy += occ;
            prop_assert_eq!(r.next_free(), Cycles(next_free));
        }
        prop_assert_eq!(r.grants(), reqs.len() as u64);
        prop_assert_eq!(r.queued(), queued);
        prop_assert_eq!(r.total_wait(), Cycles(wait));
        prop_assert_eq!(r.busy(), Cycles(busy));
    }

    /// Monotonicity and occupancy exclusion: each grant starts at or
    /// after the previous transaction's release, so occupancy intervals
    /// never overlap — even when requests arrive out of time order.
    #[test]
    fn resource_occupancy_intervals_never_overlap(
        reqs in prop::collection::vec((0u64..5_000, 1u64..64), 1..200)
    ) {
        let mut r = Resource::new("prop");
        let mut prev_release = 0u64;
        for &(t, occ) in &reqs {
            let g = r.acquire(Cycles(t), Cycles(occ));
            prop_assert!(g >= Cycles(t), "grant before request");
            prop_assert!(g.0 >= prev_release, "occupancy overlap");
            prev_release = g.0 + occ;
        }
    }

    /// Busy time equals the sum of occupancies regardless of contention.
    #[test]
    fn resource_busy_is_sum_of_occupancy(occs in prop::collection::vec(0u64..1000, 0..100)) {
        let mut r = Resource::new("prop");
        let mut total = 0u64;
        for occ in &occs {
            r.acquire(Cycles(0), Cycles(*occ));
            total += occ;
        }
        prop_assert_eq!(r.busy(), Cycles(total));
        prop_assert_eq!(r.grants(), occs.len() as u64);
    }

    /// Histogram count/min/max/mean agree with a direct computation.
    #[test]
    fn histogram_matches_reference(samples in prop::collection::vec(0u64..1_000_000, 1..500)) {
        let mut h = Histogram::new("prop");
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), *samples.iter().min().unwrap());
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-6 * mean.max(1.0));
    }

    /// CDF y-values are within [0,1], monotone, and end at 1 for nonzero
    /// total weight.
    #[test]
    fn cdf_is_a_distribution(weights in prop::collection::vec(0u64..10_000, 1..300)) {
        let nonzero = weights.iter().any(|&w| w > 0);
        let cdf = Cdf::from_weights("prop", weights);
        let mut prev = 0.0;
        for &(x, y) in cdf.points() {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&x));
            prop_assert!((0.0..=1.0 + 1e-12).contains(&y));
            prop_assert!(y + 1e-12 >= prev);
            prev = y;
        }
        if nonzero {
            prop_assert!((cdf.points().last().unwrap().1 - 1.0).abs() < 1e-9);
        }
    }

    /// The CDF's top-fraction reader is monotone in the fraction.
    #[test]
    fn cdf_top_reader_is_monotone(weights in prop::collection::vec(1u64..1000, 1..100),
                                  a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let cdf = Cdf::from_weights("prop", weights);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(cdf.weight_of_top(lo) <= cdf.weight_of_top(hi) + 1e-12);
    }

    /// Cycle arithmetic respects ordering.
    #[test]
    fn cycles_ordering(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let (ca, cb) = (Cycles(a), Cycles(b));
        prop_assert_eq!(ca.max(cb).0, a.max(b));
        prop_assert_eq!(ca.min(cb).0, a.min(b));
        prop_assert_eq!(ca.saturating_sub(cb).0, a.saturating_sub(b));
        prop_assert_eq!((ca + cb).0, a + b);
    }

    /// Deterministic RNG streams replay exactly.
    #[test]
    fn rng_replays(seed in any::<u64>()) {
        let mut a = DetRng::seeded(seed);
        let mut b = DetRng::seeded(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.range_u64(0, 1 << 50), b.range_u64(0, 1 << 50));
        }
    }
}
