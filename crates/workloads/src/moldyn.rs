//! moldyn: CHARMM-like molecular dynamics (shared-memory port).
//!
//! The paper's input: 2048 particles, 15 iterations.
//!
//! Each iteration evaluates pairwise forces over a precomputed neighbor
//! list and then integrates positions. Particles are block-partitioned;
//! forces are owner-accumulated (each CPU processes the pairs whose
//! first particle it owns, reading both particles' coordinates). The
//! whole coordinate set is only ~50 KB, but every node reads most of it
//! every iteration: the per-node remote working set (~40-90 KB)
//! overflows the 32-KB block cache — steady capacity refetches — while
//! the complete remote page set fits easily in the 320-KB page cache.
//! This is the paper's S-COMA showcase (Figure 6: CC-NUMA ≈ 1.8×,
//! S-COMA ≈ 1.05×): "the page cache can capture the complete set of
//! remote pages", and R-NUMA "simply relocates these pages into the
//! page cache and performs much like S-COMA".

use crate::Scale;
use rnuma::program::{Runner, Workload};
use rnuma_sim::DetRng;

/// Neighbors per particle in the pair list.
const NEIGHBORS: u64 = 20;
/// Instructions per pair interaction (distance + LJ force).
const THINK_PER_PAIR: u64 = 30;
/// Bytes per 3-vector (x, y, z doubles).
const VEC3: u64 = 24;

/// The moldyn workload.
#[derive(Debug)]
pub struct Moldyn {
    particles: u64,
    iterations: u64,
    seed: u64,
}

impl Moldyn {
    /// Creates the workload (paper: 2048 particles, 15 iterations).
    #[must_use]
    pub fn new(scale: Scale) -> Moldyn {
        Moldyn {
            particles: scale.apply(2048),
            iterations: scale.apply_iters(15),
            seed: 0x301D_0001,
        }
    }
}

impl Workload for Moldyn {
    fn name(&self) -> &'static str {
        "moldyn"
    }

    fn run(&mut self, r: &mut Runner<'_>) {
        let n = self.particles;
        let coords = r.alloc(n * VEC3);
        let forces = r.alloc(n * VEC3);
        let velocities = r.alloc(n * VEC3);

        // Build the neighbor list (untimed, as the original builds it
        // every ~20 steps; the paper's 15 iterations reuse one list).
        // Neighbors are spatially clustered: mostly nearby indices with
        // a random remote tail, approximating a 3-D cutoff sphere over
        // a block distribution.
        let mut rng = DetRng::seeded(self.seed);
        let pairs: Vec<[u64; NEIGHBORS as usize]> = (0..n)
            .map(|i| {
                let mut row = [0u64; NEIGHBORS as usize];
                for (k, slot) in row.iter_mut().enumerate() {
                    *slot = if k % 4 == 3 {
                        rng.range_u64(0, n) // long-range partner
                    } else {
                        let span = 64.min(n);
                        let lo = i.saturating_sub(span / 2).min(n - span);
                        lo + rng.range_u64(0, span)
                    };
                }
                row
            })
            .collect();

        let items = r.block_partition(n);

        // Owners initialize their particles (first touch homes them;
        // a block distribution of 2048 particles interleaves pages
        // across nodes at ~256 particles per node).
        r.arm_first_touch();
        r.parallel(&items, |ctx, _cpu, i| {
            ctx.write(coords.elem(i, VEC3));
            ctx.write(velocities.elem(i, VEC3));
            ctx.write(forces.elem(i, VEC3));
        });
        r.barrier();

        for _ in 0..self.iterations {
            // Force phase: owner of i processes its pair row.
            r.parallel(&items, |ctx, _cpu, i| {
                ctx.read_words(coords.elem(i, VEC3), 3);
                for &j in &pairs[i as usize] {
                    ctx.read_words(coords.elem(j, VEC3), 3);
                    ctx.think(THINK_PER_PAIR);
                }
                // Accumulate into the owner's force row.
                ctx.update(forces.elem(i, VEC3));
            });
            r.barrier();
            // Integration: owners update positions and velocities.
            r.parallel(&items, |ctx, _cpu, i| {
                ctx.read_words(forces.elem(i, VEC3), 3);
                ctx.update(velocities.elem(i, VEC3));
                ctx.read_words(velocities.elem(i, VEC3), 3);
                ctx.write_words(coords.elem(i, VEC3), 3);
                ctx.think(40);
            });
            r.barrier();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnuma::config::{MachineConfig, Protocol};
    use rnuma::experiment::run;

    #[test]
    fn moldyn_remote_pages_fit_page_cache() {
        let report = run(
            MachineConfig::paper_base(Protocol::paper_scoma()),
            &mut Moldyn::new(Scale::Tiny),
        );
        // The full data set is tiny: after initial allocation the page
        // cache absorbs everything — zero replacements.
        assert_eq!(report.metrics.os.page_replacements, 0);
        assert!(report.metrics.page_cache_hits > 0);
    }

    #[test]
    fn moldyn_refetches_under_small_block_cache() {
        let report = run(
            MachineConfig::paper_base(Protocol::CcNuma {
                block_cache_bytes: Some(1024),
            }),
            &mut Moldyn::new(Scale::Tiny),
        );
        assert!(
            report.metrics.refetches > 0,
            "coordinate re-reads must refetch under a tiny block cache"
        );
    }

    #[test]
    fn moldyn_rnuma_relocates_coordinate_pages() {
        let report = run(
            MachineConfig::paper_base(Protocol::RNuma {
                block_cache_bytes: 128,
                page_cache_bytes: 320 * 1024,
                threshold: 16,
            }),
            &mut Moldyn::new(Scale::Small),
        );
        assert!(report.metrics.relocation_interrupts > 0);
    }
}
