//! radix: integer radix sort (SPLASH-2).
//!
//! The paper's input: 1 M integers, radix 1024 (two 10-bit digit
//! passes over 20-bit keys).
//!
//! Each pass: every CPU histograms its contiguous slice of the source
//! array (local reads after the first pass's all-to-all), the global
//! rank prefix is computed from all per-CPU histograms, and the
//! permutation writes every key to its destination rank — an all-to-all
//! scatter in which "processors march through a large number of remote
//! pages writing to a small number of blocks" (Section 5.1). Capacity
//! misses are spread *evenly* over the pages (the flat CDF line in
//! Figure 5), so R-NUMA's relocation heuristic finds no small hot set,
//! and S-COMA's 320-KB page cache is hopeless against a 4-MB scatter
//! target (Figure 6: S-COMA ≈ 4× CC-NUMA).

use crate::Scale;
use rnuma::program::{Runner, Workload};
use rnuma_sim::DetRng;

/// Radix (buckets per pass), as in the paper.
const RADIX: u64 = 1024;
/// Bits per digit.
const DIGIT_BITS: u64 = 10;
/// Key width in bits (1 M distinct keys need 20).
const KEY_BITS: u64 = 20;
/// Bytes per key (the SPLASH-2 code sorts word-sized integers).
const KEY: u64 = 8;
/// Instructions per key inspected.
const THINK_PER_KEY: u64 = 24;

/// The radix workload.
#[derive(Debug)]
pub struct Radix {
    keys: u64,
    seed: u64,
}

impl Radix {
    /// Creates the workload (paper: 1 M keys).
    #[must_use]
    pub fn new(scale: Scale) -> Radix {
        Radix {
            keys: scale.apply(1 << 20),
            seed: 0x5AD1_0001,
        }
    }
}

impl Workload for Radix {
    fn name(&self) -> &'static str {
        "radix"
    }

    fn run(&mut self, r: &mut Runner<'_>) {
        let n = self.keys;
        let cpus = u64::from(r.cpus());
        let passes = KEY_BITS / DIGIT_BITS;

        let src = r.alloc(n * KEY);
        let dst = r.alloc(n * KEY);
        // Per-CPU histograms, one page apart to avoid false sharing.
        let hists = r.alloc(cpus * 4096);

        // Generate the keys (host-side state; the simulated writes
        // below place the pages). `order` mirrors the key sequence held
        // in `src` as the passes progress.
        let mut rng = DetRng::seeded(self.seed);
        let mut order: Vec<u32> = (0..n)
            .map(|_| rng.range_u64(0, 1 << KEY_BITS) as u32)
            .collect();

        let slices = r.block_partition(n);

        // Owners write their key slices (first touch homes them).
        r.arm_first_touch();
        r.parallel(&slices, |ctx, _cpu, i| {
            ctx.write(src.elem(i, KEY));
        });
        r.barrier();

        // The SPLASH-2 code swaps FROM/TO pointers each pass.
        let arrays = [src, dst];
        for pass in 0..passes {
            let shift = pass * DIGIT_BITS;
            let from = arrays[(pass % 2) as usize];
            let to = arrays[((pass + 1) % 2) as usize];

            // Phase 1: per-CPU histogram of the local slice.
            r.parallel(&slices, |ctx, cpu, i| {
                ctx.read(from.elem(i, KEY));
                ctx.think(THINK_PER_KEY);
                let digit = u64::from(order[i as usize] >> shift) % RADIX;
                // Histogram bins are hot in-cache; touch one word.
                ctx.update(hists.at(u64::from(cpu.0) * 4096 + (digit % 512) * 8));
            });
            r.barrier();

            // Phase 2: global rank computation — every CPU scans all
            // histograms (all-to-all read of one page per CPU).
            let one_each: Vec<Vec<u64>> = (0..cpus).map(|c| vec![c]).collect();
            r.parallel(&one_each, |ctx, _cpu, _| {
                for other in 0..cpus {
                    for w in (0..RADIX / 2).step_by(4) {
                        ctx.read(hists.at(other * 4096 + w * 8));
                    }
                }
                ctx.think(RADIX * 2);
            });
            r.barrier();

            // Host-side: stable counting sort to find each key's rank.
            let mut starts = {
                let mut counts = vec![0u64; RADIX as usize];
                for &k in &order {
                    counts[(u64::from(k >> shift) % RADIX) as usize] += 1;
                }
                let mut starts = vec![0u64; RADIX as usize];
                let mut acc = 0;
                for (d, &c) in counts.iter().enumerate() {
                    starts[d] = acc;
                    acc += c;
                }
                starts
            };
            let mut next: Vec<u32> = vec![0; order.len()];
            let mut ranks: Vec<u64> = vec![0; order.len()];
            for (i, &k) in order.iter().enumerate() {
                let d = (u64::from(k >> shift) % RADIX) as usize;
                ranks[i] = starts[d];
                next[starts[d] as usize] = k;
                starts[d] += 1;
            }

            // Phase 3: permutation — read each local key, write it to
            // its global rank in the destination (the all-to-all
            // scatter).
            r.parallel(&slices, |ctx, _cpu, i| {
                ctx.read(from.elem(i, KEY));
                ctx.write(to.elem(ranks[i as usize], KEY));
                ctx.think(THINK_PER_KEY);
            });
            r.barrier();
            order = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnuma::config::{MachineConfig, Protocol};
    use rnuma::experiment::run;

    #[test]
    fn radix_scatter_spreads_misses_evenly() {
        let report = run(
            MachineConfig::paper_base(Protocol::paper_ccnuma()),
            &mut Radix::new(Scale::Small),
        );
        let m = &report.metrics;
        assert!(m.remote_fetches > 0);
        // Figure 5: radix's refetch CDF is nearly the diagonal — the top
        // 10% of pages must NOT dominate. (The flatness improves with
        // scale: 0.42 at Small, 0.23 at the paper's 1M keys.)
        let cdf = m.refetch_cdf();
        if cdf.total() > 50 {
            assert!(
                cdf.weight_of_top(0.10) < 0.6,
                "radix misses should be spread out, got {:.2}",
                cdf.weight_of_top(0.10)
            );
        }
    }

    #[test]
    fn radix_thrashes_a_small_page_cache() {
        let report = run(
            MachineConfig::paper_base(Protocol::SComa {
                page_cache_bytes: 20 * 4096,
            }),
            &mut Radix::new(Scale::Tiny),
        );
        assert!(report.metrics.os.page_replacements > 50);
    }
}
