//! em3d: 3-D electromagnetic wave propagation (Split-C benchmark).
//!
//! The paper's input: 76800 graph nodes, 15% remote edges, 5 iterations.
//!
//! em3d models electromagnetic waves on a bipartite graph: E nodes
//! depend on H nodes and vice versa. Each iteration alternates two
//! phases: every E node recomputes its value from its H neighbors, then
//! every H node from its E neighbors. Nodes are block-partitioned across
//! CPUs; with probability `remote_fraction` an edge crosses a *machine
//! node* boundary (Split-C's definition of "remote"), giving the
//! producer-consumer coherence traffic the paper describes: values are
//! rewritten by their owner every iteration, so consumer copies are
//! invalidated and re-fetched — coherence misses, not refetches. The
//! remote read set per node is far larger than the 320-KB page cache, so
//! S-COMA thrashes, while CC-NUMA's block cache rides the small
//! per-iteration working set (Section 5.2: em3d performs well in
//! CC-NUMA even with a 1-KB block cache).

use crate::Scale;
use rnuma::program::{Runner, Workload};
use rnuma_sim::DetRng;

/// Per-graph-node degree (dependencies per value), as in Split-C em3d.
const DEGREE: usize = 5;
/// Bytes per graph-node record. Split-C em3d stores each node as a
/// struct (value, coefficient, dependency pointers/counts), so a remote
/// neighbor read touches one block of a mostly-untouched page — the
/// scatter that makes S-COMA's page-granularity caching so expensive
/// for em3d (Figure 6).
const NODE_STRIDE: u64 = 128;
/// Instructions of compute charged per neighbor accumulation.
const THINK_PER_EDGE: u64 = 8;

/// The em3d workload.
#[derive(Debug)]
pub struct Em3d {
    nodes_per_side: u64,
    remote_fraction: f64,
    iterations: u64,
    seed: u64,
}

impl Em3d {
    /// Creates the workload at the given scale (paper: 76800 nodes
    /// total, 15% remote, 5 iterations).
    #[must_use]
    pub fn new(scale: Scale) -> Em3d {
        Em3d {
            nodes_per_side: scale.apply(38_400),
            remote_fraction: 0.15,
            iterations: scale.apply_iters(5),
            seed: 0xE3D_0001,
        }
    }

    /// Overrides the remote-edge fraction (paper: 0.15).
    #[must_use]
    pub fn with_remote_fraction(mut self, fraction: f64) -> Em3d {
        self.remote_fraction = fraction.clamp(0.0, 1.0);
        self
    }
}

impl Workload for Em3d {
    fn name(&self) -> &'static str {
        "em3d"
    }

    fn run(&mut self, r: &mut Runner<'_>) {
        let n = self.nodes_per_side;
        let cpus = u64::from(r.cpus());
        let cpus_per_node = 4; // the paper machine's SMP width
        let machine_nodes = cpus / cpus_per_node;

        // Shared node records (the value lives at offset 0 of each).
        let e_values = r.alloc(n * NODE_STRIDE);
        let h_values = r.alloc(n * NODE_STRIDE);

        // Wire the bipartite graph (untimed setup). Each node's
        // neighbors are local to its owner CPU's slice unless the edge
        // is remote, in which case the target lives on a different
        // *machine node* (uniformly chosen), per the Split-C generator.
        let mut rng = DetRng::seeded(self.seed);
        let per_cpu = n.div_ceil(cpus);
        let wire = |rng: &mut DetRng| -> Vec<[u64; DEGREE]> {
            (0..n)
                .map(|i| {
                    let my_cpu = (i / per_cpu).min(cpus - 1);
                    let my_node = my_cpu / cpus_per_node;
                    let mut deps = [0u64; DEGREE];
                    for d in deps.iter_mut() {
                        *d = if rng.chance(self.remote_fraction) && machine_nodes > 1 {
                            // A target slice on another machine node.
                            let mut other = rng.range_u64(0, machine_nodes);
                            if other == my_node {
                                other = (other + 1) % machine_nodes;
                            }
                            let target_cpu =
                                other * cpus_per_node + rng.range_u64(0, cpus_per_node);
                            let lo = target_cpu * per_cpu;
                            let hi = ((target_cpu + 1) * per_cpu).min(n);
                            rng.range_u64(lo.min(hi - 1), hi)
                        } else {
                            // Local neighbors cluster around the node
                            // itself (em3d graphs are spatially local),
                            // keeping local reads cache-friendly.
                            let lo = my_cpu * per_cpu;
                            let hi = ((my_cpu + 1) * per_cpu).min(n);
                            let center = i.clamp(lo, hi - 1);
                            let wlo = center.saturating_sub(16).max(lo);
                            let whi = (center + 16).min(hi - 1);
                            rng.range_u64(wlo, whi + 1)
                        };
                    }
                    deps
                })
                .collect()
        };
        let e_deps = wire(&mut rng);
        let h_deps = wire(&mut rng);

        let items = r.block_partition(n);

        // Owners write their values once so first touch homes each slice
        // locally (the Split-C program allocates node storage locally).
        r.arm_first_touch();
        r.parallel(&items, |ctx, _cpu, i| {
            ctx.write(e_values.elem(i, NODE_STRIDE));
            ctx.write(h_values.elem(i, NODE_STRIDE));
        });
        r.barrier();

        for _ in 0..self.iterations {
            // E phase: E[i] = f(H[deps]).
            r.parallel(&items, |ctx, _cpu, i| {
                for &d in &e_deps[i as usize] {
                    ctx.read(h_values.elem(d, NODE_STRIDE));
                    ctx.think(THINK_PER_EDGE);
                }
                ctx.write(e_values.elem(i, NODE_STRIDE));
            });
            r.barrier();
            // H phase: H[i] = f(E[deps]).
            r.parallel(&items, |ctx, _cpu, i| {
                for &d in &h_deps[i as usize] {
                    ctx.read(e_values.elem(d, NODE_STRIDE));
                    ctx.think(THINK_PER_EDGE);
                }
                ctx.write(h_values.elem(i, NODE_STRIDE));
            });
            r.barrier();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnuma::config::{MachineConfig, Protocol};
    use rnuma::experiment::run;

    #[test]
    fn em3d_is_communication_bound_not_refetch_bound() {
        let report = run(
            MachineConfig::paper_base(Protocol::paper_ccnuma()),
            &mut Em3d::new(Scale::Tiny),
        );
        let m = &report.metrics;
        assert!(m.remote_fetches > 0, "remote edges must communicate");
        // Producer-consumer: coherence misses dominate; refetches are a
        // small fraction of remote fetches.
        assert!(
            (m.refetches as f64) < 0.3 * m.remote_fetches as f64,
            "refetches {} vs fetches {}",
            m.refetches,
            m.remote_fetches
        );
    }

    #[test]
    fn em3d_scoma_replaces_pages_heavily() {
        let report = run(
            MachineConfig::paper_base(Protocol::SComa {
                page_cache_bytes: 4 * 4096, // deliberately tight
            }),
            &mut Em3d::new(Scale::Tiny),
        );
        assert!(
            report.metrics.os.page_replacements > 0,
            "remote page set must overflow a tight page cache"
        );
    }

    #[test]
    fn em3d_references_scale_with_iterations() {
        let config = MachineConfig::paper_base(Protocol::ideal());
        let one = run(
            config,
            &mut Em3d {
                iterations: 1,
                ..Em3d::new(Scale::Tiny)
            },
        );
        let two = run(
            config,
            &mut Em3d {
                iterations: 2,
                ..Em3d::new(Scale::Tiny)
            },
        );
        assert!(two.metrics.references() > one.metrics.references());
    }
}
