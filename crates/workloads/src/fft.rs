//! fft: complex 1-D radix-√n six-step FFT (SPLASH-2).
//!
//! The paper's input: 64 K complex points, i.e. a 256×256 matrix of
//! 16-byte complex values.
//!
//! The six-step algorithm: transpose, 1-D FFTs over rows, transpose,
//! twiddle + 1-D FFTs, transpose. Rows are block-partitioned across
//! CPUs. The transposes perform all-to-all communication, and — the
//! property that matters for S-COMA — read the *source* matrix by
//! column: with 256 complex values per row, a column walk strides
//! 4 KB, touching one 32-byte block per page across 256 pages. The
//! result is severe internal fragmentation of the page cache (Section
//! 2.2: "regular applications with large strides are particularly
//! susceptible"), so S-COMA thrashes while CC-NUMA's block cache holds
//! the tiny per-row working set (the paper's Figure 7 shows fft happy
//! with a 1-KB block cache).

use crate::Scale;
use rnuma::program::{Ctx, Region, Runner, Workload};

/// Bytes per complex element.
const CPLX: u64 = 16;
/// Instructions per butterfly stage per point.
const THINK_PER_POINT: u64 = 12;

/// The fft workload.
#[derive(Debug)]
pub struct Fft {
    /// Matrix side: `side * side` complex points in total.
    side: u64,
}

impl Fft {
    /// Creates the workload (paper: 64 K points → side 256).
    #[must_use]
    pub fn new(scale: Scale) -> Fft {
        // Scale the *point count* by the scale factor, keeping a square.
        let side = match scale {
            Scale::Paper => 256,
            Scale::Small => 128,
            Scale::Tiny => 64,
        };
        Fft { side }
    }

    /// Total complex points.
    #[must_use]
    pub fn points(&self) -> u64 {
        self.side * self.side
    }

    fn at(m: Region, side: u64, row: u64, col: u64) -> rnuma_mem::addr::Va {
        m.elem(row * side + col, CPLX)
    }

    /// Transposes one source-column patch into the CPU's destination
    /// rows `r0..r1`, patch-blocked as in the SPLASH-2 code: for each
    /// source row (`col`), the CPU reads the contiguous 128-byte segment
    /// `src[col][r0..r1]` — every 32-byte block exactly once, with
    /// spatial locality, so the direct-mapped caches never self-thrash —
    /// and scatters it into its own (local) destination rows. Each
    /// remote *page* still yields only `r1 - r0` elements per transpose,
    /// the fragmentation that defeats the S-COMA page cache.
    fn transpose_patch(
        ctx: &mut Ctx<'_>,
        src: Region,
        dst: Region,
        side: u64,
        (r0, r1): (u64, u64),
        col0: u64,
        patch: u64,
    ) {
        for col in col0..(col0 + patch).min(side) {
            for row in r0..r1 {
                // src[col][row] -> dst[row][col]
                ctx.read(Fft::at(src, side, col, row));
                ctx.write(Fft::at(dst, side, row, col));
            }
        }
    }

    /// One radix-√n row FFT: a couple of passes over the row with
    /// twiddle compute charged as think time.
    fn fft_row(ctx: &mut Ctx<'_>, m: Region, side: u64, row: u64) {
        for pass in 0..2 {
            for col in 0..side {
                ctx.read(Fft::at(m, side, row, col));
                ctx.think(THINK_PER_POINT);
                if pass == 1 {
                    ctx.write(Fft::at(m, side, row, col));
                }
            }
        }
    }
}

impl Workload for Fft {
    fn name(&self) -> &'static str {
        "fft"
    }

    fn run(&mut self, r: &mut Runner<'_>) {
        let side = self.side;
        let x = r.alloc(side * side * CPLX);
        let trans = r.alloc(side * side * CPLX);

        let rows = r.block_partition(side);
        // Each CPU's contiguous destination-row range.
        let cpus = u64::from(r.cpus());
        let ranges: Vec<(u64, u64)> = (0..cpus)
            .map(|c| (side * c / cpus, side * (c + 1) / cpus))
            .collect();
        // Transpose work items: one per 16-column source patch.
        let patch = 16.min(side);
        let patches: Vec<Vec<u64>> = (0..cpus)
            .map(|_| (0..side).step_by(patch as usize).collect())
            .collect();

        // Owners initialize their rows (first touch homes them).
        r.arm_first_touch();
        r.parallel(&rows, |ctx, _cpu, row| {
            for col in 0..side {
                ctx.write(Fft::at(x, side, row, col));
            }
        });
        r.barrier();

        let transpose = |r: &mut Runner<'_>, src: Region, dst: Region| {
            r.parallel(&patches, |ctx, cpu, col0| {
                let range = ranges[cpu.0 as usize];
                Fft::transpose_patch(ctx, src, dst, side, range, col0, patch);
            });
            r.barrier();
        };
        let fft_phase = |r: &mut Runner<'_>, m: Region| {
            r.parallel(&rows, |ctx, _cpu, row| {
                Fft::fft_row(ctx, m, side, row);
            });
            r.barrier();
        };

        // The six-step algorithm's data movement.
        transpose(r, x, trans); // step 1
        fft_phase(r, trans); // step 2
        transpose(r, trans, x); // step 3 (plus twiddle)
        fft_phase(r, x); // step 4
        transpose(r, x, trans); // step 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnuma::config::{MachineConfig, Protocol};
    use rnuma::experiment::run;

    #[test]
    fn fft_reference_count_matches_structure() {
        let mut w = Fft::new(Scale::Tiny);
        let n = w.points();
        let report = run(MachineConfig::paper_base(Protocol::ideal()), &mut w);
        // init (1 write) + 3 transposes (1r+1w) + 2 FFT phases (3 refs).
        let expected = n * (1 + 3 * 2 + 2 * 3);
        assert_eq!(report.metrics.references(), expected);
    }

    #[test]
    fn fft_transposes_fragment_the_page_cache() {
        let report = run(
            MachineConfig::paper_base(Protocol::paper_scoma()),
            &mut Fft::new(Scale::Tiny),
        );
        // Column-strided reads touch many pages with one block each:
        // plenty of allocations relative to the data size.
        assert!(
            report.metrics.os.scoma_allocations > 100,
            "got {}",
            report.metrics.os.scoma_allocations
        );
    }

    #[test]
    fn fft_is_insensitive_to_block_cache_size() {
        // Figure 7's statement for fft: the reuse working set is so small
        // that a 1-KB block cache performs like a 32-KB one. (At Tiny
        // scale multiple rows share a page, so some refetch traffic
        // exists, but it must not depend on block-cache capacity.)
        let big = run(
            MachineConfig::paper_base(Protocol::paper_ccnuma()),
            &mut Fft::new(Scale::Tiny),
        );
        let small = run(
            MachineConfig::paper_base(Protocol::CcNuma {
                block_cache_bytes: Some(1024),
            }),
            &mut Fft::new(Scale::Tiny),
        );
        let ratio = small.cycles() as f64 / big.cycles() as f64;
        assert!(ratio < 1.15, "b=1K/b=32K ratio {ratio:.2}");
    }
}
