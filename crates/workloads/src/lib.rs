//! Application kernels for the Reactive NUMA reproduction.
//!
//! Table 3 of the paper lists ten shared-memory applications: eight from
//! SPLASH-2 (barnes, cholesky, fft, fmm, lu, ocean, radix, raytrace),
//! the Split-C em3d benchmark, and a CHARMM-like moldyn. The original
//! SPARC binaries cannot run here, so each application is reproduced as
//! a *kernel*: Rust code that executes the same parallel structure — the
//! shared data structures at the paper's input sizes, the phase/barrier
//! skeleton, the per-CPU traversal order, and the read/write sharing
//! pattern — emitting every load and store to the simulated machine.
//! DESIGN.md §4 documents this substitution and why it preserves the
//! paper's results, which depend on data-access structure rather than
//! instruction encodings.
//!
//! Each kernel takes a [`Scale`]: [`Scale::Paper`] reproduces Table 3's
//! inputs; [`Scale::Small`] and [`Scale::Tiny`] shrink the data sets for
//! tests and micro-benchmarks while preserving the access patterns.
//!
//! Initialization phases run *untimed* (standard SPLASH-2 methodology:
//! measurements cover the parallel phase), with first-touch placement
//! armed at the start of the timed region, so page homes land where the
//! paper's first-touch migration policy would put them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod barnes;
pub mod cholesky;
pub mod em3d;
pub mod fft;
pub mod fmm;
pub mod lu;
pub mod moldyn;
pub mod ocean;
pub mod radix;
pub mod raytrace;

use rnuma::program::Workload;

/// Input-size scaling for the kernels.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Scale {
    /// The paper's Table-3 inputs (e.g., 16 K particles, 512×512 LU).
    #[default]
    Paper,
    /// Roughly 1/4-sized inputs for integration tests.
    Small,
    /// Minimal inputs for smoke tests and Criterion benches.
    Tiny,
}

impl Scale {
    /// Scales a linear dimension down: `Paper` keeps `n`, `Small`
    /// divides by 4, `Tiny` by 16 (minimum 1).
    #[must_use]
    pub fn apply(self, n: u64) -> u64 {
        let scaled = match self {
            Scale::Paper => n,
            Scale::Small => n / 4,
            Scale::Tiny => n / 16,
        };
        scaled.max(1)
    }

    /// Scales an iteration count: `Paper` keeps `n`, others halve it
    /// (minimum 1).
    #[must_use]
    pub fn apply_iters(self, n: u64) -> u64 {
        let scaled = match self {
            Scale::Paper => n,
            Scale::Small | Scale::Tiny => n / 2,
        };
        scaled.max(1)
    }
}

/// The ten applications of Table 3, in the paper's order.
pub const APP_NAMES: [&str; 10] = [
    "barnes", "cholesky", "em3d", "fft", "fmm", "lu", "moldyn", "ocean", "radix", "raytrace",
];

/// Instantiates one application by name.
///
/// Returns `None` for unknown names. Names match [`APP_NAMES`].
#[must_use]
pub fn by_name(name: &str, scale: Scale) -> Option<Box<dyn Workload>> {
    let w: Box<dyn Workload> = match name {
        "barnes" => Box::new(barnes::Barnes::new(scale)),
        "cholesky" => Box::new(cholesky::Cholesky::new(scale)),
        "em3d" => Box::new(em3d::Em3d::new(scale)),
        "fft" => Box::new(fft::Fft::new(scale)),
        "fmm" => Box::new(fmm::Fmm::new(scale)),
        "lu" => Box::new(lu::Lu::new(scale)),
        "moldyn" => Box::new(moldyn::Moldyn::new(scale)),
        "ocean" => Box::new(ocean::Ocean::new(scale)),
        "radix" => Box::new(radix::Radix::new(scale)),
        "raytrace" => Box::new(raytrace::Raytrace::new(scale)),
        _ => return None,
    };
    Some(w)
}

/// Instantiates the full Table-3 suite.
///
/// # Panics
///
/// Panics, naming the offending entry, if `APP_NAMES` and the
/// [`by_name`] registry ever drift apart (a bug this crate's
/// exhaustiveness test also catches at test time).
#[must_use]
pub fn suite(scale: Scale) -> Vec<Box<dyn Workload>> {
    APP_NAMES
        .iter()
        .map(|n| {
            by_name(n, scale).unwrap_or_else(|| {
                panic!("APP_NAMES entry {n:?} is missing from the by_name registry")
            })
        })
        .collect()
}

/// One-line description of each application's input (Table 3).
#[must_use]
pub fn input_description(name: &str) -> Option<&'static str> {
    Some(match name {
        "barnes" => "Barnes-Hut N-body simulation, 16K particles",
        "cholesky" => "Blocked sparse Cholesky factorization, tk16.O-class matrix",
        "em3d" => "3-D electromagnetic wave propagation, 76800 nodes, 15% remote, 5 iters",
        "fft" => "Complex 1-D radix-sqrt(n) six-step FFT, 64K points",
        "fmm" => "Fast Multipole N-body simulation, 16K particles",
        "lu" => "Blocked dense LU factorization, 512x512 matrix, 16x16 blocks",
        "moldyn" => "Molecular dynamics simulation, 2048 particles, 15 iters",
        "ocean" => "Ocean simulation, 258x258 ocean",
        "radix" => "Integer radix sort, 1M integers, radix 1024",
        "raytrace" => "3-D scene rendering using ray-tracing, car-class scene",
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete() {
        for name in APP_NAMES {
            assert!(by_name(name, Scale::Tiny).is_some(), "{name} missing");
            assert!(input_description(name).is_some(), "{name} undocumented");
        }
        assert!(by_name("doom", Scale::Tiny).is_none());
        assert_eq!(suite(Scale::Tiny).len(), 10);
    }

    #[test]
    fn workload_names_match_registry() {
        for name in APP_NAMES {
            let w = by_name(name, Scale::Tiny)
                .unwrap_or_else(|| panic!("APP_NAMES entry {name:?} missing from by_name"));
            assert_eq!(w.name(), name);
        }
    }

    /// `APP_NAMES`, the `by_name` registry, and `input_description`
    /// cannot drift: the three agree entry-for-entry, names are unique,
    /// and every registered workload reports itself under its
    /// registered name. (The registry match has a `_` arm by design —
    /// unknown names are a `None`, not a panic — so drift is pinned
    /// here rather than by the compiler.)
    #[test]
    fn registry_tables_are_exhaustive_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for name in APP_NAMES {
            assert!(seen.insert(name), "APP_NAMES entry {name:?} duplicated");
            let w = by_name(name, Scale::Tiny)
                .unwrap_or_else(|| panic!("APP_NAMES entry {name:?} missing from by_name"));
            assert_eq!(w.name(), name, "workload self-name drifted for {name:?}");
            assert!(
                input_description(name).is_some(),
                "APP_NAMES entry {name:?} missing from input_description"
            );
        }
        assert_eq!(suite(Scale::Tiny).len(), APP_NAMES.len());
    }

    #[test]
    fn scaling_is_monotone() {
        assert_eq!(Scale::Paper.apply(1024), 1024);
        assert_eq!(Scale::Small.apply(1024), 256);
        assert_eq!(Scale::Tiny.apply(1024), 64);
        assert_eq!(Scale::Tiny.apply(4), 1, "never scales to zero");
        assert_eq!(Scale::Paper.apply_iters(15), 15);
        assert_eq!(Scale::Tiny.apply_iters(15), 7);
    }
}
