//! raytrace: 3-D scene rendering by ray tracing (SPLASH-2).
//!
//! The paper's input: the `car` scene.
//!
//! Rays are traced through a hierarchical (HUG/BVH) acceleration
//! structure over a read-only scene. The hierarchy's upper levels are
//! read by every ray on every CPU — heavy read-only reuse — while the
//! triangle data is vast and touched sparsely per ray. Pixels
//! (framebuffer) are written by their owners only. Table 4 shows the
//! consequence: just 5% of raytrace's refetches come from read-write
//! pages — it is the one application where plain read-only replication
//! would also have worked. R-NUMA relocates the hot hierarchy pages
//! and "virtually eliminates all of the refetches and replacements",
//! outperforming both base protocols (Section 5.2).

use crate::Scale;
use rnuma::program::{Runner, Workload};
use rnuma_sim::DetRng;

/// Bytes per BVH node (bounds + child links).
const BVH_NODE: u64 = 64;
/// Bytes per triangle record.
const TRI: u64 = 96;
/// Instructions per BVH node test.
const THINK_PER_NODE: u64 = 24;
/// Instructions per triangle intersection.
const THINK_PER_TRI: u64 = 40;

/// The raytrace workload.
#[derive(Debug)]
pub struct Raytrace {
    /// Image side in pixels.
    image_side: u64,
    /// Triangles in the scene (car ≈ 130 K faces scaled to record count).
    triangles: u64,
    seed: u64,
}

impl Raytrace {
    /// Creates the workload (paper: `car`; modeled as a 128×128 image
    /// over a ~16 K-triangle hierarchy).
    #[must_use]
    pub fn new(scale: Scale) -> Raytrace {
        Raytrace {
            image_side: match scale {
                Scale::Paper => 128,
                Scale::Small => 64,
                Scale::Tiny => 32,
            },
            triangles: scale.apply(16 * 1024),
            seed: 0x2A11_0001,
        }
    }
}

impl Workload for Raytrace {
    fn name(&self) -> &'static str {
        "raytrace"
    }

    fn run(&mut self, r: &mut Runner<'_>) {
        let pixels = self.image_side * self.image_side;
        let nt = self.triangles;
        // BVH levels: 1, 8, 64, 512 ... roughly nt/4 nodes in total.
        let mut level_sizes = Vec::new();
        let mut total_nodes = 0u64;
        let mut width = 1u64;
        while total_nodes + width < nt / 2 {
            level_sizes.push(width);
            total_nodes += width;
            width *= 8;
        }
        let bvh = r.alloc(total_nodes * BVH_NODE);
        let tris = r.alloc(nt * TRI);
        let image = r.alloc(pixels * 8);

        let mut rng = DetRng::seeded(self.seed);
        let level_base: Vec<u64> = level_sizes
            .iter()
            .scan(0u64, |acc, &w| {
                let base = *acc;
                *acc += w;
                Some(base)
            })
            .collect();

        // Each pixel's ray: a jitter key for its BVH descent, a few
        // triangles near its leaf region (primary rays are coherent:
        // adjacent pixels hit adjacent geometry), and two scene-wide
        // triangles (shadow/reflection rays) — the sparse cold traffic
        // that pollutes the S-COMA page cache.
        let rays: Vec<(u64, [u64; 5])> = (0..pixels)
            .map(|p| {
                let key = rng.range_u64(0, u64::MAX / 2);
                let region = (p * nt / pixels).min(nt - 4);
                let mut hit = [0u64; 5];
                for (k, slot) in hit.iter_mut().enumerate() {
                    *slot = if k >= 4 && p % 4 == 0 {
                        rng.range_u64(0, nt)
                    } else {
                        (region + ((key >> (3 * k)) % 64)).min(nt - 1)
                    };
                }
                (key, hit)
            })
            .collect();

        // The scene is built before the timed region (the SPLASH-2 code
        // reads it from a file during initialization), so the hierarchy
        // and triangles are *never written* during rendering: their
        // pages are homed by first touch at their first reader and the
        // directory sees pure read sharing — Table 4's 5%-RW column.
        r.arm_first_touch();

        // Render: pixels block-partitioned (scanline groups per CPU).
        let pixel_items = r.block_partition(pixels);
        r.parallel(&pixel_items, |ctx, _cpu, p| {
            let (key, hits) = rays[p as usize];
            // Descend the hierarchy. Primary rays are coherent: the
            // path node follows the pixel's position (plus jitter), so
            // the upper levels are globally hot while deep nodes are
            // read by their spatial neighborhood. Shadow rays add two
            // spread reads at each mid level.
            for (d, (&base, &w)) in level_base.iter().zip(level_sizes.iter()).enumerate() {
                let spatial = p * w / pixels;
                let along = (spatial + (key >> (d * 3)) % 3) % w;
                ctx.read_words(bvh.elem(base + along, BVH_NODE), 6);
                ctx.read_words(bvh.elem(base + (along + 1) % w, BVH_NODE), 6);
                if w > 8 {
                    for k in 1..5u64 {
                        let c = base + (along + k * w / 5) % w;
                        ctx.read_words(bvh.elem(c, BVH_NODE), 6);
                    }
                }
                ctx.think(THINK_PER_NODE);
            }
            // Intersect candidate triangles.
            for &t in &hits {
                ctx.read_words(tris.elem(t, TRI), 4);
                ctx.think(THINK_PER_TRI);
            }
            // Shade and write the pixel (owner-local framebuffer).
            ctx.write(image.word(p));
        });
        r.barrier();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnuma::config::{MachineConfig, Protocol};
    use rnuma::experiment::run;

    #[test]
    fn raytrace_refetches_are_read_only() {
        let report = run(
            MachineConfig::paper_base(Protocol::paper_ccnuma()),
            &mut Raytrace::new(Scale::Tiny),
        );
        // Table 4: only ~5% of raytrace refetches come from RW pages.
        assert!(
            report.metrics.rw_page_refetch_fraction() < 0.5,
            "raytrace is read-only dominated, got {:.2}",
            report.metrics.rw_page_refetch_fraction()
        );
    }

    #[test]
    fn raytrace_hot_hierarchy_refetches() {
        let report = run(
            MachineConfig::paper_base(Protocol::CcNuma {
                block_cache_bytes: Some(1024),
            }),
            &mut Raytrace::new(Scale::Tiny),
        );
        assert!(report.metrics.refetches > 0);
    }
}
