//! ocean: eddy-current ocean simulation (SPLASH-2).
//!
//! The paper's input: a 258×258 ocean (256×256 interior points plus
//! boundary), 2-D partitioned into square-ish subgrids.
//!
//! Each time-step runs red-black Gauss-Seidel relaxation sweeps over
//! several 258×258 grids plus a small multigrid V-cycle. Interior work
//! is local; partition *boundaries* are remote. Horizontal boundaries
//! are contiguous rows (compact pages), but vertical boundaries stride
//! one full row (2064 bytes) per element — every boundary cell sits in
//! its own 32-byte block on (almost) its own page. The resulting remote
//! working set per node is both larger than the 32-KB block cache
//! (CC-NUMA thrashes; Figure 7 shows up to ~7× at b=1K) and spread over
//! far more pages than the 320-KB page cache holds (S-COMA thrashes
//! too). R-NUMA outperforms both but, as the paper notes, "block and
//! page traffic remain high"; only the 40-MB page cache of Figure 7
//! fully absorbs it.

use crate::Scale;
use rnuma::program::{Ctx, Region, Runner, Workload};
use rnuma_mem::addr::Va;

/// Bytes per grid element.
const ELEM: u64 = 8;
/// Instructions per stencil evaluation.
const THINK_PER_POINT: u64 = 10;
/// Number of full grids the solver sweeps per step (SPLASH-2 ocean
/// keeps ~25 grids; the relaxation phases cycle through this many).
const GRIDS: u64 = 12;

/// The ocean workload.
#[derive(Debug)]
pub struct Ocean {
    /// Grid side including boundary.
    side: u64,
    steps: u64,
}

impl Ocean {
    /// Creates the workload (paper: 258×258, a few time-steps).
    #[must_use]
    pub fn new(scale: Scale) -> Ocean {
        let side = match scale {
            Scale::Paper => 258,
            Scale::Small => 130,
            Scale::Tiny => 66,
        };
        Ocean {
            side,
            steps: scale.apply_iters(4),
        }
    }

    fn at(grid: Region, side: u64, row: u64, col: u64) -> Va {
        grid.elem(row * side + col, ELEM)
    }

    /// One red-black relaxation sweep over this CPU's subgrid.
    /// Reads the 5-point stencil, which pulls the neighbor subgrids'
    /// boundary rows/columns remotely.
    #[allow(clippy::too_many_arguments)]
    fn sweep(
        ctx: &mut Ctx<'_>,
        grid: Region,
        side: u64,
        color: u64,
        r0: u64,
        r1: u64,
        c0: u64,
        c1: u64,
    ) {
        for row in r0..r1 {
            for col in c0..c1 {
                if (row + col) % 2 != color {
                    continue;
                }
                // 5-point stencil.
                ctx.read(Ocean::at(grid, side, row - 1, col));
                ctx.read(Ocean::at(grid, side, row + 1, col));
                ctx.read(Ocean::at(grid, side, row, col - 1));
                ctx.read(Ocean::at(grid, side, row, col + 1));
                let center = Ocean::at(grid, side, row, col);
                ctx.read(center);
                ctx.think(THINK_PER_POINT);
                ctx.write(center);
            }
        }
    }
}

impl Workload for Ocean {
    fn name(&self) -> &'static str {
        "ocean"
    }

    fn run(&mut self, r: &mut Runner<'_>) {
        let side = self.side;
        let cpus = u64::from(r.cpus());
        // 2-D processor grid, as square as possible (8×4 for 32).
        let mut pr = (cpus as f64).sqrt() as u64;
        while cpus % pr != 0 {
            pr -= 1;
        }
        let pc = cpus / pr;
        let interior = side - 2;

        let grids: Vec<Region> = (0..GRIDS).map(|_| r.alloc(side * side * ELEM)).collect();

        // Subgrid bounds (interior coordinates 1..side-1) per CPU. CPUs
        // are placed on the processor grid in 2×2 node tiles, so both
        // horizontal (compact) and vertical (page-fragmented) partition
        // boundaries cross machine nodes — as on a real cluster.
        let bounds: Vec<(u64, u64, u64, u64)> = (0..cpus)
            .map(|cpu| {
                let (bi, bj) = if pr.is_multiple_of(2) && pc.is_multiple_of(2) {
                    let (node, local) = (cpu / 4, cpu % 4);
                    (
                        (node / (pc / 2)) * 2 + local / 2,
                        (node % (pc / 2)) * 2 + local % 2,
                    )
                } else {
                    (cpu / pc, cpu % pc)
                };
                let r0 = 1 + interior * bi / pr;
                let r1 = 1 + interior * (bi + 1) / pr;
                let c0 = 1 + interior * bj / pc;
                let c1 = 1 + interior * (bj + 1) / pc;
                (r0, r1, c0, c1)
            })
            .collect();

        // Owners initialize their subgrids in every array (first touch).
        r.arm_first_touch();
        let one_each: Vec<Vec<u64>> = (0..cpus).map(|c| vec![c]).collect();
        for &grid in &grids {
            r.parallel(&one_each, |ctx, _cpu, c| {
                let (r0, r1, c0, c1) = bounds[c as usize];
                for row in r0..r1 {
                    for col in c0..c1 {
                        ctx.write(Ocean::at(grid, side, row, col));
                    }
                }
            });
            r.barrier();
        }

        for _step in 0..self.steps {
            // Relaxation sweeps over each grid, red then black.
            for &grid in &grids {
                for color in 0..2 {
                    r.parallel(&one_each, |ctx, _cpu, c| {
                        let (r0, r1, c0, c1) = bounds[c as usize];
                        Ocean::sweep(ctx, grid, side, color, r0, r1, c0, c1);
                    });
                    r.barrier();
                }
            }
            // A coarse multigrid correction: restrict grid 0 into a
            // quarter-size region of grid 1 and relax it (reads span
            // 2×2 fine cells — more boundary traffic).
            r.parallel(&one_each, |ctx, _cpu, c| {
                let (r0, r1, c0, c1) = bounds[c as usize];
                for row in (r0..r1.saturating_sub(1)).step_by(2) {
                    for col in (c0..c1.saturating_sub(1)).step_by(2) {
                        ctx.read(Ocean::at(grids[0], side, row, col));
                        ctx.read(Ocean::at(grids[0], side, row + 1, col));
                        ctx.read(Ocean::at(grids[0], side, row, col + 1));
                        ctx.think(THINK_PER_POINT);
                        ctx.write(Ocean::at(grids[1], side, row / 2 + 1, col / 2 + 1));
                    }
                }
            });
            r.barrier();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnuma::config::{MachineConfig, Protocol};
    use rnuma::experiment::run;

    #[test]
    fn ocean_has_large_remote_working_set() {
        let report = run(
            MachineConfig::paper_base(Protocol::paper_ccnuma()),
            &mut Ocean::new(Scale::Tiny),
        );
        let m = &report.metrics;
        assert!(m.remote_fetches > 0);
        assert!(
            m.refetches > 0,
            "boundary reuse must overflow the block cache"
        );
    }

    #[test]
    fn ocean_boundaries_fragment_pages() {
        let report = run(
            MachineConfig::paper_base(Protocol::SComa {
                page_cache_bytes: 4 * 4096,
            }),
            &mut Ocean::new(Scale::Tiny),
        );
        assert!(
            report.metrics.os.page_replacements > 0,
            "column boundaries span many pages"
        );
    }
}
