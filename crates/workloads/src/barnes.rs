//! barnes: Barnes-Hut hierarchical N-body simulation (SPLASH-2).
//!
//! The paper's input: 16 K particles.
//!
//! The force phase dominates: every particle traversal starts at the
//! octree root and opens cells until the multipole approximation is
//! acceptable, then touches a handful of leaf bodies. The *upper tree
//! levels* are read by every CPU for every body — a small, intensely
//! reused remote set that overflows the 32-KB block cache but fits
//! easily in the 320-KB page cache. The *leaf/body* data is vast and
//! touched sparsely. This is R-NUMA's best case (Section 5.2): it
//! relocates the hot tree pages and "virtually eliminates all of the
//! refetches and replacements", beating both CC-NUMA (which thrashes
//! its block cache on the hot set) and S-COMA (whose page cache is
//! polluted by the cold bodies and replaces constantly).

use crate::Scale;
use rnuma::program::{Runner, Workload};
use rnuma_sim::DetRng;

/// Bytes per tree cell record (mass, center of mass, 8 child links).
const CELL: u64 = 96;
/// Bytes per body (position, velocity, acceleration).
const BODY: u64 = 72;
/// Instructions per opened cell (multipole acceptance test + moments).
const THINK_PER_CELL: u64 = 20;
/// Instructions per body-body interaction.
const THINK_PER_BODY: u64 = 16;

/// The barnes workload.
#[derive(Debug)]
pub struct Barnes {
    bodies: u64,
    iterations: u64,
    seed: u64,
}

impl Barnes {
    /// Creates the workload (paper: 16 K particles).
    #[must_use]
    pub fn new(scale: Scale) -> Barnes {
        Barnes {
            bodies: scale.apply(16 * 1024),
            iterations: 2,
            seed: 0xBA24_0001,
        }
    }
}

impl Workload for Barnes {
    fn name(&self) -> &'static str {
        "barnes"
    }

    fn run(&mut self, r: &mut Runner<'_>) {
        let n = self.bodies;
        // Octree: levels of 8^d cells; ~n/3 internal cells in total.
        // Level sizes: 1, 8, 64, 512, 4096 ... capped by the body count.
        let mut level_sizes = Vec::new();
        let mut total_cells = 0u64;
        let mut width = 1u64;
        while total_cells + width < n / 2 {
            level_sizes.push(width);
            total_cells += width;
            width *= 8;
        }
        let cells = r.alloc(total_cells * CELL);
        let bodies = r.alloc(n * BODY);

        // Host-side tree topology: cell k at level d covers a spatial
        // octant; a body's traversal opens one cell per level along its
        // path plus the siblings of the path (the neighbor octants that
        // fail the opening criterion are still *read*).
        let mut rng = DetRng::seeded(self.seed);
        let level_base: Vec<u64> = level_sizes
            .iter()
            .scan(0u64, |acc, &w| {
                let base = *acc;
                *acc += w;
                Some(base)
            })
            .collect();
        // Each body's traversal jitter. The cell a body opens at depth
        // `d` is its *spatial* cell (bodies are stored in tree order, so
        // it follows the index) plus this small jitter — adjacent bodies
        // descend through the same upper-tree cells and nearby subtrees.
        let paths: Vec<u64> = (0..n).map(|_| rng.range_u64(0, u64::MAX / 2)).collect();
        // Interaction partners: mostly nearby bodies, plus one far
        // body per traversal (cell-opening pulls in distant leaves) —
        // the sparse cold traffic that pollutes the S-COMA page cache.
        let partners: Vec<[u64; 8]> = (0..n)
            .map(|i| {
                let mut row = [0u64; 8];
                for (k, slot) in row.iter_mut().enumerate() {
                    *slot = if k >= 7 {
                        rng.range_u64(0, n)
                    } else {
                        let span = 256.min(n);
                        let lo = i.saturating_sub(span / 2).min(n - span);
                        lo + ((paths[i as usize] >> (k * 3)) % span)
                    };
                }
                row
            })
            .collect();

        let items = r.block_partition(n);

        // Body initialization (first touch homes body pages at owners).
        // Tree cells are written by the CPUs that would build that
        // subtree: cell c at level d is built by the owner of the bodies
        // under it — approximated by striping cells across CPUs by
        // octant index.
        r.arm_first_touch();
        r.parallel(&items, |ctx, _cpu, i| {
            ctx.write_words(bodies.elem(i, BODY), 3);
        });
        r.barrier();
        // Cells are owned by the CPU whose spatial range covers them:
        // within each level, contiguous runs of octants belong to the
        // CPU owning the bodies beneath. Deep cells are therefore
        // built, refreshed, and mostly read by one CPU; only the top
        // levels are globally shared.
        let cpus = u64::from(r.cpus());
        let cell_owner = |c: u64| -> u64 {
            let mut level = 0usize;
            let mut base = 0u64;
            while level + 1 < level_base.len() && c >= level_base[level + 1] {
                base = level_base[level + 1];
                level += 1;
            }
            let width = level_sizes[level];
            let along = c - base;
            (along * cpus / width).min(cpus - 1)
        };
        let cell_items: Vec<Vec<u64>> = {
            let mut lists: Vec<Vec<u64>> = vec![Vec::new(); cpus as usize];
            for c in 0..total_cells {
                lists[cell_owner(c) as usize].push(c);
            }
            lists
        };
        r.parallel(&cell_items, |ctx, _cpu, c| {
            ctx.write_words(cells.elem(c, CELL), 4);
        });
        r.barrier();

        for _ in 0..self.iterations {
            // Force computation: each body's traversal. The multipole
            // acceptance criterion makes every body read *all* coarse
            // cells (they summarize distant space — the globally hot
            // reuse set), a ring of mid-level cells around and away from
            // its own octant, and only its nearest deep cells.
            r.parallel(&items, |ctx, _cpu, i| {
                let path = paths[i as usize];
                for (d, (&base, &width)) in level_base.iter().zip(level_sizes.iter()).enumerate() {
                    let spatial = i * width / n;
                    let jitter = (path >> (d * 3)) % 3;
                    // Cells read at this level: everything coarse, a
                    // spread ring mid-tree, a local neighborhood deep.
                    let reads: u64 = match width {
                        0..=8 => width, // all coarse cells
                        9..=64 => 24,   // distant-octant ring
                        65..=512 => 24, // mixed near/far ring
                        _ => 4,         // nearest subtrees only
                    };
                    let stride = (width / reads.max(1)).max(1);
                    for k in 0..reads {
                        let c = if width <= 512 {
                            // Spread across the level: distant octants.
                            base + (spatial + jitter + k * stride) % width
                        } else {
                            // Deep: immediate spatial neighbors.
                            base + (spatial + jitter + k) % width
                        };
                        ctx.read_words(cells.elem(c, CELL), 8);
                        ctx.think(THINK_PER_CELL);
                    }
                }
                // Near-field: read partner bodies.
                for &j in &partners[i as usize] {
                    ctx.read_words(bodies.elem(j, BODY), 3);
                    ctx.think(THINK_PER_BODY);
                }
                // Update own acceleration.
                ctx.update(bodies.elem(i, BODY));
            });
            r.barrier();

            // Tree-moment refresh: cell owners rewrite their cells
            // (invalidating the replicated copies — the read-write
            // sharing that makes barnes 97% RW pages in Table 4).
            r.parallel(&cell_items, |ctx, _cpu, c| {
                ctx.update(cells.elem(c, CELL));
                ctx.think(THINK_PER_CELL);
            });
            r.barrier();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnuma::config::{MachineConfig, Protocol};
    use rnuma::experiment::run;

    #[test]
    fn barnes_has_hot_tree_pages() {
        let report = run(
            MachineConfig::paper_base(Protocol::paper_ccnuma()),
            &mut Barnes::new(Scale::Tiny),
        );
        let m = &report.metrics;
        assert!(m.refetches > 0, "hot cells must thrash the block cache");
        // A small fraction of pages carries most refetches (Figure 5).
        let cdf = m.refetch_cdf();
        if cdf.total() > 100 {
            assert!(
                cdf.weight_of_top(0.3) > 0.5,
                "hot set should dominate, got {:.2}",
                cdf.weight_of_top(0.3)
            );
        }
    }

    #[test]
    fn barnes_rw_pages_dominate_refetches() {
        let report = run(
            MachineConfig::paper_base(Protocol::paper_ccnuma()),
            &mut Barnes::new(Scale::Tiny),
        );
        // Table 4: 97% of barnes refetches are to read-write pages.
        assert!(
            report.metrics.rw_page_refetch_fraction() > 0.5,
            "got {:.2}",
            report.metrics.rw_page_refetch_fraction()
        );
    }

    #[test]
    fn barnes_rnuma_relocates_the_hot_set() {
        let report = run(
            MachineConfig::paper_base(Protocol::paper_rnuma()),
            &mut Barnes::new(Scale::Tiny),
        );
        assert!(report.metrics.relocation_interrupts > 0);
    }
}
