//! lu: blocked dense LU factorization (SPLASH-2).
//!
//! The paper's input: a 512×512 matrix in 16×16 blocks (a 32×32 grid of
//! 2-KB blocks), blocks 2-D-scattered over the CPUs.
//!
//! Step `k` factors the diagonal block, updates the perimeter row and
//! column blocks (each reading the diagonal), then updates every
//! interior block `(i, j)` as `A[i][j] -= A[i][k] * A[k][j]` — reading
//! one perimeter-column and one perimeter-row block. Perimeter blocks
//! are therefore *reuse* data: read by every interior owner in their row
//! or column, over and over within a step. The per-CPU reuse working set
//! (a strip of perimeter blocks) exceeds the 32-KB block cache early in
//! the run, which is why CC-NUMA suffers badly (Figure 7's b=1K bar hits
//! ~7×), while the 320-KB page cache holds it comfortably — S-COMA and
//! R-NUMA shine. The trailing steps shrink the active block set, giving
//! the load imbalance the paper blames for lu's elevated R-NUMA-SOFT
//! sensitivity (Section 5.5).

use crate::Scale;
use rnuma::program::{Ctx, Region, Runner, Workload};

/// Block side in elements (paper: 16×16 doubles = 2 KB).
const B: u64 = 16;
/// Bytes per matrix element.
const ELEM: u64 = 8;
/// Instructions per fused multiply-add.
const THINK_PER_FMA: u64 = 4;

/// The lu workload.
#[derive(Debug)]
pub struct Lu {
    /// Matrix side in elements.
    n: u64,
}

impl Lu {
    /// Creates the workload (paper: 512×512).
    #[must_use]
    pub fn new(scale: Scale) -> Lu {
        let n = match scale {
            Scale::Paper => 512,
            Scale::Small => 256,
            Scale::Tiny => 128,
        };
        Lu { n }
    }

    /// Blocks per matrix side.
    #[must_use]
    pub fn grid(&self) -> u64 {
        self.n / B
    }

    /// The SPLASH-2 2-D scatter: block (i, j) belongs to the CPU at
    /// position `(i mod pr, j mod pc)` of a `pr × pc` processor grid.
    ///
    /// CPU ids are assigned so that each SMP node's four CPUs occupy a
    /// 2×2 tile of the grid: both row-perimeter and column-perimeter
    /// reuse then crosses machine nodes, as it does on a real cluster
    /// where grid neighbors land on different boxes.
    fn owner(grid_i: u64, grid_j: u64, pr: u64, pc: u64) -> u64 {
        let (gi, gj) = (grid_i % pr, grid_j % pc);
        if pr.is_multiple_of(2) && pc.is_multiple_of(2) {
            let node = (gi / 2) * (pc / 2) + (gj / 2);
            let local = (gi % 2) * 2 + (gj % 2);
            node * 4 + local
        } else {
            gi * pc + gj
        }
    }

    /// Base address of block (i, j); blocks are stored contiguously
    /// (block-major), the SPLASH-2 "improved" layout.
    fn block(m: Region, grid: u64, i: u64, j: u64) -> rnuma_mem::addr::Va {
        m.elem((i * grid + j) * B * B, ELEM)
    }

    /// Reads an entire 16×16 block.
    fn read_block(ctx: &mut Ctx<'_>, base: rnuma_mem::addr::Va) {
        for w in 0..(B * B) {
            ctx.read(rnuma_mem::addr::Va(base.0 + w * ELEM));
        }
    }

    /// The dgemm-like interior update: `dst -= a * b`, charged per FMA,
    /// touching `dst` once per element and re-reading `a`/`b` per
    /// element row/column (registers hold the rest, as in the tuned
    /// SPLASH-2 kernel).
    fn update_block(
        ctx: &mut Ctx<'_>,
        dst: rnuma_mem::addr::Va,
        a: rnuma_mem::addr::Va,
        b: rnuma_mem::addr::Va,
    ) {
        Lu::read_block(ctx, a);
        Lu::read_block(ctx, b);
        for w in 0..(B * B) {
            let va = rnuma_mem::addr::Va(dst.0 + w * ELEM);
            ctx.read(va);
            ctx.think(THINK_PER_FMA * B / 4);
            ctx.write(va);
        }
    }
}

impl Workload for Lu {
    fn name(&self) -> &'static str {
        "lu"
    }

    fn run(&mut self, r: &mut Runner<'_>) {
        let grid = self.grid();
        let cpus = u64::from(r.cpus());
        // Processor grid: as square as possible (8×4 for 32 CPUs).
        let mut pr = (cpus as f64).sqrt() as u64;
        while cpus % pr != 0 {
            pr -= 1;
        }
        let pc = cpus / pr;
        let matrix = r.alloc(self.n * self.n * ELEM);

        // Owners initialize their blocks: first touch homes each block's
        // pages at its owner.
        r.arm_first_touch();
        let all_blocks: Vec<Vec<u64>> = (0..cpus)
            .map(|cpu| {
                (0..grid * grid)
                    .filter(|&b| Lu::owner(b / grid, b % grid, pr, pc) == cpu)
                    .collect()
            })
            .collect();
        r.parallel(&all_blocks, |ctx, _cpu, b| {
            let base = Lu::block(matrix, grid, b / grid, b % grid);
            for w in 0..(B * B) {
                ctx.write(rnuma_mem::addr::Va(base.0 + w * ELEM));
            }
        });
        r.barrier();

        for k in 0..grid {
            // Diagonal factorization by its owner.
            let diag_items: Vec<Vec<u64>> = (0..cpus)
                .map(|cpu| {
                    if Lu::owner(k, k, pr, pc) == cpu {
                        vec![k]
                    } else {
                        vec![]
                    }
                })
                .collect();
            r.parallel(&diag_items, |ctx, _cpu, k| {
                let base = Lu::block(matrix, grid, k, k);
                for w in 0..(B * B) {
                    let va = rnuma_mem::addr::Va(base.0 + w * ELEM);
                    ctx.read(va);
                    ctx.think(THINK_PER_FMA * B / 2);
                    ctx.write(va);
                }
            });
            r.barrier();

            // Perimeter row and column updates read the diagonal block.
            let perim: Vec<Vec<u64>> = (0..cpus)
                .map(|cpu| {
                    let mut items = Vec::new();
                    for t in (k + 1)..grid {
                        if Lu::owner(t, k, pr, pc) == cpu {
                            items.push(t * 2); // column block (t, k)
                        }
                        if Lu::owner(k, t, pr, pc) == cpu {
                            items.push(t * 2 + 1); // row block (k, t)
                        }
                    }
                    items
                })
                .collect();
            r.parallel(&perim, |ctx, _cpu, coded| {
                let t = coded / 2;
                let diag = Lu::block(matrix, grid, k, k);
                let dst = if coded % 2 == 0 {
                    Lu::block(matrix, grid, t, k)
                } else {
                    Lu::block(matrix, grid, k, t)
                };
                Lu::update_block(ctx, dst, diag, diag);
            });
            r.barrier();

            // Interior updates: (i, j) reads perimeter (i, k) and (k, j).
            let interior: Vec<Vec<u64>> = (0..cpus)
                .map(|cpu| {
                    let mut items = Vec::new();
                    for i in (k + 1)..grid {
                        for j in (k + 1)..grid {
                            if Lu::owner(i, j, pr, pc) == cpu {
                                items.push(i * grid + j);
                            }
                        }
                    }
                    items
                })
                .collect();
            r.parallel(&interior, |ctx, _cpu, coded| {
                let (i, j) = (coded / grid, coded % grid);
                let dst = Lu::block(matrix, grid, i, j);
                let a = Lu::block(matrix, grid, i, k);
                let b = Lu::block(matrix, grid, k, j);
                Lu::update_block(ctx, dst, a, b);
            });
            r.barrier();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnuma::config::{MachineConfig, Protocol};
    use rnuma::experiment::run;

    #[test]
    fn owner_scatter_covers_all_cpus() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..8 {
            for j in 0..8 {
                seen.insert(Lu::owner(i, j, 8, 4));
            }
        }
        assert_eq!(seen.len(), 32);
    }

    #[test]
    fn lu_generates_reuse_refetches_in_ccnuma() {
        // Tiny inputs fit a 32-KB block cache (paper-scale inputs do
        // not); a 1-KB cache shows the conflict/capacity refetches.
        let report = run(
            MachineConfig::paper_base(Protocol::CcNuma {
                block_cache_bytes: Some(1024),
            }),
            &mut Lu::new(Scale::Tiny),
        );
        let m = &report.metrics;
        assert!(m.remote_fetches > 0);
        assert!(
            m.refetches > 0,
            "perimeter re-reads must overflow the block cache"
        );
    }

    #[test]
    fn lu_rnuma_relocates_reuse_pages() {
        let report = run(
            MachineConfig::paper_base(Protocol::paper_rnuma()),
            &mut Lu::new(Scale::Tiny),
        );
        assert!(
            report.metrics.relocation_interrupts > 0,
            "lu's perimeter blocks are reuse pages"
        );
    }
}
