//! fmm: adaptive Fast Multipole Method N-body (SPLASH-2).
//!
//! The paper's input: 16 K particles.
//!
//! The dominant phase evaluates box-box interaction lists: each spatial
//! box reads the multipole expansions of the ~27 boxes in its
//! interaction list, most owned by neighboring CPUs. The expansions are
//! *reused* across the box's particles, but — crucially — box records
//! are scattered through memory amid per-box particle storage, so each
//! remote expansion sits on its own page. The reuse working set
//! therefore fits the 32-KB block cache by *bytes* but needs far more
//! page-cache frames than 320 KB provides. Exactly the paper's fmm
//! story: CC-NUMA ≈ ideal, S-COMA up to 4× worse, and R-NUMA slightly
//! worse than CC-NUMA (relocated pages bounce — Table 4 reports R-NUMA
//! refetching 142% of CC-NUMA).

use crate::Scale;
use rnuma::program::{Runner, Workload};
use rnuma_sim::DetRng;

/// Bytes reserved per box record region (expansion + particle storage):
/// one page, which is what scatters expansions one-per-page.
const BOX_STRIDE: u64 = 4096;

/// Byte offset of box `b`'s expansion within its page. Boxes are
/// allocated dynamically amid particle storage, so the expansion lands
/// at a varying offset — which also keeps page-strided records from
/// degenerately colliding in the direct-mapped block cache.
fn expansion_of(boxes: rnuma::Region, b: u64) -> rnuma_mem::addr::Va {
    rnuma_mem::addr::Va(boxes.elem(b, BOX_STRIDE).0 + (b % 12) * 40)
}
/// Words of multipole expansion read per interaction.
const EXPANSION_WORDS: u64 = 10;
/// Boxes in an interaction list.
const LIST_LEN: usize = 27;
/// Instructions per box-box translation.
const THINK_PER_INTERACTION: u64 = 60;

/// The fmm workload.
#[derive(Debug)]
pub struct Fmm {
    boxes: u64,
    particles_per_box: u64,
    iterations: u64,
    seed: u64,
}

impl Fmm {
    /// Creates the workload (paper: 16 K particles; ~1024 leaf boxes of
    /// 16 particles).
    #[must_use]
    pub fn new(scale: Scale) -> Fmm {
        Fmm {
            boxes: scale.apply(1024),
            particles_per_box: 16,
            iterations: 2,
            seed: 0xF33_0001,
        }
    }
}

impl Workload for Fmm {
    fn name(&self) -> &'static str {
        "fmm"
    }

    fn run(&mut self, r: &mut Runner<'_>) {
        let nb = self.boxes;
        let side = (nb as f64).sqrt() as u64; // 2-D box grid
        let boxes = r.alloc(nb * BOX_STRIDE);

        // Interaction lists: the surrounding 5×5 halo minus near
        // neighbors, plus a few far links — spatial locality with a
        // remote tail.
        let mut rng = DetRng::seeded(self.seed);
        let lists: Vec<Vec<u64>> = (0..nb)
            .map(|b| {
                let (bi, bj) = (b / side, b % side);
                let mut list = Vec::with_capacity(LIST_LEN);
                for di in -2i64..=2 {
                    for dj in -2i64..=2 {
                        if di.abs() <= 1 && dj.abs() <= 1 {
                            continue; // near field handled directly
                        }
                        let ni = bi as i64 + di;
                        let nj = bj as i64 + dj;
                        if ni >= 0 && nj >= 0 && (ni as u64) < side && (nj as u64) < side {
                            list.push(ni as u64 * side + nj as u64);
                        }
                    }
                }
                while list.len() < LIST_LEN {
                    list.push(rng.range_u64(0, nb));
                }
                list
            })
            .collect();

        // Boxes are spatially partitioned: contiguous runs of the box
        // grid per CPU (a 2-D space-filling split).
        let items = r.block_partition(nb);

        // Owners initialize their boxes' expansions and particles.
        r.arm_first_touch();
        r.parallel(&items, |ctx, _cpu, b| {
            ctx.write_words(expansion_of(boxes, b), EXPANSION_WORDS);
        });
        r.barrier();

        for _ in 0..self.iterations {
            // Upward pass: owners refresh their expansions from their
            // particles (local work, rewrites the expansion words).
            r.parallel(&items, |ctx, _cpu, b| {
                let base = boxes.elem(b, BOX_STRIDE);
                for p in 0..self.particles_per_box {
                    ctx.read(rnuma_mem::addr::Va(
                        base.0 + 1024 + p * 24, // particle storage after the expansion
                    ));
                    ctx.think(12);
                }
                ctx.write_words(expansion_of(boxes, b), EXPANSION_WORDS);
            });
            r.barrier();

            // Interaction phase: each box reads its list's expansions.
            r.parallel(&items, |ctx, _cpu, b| {
                for &other in &lists[b as usize] {
                    ctx.read_words(expansion_of(boxes, other), EXPANSION_WORDS);
                    ctx.think(THINK_PER_INTERACTION);
                }
                // Accumulate the local expansion.
                ctx.update(expansion_of(boxes, b));
            });
            r.barrier();

            // Downward/evaluation pass: local particle updates.
            r.parallel(&items, |ctx, _cpu, b| {
                let base = boxes.elem(b, BOX_STRIDE);
                for p in 0..self.particles_per_box {
                    let va = rnuma_mem::addr::Va(base.0 + 1024 + p * 24);
                    ctx.read(va);
                    ctx.think(16);
                    ctx.write(va);
                }
            });
            r.barrier();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnuma::config::{MachineConfig, Protocol};
    use rnuma::experiment::run;

    #[test]
    fn fmm_expansions_are_one_per_page() {
        let report = run(
            MachineConfig::paper_base(Protocol::paper_scoma()),
            &mut Fmm::new(Scale::Small),
        );
        // 256 boxes at Small scale -> every remote box costs a frame;
        // the 80-frame cache must replace.
        assert!(
            report.metrics.os.page_replacements > 0,
            "sparse expansions must overflow the page cache"
        );
    }

    #[test]
    fn fmm_reuse_fits_a_32k_block_cache() {
        let big = run(
            MachineConfig::paper_base(Protocol::paper_ccnuma()),
            &mut Fmm::new(Scale::Tiny),
        );
        let tiny = run(
            MachineConfig::paper_base(Protocol::CcNuma {
                block_cache_bytes: Some(128),
            }),
            &mut Fmm::new(Scale::Tiny),
        );
        assert!(
            tiny.metrics.refetches > big.metrics.refetches,
            "a 128-B cache must refetch more than 32 KB"
        );
    }
}
