//! cholesky: blocked sparse Cholesky factorization (SPLASH-2).
//!
//! The paper's input: the `tk16.O` matrix.
//!
//! The factorization processes supernodal *panels* from a task queue:
//! completing panel `j` produces updates to a sparse fan-out of later
//! panels. Processing a panel therefore reads several already-factored
//! source panels — data written once (by their factorer) and then read
//! many times. A large share of the traffic reads panels of the
//! *original* matrix, initialized before the timed region, which the
//! directory sees as read-only — Table 4 reports only 28% of cholesky's
//! refetches touching read-write pages. The active panel working set
//! (a few hundred KB) fits the 320-KB page cache but overflows the
//! 32-KB block cache: S-COMA beats CC-NUMA, and R-NUMA, relocating the
//! hot panels, reduces refetches to 30% of CC-NUMA's and replacements
//! to 15% of S-COMA's (Table 4), edging out both (Figure 6).

use crate::Scale;
use rnuma::program::{Runner, Workload};
use rnuma_sim::DetRng;

/// Bytes per panel (a supernode's column block: ~1 K doubles).
const PANEL: u64 = 8 * 1024;
/// Words read per source panel per update (the dense update kernel
/// walks the panel once).
const WORDS_PER_UPDATE: u64 = 256;
/// Instructions per update word (multiply-add plus index math).
const THINK_PER_WORD: u64 = 6;
/// Sparse fan-out: how many later panels one panel updates.
const FANOUT: usize = 8;
/// Bytes of symbolic row-index data per panel (read-only at run time).
const INDEX: u64 = 4096;

/// The cholesky workload.
#[derive(Debug)]
pub struct Cholesky {
    panels: u64,
    seed: u64,
}

impl Cholesky {
    /// Creates the workload (paper: tk16.O ≈ a few hundred supernodal
    /// panels).
    #[must_use]
    pub fn new(scale: Scale) -> Cholesky {
        Cholesky {
            panels: scale.apply(384),
            seed: 0xC801_0001,
        }
    }
}

impl Workload for Cholesky {
    fn name(&self) -> &'static str {
        "cholesky"
    }

    fn run(&mut self, r: &mut Runner<'_>) {
        let np = self.panels;
        // Factored panels (written during the run), the original matrix
        // (read-only during the run: initialized untimed), and the
        // symbolic structure — per-panel row indices, read by every
        // consumer of a panel but never written after symbolic
        // factorization. The symbolic data is what shows up as
        // read-only remote traffic in Table 4 (cholesky: only 28% of
        // refetches from read-write pages).
        let factors = r.alloc(np * PANEL);
        let original = r.alloc(np * PANEL);
        let indices = r.alloc(np * INDEX);

        // Sparse dependency structure: panel j receives updates from
        // FANOUT earlier panels clustered near j (supernodal locality)
        // with a couple of long-range sources (the sparse "reach").
        let mut rng = DetRng::seeded(self.seed);
        let sources: Vec<Vec<u64>> = (0..np)
            .map(|j| {
                if j == 0 {
                    return Vec::new();
                }
                let mut list = Vec::with_capacity(FANOUT);
                for k in 0..FANOUT.min(j as usize) {
                    let src = if k == 0 {
                        j / 2 // elimination-tree descendant (far, shared)
                    } else if k == 1 {
                        j * 3 / 4
                    } else {
                        j - 1 - rng.range_u64(0, 8.min(j)) // nearby
                    };
                    list.push(src);
                }
                list.sort_unstable();
                list.dedup();
                list
            })
            .collect();

        // Panels are assigned to CPUs cyclically (the SPLASH-2 task
        // queue's steady-state distribution).
        let items = r.cyclic_partition(np);

        // First touch: owners assemble their factor panels (the real
        // code's numeric assembly scatters the original values into the
        // factor storage), homing the factor pages. The original matrix
        // and symbolic indices are initialized before the timed region
        // and are homed lazily at their first reader.
        r.arm_first_touch();
        r.parallel(&items, |ctx, _cpu, j| {
            for w in (0..PANEL / 8).step_by(16) {
                ctx.write(factors.elem(j * PANEL / 8 + w, 8));
            }
        });
        r.barrier();

        // Factorization sweep: panels in dependency order. The cyclic
        // assignment means each step's panels spread across CPUs; the
        // min-clock scheduler interleaves them like the task queue.
        r.parallel(&items, |ctx, _cpu, j| {
            // Assemble from the original matrix (read-only reuse).
            for w in (0..WORDS_PER_UPDATE).step_by(2) {
                ctx.read(original.elem(j * PANEL / 8 + w * 2, 8));
            }
            ctx.think(WORDS_PER_UPDATE * THINK_PER_WORD / 2);
            // Apply updates from factored source panels, one destination
            // column strip at a time — the supernodal update re-reads
            // each source panel once per strip (the reuse that thrashes
            // a 32-KB block cache). Numeric values are read-write
            // reuse; the symbolic indices are read-only reuse.
            for _strip in 0..4 {
                for &src in &sources[j as usize] {
                    for w in 0..WORDS_PER_UPDATE / 4 {
                        ctx.read(factors.elem(src * PANEL / 8 + w * 16 % (PANEL / 8), 8));
                    }
                    for w in (0..INDEX / 8).step_by(8) {
                        ctx.read(indices.elem(src * INDEX / 8 + w, 8));
                    }
                    ctx.think(WORDS_PER_UPDATE / 4 * THINK_PER_WORD);
                }
            }
            // Dense internal factorization of the panel (local).
            for w in (0..PANEL / 8).step_by(4) {
                let va = factors.elem(j * PANEL / 8 + w, 8);
                ctx.read(va);
                ctx.write(va);
            }
            ctx.think(PANEL / 8 * THINK_PER_WORD);
        });
        r.barrier();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnuma::config::{MachineConfig, Protocol};
    use rnuma::experiment::run;

    #[test]
    fn cholesky_mixes_ro_and_rw_refetches() {
        let report = run(
            MachineConfig::paper_base(Protocol::paper_ccnuma()),
            &mut Cholesky::new(Scale::Small),
        );
        let m = &report.metrics;
        assert!(m.refetches > 0, "panel reuse must refetch");
        // Table 4: cholesky's RW fraction is low (28%) compared to the
        // 96-100% of barnes/em3d/moldyn/ocean.
        assert!(
            m.rw_page_refetch_fraction() < 0.8,
            "got {:.2}",
            m.rw_page_refetch_fraction()
        );
    }

    #[test]
    fn cholesky_rnuma_cuts_refetches() {
        let cc = run(
            MachineConfig::paper_base(Protocol::paper_ccnuma()),
            &mut Cholesky::new(Scale::Tiny),
        );
        let rn = run(
            MachineConfig::paper_base(Protocol::paper_rnuma()),
            &mut Cholesky::new(Scale::Tiny),
        );
        assert!(
            rn.metrics.refetches < cc.metrics.refetches,
            "R-NUMA {} vs CC-NUMA {}",
            rn.metrics.refetches,
            cc.metrics.refetches
        );
    }
}
