//! Runs one Table-3 application (default: moldyn) across all four
//! machines — ideal, CC-NUMA, S-COMA, R-NUMA — and prints the
//! Figure-6-style normalized comparison plus traffic counters.
//!
//! Run with:
//! `cargo run --release -p rnuma-bench --example protocol_shootout -- [app] [tiny|small|paper]`

use rnuma::config::{MachineConfig, Protocol};
use rnuma::experiment::run;
use rnuma_workloads::{by_name, Scale, APP_NAMES};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app = args.get(1).map_or("moldyn", String::as_str);
    let scale = match args.get(2).map(String::as_str) {
        Some("paper") => Scale::Paper,
        Some("small") => Scale::Small,
        _ => Scale::Tiny,
    };
    assert!(
        APP_NAMES.contains(&app),
        "unknown app {app}; choose one of {APP_NAMES:?}"
    );

    println!("{app} at {scale:?} scale on the paper's base machines\n");
    let mut baseline = None;
    println!(
        "{:38} {:>12} {:>7} {:>9} {:>9} {:>7} {:>7}",
        "machine", "cycles", "norm", "fetches", "refetch", "reloc", "repl"
    );
    for protocol in [
        Protocol::ideal(),
        Protocol::paper_ccnuma(),
        Protocol::paper_scoma(),
        Protocol::paper_rnuma(),
    ] {
        let mut w = by_name(app, scale).expect("validated above");
        let report = run(MachineConfig::paper_base(protocol), &mut w);
        let base = *baseline.get_or_insert(report.cycles() as f64);
        println!(
            "{:38} {:12} {:7.2} {:9} {:9} {:7} {:7}",
            protocol.to_string(),
            report.cycles(),
            report.cycles() as f64 / base,
            report.metrics.remote_fetches,
            report.metrics.refetches,
            report.metrics.os.relocations,
            report.metrics.os.page_replacements,
        );
    }
}
