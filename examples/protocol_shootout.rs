//! Runs one Table-3 application (default: moldyn) across all four
//! machines — ideal, CC-NUMA, S-COMA, R-NUMA — and prints the
//! Figure-6-style normalized comparison plus traffic counters.
//!
//! Uses the trace-once/replay-many sweep driver
//! (`rnuma::experiment::run_sweep`): the application executes once, on
//! the ideal baseline, and the captured reference stream replays
//! against the three finite machines (see `docs/SWEEP.md`).
//!
//! Run with:
//! `cargo run --release -p rnuma-bench --example protocol_shootout -- [app] [tiny|small|paper]`

use rnuma::config::{MachineConfig, Protocol};
use rnuma::experiment::run_sweep;
use rnuma_workloads::{by_name, Scale, APP_NAMES};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app = args.get(1).map_or("moldyn", String::as_str);
    let scale = match args.get(2).map(String::as_str) {
        Some("paper") => Scale::Paper,
        Some("small") => Scale::Small,
        _ => Scale::Tiny,
    };
    assert!(
        APP_NAMES.contains(&app),
        "unknown app {app}; choose one of {APP_NAMES:?}"
    );

    println!("{app} at {scale:?} scale on the paper's base machines\n");
    println!(
        "{:38} {:>12} {:>7} {:>9} {:>9} {:>7} {:>7}",
        "machine", "cycles", "norm", "fetches", "refetch", "reloc", "repl"
    );
    let configs = [
        Protocol::ideal(),
        Protocol::paper_ccnuma(),
        Protocol::paper_scoma(),
        Protocol::paper_rnuma(),
    ]
    .map(MachineConfig::paper_base);
    let mut w = by_name(app, scale).expect("validated above");
    // One execution, three replays: every machine sees the same stream.
    let reports = run_sweep(&configs, &mut w);
    let base = reports[0].cycles() as f64;
    for report in &reports {
        println!(
            "{:38} {:12} {:7.2} {:9} {:9} {:7} {:7}",
            report.config.protocol.to_string(),
            report.cycles(),
            report.cycles() as f64 / base,
            report.metrics.remote_fetches,
            report.metrics.refetches,
            report.metrics.os.relocations,
            report.metrics.os.page_replacements,
        );
    }
}
