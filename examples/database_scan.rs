//! The paper's motivating commercial workload: a relational database
//! whose user data misses are ~90% to read-write shared pages (Verghese
//! et al., cited in Section 1). Page replication/migration cannot help
//! such pages — but R-NUMA's page cache can.
//!
//! The model: a shared table of records, partitioned scans with hot
//! index pages re-read by everyone, and an update stream that keeps the
//! pages read-write.
//!
//! Run with: `cargo run --release -p rnuma-bench --example database_scan`

use rnuma::config::{MachineConfig, Protocol};
use rnuma::experiment::run;
use rnuma::program::{Runner, Workload};
use rnuma_sim::DetRng;

const RECORD: u64 = 128; // bytes per record
const RECORDS: u64 = 16 * 1024;
const INDEX_PAGES: u64 = 24; // hot B-tree upper levels
const TXNS_PER_CPU: u64 = 256;

struct Database {
    seed: u64,
}

impl Workload for Database {
    fn name(&self) -> &'static str {
        "database"
    }

    fn run(&mut self, r: &mut Runner<'_>) {
        let table = r.alloc(RECORDS * RECORD);
        let index = r.alloc(INDEX_PAGES * 4096);
        let mut rng = DetRng::seeded(self.seed);

        // Transactions: each touches the index root pages (hot reuse),
        // then a few random records (read), updating one of them.
        let plans: Vec<(u64, [u64; 4])> = (0..u64::from(r.cpus()) * TXNS_PER_CPU)
            .map(|_| {
                let target = rng.range_u64(0, RECORDS);
                let mut reads = [0u64; 4];
                for slot in reads.iter_mut() {
                    *slot = rng.range_u64(0, RECORDS);
                }
                (target, reads)
            })
            .collect();

        // The table is loaded by partitioned owners (first touch).
        r.arm_first_touch();
        let load = r.block_partition(RECORDS);
        r.parallel(&load, |ctx, _cpu, rec| {
            ctx.write(table.elem(rec, RECORD));
        });
        // The index is built by CPU 0 (homed on node 0 — every other
        // node reads it remotely, the classic hot-structure problem).
        r.serial(rnuma_mem::addr::CpuId(0), |ctx| {
            for w in 0..index.len(8) {
                if w % 4 == 0 {
                    ctx.write(index.word(w));
                }
            }
        });
        r.barrier();

        let txns: Vec<Vec<u64>> = (0..u64::from(r.cpus()))
            .map(|c| (c * TXNS_PER_CPU..(c + 1) * TXNS_PER_CPU).collect())
            .collect();
        r.parallel(&txns, |ctx, _cpu, t| {
            let (target, reads) = plans[t as usize];
            // Index traversal: root + interior pages (hot, read-write
            // because splits/statistics occasionally write them).
            for level in 0..3u64 {
                let page = (target + level * 7) % INDEX_PAGES;
                for w in 0..8 {
                    ctx.read(index.at(page * 4096 + ((target + w * 64) % 512) * 8));
                }
                ctx.think(40);
            }
            if t % 64 == 0 {
                // An index update (statistics counter).
                ctx.update(index.at((target % INDEX_PAGES) * 4096));
            }
            // Record accesses.
            for rec in reads {
                ctx.read(table.elem(rec, RECORD));
                ctx.think(30);
            }
            ctx.update(table.elem(target, RECORD));
        });
        r.barrier();
    }
}

fn main() {
    println!("Database workload: hot RW index + scattered record updates\n");
    let ideal = run(
        MachineConfig::paper_base(Protocol::ideal()),
        &mut Database { seed: 42 },
    )
    .cycles() as f64;
    println!(
        "{:10} {:>12} {:>10} {:>10} {:>12}",
        "protocol", "cycles", "vs ideal", "refetches", "relocations"
    );
    for protocol in [
        Protocol::paper_ccnuma(),
        Protocol::paper_scoma(),
        Protocol::paper_rnuma(),
    ] {
        let report = run(
            MachineConfig::paper_base(protocol),
            &mut Database { seed: 42 },
        );
        println!(
            "{:10} {:12} {:9.2}x {:10} {:12}",
            report.protocol,
            report.cycles(),
            report.cycles() as f64 / ideal,
            report.metrics.refetches,
            report.metrics.os.relocations,
        );
    }
    println!(
        "\nThe index pages are read-write shared, so read-only replication\n\
         would not help; R-NUMA relocates them into each node's page cache."
    );
}
