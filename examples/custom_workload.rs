//! Implementing your own workload against the public API, and sweeping
//! R-NUMA's relocation threshold over it (a miniature Figure 8).
//!
//! Run with: `cargo run --release -p rnuma-bench --example custom_workload`

use rnuma::config::{MachineConfig, Protocol};
use rnuma::experiment::run;
use rnuma::model::ModelParams;
use rnuma::program::{Runner, Workload};
use rnuma_os::CostModel;

/// A tunable synthetic: `reuse_pages` hot pages re-read every round by
/// every node, plus a cold streaming region. The reuse:streaming ratio
/// decides which protocol wins — exactly the spectrum the paper's
/// applications cover.
struct Synthetic {
    reuse_pages: u64,
    stream_pages: u64,
    rounds: u64,
}

impl Workload for Synthetic {
    fn name(&self) -> &'static str {
        "synthetic"
    }

    fn run(&mut self, r: &mut Runner<'_>) {
        let hot = r.alloc(self.reuse_pages * 4096);
        let cold = r.alloc(self.stream_pages * 4096);

        r.arm_first_touch();
        // Hot data homed on node 0 (CPU 0 writes it first).
        r.serial(rnuma_mem::addr::CpuId(0), |ctx| {
            for w in 0..hot.len(8) {
                if w % 4 == 0 {
                    ctx.write(hot.word(w));
                }
            }
        });
        r.barrier();

        let rounds: Vec<Vec<u64>> = (0..r.cpus()).map(|_| (0..self.rounds).collect()).collect();
        let stream_words = cold.len(8);
        r.parallel(&rounds, |ctx, cpu, round| {
            // Hot phase: every CPU walks all reuse pages.
            for w in (0..hot.len(8)).step_by(4) {
                ctx.read(hot.word(w));
                ctx.think(6);
            }
            // Cold phase: stream a private slice once.
            let slice = stream_words / 32;
            let base = u64::from(cpu.0) * slice;
            for k in (0..slice).step_by(16) {
                ctx.read(cold.word(base + (k + round) % slice));
            }
        });
        r.barrier();
    }
}

fn main() {
    let make = || Synthetic {
        reuse_pages: 40,
        stream_pages: 512,
        rounds: 6,
    };

    println!("Custom workload under the analytical model's guidance\n");
    let params = ModelParams::from_costs(&CostModel::base());
    println!(
        "model: T* = {:.1}, worst-case bound = {:.2}\n",
        params.optimal_threshold(),
        params.worst_case_bound()
    );

    let cc = run(
        MachineConfig::paper_base(Protocol::paper_ccnuma()),
        &mut make(),
    )
    .cycles();
    let sc = run(
        MachineConfig::paper_base(Protocol::paper_scoma()),
        &mut make(),
    )
    .cycles();
    println!("CC-NUMA: {cc} cycles\nS-COMA : {sc} cycles\n");

    println!(
        "{:>10} {:>12} {:>12} {:>8} {:>14}",
        "threshold", "cycles", "vs best", "reloc", "model bound"
    );
    let best = cc.min(sc) as f64;
    for threshold in [1, 4, 16, 64, 256, 1024] {
        let report = run(
            MachineConfig::paper_base(Protocol::RNuma {
                block_cache_bytes: 128,
                page_cache_bytes: 320 * 1024,
                threshold,
            }),
            &mut make(),
        );
        let measured = report.cycles() as f64 / best;
        let bound = params.worst_case_at(f64::from(threshold));
        println!(
            "{threshold:10} {:12} {measured:11.2}x {:8} {bound:13.2}x",
            report.cycles(),
            report.metrics.os.relocations
        );
        assert!(
            measured <= bound,
            "measured ratio exceeded the analytical bound"
        );
    }
    println!(
        "\nEvery threshold keeps R-NUMA within the model's per-threshold\n\
         worst case max(EQ1, EQ2); the bound is tightest at T* = {:.0}.",
        params.optimal_threshold()
    );
}
