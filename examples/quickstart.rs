//! Quickstart: build the paper's base R-NUMA machine, run a small
//! shared-memory program on it, and read the metrics.
//!
//! Run with: `cargo run --release -p rnuma-bench --example quickstart`

use rnuma::config::{MachineConfig, Protocol};
use rnuma::experiment::run;
use rnuma::program::{Runner, Workload};

/// Every CPU repeatedly walks a shared lookup table that lives on one
/// node — the textbook "reuse page" pattern R-NUMA was built for.
struct TableWalk;

impl Workload for TableWalk {
    fn name(&self) -> &'static str {
        "table-walk"
    }

    fn run(&mut self, r: &mut Runner<'_>) {
        // 64 KB shared table, written once by CPU 0 (first touch homes
        // it on node 0), then read by everyone for several rounds.
        let table = r.alloc(64 * 1024);
        r.arm_first_touch();
        r.serial(rnuma_mem::addr::CpuId(0), |ctx| {
            for w in 0..table.len(8) {
                ctx.write(table.word(w));
            }
        });
        r.barrier();

        let words = table.len(8);
        let rounds: Vec<Vec<u64>> = (0..r.cpus()).map(|_| (0..8u64).collect()).collect();
        r.parallel(&rounds, |ctx, cpu, round| {
            // Each CPU strides through the table from its own offset.
            let start = u64::from(cpu.0) * 97 + round * 13;
            for k in 0..512 {
                ctx.read(table.word((start + k * 7) % words));
                ctx.think(8);
            }
        });
        r.barrier();
    }
}

fn main() {
    println!("R-NUMA quickstart: 8 nodes x 4 CPUs, Table-2 costs\n");
    for protocol in [
        Protocol::ideal(),
        Protocol::paper_ccnuma(),
        Protocol::paper_scoma(),
        Protocol::paper_rnuma(),
    ] {
        let report = run(MachineConfig::paper_base(protocol), &mut TableWalk);
        println!("=== {protocol} ===");
        println!("{}\n", report.metrics);
    }
    println!(
        "Note how R-NUMA's relocation turns the remote table pages into\n\
         local page-cache hits after the refetch threshold is crossed."
    );
}
