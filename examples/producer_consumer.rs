//! Communication pages: a producer/consumer pipeline where every datum
//! is written by one node and read once by another. These pages gain
//! nothing from S-COMA's page cache (each block is used once per
//! version), so CC-NUMA wins — and R-NUMA, detecting no refetches,
//! correctly leaves the pages in CC-NUMA mode.
//!
//! Run with: `cargo run --release -p rnuma-bench --example producer_consumer`

use rnuma::config::{MachineConfig, Protocol};
use rnuma::experiment::run;
use rnuma::program::{Runner, Workload};

const SLOTS: u64 = 4096; // 8-byte slots per stage buffer
const ROUNDS: u64 = 8;

/// CPUs form a ring; each stage writes a buffer the next stage reads.
struct Pipeline;

impl Workload for Pipeline {
    fn name(&self) -> &'static str {
        "pipeline"
    }

    fn run(&mut self, r: &mut Runner<'_>) {
        let cpus = u64::from(r.cpus());
        let buffers: Vec<_> = (0..cpus).map(|_| r.alloc(SLOTS * 8)).collect();

        // Each stage initializes its own outbound buffer (first touch).
        r.arm_first_touch();
        let one_each: Vec<Vec<u64>> = (0..cpus).map(|c| vec![c]).collect();
        r.parallel(&one_each, |ctx, _cpu, c| {
            for s in 0..SLOTS {
                ctx.write(buffers[c as usize].word(s));
            }
        });
        r.barrier();

        for _ in 0..ROUNDS {
            // Consume the upstream buffer, produce into our own.
            r.parallel(&one_each, |ctx, _cpu, c| {
                let upstream = buffers[((c + cpus - 1) % cpus) as usize];
                let own = buffers[c as usize];
                for s in 0..SLOTS {
                    ctx.read(upstream.word(s));
                    ctx.think(12);
                    ctx.write(own.word(s));
                }
            });
            r.barrier();
        }
    }
}

fn main() {
    println!("Producer/consumer ring: pure communication pages\n");
    let ideal = run(MachineConfig::paper_base(Protocol::ideal()), &mut Pipeline).cycles() as f64;
    println!(
        "{:10} {:>10} {:>11} {:>12} {:>13}",
        "protocol", "vs ideal", "refetches", "relocations", "replacements"
    );
    for protocol in [
        Protocol::paper_ccnuma(),
        Protocol::paper_scoma(),
        Protocol::paper_rnuma(),
    ] {
        let report = run(MachineConfig::paper_base(protocol), &mut Pipeline);
        println!(
            "{:10} {:9.2}x {:11} {:12} {:13}",
            report.protocol,
            report.cycles() as f64 / ideal,
            report.metrics.refetches,
            report.metrics.os.relocations,
            report.metrics.os.page_replacements,
        );
    }
    println!(
        "\nCoherence misses dominate: the directory sees almost no\n\
         refetches, R-NUMA relocates (almost) nothing, and S-COMA pays\n\
         page-cache allocations for single-use data."
    );
}
