//! Reproducibility: a run is a pure function of (configuration,
//! workload). Identical inputs must give bit-identical outputs across
//! repeated executions, for every protocol and application.

use rnuma::config::{MachineConfig, Protocol};
use rnuma::experiment::run;
use rnuma_workloads::{by_name, Scale, APP_NAMES};

fn fingerprint(app: &str, protocol: Protocol) -> (u64, u64, u64, u64, u64) {
    let mut w = by_name(app, Scale::Tiny).expect("known app");
    let r = run(MachineConfig::paper_base(protocol), &mut w);
    (
        r.cycles(),
        r.metrics.references(),
        r.metrics.remote_fetches,
        r.metrics.refetches,
        r.metrics.os.page_replacements + r.metrics.os.relocations,
    )
}

#[test]
fn every_app_is_deterministic_on_every_protocol() {
    for app in APP_NAMES {
        for protocol in [
            Protocol::paper_ccnuma(),
            Protocol::paper_scoma(),
            Protocol::paper_rnuma(),
        ] {
            let a = fingerprint(app, protocol);
            let b = fingerprint(app, protocol);
            assert_eq!(a, b, "{app} diverged on {protocol}");
        }
    }
}

#[test]
fn different_seeds_change_stochastic_workloads() {
    use rnuma_workloads::em3d::Em3d;
    let base = MachineConfig::paper_base(Protocol::paper_ccnuma());
    let a = run(base, &mut Em3d::new(Scale::Tiny)).cycles();
    // The same graph on a machine with a different seed is identical —
    // machine seed does not perturb the workload's wiring.
    let mut other = base;
    other.seed = 999;
    let b = run(other, &mut Em3d::new(Scale::Tiny)).cycles();
    assert_eq!(a, b, "machine seed must not affect a fixed workload");
}

#[test]
fn parallel_driver_reports_are_bit_identical_to_serial() {
    // The figure binaries fan (config, workload) pairs out over
    // threads; every NormalizedReport must match the serial reference
    // implementation exactly, on real application kernels.
    use rnuma::experiment::{run_normalized, run_normalized_serial};
    let configs = [
        MachineConfig::paper_base(Protocol::ideal()),
        MachineConfig::paper_base(Protocol::paper_ccnuma()),
        MachineConfig::paper_base(Protocol::paper_scoma()),
        MachineConfig::paper_base(Protocol::paper_rnuma()),
    ];
    for app in ["em3d", "lu", "moldyn"] {
        let par = run_normalized(&configs, || by_name(app, Scale::Tiny).expect("known app"));
        let ser = run_normalized_serial(&configs, || by_name(app, Scale::Tiny).expect("known app"));
        assert_eq!(par.len(), ser.len());
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.report.protocol, s.report.protocol, "{app} order changed");
            assert_eq!(
                p.report.cycles(),
                s.report.cycles(),
                "{app} cycles diverged"
            );
            assert_eq!(
                p.report.metrics.references(),
                s.report.metrics.references(),
                "{app} reference counts diverged"
            );
            assert_eq!(
                p.report.metrics.remote_fetches, s.report.metrics.remote_fetches,
                "{app} remote fetches diverged"
            );
            assert_eq!(
                p.report.metrics.refetches, s.report.metrics.refetches,
                "{app} refetches diverged"
            );
            assert_eq!(
                p.report.metrics.os.page_replacements, s.report.metrics.os.page_replacements,
                "{app} page replacements diverged"
            );
            assert!(
                (p.normalized_time - s.normalized_time).abs() < f64::EPSILON,
                "{app} normalized time diverged"
            );
        }
    }
}

#[test]
fn protocol_choice_does_not_change_reference_stream() {
    // The same workload must issue exactly the same loads and stores
    // regardless of protocol; only timing and traffic differ.
    for app in ["moldyn", "fft", "radix"] {
        let refs: Vec<u64> = [
            Protocol::ideal(),
            Protocol::paper_ccnuma(),
            Protocol::paper_scoma(),
            Protocol::paper_rnuma(),
        ]
        .into_iter()
        .map(|p| {
            let mut w = by_name(app, Scale::Tiny).expect("known");
            run(MachineConfig::paper_base(p), &mut w)
                .metrics
                .references()
        })
        .collect();
        assert!(
            refs.windows(2).all(|w| w[0] == w[1]),
            "{app} reference counts diverged across protocols: {refs:?}"
        );
    }
}
