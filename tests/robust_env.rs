//! Robustness environment plumbing: `RNUMA_FAULTS`,
//! `RNUMA_WINDOW_DEADLINE_MS`, and `RNUMA_JOURNAL` parsing — plus the
//! CLI contracts of the figure binaries (warn-once misconfiguration on
//! stderr for `RNUMA_SHARDS`, `RNUMA_JOBS`, `RNUMA_EXEC`, and
//! `RNUMA_FAULTS`; one-line diagnostic and nonzero exit on emitter I/O
//! failure; fault plans never abort a figure run).
//!
//! The in-process tests mutate the environment, so they live in their
//! own binary and one `#[test]` owns all the scenarios. The subprocess
//! tests use `env_clear()` and are hermetic.

use rnuma::shard::window_deadline_from_env;
use rnuma::{FaultKind, FaultPlan, Journal};
use std::process::Command;

fn with_var<R>(name: &str, value: Option<&str>, body: impl FnOnce() -> R) -> R {
    // Restore (not just remove) afterwards: the CI chaos lane exports
    // these very variables around this whole binary.
    let prev = std::env::var_os(name);
    match value {
        Some(v) => std::env::set_var(name, v),
        None => std::env::remove_var(name),
    }
    let out = body();
    match prev {
        Some(v) => std::env::set_var(name, v),
        None => std::env::remove_var(name),
    }
    out
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rnuma-robust-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One test owns every env-mutation scenario (shared process).
#[test]
fn robustness_env_plumbing() {
    // RNUMA_FAULTS: unset and empty mean no plan; a plan string builds
    // the described plan; a malformed string disables injection
    // (warn-once) rather than crashing.
    with_var("RNUMA_FAULTS", None, || {
        assert!(FaultPlan::from_env().is_none())
    });
    with_var("RNUMA_FAULTS", Some(""), || {
        assert!(FaultPlan::from_env().is_none());
    });
    with_var("RNUMA_FAULTS", Some("panic_before@0,seed=7"), || {
        let mut plan = FaultPlan::from_env().expect("well-formed plan");
        assert!(!plan.is_empty());
        assert!(
            plan.should_fire(FaultKind::PanicBefore),
            "pinned event at decision 0"
        );
    });
    with_var("RNUMA_FAULTS", Some("hang~0.5,hang_ms=25,seed=9"), || {
        let plan = FaultPlan::from_env().expect("well-formed plan");
        assert_eq!(plan.hang_ms(), 25);
    });
    with_var("RNUMA_FAULTS", Some("banana"), || {
        assert!(FaultPlan::from_env().is_none());
    });

    // RNUMA_WINDOW_DEADLINE_MS mirrors RNUMA_SHARDS semantics: unset
    // off; positive integer on; zero/garbage = warn-once + off.
    with_var("RNUMA_WINDOW_DEADLINE_MS", None, || {
        assert_eq!(window_deadline_from_env(), None);
    });
    with_var("RNUMA_WINDOW_DEADLINE_MS", Some("50"), || {
        assert_eq!(window_deadline_from_env(), Some(50));
    });
    with_var("RNUMA_WINDOW_DEADLINE_MS", Some("0"), || {
        assert_eq!(window_deadline_from_env(), None);
    });
    with_var("RNUMA_WINDOW_DEADLINE_MS", Some("soon"), || {
        assert_eq!(window_deadline_from_env(), None);
    });

    // RNUMA_JOURNAL: core treats the value as a path; bench resolves
    // the literal "1" to results/sweep_journal.jsonl; an unopenable
    // journal (here: a directory) disables checkpointing, never aborts.
    let dir = temp_dir("journal");
    let explicit = dir.join("explicit.jsonl");
    with_var("RNUMA_JOURNAL", None, || {
        assert!(Journal::from_env().is_none());
        assert!(rnuma_bench::sweep_journal_from_env().is_none());
    });
    with_var("RNUMA_JOURNAL", Some(explicit.to_str().unwrap()), || {
        assert_eq!(Journal::from_env().expect("fresh journal").path(), explicit);
        assert_eq!(
            rnuma_bench::sweep_journal_from_env()
                .expect("fresh journal")
                .path(),
            explicit
        );
    });
    with_var("RNUMA_JOURNAL", Some(dir.to_str().unwrap()), || {
        assert!(
            Journal::from_env().is_none(),
            "a directory is not a journal"
        );
    });
    with_var("RNUMA_RESULTS_DIR", Some(dir.to_str().unwrap()), || {
        with_var("RNUMA_JOURNAL", Some("1"), || {
            let journal = rnuma_bench::sweep_journal_from_env().expect("canonical journal");
            assert_eq!(journal.path(), dir.join("sweep_journal.jsonl"));
        });
    });

    // End-to-end through the bench driver: a journaled sweep_grid
    // checkpoints its replay cells, and a second journaled run restores
    // them bit-identically.
    let configs = [
        rnuma::MachineConfig::paper_base(rnuma::Protocol::ideal()),
        rnuma::MachineConfig::paper_base(rnuma::Protocol::paper_rnuma()),
    ];
    let clean = rnuma_bench::sweep_grid(&["em3d"], &configs, rnuma_workloads::Scale::Tiny);
    let journaled = with_var("RNUMA_JOURNAL", Some(explicit.to_str().unwrap()), || {
        let first = rnuma_bench::sweep_grid(&["em3d"], &configs, rnuma_workloads::Scale::Tiny);
        assert!(
            Journal::open(&explicit).unwrap().entries() >= 1,
            "journaled sweep recorded no cells"
        );
        let second = rnuma_bench::sweep_grid(&["em3d"], &configs, rnuma_workloads::Scale::Tiny);
        (first, second)
    });
    for rows in [&journaled.0, &journaled.1] {
        for (r, b) in rows[0].iter().zip(&clean[0]) {
            assert!(
                r.metrics.replay_eq(&b.metrics),
                "journaled sweep diverged from clean on {}",
                r.protocol
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// An unwritable results directory is a one-line diagnostic and exit
/// status 1 — not a panic backtrace.
#[test]
fn emitter_io_failure_exits_nonzero_with_one_line() {
    let dir = temp_dir("io-fail");
    let file = dir.join("occupied");
    std::fs::write(&file, "not a directory").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_table1_model"))
        .env_clear()
        .env("RNUMA_RESULTS_DIR", file.join("nested"))
        .output()
        .expect("spawn table1_model");
    assert!(!out.status.success(), "expected a nonzero exit");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("rnuma-bench: cannot create results directory"),
        "missing diagnostic; stderr was: {stderr}"
    );
    assert_eq!(
        stderr.lines().count(),
        1,
        "want exactly one diagnostic line; stderr was: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Misconfigured `RNUMA_SHARDS` warns exactly once per process on
/// stderr — even though every grid cell consults it — and the figure
/// still regenerates successfully.
#[test]
fn shard_misconfiguration_warns_once_and_completes() {
    let dir = temp_dir("warn-once");
    let out = Command::new(env!("CARGO_BIN_EXE_fig5_pages"))
        .args(["--scale", "tiny"])
        .env_clear()
        .env("RNUMA_RESULTS_DIR", &dir)
        .env("RNUMA_SHARDS", "banana")
        .output()
        .expect("spawn fig5_pages");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "fig5_pages failed; stderr: {stderr}");
    assert_eq!(
        stderr.matches("RNUMA_SHARDS").count(),
        1,
        "want exactly one warning; stderr was: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `RNUMA_JOBS=0` (the classic "disable it" guess) is a
/// misconfiguration, not a request for serial execution: it warns
/// exactly once per process on stderr — even though every parallel
/// fan-out consults it — falls back to the documented default (the
/// host's parallelism), and the figure still regenerates successfully.
#[test]
fn jobs_misconfiguration_warns_once_and_completes() {
    let dir = temp_dir("jobs-warn-once");
    let out = Command::new(env!("CARGO_BIN_EXE_fig5_pages"))
        .args(["--scale", "tiny"])
        .env_clear()
        .env("RNUMA_RESULTS_DIR", &dir)
        .env("RNUMA_JOBS", "0")
        .output()
        .expect("spawn fig5_pages");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "fig5_pages failed; stderr: {stderr}");
    assert_eq!(
        stderr.matches("RNUMA_JOBS").count(),
        1,
        "want exactly one warning; stderr was: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// An unknown `RNUMA_EXEC` engine name warns exactly once per process
/// on stderr — even though every sharded machine consults the selector
/// — falls back to the default engine resolution, and the figure still
/// regenerates successfully.
#[test]
fn exec_misconfiguration_warns_once_and_completes() {
    let dir = temp_dir("exec-warn-once");
    let out = Command::new(env!("CARGO_BIN_EXE_fig5_pages"))
        .args(["--scale", "tiny"])
        .env_clear()
        .env("RNUMA_RESULTS_DIR", &dir)
        .env("RNUMA_SHARDS", "2")
        .env("RNUMA_EXEC", "banana")
        .output()
        .expect("spawn fig5_pages");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "fig5_pages failed; stderr: {stderr}");
    assert_eq!(
        stderr.matches("RNUMA_EXEC").count(),
        1,
        "want exactly one warning; stderr was: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A malformed `RNUMA_FAULTS` spec warns exactly once per process on
/// stderr — even though every capture and every sharded replay
/// consults the plan — and the figure still regenerates successfully.
#[test]
fn fault_misconfiguration_warns_once_and_completes() {
    let dir = temp_dir("faults-warn-once");
    let out = Command::new(env!("CARGO_BIN_EXE_fig5_pages"))
        .args(["--scale", "tiny"])
        .env_clear()
        .env("RNUMA_RESULTS_DIR", &dir)
        .env("RNUMA_FAULTS", "banana")
        .output()
        .expect("spawn fig5_pages");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "fig5_pages failed; stderr: {stderr}");
    assert_eq!(
        stderr.matches("ignoring RNUMA_FAULTS").count(),
        1,
        "want exactly one warning; stderr was: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A figure binary under an active fault plan (worker panics at a 20%
/// rate, sharded execution forced) completes successfully: injected
/// faults self-heal instead of aborting the run.
#[test]
fn figure_binary_completes_under_fault_plan() {
    let dir = temp_dir("chaos");
    let out = Command::new(env!("CARGO_BIN_EXE_fig5_pages"))
        .args(["--scale", "tiny"])
        .env_clear()
        .env("RNUMA_RESULTS_DIR", &dir)
        .env("RNUMA_SHARDS", "2")
        .env("RNUMA_FAULTS", "panic_before~0.2,panic_after~0.1,seed=42")
        .output()
        .expect("spawn fig5_pages");
    assert!(
        out.status.success(),
        "fig5_pages aborted under fault plan; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
