//! Cross-crate integration tests of the three protocols' defining
//! behaviors on controlled reference patterns.

use rnuma::config::{MachineConfig, Protocol};
use rnuma::experiment::run;
use rnuma::program::{Runner, Workload};

/// Hot pages re-read by every node, every round.
struct Reuse {
    pages: u64,
    rounds: u64,
}

impl Workload for Reuse {
    fn name(&self) -> &'static str {
        "reuse"
    }
    fn run(&mut self, r: &mut Runner<'_>) {
        let hot = r.alloc(self.pages * 4096);
        r.arm_first_touch();
        r.serial(rnuma_mem::addr::CpuId(0), |ctx| {
            for w in (0..hot.len(8)).step_by(4) {
                ctx.write(hot.word(w));
            }
        });
        r.barrier();
        let rounds: Vec<Vec<u64>> = (0..r.cpus()).map(|_| (0..self.rounds).collect()).collect();
        r.parallel(&rounds, |ctx, _cpu, _| {
            for w in (0..hot.len(8)).step_by(4) {
                ctx.read(hot.word(w));
            }
        });
        r.barrier();
    }
}

/// Every round, each CPU writes its buffer and reads its neighbor's.
struct Communicate {
    rounds: u64,
}

impl Workload for Communicate {
    fn name(&self) -> &'static str {
        "communicate"
    }
    fn run(&mut self, r: &mut Runner<'_>) {
        let cpus = u64::from(r.cpus());
        let buf = r.alloc(cpus * 4096);
        r.arm_first_touch();
        let one_each: Vec<Vec<u64>> = (0..cpus).map(|c| vec![c]).collect();
        r.parallel(&one_each, |ctx, _cpu, c| {
            for w in 0..512 {
                ctx.write(buf.word(c * 512 + w));
            }
        });
        r.barrier();
        for _ in 0..self.rounds {
            r.parallel(&one_each, |ctx, _cpu, c| {
                let other = (c + 4) % cpus; // a CPU on another node
                for w in (0..512).step_by(4) {
                    ctx.read(buf.word(other * 512 + w));
                }
                for w in (0..512).step_by(4) {
                    ctx.write(buf.word(c * 512 + w));
                }
            });
            r.barrier();
        }
    }
}

fn cycles(protocol: Protocol, w: &mut dyn Workload) -> u64 {
    run(MachineConfig::paper_base(protocol), w).cycles()
}

#[test]
fn ideal_lower_bounds_every_protocol() {
    for make in [
        || {
            Box::new(Reuse {
                pages: 30,
                rounds: 4,
            }) as Box<dyn Workload>
        },
        || Box::new(Communicate { rounds: 4 }) as Box<dyn Workload>,
    ] {
        let ideal = cycles(Protocol::ideal(), &mut *make());
        for protocol in [
            Protocol::paper_ccnuma(),
            Protocol::paper_scoma(),
            Protocol::paper_rnuma(),
        ] {
            let t = cycles(protocol, &mut *make());
            assert!(
                t as f64 >= ideal as f64 * 0.999,
                "{protocol} beat the ideal machine: {t} vs {ideal}"
            );
        }
    }
}

#[test]
fn scoma_beats_ccnuma_on_pure_reuse() {
    // 30 hot pages >> the node cache hierarchy but << the page cache:
    // after cold misses, S-COMA serves everything locally.
    let mut a = Reuse {
        pages: 30,
        rounds: 6,
    };
    let cc = cycles(Protocol::paper_ccnuma(), &mut a);
    let mut b = Reuse {
        pages: 30,
        rounds: 6,
    };
    let sc = cycles(Protocol::paper_scoma(), &mut b);
    assert!(sc < cc, "S-COMA {sc} should beat CC-NUMA {cc} on reuse");
}

#[test]
fn ccnuma_beats_scoma_on_pure_communication() {
    let cc = cycles(Protocol::paper_ccnuma(), &mut Communicate { rounds: 6 });
    let sc = cycles(Protocol::paper_scoma(), &mut Communicate { rounds: 6 });
    assert!(
        cc < sc,
        "CC-NUMA {cc} should beat S-COMA {sc} on communication"
    );
}

#[test]
fn rnuma_tracks_the_winner_on_both_extremes() {
    // Reuse: R-NUMA must approach S-COMA.
    let sc = cycles(
        Protocol::paper_scoma(),
        &mut Reuse {
            pages: 30,
            rounds: 6,
        },
    );
    let rn = cycles(
        Protocol::paper_rnuma(),
        &mut Reuse {
            pages: 30,
            rounds: 6,
        },
    );
    let cc = cycles(
        Protocol::paper_ccnuma(),
        &mut Reuse {
            pages: 30,
            rounds: 6,
        },
    );
    assert!(rn < cc, "reactive machine must beat CC-NUMA on reuse");
    assert!(
        (rn as f64) < sc as f64 * 3.0,
        "R-NUMA {rn} must stay within the bound of S-COMA {sc}"
    );

    // Communication: R-NUMA must approach CC-NUMA.
    let cc = cycles(Protocol::paper_ccnuma(), &mut Communicate { rounds: 6 });
    let sc = cycles(Protocol::paper_scoma(), &mut Communicate { rounds: 6 });
    let rn = cycles(Protocol::paper_rnuma(), &mut Communicate { rounds: 6 });
    assert!(
        rn < sc,
        "reactive machine must beat S-COMA on communication"
    );
    assert!(
        (rn as f64) < cc as f64 * 3.0,
        "R-NUMA {rn} must stay within the bound of CC-NUMA {cc}"
    );
}

#[test]
fn reuse_triggers_relocations_but_communication_does_not() {
    let reuse = run(
        MachineConfig::paper_base(Protocol::paper_rnuma()),
        &mut Reuse {
            pages: 30,
            rounds: 6,
        },
    );
    assert!(reuse.metrics.os.relocations > 0);

    let comm = run(
        MachineConfig::paper_base(Protocol::paper_rnuma()),
        &mut Communicate { rounds: 6 },
    );
    assert_eq!(
        comm.metrics.os.relocations, 0,
        "coherence misses must not trip the refetch counters"
    );
}

#[test]
fn remote_traffic_is_visible_in_the_network() {
    let report = run(
        MachineConfig::paper_base(Protocol::paper_ccnuma()),
        &mut Communicate { rounds: 2 },
    );
    assert!(report.metrics.net_messages > 0);
    assert!(report.metrics.remote_fetches > 0);
    // Request + reply at minimum.
    assert!(report.metrics.net_messages >= 2 * report.metrics.remote_fetches);
}
