//! The reactive policy end to end: threshold semantics, page-mode
//! transitions in both directions, and counter hygiene.

use rnuma::config::{MachineConfig, Protocol};
use rnuma::machine::Machine;
use rnuma_mem::addr::{CpuId, Va};
use rnuma_sim::Cycles;

fn rnuma(threshold: u32, page_cache_bytes: u64) -> Machine {
    Machine::new(MachineConfig::paper_base(Protocol::RNuma {
        block_cache_bytes: 128,
        page_cache_bytes,
        threshold,
    }))
    .expect("valid config")
}

/// The victim page under test and an evictor page whose block 0 maps to
/// the same set in both the 8-KB L1 (256 lines) and the 128-B block
/// cache (4 lines), so alternating reads force a refetch of `A` on
/// every revisit.
const PAGE_A: u64 = 8;
const PAGE_EVICT: u64 = 16; // (16*128) % 256 == (8*128) % 256 == 0
const A: Va = Va(PAGE_A * 4096);
const EVICT: Va = Va(PAGE_EVICT * 4096);

/// Homes both pages at node 0 so node 1's accesses are remote.
fn home_pages(m: &mut Machine) {
    m.access(CpuId(0), A, false);
    m.access(CpuId(0), EVICT, false);
}

/// Forces ~`n` refetches of page A's block 0 on node 1 by alternating
/// with the evictor block (the evictor page accumulates refetches too).
fn force_refetches(m: &mut Machine, n: u32) {
    for _ in 0..n {
        m.access(CpuId(4), A, false);
        m.access(CpuId(4), EVICT, false);
    }
}

#[test]
fn relocation_fires_exactly_at_threshold() {
    for threshold in [2u32, 5, 9] {
        let mut m = rnuma(threshold, 320 * 1024);
        home_pages(&mut m);
        force_refetches(&mut m, 2 * threshold + 2);
        let metrics = m.metrics();
        assert!(
            metrics.relocation_interrupts >= 1,
            "T={threshold} never fired: {metrics}"
        );
    }
}

#[test]
fn below_threshold_never_relocates() {
    let mut m = rnuma(1000, 320 * 1024);
    home_pages(&mut m);
    force_refetches(&mut m, 100);
    assert_eq!(m.metrics().relocation_interrupts, 0);
}

#[test]
fn relocated_page_serves_from_page_cache() {
    let mut m = rnuma(2, 320 * 1024);
    home_pages(&mut m);
    force_refetches(&mut m, 12);
    let before = m.metrics();
    assert!(before.relocation_interrupts >= 1);
    m.barrier_all();
    // Re-reads of the relocated page's resident block hit locally.
    m.access(CpuId(4), A, false);
    let after = m.metrics();
    assert!(
        after.page_cache_hits > before.page_cache_hits,
        "expected page-cache hits after relocation: {after}"
    );
}

#[test]
fn page_cache_pressure_reverts_pages_to_ccnuma() {
    // A two-frame page cache: relocating a third page evicts the LRM
    // victim, which becomes unmapped (next touch restarts CC-NUMA).
    let mut m = rnuma(2, 2 * 4096);
    // Three victim pages, each with its own evictor page (an evictor
    // that relocates stops evicting, so they cannot be shared). All
    // block-0s map to L1 set 0 and block-cache set 0.
    let pairs = [(8u64, 32u64), (16, 40), (24, 48)];
    for &(p, e) in &pairs {
        m.access(CpuId(0), Va(p * 4096), false);
        m.access(CpuId(0), Va(e * 4096), false);
    }
    for &(p, e) in &pairs {
        for _ in 0..8u32 {
            m.access(CpuId(4), Va(p * 4096), false);
            m.access(CpuId(4), Va(e * 4096), false);
        }
    }
    let metrics = m.metrics();
    assert!(
        metrics.relocation_interrupts >= 3,
        "all victim pages should relocate: {metrics}"
    );
    assert!(
        metrics.os.page_replacements >= 1,
        "the two-frame cache must evict: {metrics}"
    );
}

#[test]
fn relocation_cost_is_charged() {
    // The access that crosses the threshold pays the relocation
    // overhead (>= soft trap + shootdown + bookkeeping beyond the plain
    // 376-cycle fetch).
    let mut m = rnuma(2, 320 * 1024);
    home_pages(&mut m);
    m.access(CpuId(4), A, false); // cold fetch
    m.access(CpuId(4), EVICT, false);
    m.access(CpuId(4), A, false); // refetch #1
    m.access(CpuId(4), EVICT, false);
    m.barrier_all();
    let lat = m.access(CpuId(4), A, false); // refetch #2 -> relocate
    assert!(
        lat >= Cycles(376 + 3000),
        "threshold-crossing access must pay the relocation: {lat}"
    );
    assert!(m.metrics().relocation_interrupts >= 1);
}

#[test]
fn scoma_mode_misses_do_not_count_toward_relocation() {
    // After relocation, coherence activity on the S-COMA page must not
    // raise further interrupts.
    let mut m = rnuma(2, 320 * 1024);
    home_pages(&mut m);
    force_refetches(&mut m, 10);
    let interrupts = m.metrics().relocation_interrupts;
    assert!(interrupts >= 1);
    // Node 0 (home) writes the block repeatedly, invalidating node 1's
    // tags; node 1 re-reads (S-COMA misses).
    for _ in 0..10 {
        m.access(CpuId(0), A, true);
        m.access(CpuId(4), A, false);
    }
    assert_eq!(
        m.metrics().relocation_interrupts,
        interrupts,
        "S-COMA-mode coherence misses must not re-trigger"
    );
}
