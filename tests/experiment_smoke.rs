//! Smoke tests for every experiment's core loop at Tiny scale: each
//! table/figure generator must complete and produce sane series.

use rnuma::config::{MachineConfig, Protocol};
use rnuma::model::ModelParams;
use rnuma_bench::{run_app, run_app_config};
use rnuma_os::CostModel;
use rnuma_workloads::{Scale, APP_NAMES};

const SCALE: Scale = Scale::Tiny;

#[test]
fn e1_model_series() {
    let p = ModelParams::from_costs(&CostModel::base());
    assert!((p.worst_case_bound() - 3.0).abs() < 0.1);
    assert!(p.optimal_threshold() > 1.0);
}

#[test]
fn e4_fig5_cdf_series() {
    for app in ["barnes", "radix"] {
        let cdf = run_app(app, Protocol::paper_ccnuma(), SCALE)
            .metrics
            .refetch_cdf();
        assert!(cdf.contributors() > 0, "{app}: empty CDF");
        let last = cdf.points().last().copied().unwrap_or((0.0, 0.0));
        assert!((last.0 - 1.0).abs() < 1e-9);
    }
}

#[test]
fn e5_table4_columns() {
    for app in ["barnes", "raytrace"] {
        let cc = run_app(app, Protocol::paper_ccnuma(), SCALE);
        let frac = cc.metrics.rw_page_refetch_fraction();
        assert!((0.0..=1.0).contains(&frac), "{app}: fraction {frac}");
    }
}

#[test]
fn e6_fig6_normalization() {
    for app in ["moldyn", "em3d"] {
        let ideal = run_app(app, Protocol::ideal(), SCALE).cycles() as f64;
        for protocol in [
            Protocol::paper_ccnuma(),
            Protocol::paper_scoma(),
            Protocol::paper_rnuma(),
        ] {
            let norm = run_app(app, protocol, SCALE).cycles() as f64 / ideal;
            assert!(
                (0.999..50.0).contains(&norm),
                "{app}/{protocol}: normalized {norm}"
            );
        }
    }
}

#[test]
fn e7_fig7_block_cache_monotonicity() {
    // A bigger CC-NUMA block cache is never (meaningfully) slower.
    for app in ["moldyn", "lu"] {
        let small = run_app(
            app,
            Protocol::CcNuma {
                block_cache_bytes: Some(1024),
            },
            SCALE,
        )
        .cycles() as f64;
        let large = run_app(app, Protocol::paper_ccnuma(), SCALE).cycles() as f64;
        assert!(
            large <= small * 1.05,
            "{app}: 32K ({large}) slower than 1K ({small})"
        );
    }
}

#[test]
fn e8_fig8_threshold_sweep_runs() {
    for threshold in [16u32, 64, 256, 1024] {
        let r = run_app(
            "moldyn",
            Protocol::RNuma {
                block_cache_bytes: 128,
                page_cache_bytes: 320 * 1024,
                threshold,
            },
            SCALE,
        );
        assert!(r.cycles() > 0);
    }
}

#[test]
fn e9_fig9_soft_systems_are_slower() {
    for app in ["em3d", "radix"] {
        let base = run_app(app, Protocol::paper_scoma(), SCALE).cycles() as f64;
        let mut config = MachineConfig::paper_base(Protocol::paper_scoma());
        config.costs = CostModel::soft();
        let soft = run_app_config(app, config, SCALE).cycles() as f64;
        assert!(
            soft >= base,
            "{app}: SOFT S-COMA ({soft}) faster than base ({base})"
        );
    }
}

#[test]
fn all_apps_tiny_complete_quickly() {
    for app in APP_NAMES {
        let r = run_app(app, Protocol::paper_rnuma(), SCALE);
        assert!(r.cycles() > 0, "{app} produced no cycles");
    }
}
