//! The paper's central guarantee (Section 3.2): R-NUMA's worst-case
//! per-page overhead is within `2 + Crel/Call` of the better of
//! CC-NUMA and S-COMA, for *any* reference pattern. These tests throw
//! adversarial streams at the machines and check the bound end to end,
//! and property-test the closed-form model.

use proptest::prelude::*;
use rnuma::config::{MachineConfig, Protocol};
use rnuma::experiment::run;
use rnuma::model::ModelParams;
use rnuma::program::{Runner, Workload};
use rnuma_os::CostModel;

/// The model's adversary: fetch a page's blocks exactly `touches` times
/// per episode, then move on — tuned so pages relocate and are then
/// abandoned (R-NUMA's worst case, Section 3.2).
struct Adversary {
    pages: u64,
    touches_per_page: u64,
    episodes: u64,
}

impl Workload for Adversary {
    fn name(&self) -> &'static str {
        "adversary"
    }
    fn run(&mut self, r: &mut Runner<'_>) {
        let data = r.alloc(self.pages * 4096);
        r.arm_first_touch();
        r.serial(rnuma_mem::addr::CpuId(0), |ctx| {
            for p in 0..self.pages {
                ctx.write(data.at(p * 4096));
            }
        });
        r.barrier();
        let episodes: Vec<Vec<u64>> = (0..r.cpus())
            .map(|c| {
                if c == 4 {
                    (0..self.episodes).collect()
                } else {
                    vec![]
                }
            })
            .collect();
        r.parallel(&episodes, |ctx, _cpu, e| {
            // Walk every page, touching two conflicting blocks
            // alternately to force refetches from the tiny block cache.
            for p in 0..self.pages {
                for t in 0..self.touches_per_page {
                    let block = (t % 2) * 4 * 32;
                    ctx.read(data.at(p * 4096 + block + (e % 2) * 32 * 2));
                }
            }
        });
        r.barrier();
    }
}

fn exec(protocol: Protocol, w: &mut Adversary) -> f64 {
    run(MachineConfig::paper_base(protocol), w).cycles() as f64
}

#[test]
fn adversarial_streams_respect_the_bound() {
    // Sweep adversaries from communication-like (few touches) to
    // reuse-like (many touches); the bound must hold throughout.
    let bound = ModelParams::from_costs(&CostModel::base()).worst_case_bound();
    for touches in [2u64, 16, 64, 150, 400] {
        let make = || Adversary {
            pages: 60,
            touches_per_page: touches,
            episodes: 4,
        };
        let cc = exec(Protocol::paper_ccnuma(), &mut make());
        let sc = exec(Protocol::paper_scoma(), &mut make());
        let rn = exec(Protocol::paper_rnuma(), &mut make());
        let best = cc.min(sc);
        assert!(
            rn <= best * bound,
            "touches={touches}: R-NUMA {rn:.0} vs best {best:.0} exceeds bound {bound:.2}"
        );
    }
}

#[test]
fn thrashing_page_cache_respects_the_bound() {
    // More hot pages than page-cache frames: the relocate-evict-repeat
    // pattern is the literal worst case of EQ 1/EQ 2.
    let make = || Adversary {
        pages: 120, // > 80 frames
        touches_per_page: 80,
        episodes: 4,
    };
    let bound = ModelParams::from_costs(&CostModel::base()).worst_case_bound();
    let cc = exec(Protocol::paper_ccnuma(), &mut make());
    let sc = exec(Protocol::paper_scoma(), &mut make());
    let rn = exec(Protocol::paper_rnuma(), &mut make());
    assert!(
        rn <= cc.min(sc) * bound,
        "thrash case exceeds the bound: rn={rn:.0} cc={cc:.0} sc={sc:.0}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// EQ 3 is the intersection and the minimum of max(EQ1, EQ2).
    #[test]
    fn model_bound_is_tight_at_optimal_threshold(
        cref in 10.0f64..2000.0,
        call in 100.0f64..50_000.0,
        crel_ratio in 0.01f64..1.5,
    ) {
        let p = ModelParams::new(cref, call, call * crel_ratio);
        let t_star = p.optimal_threshold();
        let at_star = p.worst_case_at(t_star);
        prop_assert!((at_star - p.worst_case_bound()).abs() < 1e-9);
        for factor in [0.25, 0.5, 2.0, 4.0] {
            prop_assert!(p.worst_case_at(t_star * factor) >= at_star - 1e-9);
        }
    }

    /// The bound lives in (2, 3] whenever relocation is no costlier
    /// than allocation (the paper's "2 to 3 times" statement).
    #[test]
    fn bound_is_two_to_three(
        cref in 10.0f64..2000.0,
        call in 100.0f64..50_000.0,
        crel_ratio in 0.0001f64..1.0,
    ) {
        let p = ModelParams::new(cref, call, call * crel_ratio);
        let bound = p.worst_case_bound();
        prop_assert!(bound > 2.0 && bound <= 3.0, "bound {bound}");
    }

    /// EQ1 monotonically improves (decreases) and EQ2 worsens
    /// (increases) as the threshold grows.
    #[test]
    fn eq_monotonicity(
        cref in 10.0f64..2000.0,
        call in 100.0f64..50_000.0,
        t in 1.0f64..10_000.0,
    ) {
        let p = ModelParams::new(cref, call, call);
        prop_assert!(p.rnuma_vs_ccnuma(t) > p.rnuma_vs_ccnuma(t * 2.0));
        prop_assert!(p.rnuma_vs_scoma(t) < p.rnuma_vs_scoma(t * 2.0));
    }
}
