//! Helpers shared by the workspace determinism suites, included per
//! test binary via `#[path = "support.rs"] mod support;`.

use rnuma::shard::ShardPool;
use std::sync::{Arc, OnceLock};

/// A pool that always has workers, so the suites exercise the pooled
/// (threaded) executor even on single-core CI hosts, where the shared
/// pool would fall back to inline serial replay.
pub fn forced_pool() -> Arc<ShardPool> {
    static POOL: OnceLock<Arc<ShardPool>> = OnceLock::new();
    Arc::clone(POOL.get_or_init(|| Arc::new(ShardPool::new(2))))
}
