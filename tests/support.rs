//! Helpers shared by the workspace determinism suites, included per
//! test binary via `#[path = "support.rs"] mod support;`.
//!
//! Items are `#[allow(dead_code)]` because each including binary uses
//! its own subset.

use rnuma::config::{MachineConfig, Protocol};
use rnuma::shard::ShardPool;
use std::sync::{Arc, OnceLock};

/// A pool that always has workers, so the suites exercise the pooled
/// (threaded) executor even on single-core CI hosts, where the shared
/// pool would fall back to inline serial replay.
#[allow(dead_code)]
pub fn forced_pool() -> Arc<ShardPool> {
    static POOL: OnceLock<Arc<ShardPool>> = OnceLock::new();
    Arc::clone(POOL.get_or_init(|| Arc::new(ShardPool::new(2))))
}

/// The figure-grid protocol axis: the ideal (infinite block cache)
/// baseline every figure normalizes to, then the paper's three finite
/// protocols.
#[allow(dead_code)]
pub fn figure_protocols() -> [Protocol; 4] {
    [
        Protocol::ideal(),
        Protocol::paper_ccnuma(),
        Protocol::paper_scoma(),
        Protocol::paper_rnuma(),
    ]
}

/// The figure-grid configuration axis ([`figure_protocols`] on the
/// paper's base machine): capture on the ideal baseline, replay on the
/// three finite protocols. One fixture shared by every determinism
/// suite so the grids cannot drift apart.
#[allow(dead_code)]
pub fn figure_configs() -> [MachineConfig; 4] {
    figure_protocols().map(MachineConfig::paper_base)
}
