//! Differential fault-injection suite: under every pinned fault plan,
//! the executor must *self-heal* — injected worker panics, hangs, and
//! queue poisoning are absorbed, and the run's metrics stay
//! bit-identical to the fault-free serial execution of the same stream
//! (the trace-driven contract of `docs/DETERMINISM.md`, now extended to
//! hold across faults; see `docs/ROBUSTNESS.md`).
//!
//! Also proves the checkpoint/resume contract: a sweep killed mid-run
//! by an injected abort, then resumed from its journal, finishes
//! bit-identical to a clean uninterrupted sweep.

use rnuma::config::MachineConfig;
use rnuma::experiment::{run_sweep_journaled, run_traced, SweepAbort, TraceStore};
use rnuma::journal::Journal;
use rnuma::shard::{ExecEngine, ShardPool, ShardedMachine, TraceOp};
use rnuma_sim::fault::{FaultKind, FaultPlan};
use rnuma_workloads::{by_name, Scale};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

#[path = "support.rs"]
mod support;

/// Captures em3d@Tiny's reference stream on `config`.
fn trace_on(config: MachineConfig) -> Vec<TraceOp> {
    let (_, trace) = run_traced(config, &mut by_name("em3d", Scale::Tiny).unwrap());
    trace
}

/// A pool-backed sharded machine forced onto the threaded path (every
/// window dispatches to the pool, even on single-core CI hosts).
fn forced_sharded(config: MachineConfig, pool: Arc<ShardPool>) -> ShardedMachine {
    let mut sharded = ShardedMachine::with_pool(config, 4, pool).expect("figure configs are valid");
    sharded.set_parallel_threshold(1);
    sharded
}

/// Injected worker panics — before and after a window's execution,
/// pinned and randomized — recover to bit-identical metrics on every
/// figure-grid configuration.
#[test]
fn injected_panics_recover_bit_identical() {
    let configs = support::figure_configs();
    let trace = trace_on(configs[0]);
    let mut store = TraceStore::new();
    let id = store.insert("em3d", configs[0], &trace);
    for &config in &configs {
        let reference = store.replay_serial(id, config);
        for (spec, pinned) in [
            ("panic_before@0,seed=7", true),
            ("panic_after@1,seed=7", true),
            ("panic_before~0.3,panic_after~0.3,seed=13", false),
        ] {
            let plan = FaultPlan::parse(spec).expect("specs above are well-formed");
            let mut sharded = forced_sharded(config, Arc::new(ShardPool::new(2)));
            sharded.set_fault_plan(Some(plan));
            sharded.run_trace(&trace);
            assert!(
                reference.metrics.replay_eq(&sharded.metrics()),
                "metrics diverged under plan {spec:?} on {}",
                config.protocol
            );
            if pinned {
                assert!(
                    !sharded.fault_log().is_empty(),
                    "pinned plan {spec:?} never fired"
                );
                assert!(
                    sharded.stats().recovered_jobs >= 1,
                    "pinned plan {spec:?} fired but nothing was recovered"
                );
            }
        }
    }
}

/// A worker that hangs past the window watchdog deadline is abandoned:
/// the coordinator re-executes its window (and the rest of the barrier
/// group) from the armed snapshots, bit-identical.
#[test]
fn hung_worker_recovers_via_watchdog() {
    let configs = support::figure_configs();
    let trace = trace_on(configs[0]);
    let mut store = TraceStore::new();
    let id = store.insert("em3d", configs[0], &trace);
    let config = configs[3]; // R-NUMA
    let reference = store.replay_serial(id, config);

    let plan = FaultPlan::parse("hang@0,hang_ms=200,seed=3").unwrap();
    let mut sharded = forced_sharded(config, Arc::new(ShardPool::new(2)));
    sharded.set_fault_plan(Some(plan));
    sharded.set_window_deadline_ms(Some(20));
    sharded.run_trace(&trace);
    assert!(
        reference.metrics.replay_eq(&sharded.metrics()),
        "metrics diverged after watchdog recovery"
    );
    assert!(sharded.fault_log().count(FaultKind::Hang) >= 1);
    assert!(sharded.stats().recovered_jobs >= 1);
}

/// Poisoning the job queue mid-run degrades every subsequent window to
/// the coordinator's inline execution — graceful, and bit-identical.
#[test]
fn poisoned_queue_falls_back_inline() {
    let configs = support::figure_configs();
    let trace = trace_on(configs[0]);
    let mut store = TraceStore::new();
    let id = store.insert("em3d", configs[0], &trace);
    let config = configs[1]; // CC-NUMA
    let reference = store.replay_serial(id, config);

    let plan = FaultPlan::parse("poison@0,seed=1").unwrap();
    let mut sharded = forced_sharded(config, Arc::new(ShardPool::new(2)));
    sharded.set_fault_plan(Some(plan));
    sharded.run_trace(&trace);
    assert!(
        reference.metrics.replay_eq(&sharded.metrics()),
        "metrics diverged after inline fallback"
    );
    assert!(sharded.fault_log().count(FaultKind::Poison) >= 1);
    assert!(sharded.stats().inline_fallbacks >= 1);
}

/// A pool whose only worker died (injected panic) respawns it and stays
/// usable: a second, fault-free run on the same pool is bit-identical.
/// This is the dead-worker scenario `ShardPool::checking()` callers
/// (the env-driven self-checks) rely on.
#[test]
fn pool_survives_worker_death_for_later_runs() {
    let configs = support::figure_configs();
    let trace = trace_on(configs[0]);
    let mut store = TraceStore::new();
    let id = store.insert("em3d", configs[0], &trace);
    let config = configs[2]; // S-COMA
    let reference = store.replay_serial(id, config);

    let pool = Arc::new(ShardPool::new(1));
    let mut faulted = forced_sharded(config, Arc::clone(&pool));
    faulted.set_fault_plan(Some(FaultPlan::parse("panic_before@0,seed=9").unwrap()));
    faulted.run_trace(&trace);
    assert!(reference.metrics.replay_eq(&faulted.metrics()));
    assert!(faulted.stats().recovered_jobs >= 1);

    // The killed worker was respawned; the same pool serves a clean run.
    assert!(pool.workers() >= 1, "dead worker was not respawned");
    let mut clean = forced_sharded(config, pool);
    // Disarm explicitly: under the CI chaos lanes RNUMA_FAULTS is set
    // for the whole process, and this run must actually be fault-free.
    clean.set_fault_plan(None);
    clean.run_trace(&trace);
    assert!(reference.metrics.replay_eq(&clean.metrics()));
    assert!(clean.fault_log().is_empty());

    // The checking() pool (what RNUMA_SHARDS self-checks run on) always
    // has workers to lose in the first place.
    assert!(ShardPool::checking().workers() >= 1);
}

/// Pipelined drill: a worker panic that lands while the next window's
/// scan is already prefetched forces the coordinator to discard the
/// speculative overlay (`scans_invalidated`), re-scan, and still finish
/// bit-identical — on every figure-grid configuration.
#[test]
fn pipelined_panic_discards_inflight_prefetch() {
    let configs = support::figure_configs();
    let trace = trace_on(configs[0]);
    let mut store = TraceStore::new();
    let id = store.insert("em3d", configs[0], &trace);
    for &config in &configs {
        let reference = store.replay_serial(id, config);
        for spec in ["panic_before@0,seed=5", "panic_after@0,seed=5"] {
            let plan = FaultPlan::parse(spec).expect("specs above are well-formed");
            let mut sharded = forced_sharded(config, Arc::new(ShardPool::new(2)));
            sharded.set_pipelined(true);
            sharded.set_fault_plan(Some(plan));
            sharded.run_trace(&trace);
            assert!(
                reference.metrics.replay_eq(&sharded.metrics()),
                "pipelined metrics diverged under plan {spec:?} on {}",
                config.protocol
            );
            let stats = sharded.stats();
            assert!(stats.recovered_jobs >= 1, "plan {spec:?} never recovered");
            assert!(
                stats.scans_invalidated >= 1,
                "recovery under {spec:?} left a speculative scan alive"
            );
            assert!(
                stats.scans_prefetched > stats.scans_invalidated,
                "every prefetched scan was discarded under {spec:?} — \
                 the fault-free tail of the run should have kept some"
            );
        }
    }
}

/// Pipelined drill: a hang absorbed by the window watchdog also
/// invalidates the in-flight prefetched scan — the recovery path is
/// identical whether the fault surfaced as a panic or a timeout.
#[test]
fn pipelined_hang_invalidates_prefetch_via_watchdog() {
    let configs = support::figure_configs();
    let trace = trace_on(configs[0]);
    let mut store = TraceStore::new();
    let id = store.insert("em3d", configs[0], &trace);
    let config = configs[3]; // R-NUMA
    let reference = store.replay_serial(id, config);

    let plan = FaultPlan::parse("hang@0,hang_ms=200,seed=3").unwrap();
    let mut sharded = forced_sharded(config, Arc::new(ShardPool::new(2)));
    sharded.set_pipelined(true);
    sharded.set_fault_plan(Some(plan));
    sharded.set_window_deadline_ms(Some(20));
    sharded.run_trace(&trace);
    assert!(
        reference.metrics.replay_eq(&sharded.metrics()),
        "pipelined metrics diverged after watchdog recovery"
    );
    let stats = sharded.stats();
    assert!(sharded.fault_log().count(FaultKind::Hang) >= 1);
    assert!(stats.recovered_jobs >= 1);
    assert!(
        stats.scans_invalidated >= 1,
        "watchdog recovery left a speculative scan alive"
    );
}

/// Pipelined drill: a poisoned queue never leaves speculative state
/// behind — poison fires at submission, before any job is in flight,
/// so no scan is ever prefetched (prefetching only overlaps real pool
/// work) and nothing needs invalidating. Degraded inline, bit-identical.
#[test]
fn pipelined_poison_never_speculates() {
    let configs = support::figure_configs();
    let trace = trace_on(configs[0]);
    let mut store = TraceStore::new();
    let id = store.insert("em3d", configs[0], &trace);
    let config = configs[1]; // CC-NUMA
    let reference = store.replay_serial(id, config);

    let plan = FaultPlan::parse("poison@0,seed=1").unwrap();
    let mut sharded = forced_sharded(config, Arc::new(ShardPool::new(2)));
    sharded.set_pipelined(true);
    sharded.set_fault_plan(Some(plan));
    sharded.run_trace(&trace);
    assert!(
        reference.metrics.replay_eq(&sharded.metrics()),
        "pipelined metrics diverged after inline fallback"
    );
    let stats = sharded.stats();
    assert!(stats.inline_fallbacks >= 1);
    assert_eq!(
        stats.scans_prefetched, 0,
        "a scan was prefetched with no pool work in flight"
    );
    assert_eq!(stats.scans_invalidated, 0);
}

/// Shared-log drill: a worker panic under the log engine rolls back
/// only the faulted shard's consumption cursor — the other shards'
/// progress through the span log survives the recovery — and the run
/// stays bit-identical on every figure-grid configuration. The log
/// engine never speculates, so unlike the pipelined drills there is no
/// prefetched scan to invalidate.
#[test]
fn log_fault_rolls_back_only_the_faulted_cursor_on_the_grid() {
    let configs = support::figure_configs();
    let trace = trace_on(configs[0]);
    let mut store = TraceStore::new();
    let id = store.insert("em3d", configs[0], &trace);
    for &config in &configs {
        let reference = store.replay_serial(id, config);
        for spec in ["panic_before@0,seed=5", "panic_after@0,seed=5"] {
            let plan = FaultPlan::parse(spec).expect("specs above are well-formed");
            let mut sharded = forced_sharded(config, Arc::new(ShardPool::new(2)));
            sharded.set_engine(ExecEngine::Log);
            sharded.set_fault_plan(Some(plan));
            sharded.run_trace(&trace);
            assert!(
                reference.metrics.replay_eq(&sharded.metrics()),
                "log metrics diverged under plan {spec:?} on {}",
                config.protocol
            );
            let stats = sharded.stats();
            assert_eq!(stats.recovered_jobs, 1, "plan {spec:?} fires exactly once");
            assert_eq!(stats.scans_invalidated, 0, "log engine never speculates");
            let rollbacks = sharded.cursor_rollbacks();
            assert_eq!(
                rollbacks.iter().filter(|&&r| r > 0).count(),
                1,
                "exactly the faulted shard's cursor rolls back: {rollbacks:?}"
            );
            assert_eq!(rollbacks.iter().sum::<u64>(), stats.recovered_jobs);
            let cursors = sharded.span_cursors();
            assert!(
                cursors.iter().all(|&c| c == cursors[0] && c >= 1),
                "recovery must re-consume the rolled-back span: {cursors:?}"
            );
        }
    }
}

/// Capture-time allocation pressure downgrades trace interning to
/// verbatim storage — more resident ops, identical replay results.
#[test]
fn capture_pressure_degrades_interning_not_results() {
    let configs = support::figure_configs();
    let trace = trace_on(configs[0]);

    let mut clean = TraceStore::new();
    clean.set_fault_plan(None);
    let clean_id = clean.insert("em3d", configs[0], &trace);

    let mut pressured = TraceStore::new();
    pressured.set_fault_plan(Some(
        FaultPlan::new(5).rate(FaultKind::CapturePressure, 1.0),
    ));
    let pressured_id = pressured.insert("em3d", configs[0], &trace);

    // The fault fired exactly once (interning is off afterwards, so no
    // further decisions are taken) and the store kept every segment —
    // paying verbatim profile storage for it.
    assert_eq!(pressured.fault_log().count(FaultKind::CapturePressure), 1);
    assert!(pressured.encoded_bytes() >= clean.encoded_bytes());
    assert!(pressured.interning_ratio() >= clean.interning_ratio());
    assert_eq!(pressured.captured_ops(), clean.captured_ops());

    for &config in &configs {
        let a = clean.replay_serial(clean_id, config);
        let b = pressured.replay_serial(pressured_id, config);
        assert!(
            a.metrics.replay_eq(&b.metrics),
            "pressure changed replay results on {}",
            config.protocol
        );
    }
}

/// The spill-leak drill: `RNUMA_TRACE_SPILL` profile files must not
/// outlive their store. An injected `abort@0` that unwinds past a
/// spilling store drops the file on the way out; a process *killed*
/// without unwinding leaves its file behind (simulated by a dead-pid
/// spill planted in the directory), and the next spilling store reaps
/// it at construction. Either way the directory ends clean.
#[test]
fn abort_drill_leaves_no_spill_file_behind() {
    let dir = std::env::temp_dir().join(format!("rnuma-spill-drill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // A sweep killed mid-run (no unwind) leaks its pid-named spill
    // file; pid 999999999 is far above any real pid_max, so this file
    // is exactly what such a corpse leaves behind.
    let stale = dir.join("rnuma-trace-spill-999999999-0.bin");
    std::fs::write(&stale, b"leak").unwrap();

    let configs = support::figure_configs();
    let trace = trace_on(configs[0]);
    let mut store = TraceStore::spilled_to(&dir);
    assert!(
        !stale.exists(),
        "constructing a spilling store must reap dead processes' files"
    );
    let id = store.insert("em3d", configs[0], &trace);
    assert!(
        store.spill_path().is_some(),
        "store must spill under {dir:?}"
    );
    assert!(store.spilled_bytes() > 0, "capture never reached the spill");
    // Replay reads back through the spill file before the crash.
    let _ = store.replay_serial(id, configs[0]);

    // The abort@0 crash drill: the injected panic unwinds past the
    // store, whose teardown must take the spill file with it.
    let abort = SweepAbort::with_plan(Some(FaultPlan::new(0).at(FaultKind::SweepAbort, 0)));
    let crashed = std::panic::catch_unwind(AssertUnwindSafe(move || {
        let _store = store;
        abort.after_cell();
    }));
    assert!(crashed.is_err(), "the injected abort did not fire");

    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .filter(|n| n.starts_with("rnuma-trace-spill-"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "abort drill left spill files behind: {leftovers:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The checkpoint/resume drill: a sweep killed mid-run by an injected
/// abort, resumed from its journal, produces a grid bit-identical to a
/// clean uninterrupted sweep — without re-simulating journaled cells.
/// The resumed grid is then differentially pinned against a sharded
/// re-execution under every engine: a journal restore is bit-identical
/// to log, pipelined, and barrier execution alike.
#[test]
fn journal_resume_is_bit_identical_to_clean_sweep() {
    let dir = std::env::temp_dir().join(format!("rnuma-fault-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sweep_journal.jsonl");
    let configs = support::figure_configs();

    let clean = run_sweep_journaled(
        &configs,
        &mut by_name("em3d", Scale::Tiny).unwrap(),
        None,
        &SweepAbort::with_plan(None),
    );

    // Crash the journaled sweep right after its first completed cell.
    let journal = Journal::open(&path).unwrap();
    let abort = SweepAbort::with_plan(Some(FaultPlan::new(0).at(FaultKind::SweepAbort, 0)));
    let crashed = std::panic::catch_unwind(AssertUnwindSafe(|| {
        run_sweep_journaled(
            &configs,
            &mut by_name("em3d", Scale::Tiny).unwrap(),
            Some(&journal),
            &abort,
        )
    }));
    assert!(crashed.is_err(), "the injected abort did not fire");

    // The killed sweep checkpointed at least the cell it completed.
    let journal = Journal::open(&path).unwrap();
    let checkpointed = journal.entries();
    assert!(
        checkpointed >= 1,
        "no cells were journaled before the crash"
    );

    // Resume: journaled cells restore, the rest re-simulate.
    let resumed = run_sweep_journaled(
        &configs,
        &mut by_name("em3d", Scale::Tiny).unwrap(),
        Some(&journal),
        &SweepAbort::with_plan(None),
    );
    assert_eq!(clean.len(), resumed.len());
    for (c, r) in clean.iter().zip(&resumed) {
        assert_eq!(c.protocol, r.protocol);
        assert!(
            c.metrics.replay_eq(&r.metrics),
            "resumed sweep diverged from clean on {}",
            r.protocol
        );
    }

    // Every engine agrees with the resumed grid: cells restored from
    // the journal are bit-identical to sharded re-execution of the
    // same stream under log, pipelined, and barrier consumption.
    let trace = trace_on(configs[0]);
    for engine in [ExecEngine::Log, ExecEngine::Pipeline, ExecEngine::Barrier] {
        for r in &resumed {
            let mut sharded = forced_sharded(r.config, Arc::new(ShardPool::new(2)));
            sharded.set_fault_plan(None);
            sharded.set_engine(engine);
            sharded.run_trace(&trace);
            assert!(
                r.metrics.replay_eq(&sharded.metrics()),
                "{engine} re-execution diverged from the resumed journal on {}",
                r.protocol
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}
